// Experiment E3 — a mechanized replay of the paper's Section 3 argument
// (the machinery behind Figures 1 and 2) on concrete protocols.
//
// For each protocol we:
//   1. start from a bivalent initial configuration (Observation 1),
//   2. greedily extend executions inside E_1* while they stay bivalent,
//      arriving at a CRITICAL execution (Lemma 6a),
//   3. read off the teams (Lemma 7) and the common poised object (Lemma 9),
//   4. classify the critical configuration via its U_0/U_1 sets
//      (Observation 11): n-recording, v-hiding, or neither,
//   5. cross-check Theorem 13: the poised object's type must be
//      n-recording according to the standalone checker.
#include <cstdio>
#include <memory>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "hierarchy/recording.hpp"
#include "spec/catalog.hpp"
#include "valency/critical.hpp"
#include "valency/theorem13.hpp"

namespace {

void trace(const rcons::exec::Protocol& protocol,
           const std::vector<int>& inputs) {
  using namespace rcons;
  std::printf("==== %s, inputs:", protocol.name().c_str());
  for (int v : inputs) std::printf(" %d", v);
  std::printf(" ====\n");

  valency::CriticalSearchOptions options;
  options.z = 1;
  const auto report = valency::find_critical_execution(protocol, inputs,
                                                       options);
  if (!report.has_value()) {
    std::printf("no critical execution found (initial configuration not "
                "bivalent?)\n\n");
    return;
  }
  std::printf("%s", report->render(protocol).c_str());

  if (report->same_object) {
    const spec::ObjectType& type = protocol.object_type(report->object);
    const int n = protocol.process_count();
    const bool checker_says = n >= 2
        ? rcons::hierarchy::check_recording(type, n).holds
        : true;
    std::printf(
        "Theorem 13 cross-check: checker says %s is %d-recording: %s\n",
        type.name().c_str(), n, checker_says ? "YES" : "NO");
    if (report->config_class.recording && !checker_says) {
      std::printf("  !!! INCONSISTENT — this would contradict Theorem 13\n");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace rcons;

  // CAS consensus: critical immediately; the classification exhibits the
  // recording configuration of Theorem 13's endpoint.
  trace(algo::CasConsensus(2), {0, 1});
  trace(algo::CasConsensus(3), {0, 1, 1});

  // The recoverable T_{n,n'} protocol: a real pre-critical phase (op_R
  // reads) before the op_x race — the walk threads through it.
  trace(algo::TnnRecoverableConsensus(4, 2, 2), {0, 1});
  trace(algo::TnnRecoverableConsensus(5, 3, 3), {0, 1, 1});

  // The recording-tree algorithm over CAS.
  trace(algo::RecordingConsensus(spec::make_cas(3), 2), {1, 0});

  // The full Theorem 13 chain construction (Figure 2's shape): critical
  // execution, classification, and — were the configuration v-hiding —
  // lambda-crash bridges to further stages.
  {
    algo::TnnRecoverableConsensus protocol(5, 3, 3);
    std::printf("==== Theorem 13 chain on %s ====\n%s\n",
                protocol.name().c_str(),
                valency::run_theorem13_chain(protocol, {0, 1, 1})
                    .render(protocol)
                    .c_str());
  }
  return 0;
}
