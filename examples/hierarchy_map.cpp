// Experiment E1 companion — maps the full catalog through both deciders,
// prints the witnesses behind each positive level, exports Figure 3's
// state machine (text + Graphviz dot + the .type interchange format), and
// dumps the discovered X_4 machine.
//
// Usage: hierarchy_map [max_n]     (default max_n = 5)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hierarchy/consensus_number.hpp"
#include "hierarchy/witnesses.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcons;
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 5;

  const std::vector<spec::ObjectType> catalog = {
      spec::make_register(2),        spec::make_test_and_set(),
      spec::make_swap(2),            spec::make_fetch_and_add(4),
      spec::make_cas(2),             spec::make_cas(3),
      spec::make_sticky_bit(),       spec::make_consensus_object(2),
      spec::make_consensus_object(3),spec::make_queue(2),
      spec::make_tnn(4, 2),          spec::make_tnn(5, 2),
      spec::make_xn(4),
  };

  Table table({"type", "readable", "cons (discerning)", "rcons (recording)",
               "recording witnesses @level"});
  for (const spec::ObjectType& type : catalog) {
    const hierarchy::TypeProfile p = hierarchy::compute_profile(type, max_n);
    std::string witness_count = "-";
    if (p.recording.value >= 2) {
      const auto e = hierarchy::enumerate_witnesses(
          type, p.recording.value, hierarchy::WitnessKind::kRecording, 1);
      witness_count = std::to_string(e.total_found);
    }
    table.add_row({p.type_name, p.readable ? "yes" : "no",
                   p.discerning.to_string(), p.recording.to_string(),
                   witness_count});
  }
  std::printf("Hierarchy map (levels scanned up to n = %d; for readable "
              "rows the levels ARE the consensus numbers):\n%s\n",
              max_n, table.render().c_str());

  // The witnesses behind two emblematic cells.
  {
    const spec::ObjectType tas = spec::make_test_and_set();
    const auto e = hierarchy::enumerate_witnesses(
        tas, 2, hierarchy::WitnessKind::kDiscerning, 4);
    std::printf("test&set 2-discerning witnesses (%llu total):\n",
                static_cast<unsigned long long>(e.total_found));
    for (const auto& w : e.witnesses) {
      std::printf("  %s\n", w.describe(tas).c_str());
    }
  }
  {
    const spec::ObjectType cas = spec::make_cas(3);
    const auto e = hierarchy::enumerate_witnesses(
        cas, 3, hierarchy::WitnessKind::kRecordingNonhiding, 2);
    std::printf("cas3 non-hiding 3-recording witnesses (%llu total), e.g.:\n",
                static_cast<unsigned long long>(e.total_found));
    for (const auto& w : e.witnesses) {
      std::printf("  %s\n", w.describe(cas).c_str());
    }
  }

  // Figure 3: T_{5,2} in all three formats.
  const spec::ObjectType t52 = spec::make_tnn(5, 2);
  std::printf("\n==== Figure 3: T_{5,2} ====\n%s", t52.describe().c_str());
  std::printf("\n.type interchange format:\n%s",
              spec::serialize_type(t52).c_str());
  std::printf("\nGraphviz (render with `dot -Tpng`):\n%s",
              t52.to_dot().c_str());

  // The searched X_4 (cons 4, rcons 2).
  const spec::ObjectType x4 = spec::make_xn(4);
  std::printf("\n==== X_4 (searched; cons 4, rcons 2) ====\n%s",
              spec::serialize_type(x4).c_str());
  return 0;
}
