// Experiment E5 — the consensus / recoverable-consensus gap of T_{n,n'}
// (Section 4, Lemmas 15 and 16), demonstrated end to end:
//
//   * the one-shot protocol solves WAIT-FREE consensus for n processes,
//   * the op_R-based protocol solves RECOVERABLE consensus for n'
//     processes under arbitrary individual crash-recovery,
//   * with n'+1 processes the recoverable protocol fails, and the model
//     checker prints the exact schedule: the (n'+1)-th operation pushes the
//     counter past n', after which a recovering process's op_R "breaks" the
//     object and the bot arm decides 0 against the evidence.
#include <cstdio>

#include "algo/tnn_protocols.hpp"
#include "exec/execute.hpp"
#include "valency/model_checker.hpp"

namespace {

void show(int n, int np) {
  using namespace rcons;
  std::printf("==== T_{%d,%d} ====\n", n, np);

  // Wait-free consensus among n processes (crash-free).
  {
    algo::TnnWaitFreeConsensus protocol(n, np);
    valency::SafetyOptions crash_free;
    crash_free.crash_mode = valency::CrashMode::kNone;
    const auto r = valency::check_safety_all_inputs(protocol, crash_free);
    std::printf("wait-free protocol, %d processes, crash-free: %s "
                "(%zu states explored)\n",
                n, r.ok() ? "SAFE" : "VIOLATION", r.states_visited);
  }

  // Recoverable consensus among n' processes (full individual crashes).
  {
    algo::TnnRecoverableConsensus protocol(n, np, np);
    const auto r = valency::check_safety_all_inputs(protocol);
    const auto live = valency::check_recoverable_wait_freedom(
        protocol, valency::all_binary_inputs(np).front());
    std::printf("recoverable protocol, %d processes, crashes on: %s, "
                "recoverable wait-free: %s\n",
                np, r.ok() ? "SAFE" : "VIOLATION",
                live.wait_free ? "yes" : "NO");
  }

  // One process too many: Lemma 16's bound is tight for this algorithm.
  {
    algo::TnnRecoverableConsensus protocol(n, np, np + 1);
    const auto r = valency::check_safety_all_inputs(protocol);
    std::printf("recoverable protocol, %d processes (one too many): %s\n",
                np + 1, r.ok() ? "SAFE (unexpected!)" : "VIOLATION");
    if (!r.ok()) {
      std::printf("  %s\n  schedule: %s\n", r.violation.c_str(),
                  exec::schedule_to_string(*r.counterexample).c_str());
      // Replay against the inputs that expose it (the checker merges over
      // inputs; find one that reproduces).
      for (const auto& inputs :
           valency::all_binary_inputs(protocol.process_count())) {
        const auto replay = exec::run_schedule(
            protocol, exec::Config::initial(protocol, inputs),
            *r.counterexample);
        unsigned valid = 0;
        for (int v : inputs) valid |= 1u << v;
        const bool broken = replay.log.agreement_violated() ||
                            (replay.log.output_0 && !(valid & 1u)) ||
                            (replay.log.output_1 && !(valid & 2u));
        if (broken) {
          std::printf("  replay with inputs");
          for (int v : inputs) std::printf(" %d", v);
          std::printf(":\n%s",
                      exec::render_execution(protocol, replay).c_str());
          break;
        }
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  show(3, 1);
  show(4, 2);
  show(5, 2);
  return 0;
}
