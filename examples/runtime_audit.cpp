// Experiment E7 companion — live threaded runs with crash injection and a
// linearizability spot-check of the object layer.
//
// Usage: runtime_audit [rounds] [crash_prob]
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "runtime/history.hpp"
#include "runtime/live_object.hpp"
#include "runtime/live_run.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcons;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 2000;
  const double crash_prob = argc > 2 ? std::atof(argv[2]) : 0.25;

  runtime::LiveRunOptions options;
  options.rounds = rounds;
  options.crash_prob = crash_prob;
  options.seed = 0xfeed;

  struct Row {
    const char* name;
    runtime::LiveRunResult result;
  };
  algo::CasConsensus cas3(3);
  algo::TnnRecoverableConsensus tnn(5, 2, 2);
  algo::RecordingConsensus recording(spec::make_cas(3), 3);
  algo::TasRacingConsensus racing;
  const Row rows[] = {
      {"cas_consensus(3)", runtime::run_live_audit(cas3, options)},
      {"tnn_recoverable(5,2)", runtime::run_live_audit(tnn, options)},
      {"recording_consensus(cas3,3)",
       runtime::run_live_audit(recording, options)},
      {"tas_racing (broken)", runtime::run_live_audit(racing, options)},
  };

  Table table({"protocol", "rounds", "crashes", "steps", "agr viol",
               "val viol", "persists/decision"});
  for (const Row& row : rows) {
    const auto& r = row.result;
    table.add_row(
        {row.name, std::to_string(r.rounds), std::to_string(r.total_crashes),
         std::to_string(r.total_steps),
         std::to_string(r.agreement_violations),
         std::to_string(r.validity_violations),
         r.total_decisions
             ? std::to_string(r.pmem_persists / r.total_decisions)
             : "-"});
  }
  std::printf("live audit: %d rounds, crash_prob %.2f per step\n%s\n", rounds,
              crash_prob, table.render().c_str());
  for (const Row& row : rows) {
    if (!row.result.ok()) {
      std::printf("%s first violation: %s\n", row.name,
                  row.result.first_violation.c_str());
    }
  }

  // Linearizability spot-check of the live object layer under contention.
  const spec::ObjectType tnn_type = spec::make_tnn(5, 2);
  int linearizable = 0;
  const int lin_rounds = 200;
  for (int round = 0; round < lin_rounds; ++round) {
    runtime::PersistentArena arena;
    runtime::LiveObject obj(tnn_type, *tnn_type.find_value("s"), arena);
    runtime::HistoryRecorder recorder;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const spec::OpId ops[3] = {*tnn_type.find_op("op_0"),
                                   *tnn_type.find_op("op_1"),
                                   *tnn_type.find_op("op_R")};
        for (int i = 0; i < 3; ++i) {
          obj.apply_recorded(ops[(t * 2 + i) % 3], t, recorder);
        }
      });
    }
    for (auto& th : threads) th.join();
    if (runtime::is_linearizable(tnn_type, *tnn_type.find_value("s"),
                                 recorder.take())) {
      ++linearizable;
    }
  }
  std::printf("linearizability: %d/%d contended T_{5,2} histories "
              "linearizable\n",
              linearizable, lin_rounds);
  return linearizable == lin_rounds ? 0 : 1;
}
