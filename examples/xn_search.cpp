// X_n hunt: randomized search for readable types whose consensus number
// (discerning level) exceeds their recoverable consensus number (recording
// level) — the shape of DFFR's X_n, which the paper under reproduction
// uses but does not define. Every profile printed here is verified by the
// exhaustive checkers; a reported gap-g machine IS a readable type with
// cons = disc-level and rcons = rec-level (Ruppert + DFFR Thm 8 + Ovens
// Thm 13), so any gap >= 2 hit reproduces the X_n phenomenon outright.
//
// Usage: xn_search [restarts] [mutations] [seed] [values] [ops]
#include <cstdio>
#include <cstdlib>

#include "hierarchy/search.hpp"

int main(int argc, char** argv) {
  rcons::hierarchy::MachineSearchOptions options;
  options.restarts = argc > 1 ? std::atoi(argv[1]) : 30;
  options.mutations_per_restart = argc > 2 ? std::atoi(argv[2]) : 300;
  options.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
  options.value_count = argc > 4 ? std::atoi(argv[4]) : 8;
  options.op_count = argc > 5 ? std::atoi(argv[5]) : 2;
  options.max_n = 5;

  std::printf(
      "searching: %d restarts x %d mutations, %d values, %d team ops + "
      "read, seed %llu\n",
      options.restarts, options.mutations_per_restart, options.value_count,
      options.op_count, static_cast<unsigned long long>(options.seed));

  const rcons::hierarchy::MachineSearchResult result =
      rcons::hierarchy::search_gap_machines(options);

  std::printf("machines evaluated: %llu\n",
              static_cast<unsigned long long>(result.machines_evaluated));
  std::printf("best gap: %d  (discerning %s, recording %s)\n",
              result.best_gap,
              result.best_profile.discerning.to_string().c_str(),
              result.best_profile.recording.to_string().c_str());
  if (result.best_gap >= 1) {
    std::printf("\nbest machine:\n%s\n", result.best_type.describe().c_str());
  }
  return 0;
}
