// Quickstart: the library in one tour.
//
//   1. Build a type from the catalog and print its state machine.
//   2. Compute its consensus number and recoverable consensus number.
//   3. Model-check a consensus protocol under crash-recovery.
//   4. Run the same protocol live on threads with crash injection.
//
// The protagonist is test&set: consensus number 2 (Herlihy) but
// recoverable consensus number 1 (Golab) — the smallest example of the
// paper's theme that crash-recovery strictly weakens objects.
#include <cstdio>

#include "algo/cas_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "exec/execute.hpp"
#include "hierarchy/consensus_number.hpp"
#include "runtime/live_run.hpp"
#include "spec/catalog.hpp"
#include "valency/model_checker.hpp"

int main() {
  using namespace rcons;

  // 1. The type, as an explicit deterministic state machine.
  const spec::ObjectType tas = spec::make_test_and_set();
  std::printf("== The test&set type ==\n%s\n", tas.describe().c_str());

  // 2. Its place in the two hierarchies, computed (not assumed).
  const hierarchy::TypeProfile profile = hierarchy::compute_profile(tas, 4);
  std::printf("consensus number (n-discerning level):            %s\n",
              profile.consensus_number().to_string().c_str());
  std::printf("recoverable consensus number (n-recording level): %s\n\n",
              profile.recoverable_consensus_number().to_string().c_str());

  // 3. The classic 2-process T&S consensus protocol is wait-free correct...
  algo::TasRacingConsensus racing;
  valency::SafetyOptions crash_free;
  crash_free.allow_crashes = false;
  const valency::SafetyResult wf =
      valency::check_safety_all_inputs(racing, crash_free);
  std::printf("tas_racing, crash-free model check: %s (%zu states)\n",
              wf.ok() ? "SAFE" : "VIOLATION", wf.states_visited);

  // ...but individual crash-recovery breaks it, and the checker finds the
  // exact schedule.
  const valency::SafetyResult rec = valency::check_safety(racing, {0, 1});
  std::printf("tas_racing, with crash-recovery:    %s\n",
              rec.ok() ? "SAFE" : "VIOLATION");
  if (!rec.ok()) {
    std::printf("  %s\n  counterexample: %s\n", rec.violation.c_str(),
                exec::schedule_to_string(*rec.counterexample).c_str());
    const exec::ExecutionResult trace = exec::run_schedule(
        racing, exec::Config::initial(racing, {0, 1}), *rec.counterexample);
    std::printf("%s\n", exec::render_execution(racing, trace).c_str());
  }

  // Compare: CAS-based consensus survives the same treatment.
  algo::CasConsensus cas(2);
  const valency::SafetyResult cas_safe = valency::check_safety_all_inputs(cas);
  std::printf("cas_consensus, with crash-recovery: %s (%zu states)\n\n",
              cas_safe.ok() ? "SAFE" : "VIOLATION", cas_safe.states_visited);

  // 4. Live run: 2 threads, 30%% crash probability before every step.
  runtime::LiveRunOptions live;
  live.crash_prob = 0.3;
  live.rounds = 2000;
  live.seed = 42;
  const runtime::LiveRunResult racing_live = runtime::run_live_audit(racing, live);
  const runtime::LiveRunResult cas_live = runtime::run_live_audit(cas, live);
  std::printf("live audit (%d rounds, crash_prob=%.2f):\n", live.rounds,
              live.crash_prob);
  std::printf("  tas_racing:    %d agreement violations, %llu crashes\n",
              racing_live.agreement_violations,
              static_cast<unsigned long long>(racing_live.total_crashes));
  std::printf("  cas_consensus: %d agreement violations, %llu crashes\n",
              cas_live.agreement_violations,
              static_cast<unsigned long long>(cas_live.total_crashes));
  return 0;
}
