// Tests for the valency machinery of Section 3 (experiment E3): budgeted
// valence w.r.t. E_z*, critical executions, teams (Lemma 7), the common
// poised object (Lemma 9), and the n-recording / v-hiding configuration
// classification (Observation 11) feeding Theorem 13.
#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "hierarchy/recording.hpp"
#include "spec/catalog.hpp"
#include "valency/critical.hpp"
#include "valency/model_checker.hpp"
#include "valency/valence.hpp"

namespace rcons::valency {
namespace {

TEST(Valence, MixedInputsAreBivalent) {
  // Observation 1: an initial configuration with both inputs present is
  // bivalent.
  algo::CasConsensus protocol(2);
  ValencyAnalyzer analyzer(protocol, /*z=*/1);
  const BudgetState s =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 1}));
  EXPECT_EQ(analyzer.valence(s), Valence::kBivalent);
}

TEST(Valence, UnanimousInputsAreUnivalent) {
  algo::CasConsensus protocol(2);
  ValencyAnalyzer analyzer(protocol, 1);
  const BudgetState s0 =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 0}));
  EXPECT_EQ(analyzer.valence(s0), Valence::kUnivalent0);
  const BudgetState s1 =
      analyzer.initial_state(exec::Config::initial(protocol, {1, 1}));
  EXPECT_EQ(analyzer.valence(s1), Valence::kUnivalent1);
}

TEST(Valence, OneCasStepDecidesTheValency) {
  algo::CasConsensus protocol(2);
  ValencyAnalyzer analyzer(protocol, 1);
  BudgetState s =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 1}));
  const BudgetState after_p0 = analyzer.apply(s, exec::Event::step(0));
  EXPECT_EQ(analyzer.valence(after_p0), Valence::kUnivalent0);
  const BudgetState after_p1 = analyzer.apply(s, exec::Event::step(1));
  EXPECT_EQ(analyzer.valence(after_p1), Valence::kUnivalent1);
}

TEST(Valence, PastDecisionsCountTowardValency) {
  // "p_i has decided v" persists along the execution even if p_i crashes.
  algo::CasConsensus protocol(2);
  ValencyAnalyzer analyzer(protocol, 1);
  BudgetState s =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 1}));
  s = analyzer.apply(s, exec::Event::step(0));  // p0 decides 0
  EXPECT_EQ(analyzer.valence(s, kDecision0), Valence::kUnivalent0);
}

TEST(Valence, CrashBudgetMechanics) {
  algo::CasConsensus protocol(3);
  ValencyAnalyzer analyzer(protocol, /*z=*/1, /*credit_cap=*/4);
  BudgetState s =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 1, 1}));
  // Fresh budgets: nobody can crash (p0 never can).
  EXPECT_FALSE(analyzer.crash_allowed(s, 0));
  EXPECT_FALSE(analyzer.crash_allowed(s, 1));
  EXPECT_FALSE(analyzer.crash_allowed(s, 2));
  // A step by p0 funds p1 and p2 (saturated at the cap).
  s = analyzer.apply(s, exec::Event::step(0));
  EXPECT_FALSE(analyzer.crash_allowed(s, 0));
  EXPECT_TRUE(analyzer.crash_allowed(s, 1));
  EXPECT_TRUE(analyzer.crash_allowed(s, 2));
  EXPECT_EQ(s.credits[1], 3);  // one step grants z*n = 3 credits (cap 4)
  // Crashing consumes a credit.
  const BudgetState after = analyzer.apply(s, exec::Event::crash(2));
  EXPECT_EQ(after.credits[2], s.credits[2] - 1);
}

TEST(Valence, StepsByHighIdsDoNotFundLowIds) {
  algo::CasConsensus protocol(3);
  ValencyAnalyzer analyzer(protocol, 1);
  BudgetState s =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 1, 1}));
  s = analyzer.apply(s, exec::Event::step(2));
  EXPECT_FALSE(analyzer.crash_allowed(s, 1));
  EXPECT_FALSE(analyzer.crash_allowed(s, 2));
}

TEST(Critical, CasConsensusIsCriticalImmediately) {
  // Every first step of cas_consensus applies a CAS, so the empty
  // execution is already critical; the teams split by input and the poised
  // object is the CAS cell.
  algo::CasConsensus protocol(2);
  const auto report = find_critical_execution(protocol, {0, 1});
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->schedule.empty());
  EXPECT_EQ(report->team_of[0], 0);
  EXPECT_EQ(report->team_of[1], 1);
  EXPECT_TRUE(report->same_object);
  EXPECT_EQ(report->object, 0);
}

TEST(Critical, BothTeamsNonempty) {
  // Lemma 7 at work on a protocol with a real pre-critical phase.
  algo::TnnRecoverableConsensus protocol(4, 2, 2);
  const auto report = find_critical_execution(protocol, {0, 1});
  ASSERT_TRUE(report.has_value());
  bool team0 = false;
  bool team1 = false;
  for (int t : report->team_of) {
    if (t == 0) team0 = true;
    if (t == 1) team1 = true;
  }
  EXPECT_TRUE(team0);
  EXPECT_TRUE(team1);
}

TEST(Critical, AllProcessesPoisedOnTheSameObject) {
  // Lemma 9 on three protocols.
  {
    algo::CasConsensus protocol(3);
    const auto r = find_critical_execution(protocol, {0, 1, 1});
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->same_object);
  }
  {
    algo::TnnRecoverableConsensus protocol(5, 2, 2);
    const auto r = find_critical_execution(protocol, {0, 1});
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->same_object);
  }
  {
    const spec::ObjectType cas = spec::make_cas(3);
    algo::RecordingConsensus protocol(cas, 2);
    const auto r = find_critical_execution(protocol, {1, 0});
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->same_object);
  }
}

TEST(Critical, ClassificationIsNRecordingAndMatchesChecker) {
  // Theorem 13's punchline: the critical configuration of a correct
  // recoverable algorithm is n-recording, and therefore the poised
  // object's TYPE is n-recording — which the standalone checker confirms.
  algo::CasConsensus protocol(2);
  const auto report = find_critical_execution(protocol, {0, 1});
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->same_object);
  EXPECT_TRUE(report->config_class.disjoint);
  EXPECT_TRUE(report->config_class.recording);
  const spec::ObjectType& type = protocol.object_type(report->object);
  EXPECT_TRUE(hierarchy::check_recording(type, 2).holds)
      << "checker disagrees with the critical-configuration classification";
}

TEST(Critical, RecordingConsensusCriticalConfigIsRecording) {
  const spec::ObjectType cas = spec::make_cas(3);
  algo::RecordingConsensus protocol(cas, 2);
  const auto report = find_critical_execution(protocol, {0, 1});
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->same_object);
  EXPECT_TRUE(report->config_class.recording);
}

TEST(Critical, TnnRecoverableCriticalConfigIsRecording) {
  algo::TnnRecoverableConsensus protocol(4, 2, 2);
  const auto report = find_critical_execution(protocol, {0, 1});
  ASSERT_TRUE(report.has_value());
  ASSERT_TRUE(report->same_object);
  EXPECT_TRUE(report->config_class.disjoint);
  EXPECT_TRUE(report->config_class.recording);
}

TEST(Critical, RenderMentionsTeamsAndObject) {
  algo::CasConsensus protocol(2);
  const auto report = find_critical_execution(protocol, {0, 1});
  ASSERT_TRUE(report.has_value());
  const std::string text = report->render(protocol);
  EXPECT_NE(text.find("teams at C-alpha"), std::string::npos);
  EXPECT_NE(text.find("n-RECORDING"), std::string::npos);
}

TEST(Critical, UnanimousInputsHaveNoCriticalExecution) {
  algo::CasConsensus protocol(2);
  EXPECT_FALSE(find_critical_execution(protocol, {1, 1}).has_value());
}

TEST(Classify, HandBuiltHidingConfiguration) {
  // A 2-process configuration poised on a swap register where one process
  // swaps the initial value back in: u is in that team's U-set, so the
  // configuration is hiding for it (and still "recording" because the
  // opposite team is a singleton — the |T_xbar| = 1 escape hatch).
  algo::CasConsensus dummy(2);  // only used as an object-table carrier
  (void)dummy;
  const spec::ObjectType swap = spec::make_swap(2);

  // Build a tiny fake protocol-free classification call: use the generic
  // entry point with explicit teams/ops over a real config.
  class SwapHolder : public algo::ProtocolBase {
   public:
    SwapHolder() : ProtocolBase("swap_holder", 2) {
      add_object(spec::make_swap(2), "r0");
    }
    exec::Action poised(exec::ProcessId,
                        const exec::LocalState&) const override {
      return exec::Action::invoke(0, 0);
    }
    exec::LocalState advance(exec::ProcessId, const exec::LocalState& s,
                             spec::ResponseId) const override {
      return s;
    }
  };
  SwapHolder holder;
  const auto config = exec::Config::initial(holder, {0, 1});
  const spec::OpId swap0 = *swap.find_op("swap_0");
  const spec::OpId swap1 = *swap.find_op("swap_1");
  // p0 (team 0) swaps in r0 = u: hiding for team 0. p1 (team 1) swaps in
  // r1, but the schedule (p1, p0) also restores u — BOTH teams can hide,
  // and the U-sets intersect, so the configuration is not recording.
  const ConfigClass c = classify_poised_configuration(
      holder, config, 0, {0, 1}, {swap0, swap1});
  ASSERT_TRUE(c.hiding_v.has_value());
  EXPECT_FALSE(c.disjoint);
  EXPECT_FALSE(c.recording);
  // U_0 = {r0, r1} (p0 alone -> r0; p0 then p1 -> r1) = U_1.
  EXPECT_EQ(c.u0.size(), 2u);
  EXPECT_EQ(c.u1.size(), 2u);
}

TEST(Analyzer, MemoizationKicksIn) {
  algo::CasConsensus protocol(2);
  ValencyAnalyzer analyzer(protocol, 1);
  const BudgetState s =
      analyzer.initial_state(exec::Config::initial(protocol, {0, 1}));
  analyzer.reachable_decisions(s);
  const auto explored_once = analyzer.states_explored();
  analyzer.reachable_decisions(s);
  EXPECT_EQ(analyzer.states_explored(), explored_once) << "memo miss";
  EXPECT_FALSE(analyzer.truncated());
}

}  // namespace
}  // namespace rcons::valency
