// The AOT stepper soundness suite (DESIGN.md §14).
//
// Three layers, matching the backend's soundness argument:
//   1. Registry: every golden-corpus type (catalog + data/*.type) resolves
//      to a compiled stepper that packed_matches_type proves equal to
//      ObjectType::apply, and matching is structural (names don't matter).
//   2. Emitter: emission is a deterministic function of the input set, the
//      checked-in generated files byte-match a fresh emission (the same
//      gate CI runs via rcons_codegen --check), and lint-rejected file
//      specs produce a structured error instead of generated-but-wrong
//      code.
//   3. Engines: --backend=aot reproduces the interpreter field-for-field —
//      golden protocols across crash modes, truncated runs, the parallel
//      engine, profile scans, and a 200-seed random-protocol differential
//      (a data-race hunt under the TSan CI configuration).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "algo/protocol_base.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "analysis/rules.hpp"
#include "codegen/emit.hpp"
#include "codegen/registry.hpp"
#include "exec/backend.hpp"
#include "exec/event.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "reduction/verdict_cache.hpp"
#include "serve/commands.hpp"
#include "spec/builder.hpp"
#include "spec/catalog.hpp"
#include "spec/packed_delta.hpp"
#include "spec/serialize.hpp"
#include "util/rng.hpp"
#include "valency/model_checker.hpp"

namespace rcons {
namespace {

std::string source_path(const std::string& relative) {
  return std::string(RCONS_SOURCE_DIR) + "/" + relative;
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// data/*.type, immediate children only (data/broken/ must stay out of the
/// golden corpus — the tool's directory expansion has the same contract),
/// sorted by path like the tool sorts them.
std::vector<std::string> golden_type_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(source_path("data"))) {
    if (entry.path().extension() == ".type") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty());
  return files;
}

spec::ObjectType parse_file_or_die(const std::string& path) {
  const spec::ParseResult parsed = spec::parse_type(read_file_or_die(path));
  EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.error;
  return *parsed.type;
}

/// The same machine under fresh names: values/ops/responses re-declared in
/// id order (so ids — and therefore delta entries and the fingerprint —
/// are untouched) but every label replaced.
spec::ObjectType relabel(const spec::ObjectType& type) {
  spec::TypeBuilder b(type.name() + "_relabeled");
  for (spec::ValueId v = 0; v < type.value_count(); ++v) {
    b.value("v" + std::to_string(v));
  }
  for (spec::OpId op = 0; op < type.op_count(); ++op) {
    b.op("o" + std::to_string(op));
  }
  for (spec::ResponseId r = 0; r < type.response_count(); ++r) {
    b.response("r" + std::to_string(r));
  }
  for (spec::ValueId v = 0; v < type.value_count(); ++v) {
    for (spec::OpId op = 0; op < type.op_count(); ++op) {
      const spec::Effect& e = type.apply(v, op);
      b.on("v" + std::to_string(v), "o" + std::to_string(op))
          .then("v" + std::to_string(e.next_value))
          .returns("r" + std::to_string(e.response));
    }
  }
  return b.build();
}

/// The exact input set `rcons_codegen --out=src/codegen/generated
/// --builtin data` emits from: catalog shapes (no text), then data/*.type
/// (stem name, raw text).
std::vector<codegen::EmitInput> golden_emit_inputs() {
  std::vector<codegen::EmitInput> inputs;
  for (const auto& [name, make] : serve::type_catalog()) {
    codegen::EmitInput input;
    input.name = name;
    input.type = make();
    inputs.push_back(std::move(input));
  }
  for (const std::string& path : golden_type_files()) {
    codegen::EmitInput input;
    input.name = std::filesystem::path(path).stem().string();
    input.text = read_file_or_die(path);
    const spec::ParseResult parsed = spec::parse_type(input.text);
    EXPECT_TRUE(parsed.ok()) << path;
    if (parsed.ok()) input.type = *parsed.type;
    inputs.push_back(std::move(input));
  }
  return inputs;
}

// ---------------------------------------------------------------------------
// Layer 1: the registry.

TEST(CodegenRegistry, EveryCatalogTypeHasAVerifiedCompiledStepper) {
  EXPECT_GE(codegen::compiled_count(), 20u);
  for (const auto& [name, make] : serve::type_catalog()) {
    SCOPED_TRACE(name);
    const spec::ObjectType type = make();
    const spec::PackedDelta* packed = codegen::find_compiled(type);
    ASSERT_NE(packed, nullptr);
    EXPECT_TRUE(spec::packed_matches_type(*packed, type));
  }
}

TEST(CodegenRegistry, EveryGoldenTypeFileHasAVerifiedCompiledStepper) {
  for (const std::string& path : golden_type_files()) {
    SCOPED_TRACE(path);
    const spec::ObjectType type = parse_file_or_die(path);
    const spec::PackedDelta* packed = codegen::find_compiled(type);
    ASSERT_NE(packed, nullptr);
    EXPECT_TRUE(spec::packed_matches_type(*packed, type));
  }
}

// Matching is structural: a renamed-but-identical machine carries the same
// fingerprint and still hits the table compiled from the original names.
TEST(CodegenRegistry, LookupIgnoresNames) {
  for (const auto& [name, make] : serve::type_catalog()) {
    SCOPED_TRACE(name);
    const spec::ObjectType original = make();
    const spec::ObjectType renamed = relabel(original);
    EXPECT_EQ(spec::delta_fingerprint(original),
              spec::delta_fingerprint(renamed));
    const spec::PackedDelta* packed = codegen::find_compiled(renamed);
    ASSERT_NE(packed, nullptr);
    EXPECT_TRUE(spec::packed_matches_type(*packed, renamed));
  }
}

// A machine outside the compiled corpus misses the registry but packed_for
// still serves a verified runtime re-encoding.
TEST(CodegenRegistry, MissRebuildsAVerifiedTableAtRuntime) {
  spec::TypeBuilder b("not_in_corpus");
  for (int v = 0; v < 6; ++v) b.value("q" + std::to_string(v));
  b.op("bump");
  for (int r = 0; r < 6; ++r) b.response("b" + std::to_string(r));
  for (int v = 0; v < 6; ++v) {
    // An irregular permutation no catalog machine uses.
    const int next = (v * v + 1) % 6;
    b.on("q" + std::to_string(v), "bump")
        .then("q" + std::to_string(next))
        .returns("b" + std::to_string(v));
  }
  b.make_read_op("peek");
  const spec::ObjectType type = b.build();

  EXPECT_EQ(codegen::find_compiled(type), nullptr);
  std::unique_ptr<spec::PackedDelta> storage;
  const spec::PackedDelta* packed = codegen::packed_for(type, &storage);
  ASSERT_NE(packed, nullptr);
  EXPECT_NE(storage, nullptr);  // runtime rebuild, not a compiled hit
  EXPECT_TRUE(spec::packed_matches_type(*packed, type));
}

TEST(CodegenRegistry, CompiledHitsSkipTheRuntimeRebuild) {
  std::unique_ptr<spec::PackedDelta> storage;
  const spec::PackedDelta* packed =
      codegen::packed_for(spec::make_cas(3), &storage);
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(storage, nullptr);  // served from the compiled corpus
  EXPECT_TRUE(spec::packed_matches_type(*packed, spec::make_cas(3)));
}

// ---------------------------------------------------------------------------
// Layer 2: the emitter.

TEST(CodegenEmit, EmissionIsDeterministic) {
  const std::vector<codegen::EmitInput> inputs = golden_emit_inputs();
  const codegen::EmitResult first = codegen::emit_steppers(inputs);
  const codegen::EmitResult second = codegen::emit_steppers(inputs);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.header, second.header);
  EXPECT_EQ(first.source, second.source);
  EXPECT_EQ(first.emitted, second.emitted);
}

// The in-tree drift gate: the checked-in generated files must byte-match a
// fresh emission of the golden corpus. CI runs the same comparison via
// `rcons_codegen --out=src/codegen/generated --builtin data --check`.
TEST(CodegenEmit, CheckedInGeneratedFilesMatchAFreshEmission) {
  const codegen::EmitResult fresh =
      codegen::emit_steppers(golden_emit_inputs());
  ASSERT_TRUE(fresh.ok) << fresh.error;
  EXPECT_GE(fresh.emitted.size(), 20u);
  EXPECT_EQ(fresh.header,
            read_file_or_die(source_path(
                "src/codegen/generated/steppers_gen.hpp")))
      << "stale generated header — regenerate with "
         "rcons_codegen --out=src/codegen/generated --builtin data";
  EXPECT_EQ(fresh.source,
            read_file_or_die(source_path(
                "src/codegen/generated/steppers_gen.cpp")))
      << "stale generated source — regenerate with "
         "rcons_codegen --out=src/codegen/generated --builtin data";
}

// A lint-rejected file spec fails the whole emission with the findings as
// structured evidence — never generated-but-wrong code.
TEST(CodegenEmit, RejectsLintFailingFileSpecWithStructuredFindings) {
  codegen::EmitInput input;
  input.name = "ts006_duplicate_row";
  input.text =
      read_file_or_die(source_path("data/broken/ts006_duplicate_row.type"));
  const spec::ParseResult parsed = spec::parse_type(input.text);
  ASSERT_TRUE(parsed.ok());  // the parser keeps the last row; the lint sees it
  input.type = *parsed.type;

  const codegen::EmitResult result = codegen::emit_steppers({input});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("lint rejected 'ts006_duplicate_row'"),
            std::string::npos)
      << result.error;
  EXPECT_TRUE(result.header.empty());
  EXPECT_TRUE(result.source.empty());
  EXPECT_TRUE(result.emitted.empty());
  bool saw_ts006 = false;
  for (const analysis::Diagnostic& d : result.findings.diagnostics()) {
    if (d.rule == analysis::kRuleNondeterministicRow &&
        d.severity == analysis::Severity::kError) {
      saw_ts006 = true;
    }
  }
  EXPECT_TRUE(saw_ts006) << result.findings.render_text();
}

// Built-in catalog shapes surface findings without gating: the catalog
// deliberately ships regime-demonstrating machines (peek_queue2 fails
// TS003 by design) and their steppers are still sound by
// packed_matches_type.
TEST(CodegenEmit, BuiltinFindingsSurfaceButDoNotGate) {
  codegen::EmitInput input;
  input.name = "peek_queue2";
  input.type = spec::make_peek_queue(2);
  const codegen::EmitResult result = codegen::emit_steppers({input});
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.findings.error_count(), 0);
  ASSERT_EQ(result.emitted.size(), 1u);
  EXPECT_EQ(result.emitted[0], "peek_queue2");
}

// ---------------------------------------------------------------------------
// Layer 3: the engines. Same comparators as the parallel differentials —
// every result field, including counterexample schedules, must match.

void ExpectSameSafety(const valency::SafetyResult& interp,
                      const valency::SafetyResult& aot) {
  ASSERT_EQ(interp.explored_fully, aot.explored_fully);
  ASSERT_EQ(interp.agreement_ok, aot.agreement_ok);
  ASSERT_EQ(interp.validity_ok, aot.validity_ok);
  ASSERT_EQ(interp.states_visited, aot.states_visited);
  ASSERT_EQ(interp.configs_visited, aot.configs_visited);
  ASSERT_EQ(interp.violation, aot.violation);
  ASSERT_EQ(interp.counterexample.has_value(), aot.counterexample.has_value());
  if (interp.counterexample.has_value()) {
    ASSERT_EQ(exec::schedule_to_string(*interp.counterexample),
              exec::schedule_to_string(*aot.counterexample));
  }
}

void ExpectSameLiveness(const valency::LivenessResult& interp,
                        const valency::LivenessResult& aot) {
  ASSERT_EQ(interp.explored_fully, aot.explored_fully);
  ASSERT_EQ(interp.wait_free, aot.wait_free);
  ASSERT_EQ(interp.configs_probed, aot.configs_probed);
  ASSERT_EQ(interp.stuck_pid, aot.stuck_pid);
  ASSERT_EQ(interp.reaching_schedule.has_value(),
            aot.reaching_schedule.has_value());
  if (interp.reaching_schedule.has_value()) {
    ASSERT_EQ(exec::schedule_to_string(*interp.reaching_schedule),
              exec::schedule_to_string(*aot.reaching_schedule));
  }
}

void ExpectBackendsAgree(const exec::Protocol& protocol,
                         const std::vector<int>& inputs,
                         valency::SafetyOptions safety) {
  safety.backend = exec::Backend::kInterp;
  const valency::SafetyResult interp =
      valency::check_safety(protocol, inputs, safety);
  safety.backend = exec::Backend::kAot;
  ExpectSameSafety(interp, valency::check_safety(protocol, inputs, safety));
}

TEST(AotBackend, GoldenProtocolsMatchInterpAcrossCrashModes) {
  const algo::CasConsensus cas2(2);
  const algo::CasConsensus cas3(3);
  const algo::TasRacingConsensus tas;
  const algo::RecordingConsensus recording(spec::make_cas(3), 2);
  const std::vector<const exec::Protocol*> protocols = {&cas2, &cas3, &tas,
                                                        &recording};
  for (const exec::Protocol* protocol : protocols) {
    SCOPED_TRACE(protocol->name());
    for (const std::vector<int>& inputs :
         valency::all_binary_inputs(protocol->process_count())) {
      for (int mode = 0; mode < 4; ++mode) {
        valency::SafetyOptions safety;
        safety.crash_mode = static_cast<valency::CrashMode>(mode);
        ExpectBackendsAgree(*protocol, inputs, safety);
      }
      valency::LivenessOptions liveness;
      liveness.solo_step_bound = 64;
      liveness.backend = exec::Backend::kInterp;
      const valency::LivenessResult interp =
          valency::check_recoverable_wait_freedom(*protocol, inputs, liveness);
      liveness.backend = exec::Backend::kAot;
      ExpectSameLiveness(interp, valency::check_recoverable_wait_freedom(
                                     *protocol, inputs, liveness));
    }
  }
}

TEST(AotBackend, SymmetryReductionMatchesInterp) {
  const algo::CasConsensus cas3(3);
  for (const std::vector<int>& inputs : valency::all_binary_inputs(3)) {
    valency::SafetyOptions safety;
    safety.crash_mode = valency::CrashMode::kBoth;
    safety.reduce_symmetry = true;
    ExpectBackendsAgree(cas3, inputs, safety);
  }
}

// Truncated runs must truncate identically: same explored_fully flag, same
// partial state counts.
TEST(AotBackend, TruncationParity) {
  const algo::CasConsensus cas3(3);
  for (const std::size_t max_states : {std::size_t{1}, std::size_t{40},
                                       std::size_t{400}}) {
    SCOPED_TRACE(max_states);
    valency::SafetyOptions safety;
    safety.crash_mode = valency::CrashMode::kBoth;
    safety.max_states = max_states;
    ExpectBackendsAgree(cas3, {0, 1, 1}, safety);
  }
}

TEST(AotBackend, ParallelAotMatchesSerialInterp) {
  const algo::TnnRecoverableConsensus protocol(3, 2, 2);
  valency::SafetyOptions interp_options;
  interp_options.crash_mode = valency::CrashMode::kBoth;
  const valency::SafetyResult interp =
      valency::check_safety(protocol, {0, 1}, interp_options);
  for (const int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    valency::SafetyOptions aot_options = interp_options;
    aot_options.backend = exec::Backend::kAot;
    aot_options.threads = threads;
    ExpectSameSafety(interp,
                     valency::check_safety(protocol, {0, 1}, aot_options));
  }
}

// Profile scans (what `rcons_cli profile --backend=aot` runs) produce the
// same levels.
TEST(AotBackend, ProfileLevelsMatchInterp) {
  const struct {
    spec::ObjectType type;
    int max_n;
  } cases[] = {
      {spec::make_test_and_set(), 4},
      {spec::make_cas(3), 3},
      {spec::make_sticky_bit(), 3},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.type.name());
    hierarchy::ProfileOptions options;
    options.backend = exec::Backend::kInterp;
    const hierarchy::TypeProfile interp =
        hierarchy::compute_profile(c.type, c.max_n, options);
    options.backend = exec::Backend::kAot;
    const hierarchy::TypeProfile aot =
        hierarchy::compute_profile(c.type, c.max_n, options);
    EXPECT_EQ(interp.readable, aot.readable);
    EXPECT_EQ(interp.discerning, aot.discerning);
    EXPECT_EQ(interp.recording, aot.recording);
  }
}

// The cache-warm leg: an interp run populates the verdict cache, an aot
// run reads it back (and vice versa) — backends share cache entries
// because verdicts are bit-identical, so warm levels must equal cold ones
// regardless of which backend warmed the cache.
TEST(AotBackend, WarmVerdictCacheIsBackendAgnostic) {
  const std::string dir = testing::TempDir() + "rcons_codegen_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const reduction::VerdictCache cache(dir);
  const spec::ObjectType type = spec::make_cas(3);

  hierarchy::ProfileOptions cold;
  cold.cache = &cache;
  cold.backend = exec::Backend::kInterp;
  const hierarchy::TypeProfile interp_cold =
      hierarchy::compute_profile(type, 3, cold);

  hierarchy::ProfileOptions warm;
  warm.cache = &cache;
  warm.backend = exec::Backend::kAot;
  const hierarchy::TypeProfile aot_warm =
      hierarchy::compute_profile(type, 3, warm);
  EXPECT_EQ(interp_cold.discerning, aot_warm.discerning);
  EXPECT_EQ(interp_cold.recording, aot_warm.recording);

  // And cold-aot equals both (nothing about the levels depends on which
  // backend computed or cached them).
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const hierarchy::TypeProfile aot_cold =
      hierarchy::compute_profile(type, 3, warm);
  EXPECT_EQ(interp_cold.discerning, aot_cold.discerning);
  EXPECT_EQ(interp_cold.recording, aot_cold.recording);
}

/// Same random-protocol genome as the parallel stress sweep: random
/// readable machines, random per-process programs, optional spin loops and
/// out-of-range decisions — safe runs, violations of each kind, and
/// liveness failures alike.
class RandomProtocol : public algo::ProtocolBase {
 public:
  explicit RandomProtocol(std::uint64_t seed)
      : RandomProtocol(Params::draw(seed)) {}

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    const auto pc = state.words[0];
    if (pc >= params_.steps) {
      const std::int64_t last_response =
          state.words.size() > 2 ? state.words[2] : 0;
      const int decision = static_cast<int>(
          (last_response * params_.decide_mul + state.words[1] +
           params_.decide_add) %
          params_.decide_mod);
      return exec::Action::decided(decision);
    }
    return exec::Action::invoke(
        obj_, params_.op_at[static_cast<std::size_t>(
                  pid * params_.steps + static_cast<int>(pc))]);
  }

  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId response) const override {
    exec::LocalState next = state;
    if (params_.spin_pc >= 0 && state.words[0] == params_.spin_pc &&
        response == params_.spin_response) {
      return next;  // spin: stay at this pc forever
    }
    next.words[0] += 1;
    next.words.resize(3, 0);
    next.words[2] = response;
    return next;
  }

 private:
  struct Params {
    int n = 2;
    int steps = 2;
    spec::ObjectType type;
    std::vector<spec::OpId> op_at;  // [pid * steps + pc]
    std::int64_t decide_mul = 1;
    std::int64_t decide_add = 0;
    std::int64_t decide_mod = 2;
    int spin_pc = -1;  // -1: no spin loop
    spec::ResponseId spin_response = 0;

    static Params draw(std::uint64_t seed) {
      Xoshiro256 rng(seed);
      Params p;
      p.n = 2 + static_cast<int>(rng.below(2));      // 2..3
      p.steps = 1 + static_cast<int>(rng.below(3));  // 1..3
      const int value_count = 3 + static_cast<int>(rng.below(2));
      p.type = hierarchy::random_readable_type(value_count, /*op_count=*/2,
                                               /*response_count=*/3,
                                               rng.next());
      p.op_at.resize(static_cast<std::size_t>(p.n * p.steps));
      for (auto& op : p.op_at) {
        op = static_cast<spec::OpId>(
            rng.below(static_cast<std::uint64_t>(p.type.op_count())));
      }
      p.decide_mul = static_cast<std::int64_t>(1 + rng.below(3));
      p.decide_add = static_cast<std::int64_t>(rng.below(3));
      p.decide_mod = static_cast<std::int64_t>(2 + rng.below(2));  // 2..3
      if (rng.chance(0.3)) {
        p.spin_pc =
            static_cast<int>(rng.below(static_cast<std::uint64_t>(p.steps)));
        p.spin_response = static_cast<spec::ResponseId>(rng.below(
            static_cast<std::uint64_t>(p.type.response_count())));
      }
      return p;
    }
  };

  explicit RandomProtocol(Params params)
      : ProtocolBase("random_protocol", params.n), params_(std::move(params)) {
    obj_ = add_object(params_.type, params_.type.value_name(0));
  }

  Params params_;
  exec::ObjectId obj_ = 0;
};

// Every random machine is OUTSIDE the compiled corpus, so this sweep
// exercises the miss-and-rebuild path end to end; the parallel legs double
// as a data-race hunt under the TSan CI configuration.
TEST(AotBackend, TwoHundredRandomProtocolsMatchInterp) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RandomProtocol protocol(seed);
    std::vector<int> inputs(
        static_cast<std::size_t>(protocol.process_count()), 1);
    inputs[0] = 0;

    valency::SafetyOptions safety;
    safety.crash_mode = static_cast<valency::CrashMode>(seed % 4);
    safety.max_states = (seed % 5 == 0) ? 40 : 50'000;  // truncate some runs
    const valency::SafetyResult safety_interp =
        valency::check_safety(protocol, inputs, safety);
    safety.backend = exec::Backend::kAot;
    ExpectSameSafety(safety_interp,
                     valency::check_safety(protocol, inputs, safety));
    safety.threads = 2 + static_cast<int>(seed % 7);  // parallel + AOT
    ExpectSameSafety(safety_interp,
                     valency::check_safety(protocol, inputs, safety));

    valency::LivenessOptions liveness;
    liveness.solo_step_bound = 64;
    liveness.max_states = (seed % 7 == 0) ? 25 : 50'000;
    const valency::LivenessResult liveness_interp =
        valency::check_recoverable_wait_freedom(protocol, inputs, liveness);
    liveness.backend = exec::Backend::kAot;
    ExpectSameLiveness(liveness_interp, valency::check_recoverable_wait_freedom(
                                            protocol, inputs, liveness));
  }
}

}  // namespace
}  // namespace rcons
