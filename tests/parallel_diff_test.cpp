// The differential suite for the parallel exploration engine (DESIGN.md §7).
//
// Contract under test: for every thread count, the parallel engines return
// results BIT-IDENTICAL to the serial engines — same verdicts, same
// violation strings, same counterexample schedules, same visit statistics,
// same truncation behavior — across the protocol catalog, every crash
// mode, the hierarchy deciders, the level/profile/family computations, and
// the randomized machine search.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "algo/naive_register.hpp"
#include "algo/propose_consensus.hpp"
#include "algo/protocol_base.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "analysis/recovery_audit.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "hierarchy/search.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"
#include "util/assert.hpp"
#include "valency/model_checker.hpp"

namespace rcons::valency {
namespace {

const int kThreadCounts[] = {2, 4, 8};

// ---------------------------------------------------------------------------
// Test-local protocols.

/// Each process performs one register read, then outputs its OWN consensus
/// input — the simplest protocol that can output two distinct non-binary
/// values. With inputs {1, 2} the outputs mask is 0b110: a mask == 0b11
/// agreement check misses it; the popcount >= 2 check must not.
class DecideOwnInput : public algo::ProtocolBase {
 public:
  explicit DecideOwnInput(int n) : ProtocolBase("decide_own_input", n) {
    spec::ObjectType reg = spec::make_register(2);
    read_ = *reg.find_op("read");
    reg_ = add_object(std::move(reg), "r0");
  }

  /// Unlike the base (which asserts binary inputs), accept any input value:
  /// this protocol exists to feed the checker inputs like {1, 2}.
  exec::LocalState initial_state(exec::ProcessId,
                                 int input) const override {
    return exec::LocalState{{0, input}};
  }

  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke(reg_, read_);
  }

  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return make_decided(static_cast<int>(state.words[1]));
  }

 private:
  exec::ObjectId reg_ = 0;
  spec::OpId read_ = 0;
};

/// Spins reading a register that is never written: solo runs never output,
/// so recoverable wait-freedom fails at the initial configuration. Gives
/// the liveness diff a deterministic NO case.
class SpinForever : public algo::ProtocolBase {
 public:
  explicit SpinForever(int n) : ProtocolBase("spin_forever", n) {
    spec::ObjectType reg = spec::make_register(2);
    read_ = *reg.find_op("read");
    reg_ = add_object(std::move(reg), "r0");
  }

  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke(reg_, read_);
  }

  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return state;  // never advances, never decides
  }

 private:
  exec::ObjectId reg_ = 0;
  spec::OpId read_ = 0;
};

// ---------------------------------------------------------------------------
// Field-by-field comparisons.

void ExpectSameSafety(const SafetyResult& serial, const SafetyResult& other) {
  EXPECT_EQ(serial.explored_fully, other.explored_fully);
  EXPECT_EQ(serial.agreement_ok, other.agreement_ok);
  EXPECT_EQ(serial.validity_ok, other.validity_ok);
  EXPECT_EQ(serial.states_visited, other.states_visited);
  EXPECT_EQ(serial.configs_visited, other.configs_visited);
  EXPECT_EQ(serial.violation, other.violation);
  ASSERT_EQ(serial.counterexample.has_value(),
            other.counterexample.has_value());
  if (serial.counterexample.has_value()) {
    EXPECT_EQ(exec::schedule_to_string(*serial.counterexample),
              exec::schedule_to_string(*other.counterexample));
  }
  EXPECT_EQ(safety_verdict(serial), safety_verdict(other));
}

void ExpectSameLiveness(const LivenessResult& serial,
                        const LivenessResult& other) {
  EXPECT_EQ(serial.explored_fully, other.explored_fully);
  EXPECT_EQ(serial.wait_free, other.wait_free);
  EXPECT_EQ(serial.configs_probed, other.configs_probed);
  EXPECT_EQ(serial.stuck_pid, other.stuck_pid);
  ASSERT_EQ(serial.reaching_schedule.has_value(),
            other.reaching_schedule.has_value());
  if (serial.reaching_schedule.has_value()) {
    EXPECT_EQ(exec::schedule_to_string(*serial.reaching_schedule),
              exec::schedule_to_string(*other.reaching_schedule));
  }
  EXPECT_EQ(liveness_verdict(serial), liveness_verdict(other));
}

using ProtocolFactory = std::function<std::unique_ptr<exec::Protocol>()>;

/// The catalog the differential sweep runs over: safe and violating, tiny
/// and mid-sized, crash-sensitive and crash-oblivious.
std::vector<std::pair<std::string, ProtocolFactory>> protocol_catalog() {
  return {
      {"cas2", [] { return std::make_unique<algo::CasConsensus>(2); }},
      {"cas3", [] { return std::make_unique<algo::CasConsensus>(3); }},
      {"tas", [] { return std::make_unique<algo::TasRacingConsensus>(); }},
      {"naive2",
       [] { return std::make_unique<algo::NaiveRegisterConsensus>(2); }},
      {"sticky2", [] { return std::make_unique<algo::StickyConsensus>(2); }},
      {"propose22",
       [] { return std::make_unique<algo::NaiveProposeConsensus>(2, 2); }},
      {"tnn42", [] {
         return std::make_unique<algo::TnnRecoverableConsensus>(4, 2, 2);
       }},
      {"tnnwf42",
       [] { return std::make_unique<algo::TnnWaitFreeConsensus>(4, 2); }},
      {"recording_cas3", [] {
         return std::make_unique<algo::RecordingConsensus>(spec::make_cas(3),
                                                           2);
       }},
  };
}

std::vector<int> mixed_inputs(int n) {
  std::vector<int> inputs(static_cast<std::size_t>(n), 1);
  inputs[0] = 0;
  return inputs;
}

// ---------------------------------------------------------------------------
// Safety.

TEST(ParallelDiff, SafetyAcrossCatalogModesAndThreadCounts) {
  const CrashMode kModes[] = {CrashMode::kNone, CrashMode::kIndividual,
                              CrashMode::kSimultaneous, CrashMode::kBoth};
  for (const auto& [name, make] : protocol_catalog()) {
    const auto protocol = make();
    const std::vector<int> inputs = mixed_inputs(protocol->process_count());
    for (const CrashMode mode : kModes) {
      SafetyOptions options;
      options.crash_mode = mode;
      const SafetyResult serial = check_safety(*protocol, inputs, options);
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE(name + " mode=" +
                     std::to_string(static_cast<int>(mode)) +
                     " threads=" + std::to_string(threads));
        options.threads = threads;
        ExpectSameSafety(serial, check_safety(*protocol, inputs, options));
      }
      options.threads = 1;
    }
  }
}

TEST(ParallelDiff, SafetyAllInputsFanOut) {
  for (const auto& [name, make] : protocol_catalog()) {
    const auto protocol = make();
    SafetyOptions options;
    options.crash_mode = CrashMode::kIndividual;
    const SafetyResult serial = check_safety_all_inputs(*protocol, options);
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      options.threads = threads;
      ExpectSameSafety(serial, check_safety_all_inputs(*protocol, options));
    }
  }
}

// ---------------------------------------------------------------------------
// Truncation: max_states must produce the SAME explored_fully=false cut in
// both engines, and callers must read it as inconclusive, never safe.

TEST(ParallelDiff, TruncationIsIdenticalInBothEngines) {
  for (const char* name : {"cas2", "tnn42"}) {
    ProtocolFactory make;
    for (auto& [n, f] : protocol_catalog()) {
      if (n == name) make = f;
    }
    const auto protocol = make();
    const std::vector<int> inputs = mixed_inputs(protocol->process_count());
    for (const std::size_t max_states : {0u, 1u, 5u, 50u, 500u}) {
      SafetyOptions options;
      options.crash_mode = CrashMode::kBoth;
      options.max_states = max_states;
      const SafetyResult serial = check_safety(*protocol, inputs, options);
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE(std::string(name) +
                     " max_states=" + std::to_string(max_states) +
                     " threads=" + std::to_string(threads));
        options.threads = threads;
        ExpectSameSafety(serial, check_safety(*protocol, inputs, options));
      }
      if (!serial.explored_fully && serial.ok()) {
        EXPECT_EQ(safety_verdict(serial), SafetyVerdict::kInconclusive);
        EXPECT_EQ(safety_verdict_name(serial), "INCONCLUSIVE");
      }
    }
  }
}

TEST(ParallelDiff, TruncatedSafeExplorationIsInconclusiveNotSafe) {
  algo::CasConsensus protocol(2);
  SafetyOptions options;
  options.max_states = 3;  // cas2 has 28 states under individual crashes
  for (const int threads : {1, 2, 4, 8}) {
    options.threads = threads;
    const SafetyResult r = check_safety(protocol, {0, 1}, options);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r.explored_fully);
    EXPECT_EQ(safety_verdict(r), SafetyVerdict::kInconclusive);
    EXPECT_EQ(safety_verdict_name(r), "INCONCLUSIVE");
  }
}

TEST(ParallelDiff, LivenessTruncationIsInconclusive) {
  algo::CasConsensus protocol(2);
  LivenessOptions options;
  options.max_states = 2;
  for (const int threads : {1, 2, 4, 8}) {
    options.threads = threads;
    const LivenessResult r =
        check_recoverable_wait_freedom(protocol, {0, 1}, options);
    EXPECT_TRUE(r.wait_free);
    EXPECT_FALSE(r.explored_fully);
    EXPECT_EQ(liveness_verdict(r), LivenessVerdict::kInconclusive);
    EXPECT_EQ(liveness_verdict_name(r), "INCONCLUSIVE");
  }
}

// ---------------------------------------------------------------------------
// Liveness.

TEST(ParallelDiff, LivenessAcrossCatalogAndThreadCounts) {
  auto catalog = protocol_catalog();
  catalog.push_back(
      {"spin2", [] { return std::make_unique<SpinForever>(2); }});
  for (const auto& [name, make] : catalog) {
    const auto protocol = make();
    const std::vector<int> inputs = mixed_inputs(protocol->process_count());
    LivenessOptions options;
    options.solo_step_bound = 200;
    const LivenessResult serial =
        check_recoverable_wait_freedom(*protocol, inputs, options);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      options.threads = threads;
      ExpectSameLiveness(
          serial, check_recoverable_wait_freedom(*protocol, inputs, options));
    }
  }
}

TEST(ParallelDiff, LivenessTruncationMatchesAcrossEngines) {
  algo::TnnRecoverableConsensus protocol(4, 2, 2);
  for (const std::size_t max_states : {0u, 1u, 50u}) {
    LivenessOptions options;
    options.max_states = max_states;
    const LivenessResult serial =
        check_recoverable_wait_freedom(protocol, {0, 1}, options);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("max_states=" + std::to_string(max_states) +
                   " threads=" + std::to_string(threads));
      options.threads = threads;
      ExpectSameLiveness(
          serial, check_recoverable_wait_freedom(protocol, {0, 1}, options));
    }
  }
}

// ---------------------------------------------------------------------------
// The agreement-check regression: two distinct NON-binary outputs.

TEST(ParallelDiff, AgreementCatchesNonBinaryOutputPair) {
  DecideOwnInput protocol(2);
  SafetyOptions options;
  options.crash_mode = CrashMode::kNone;
  // Inputs {1, 2}: both outputs are valid, but they differ — the outputs
  // mask is 0b110, which a literal `mask == 0b11` test never flags.
  const SafetyResult serial = check_safety(protocol, {1, 2}, options);
  EXPECT_FALSE(serial.agreement_ok);
  EXPECT_TRUE(serial.validity_ok);
  EXPECT_EQ(serial.violation,
            "agreement: distinct values 1 and 2 were output");
  ASSERT_TRUE(serial.counterexample.has_value());
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    options.threads = threads;
    ExpectSameSafety(serial, check_safety(protocol, {1, 2}, options));
  }

  // Agreeing non-binary inputs stay safe.
  options.threads = 1;
  const SafetyResult same = check_safety(protocol, {2, 2}, options);
  EXPECT_TRUE(same.ok());
  EXPECT_TRUE(same.explored_fully);
}

// ---------------------------------------------------------------------------
// Hierarchy deciders: same witnesses, same stats, every thread count.

std::vector<std::pair<std::string, spec::ObjectType>> type_catalog() {
  std::vector<std::pair<std::string, spec::ObjectType>> types;
  types.emplace_back("tas", spec::make_test_and_set());
  types.emplace_back("cas2", spec::make_cas(2));
  types.emplace_back("swap2", spec::make_swap(2));
  types.emplace_back("t42", spec::make_tnn(4, 2));
  types.emplace_back("sticky2", spec::make_sticky_bit());
  return types;
}

TEST(ParallelDiff, DiscerningCheckerMatchesSerial) {
  for (const auto& [name, type] : type_catalog()) {
    for (const int n : {2, 3}) {
      const hierarchy::DiscerningResult serial =
          hierarchy::check_discerning(type, n);
      for (const int threads : kThreadCounts) {
        SCOPED_TRACE(name + " n=" + std::to_string(n) +
                     " threads=" + std::to_string(threads));
        const hierarchy::DiscerningResult parallel =
            hierarchy::check_discerning(type, n, /*use_symmetry=*/true,
                                        threads);
        EXPECT_EQ(serial.holds, parallel.holds);
        EXPECT_EQ(serial.witness, parallel.witness);
        EXPECT_EQ(serial.stats.assignments_tried,
                  parallel.stats.assignments_tried);
        EXPECT_EQ(serial.stats.schedule_nodes, parallel.stats.schedule_nodes);
      }
    }
  }
}

TEST(ParallelDiff, RecordingCheckerMatchesSerial) {
  for (const auto& [name, type] : type_catalog()) {
    for (const int n : {2, 3}) {
      for (const bool nonhiding : {false, true}) {
        const hierarchy::RecordingResult serial =
            nonhiding ? hierarchy::check_recording_nonhiding(type, n)
                      : hierarchy::check_recording(type, n);
        for (const int threads : kThreadCounts) {
          SCOPED_TRACE(name + " n=" + std::to_string(n) +
                       " nonhiding=" + std::to_string(nonhiding) +
                       " threads=" + std::to_string(threads));
          const hierarchy::RecordingResult parallel =
              nonhiding ? hierarchy::check_recording_nonhiding(
                              type, n, /*use_symmetry=*/true, threads)
                        : hierarchy::check_recording(
                              type, n, /*use_symmetry=*/true, threads);
          EXPECT_EQ(serial.holds, parallel.holds);
          EXPECT_EQ(serial.witness, parallel.witness);
          EXPECT_EQ(serial.stats.assignments_tried,
                    parallel.stats.assignments_tried);
          EXPECT_EQ(serial.stats.schedule_nodes,
                    parallel.stats.schedule_nodes);
        }
      }
    }
  }
}

TEST(ParallelDiff, NaiveEnumerationAlsoMatchesSerial) {
  const spec::ObjectType type = spec::make_test_and_set();
  const hierarchy::DiscerningResult serial =
      hierarchy::check_discerning(type, 3, /*use_symmetry=*/false);
  const hierarchy::DiscerningResult parallel = hierarchy::check_discerning(
      type, 3, /*use_symmetry=*/false, /*threads=*/4);
  EXPECT_EQ(serial.holds, parallel.holds);
  EXPECT_EQ(serial.witness, parallel.witness);
  EXPECT_EQ(serial.stats.assignments_tried, parallel.stats.assignments_tried);
  EXPECT_EQ(serial.stats.schedule_nodes, parallel.stats.schedule_nodes);
}

TEST(ParallelDiff, LevelsAndProfilesMatchSerial) {
  for (const auto& [name, type] : type_catalog()) {
    const hierarchy::Level d1 = hierarchy::discerning_level(type, 4);
    const hierarchy::Level r1 = hierarchy::recording_level(type, 4);
    const hierarchy::TypeProfile p1 = hierarchy::compute_profile(type, 4);
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      EXPECT_EQ(d1, hierarchy::discerning_level(type, 4, threads));
      EXPECT_EQ(r1, hierarchy::recording_level(type, 4, threads));
      const hierarchy::TypeProfile p2 =
          hierarchy::compute_profile(type, 4, threads);
      EXPECT_EQ(p1.type_name, p2.type_name);
      EXPECT_EQ(p1.readable, p2.readable);
      EXPECT_EQ(p1.discerning, p2.discerning);
      EXPECT_EQ(p1.recording, p2.recording);
    }
  }
}

TEST(ParallelDiff, EraseCounterFamilyMatchesSerial) {
  const auto serial = hierarchy::profile_erase_counter_family(2, 3);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto parallel =
        hierarchy::profile_erase_counter_family(2, 3, threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].options.count_states,
                parallel[i].options.count_states);
      EXPECT_EQ(serial[i].options.wipe_at_overflow,
                parallel[i].options.wipe_at_overflow);
      EXPECT_EQ(serial[i].options.with_erase, parallel[i].options.with_erase);
      EXPECT_EQ(serial[i].options.erase_only_a,
                parallel[i].options.erase_only_a);
      EXPECT_EQ(serial[i].profile.type_name, parallel[i].profile.type_name);
      EXPECT_EQ(serial[i].profile.discerning, parallel[i].profile.discerning);
      EXPECT_EQ(serial[i].profile.recording, parallel[i].profile.recording);
    }
  }
}

TEST(ParallelDiff, MachineSearchMatchesSerialForEveryThreadCount) {
  hierarchy::MachineSearchOptions options;
  options.value_count = 4;
  options.op_count = 2;
  options.response_count = 3;
  options.max_n = 3;
  options.seed = 7;
  options.restarts = 4;
  options.mutations_per_restart = 25;
  const hierarchy::MachineSearchResult serial =
      hierarchy::search_gap_machines(options);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    options.threads = threads;
    const hierarchy::MachineSearchResult parallel =
        hierarchy::search_gap_machines(options);
    EXPECT_EQ(serial.best_gap, parallel.best_gap);
    EXPECT_EQ(serial.machines_evaluated, parallel.machines_evaluated);
    EXPECT_EQ(serial.best_profile.discerning, parallel.best_profile.discerning);
    EXPECT_EQ(serial.best_profile.recording, parallel.best_profile.recording);
    EXPECT_EQ(spec::serialize_type(serial.best_type),
              spec::serialize_type(parallel.best_type));
  }
}

// ---------------------------------------------------------------------------
// The RC recovery audit joins the bit-identical contract: same findings,
// same order, same rendering, for every thread count.

TEST(ParallelDiff, RecoveryAuditMatchesSerialAcrossCatalog) {
  auto catalog = protocol_catalog();
  // Finding-rich entries: the clean catalog mostly produces empty reports,
  // which would make this diff vacuous.
  catalog.push_back({"recording_cas3_relaxed", [] {
                       return std::make_unique<algo::RecordingConsensus>(
                           spec::make_cas(3), 2, /*relax_proposal_writes=*/true);
                     }});
  for (const auto& [name, make] : catalog) {
    const auto protocol = make();
    analysis::RecoveryAuditOptions options;
    const std::string serial =
        analysis::audit_recovery(*protocol, options).render_text();
    for (const int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      options.threads = threads;
      EXPECT_EQ(analysis::audit_recovery(*protocol, options).render_text(),
                serial);
    }
  }
}

// ---------------------------------------------------------------------------
// Verdict helper pins.

TEST(ParallelDiff, SafetyVerdictNames) {
  SafetyResult r;
  r.explored_fully = true;
  EXPECT_EQ(safety_verdict(r), SafetyVerdict::kSafe);
  EXPECT_EQ(safety_verdict_name(r), "SAFE");
  r.explored_fully = false;
  EXPECT_EQ(safety_verdict(r), SafetyVerdict::kInconclusive);
  EXPECT_EQ(safety_verdict_name(r), "INCONCLUSIVE");
  r.agreement_ok = false;  // a found violation trumps truncation
  EXPECT_EQ(safety_verdict(r), SafetyVerdict::kViolation);
  EXPECT_EQ(safety_verdict_name(r), "VIOLATION");
}

TEST(ParallelDiff, LivenessVerdictNames) {
  LivenessResult r;
  r.explored_fully = true;
  EXPECT_EQ(liveness_verdict(r), LivenessVerdict::kWaitFree);
  EXPECT_EQ(liveness_verdict_name(r), "YES");
  r.explored_fully = false;
  EXPECT_EQ(liveness_verdict(r), LivenessVerdict::kInconclusive);
  EXPECT_EQ(liveness_verdict_name(r), "INCONCLUSIVE");
  r.wait_free = false;
  EXPECT_EQ(liveness_verdict(r), LivenessVerdict::kNotWaitFree);
  EXPECT_EQ(liveness_verdict_name(r), "NO");
}

TEST(ParallelDiff, CappedLevelPrintsAtLeast) {
  EXPECT_EQ((hierarchy::Level{3, false}).to_string(), ">= 3");
  EXPECT_EQ((hierarchy::Level{1, true}).to_string(), "1");
}

// Threads = 0 means "hardware count" and must still be bit-identical.
TEST(ParallelDiff, ZeroThreadsMeansHardwareAndStaysIdentical) {
  algo::CasConsensus protocol(2);
  SafetyOptions options;
  const SafetyResult serial = check_safety(protocol, {0, 1}, options);
  options.threads = 0;
  ExpectSameSafety(serial, check_safety(protocol, {0, 1}, options));
}

}  // namespace
}  // namespace rcons::valency
