// Property tests over RANDOM types, plus the Theorem 13 chain and the
// sticky-bit protocol.
//
// The random-type sweeps check checker-level theorems on arbitrary
// readable machines (not just the curated catalog):
//   * n-recording implies n-discerning (rcons <= cons, at witness level:
//     disjoint final values make the (response, value) pairs disjoint);
//   * non-hiding n-recording implies n-recording;
//   * both conditions are monotone (downward closed) in n;
//   * canonical and naive enumerations agree.
#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "hierarchy/search.hpp"
#include "valency/model_checker.hpp"
#include "valency/theorem13.hpp"

namespace rcons {
namespace {

class RandomTypeSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  spec::ObjectType type() const {
    return hierarchy::random_readable_type(6, 2, 4, GetParam());
  }
};

TEST_P(RandomTypeSweep, RecordingImpliesDiscerning) {
  const spec::ObjectType t = type();
  for (int n = 2; n <= 3; ++n) {
    if (hierarchy::check_recording(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_discerning(t, n).holds)
          << t.describe() << " n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, NonhidingImpliesRecording) {
  const spec::ObjectType t = type();
  for (int n = 2; n <= 3; ++n) {
    if (hierarchy::check_recording_nonhiding(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_recording(t, n).holds) << "n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, BothConditionsAreDownwardClosed) {
  const spec::ObjectType t = type();
  for (int n = 3; n <= 4; ++n) {
    if (hierarchy::check_discerning(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_discerning(t, n - 1).holds) << "n=" << n;
    }
    if (hierarchy::check_recording(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_recording(t, n - 1).holds) << "n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, CanonicalAndNaiveAgree) {
  const spec::ObjectType t = type();
  EXPECT_EQ(hierarchy::check_discerning(t, 2, true).holds,
            hierarchy::check_discerning(t, 2, false).holds);
  EXPECT_EQ(hierarchy::check_recording(t, 2, true).holds,
            hierarchy::check_recording(t, 2, false).holds);
}

TEST_P(RandomTypeSweep, WitnessesVerifyAndDecodeTablesAreSane) {
  const spec::ObjectType t = type();
  const auto r = hierarchy::check_recording(t, 2);
  if (!r.holds) return;
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(hierarchy::is_recording_witness(t, *r.witness));
  const std::vector<int> teams = hierarchy::compute_value_teams(t, *r.witness);
  for (int team : teams) {
    EXPECT_GE(team, -1);
    EXPECT_LE(team, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeSweep,
                         ::testing::Range<std::uint64_t>(1, 41),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------------
// Theorem 13 chain
// ---------------------------------------------------------------------------

TEST(Theorem13Chain, CasConsensusReachesRecordingAtStage0) {
  algo::CasConsensus protocol(3);
  const auto chain =
      valency::run_theorem13_chain(protocol, {0, 1, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
  ASSERT_EQ(chain.stages.size(), 1u);
  EXPECT_TRUE(chain.stages[0].report.config_class.recording);
  const std::string text = chain.render(protocol);
  EXPECT_NE(text.find("n-RECORDING configuration"), std::string::npos);
}

TEST(Theorem13Chain, TnnRecoverableReachesRecording) {
  algo::TnnRecoverableConsensus protocol(5, 3, 3);
  const auto chain = valency::run_theorem13_chain(protocol, {0, 1, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
  // The endpoint certifies the type is n-recording for n = processes.
  const auto& report = chain.stages.back().report;
  ASSERT_TRUE(report.same_object);
  EXPECT_TRUE(hierarchy::check_recording(
                  protocol.object_type(report.object), 3)
                  .holds);
}

TEST(Theorem13Chain, UnanimousInputsFailHonestly) {
  algo::CasConsensus protocol(2);
  const auto chain = valency::run_theorem13_chain(protocol, {0, 0});
  EXPECT_FALSE(chain.reached_recording);
  EXPECT_FALSE(chain.failure.empty());
}

// ---------------------------------------------------------------------------
// Sticky-bit protocol
// ---------------------------------------------------------------------------

TEST(StickyConsensus, SafeAndLiveUnderAllCrashRegimes) {
  for (int n = 2; n <= 4; ++n) {
    algo::StickyConsensus protocol(n);
    valency::SafetyOptions options;
    options.crash_mode = valency::CrashMode::kBoth;
    const auto r = valency::check_safety_all_inputs(protocol, options);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.violation;
    EXPECT_TRUE(valency::check_recoverable_wait_freedom(
                    protocol, valency::all_binary_inputs(n)[1])
                    .wait_free);
  }
}

TEST(StickyConsensus, Theorem13ChainAgrees) {
  algo::StickyConsensus protocol(3);
  const auto chain = valency::run_theorem13_chain(protocol, {1, 0, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
}

}  // namespace
}  // namespace rcons
