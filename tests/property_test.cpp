// Property tests over RANDOM types, plus the Theorem 13 chain and the
// sticky-bit protocol.
//
// The random-type sweeps check checker-level theorems on arbitrary
// readable machines (not just the curated catalog):
//   * n-recording implies n-discerning (rcons <= cons, at witness level:
//     disjoint final values make the (response, value) pairs disjoint);
//   * non-hiding n-recording implies n-recording;
//   * both conditions are monotone (downward closed) in n;
//   * canonical and naive enumerations agree;
//   * the canonical type key is a relabeling invariant (identical across
//     random relabelings, distinct across non-isomorphic types).
#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/execute.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "hierarchy/search.hpp"
#include "reduction/config_canon.hpp"
#include "reduction/type_canon.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "util/socket.hpp"
#include "valency/model_checker.hpp"
#include "valency/theorem13.hpp"

namespace rcons {
namespace {

class RandomTypeSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  spec::ObjectType type() const {
    return hierarchy::random_readable_type(6, 2, 4, GetParam());
  }
};

TEST_P(RandomTypeSweep, RecordingImpliesDiscerning) {
  const spec::ObjectType t = type();
  for (int n = 2; n <= 3; ++n) {
    if (hierarchy::check_recording(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_discerning(t, n).holds)
          << t.describe() << " n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, NonhidingImpliesRecording) {
  const spec::ObjectType t = type();
  for (int n = 2; n <= 3; ++n) {
    if (hierarchy::check_recording_nonhiding(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_recording(t, n).holds) << "n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, BothConditionsAreDownwardClosed) {
  const spec::ObjectType t = type();
  for (int n = 3; n <= 4; ++n) {
    if (hierarchy::check_discerning(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_discerning(t, n - 1).holds) << "n=" << n;
    }
    if (hierarchy::check_recording(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_recording(t, n - 1).holds) << "n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, CanonicalAndNaiveAgree) {
  const spec::ObjectType t = type();
  EXPECT_EQ(hierarchy::check_discerning(t, 2, true).holds,
            hierarchy::check_discerning(t, 2, false).holds);
  EXPECT_EQ(hierarchy::check_recording(t, 2, true).holds,
            hierarchy::check_recording(t, 2, false).holds);
}

TEST_P(RandomTypeSweep, WitnessesVerifyAndDecodeTablesAreSane) {
  const spec::ObjectType t = type();
  const auto r = hierarchy::check_recording(t, 2);
  if (!r.holds) return;
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(hierarchy::is_recording_witness(t, *r.witness));
  const std::vector<int> teams = hierarchy::compute_value_teams(t, *r.witness);
  for (int team : teams) {
    EXPECT_GE(team, -1);
    EXPECT_LE(team, 1);
  }
}

/// A uniformly random relabeling of `t`'s value/op/response ids.
reduction::TypeRelabeling random_relabeling(const spec::ObjectType& t,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  reduction::TypeRelabeling r = reduction::identity_relabeling(t);
  std::shuffle(r.value_perm.begin(), r.value_perm.end(), rng);
  std::shuffle(r.op_perm.begin(), r.op_perm.end(), rng);
  std::shuffle(r.response_perm.begin(), r.response_perm.end(), rng);
  return r;
}

TEST_P(RandomTypeSweep, CanonicalKeyIsARelabelingInvariant) {
  const spec::ObjectType t = type();
  const auto canon = reduction::canonicalize_type(t);
  ASSERT_TRUE(canon.complete) << t.describe();
  for (std::uint64_t round = 0; round < 4; ++round) {
    const spec::ObjectType relabeled = reduction::relabel_type(
        t, random_relabeling(t, GetParam() * 101 + round), "scrambled");
    const auto canon2 = reduction::canonicalize_type(relabeled);
    EXPECT_EQ(canon2.key, canon.key) << t.describe();
    EXPECT_EQ(canon2.hash, canon.hash);
  }
}

TEST_P(RandomTypeSweep, AutomorphismsFixTheDeltaTable) {
  const spec::ObjectType t = type();
  const auto autos = reduction::type_automorphisms(t);
  ASSERT_GE(autos.size(), 1u);
  bool saw_identity = false;
  for (const auto& phi : autos) {
    saw_identity = saw_identity || reduction::is_identity(phi);
    // relabel_type by a true automorphism reproduces the delta table, so
    // the canonical keys trivially match AND the raw tables agree entry by
    // entry.
    const spec::ObjectType image = reduction::relabel_type(t, phi);
    for (int v = 0; v < t.value_count(); ++v) {
      for (int op = 0; op < t.op_count(); ++op) {
        const auto& orig = t.apply(v, op);
        const auto& moved = image.apply(v, op);
        EXPECT_EQ(orig.response, moved.response);
        EXPECT_EQ(orig.next_value, moved.next_value);
      }
    }
  }
  EXPECT_TRUE(saw_identity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeSweep,
                         ::testing::Range<std::uint64_t>(1, 41),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------------
// Type canonicalization across the curated catalog
// ---------------------------------------------------------------------------

// Pairwise-distinct types get pairwise-distinct canonical keys: the key is
// a complete structural encoding, so only genuine isomorphism can collide.
// (swap(2) is omitted: over a binary domain it genuinely IS cas(2) up to
// relabeling — see the companion test below.)
TEST(TypeCanon, NonIsomorphicCatalogTypesNeverCollide) {
  const std::vector<spec::ObjectType> types = {
      spec::make_register(2),     spec::make_test_and_set(),
      spec::make_swap(3),         spec::make_fetch_and_add(4),
      spec::make_cas(2),          spec::make_cas(3),
      spec::make_sticky_bit(),    spec::make_consensus_object(2),
      spec::make_queue(2),        spec::make_readable_queue(2),
      spec::make_stack(2),        spec::make_tnn(5, 2),
      spec::make_xn(4),           spec::make_xn(5),
  };
  for (std::size_t i = 0; i < types.size(); ++i) {
    for (std::size_t j = i + 1; j < types.size(); ++j) {
      EXPECT_NE(reduction::canonicalize_type(types[i]).key,
                reduction::canonicalize_type(types[j]).key)
          << types[i].name() << " vs " << types[j].name();
    }
  }
}

// A structural surprise the canonicalizer uncovers: over a binary domain,
// swap and cas are the same machine. Both offer a read, an op that forces
// the value to 0, and an op that forces it to 1, with the response
// revealing the old value (swap returns it outright; cas's success bit
// determines it). The canonical key must therefore collide.
TEST(TypeCanon, BinarySwapAndCasAreIsomorphic) {
  EXPECT_EQ(reduction::canonicalize_type(spec::make_swap(2)).key,
            reduction::canonicalize_type(spec::make_cas(2)).key);
}

// A relabeled catalog type is isomorphic to the original by construction
// and must land on the same key even though ids and names all moved.
TEST(TypeCanon, RelabeledCatalogTypesCollide) {
  for (const spec::ObjectType& t :
       {spec::make_cas(3), spec::make_queue(2), spec::make_tnn(5, 2)}) {
    const auto canon = reduction::canonicalize_type(t);
    std::mt19937_64 rng(7);
    reduction::TypeRelabeling r = reduction::identity_relabeling(t);
    std::shuffle(r.value_perm.begin(), r.value_perm.end(), rng);
    std::shuffle(r.op_perm.begin(), r.op_perm.end(), rng);
    std::shuffle(r.response_perm.begin(), r.response_perm.end(), rng);
    const auto canon2 =
        reduction::canonicalize_type(reduction::relabel_type(t, r, "moved"));
    EXPECT_EQ(canon2.key, canon.key) << t.name();
  }
}

// ---------------------------------------------------------------------------
// Configuration canonicalization (process symmetry)
// ---------------------------------------------------------------------------

// Canonicalization is idempotent and constant on orbits: permuting the
// locals of equal-input processes never changes the representative.
TEST(ConfigCanon, RepresentativeIsOrbitInvariant) {
  const algo::CasConsensus protocol(3);
  const std::vector<int> inputs = {0, 1, 1};  // pids 1 and 2 interchangeable
  const reduction::ProcessSymmetryReducer reducer(protocol, inputs, true);
  ASSERT_TRUE(reducer.active());

  std::mt19937_64 rng(11);
  for (int round = 0; round < 50; ++round) {
    // Random short execution to land on an arbitrary reachable config.
    exec::Config config = exec::Config::initial(protocol, inputs);
    exec::DecisionLog log(3);
    const int steps = static_cast<int>(rng() % 6);
    for (int s = 0; s < steps; ++s) {
      const int pid = static_cast<int>(rng() % 3);
      const auto kind = (rng() % 4 == 0) ? exec::Event::Kind::kCrash
                                         : exec::Event::Kind::kStep;
      exec::apply_event(protocol, config, exec::Event{kind, pid}, log);
    }

    exec::Config canonical = config;
    reducer.canonicalize(&canonical);
    exec::Config twice = canonical;
    reducer.canonicalize(&twice);
    EXPECT_TRUE(twice == canonical) << "not idempotent";

    // Swap the interchangeable pair's locals: same orbit, same rep.
    exec::Config swapped = config;
    const exec::LocalState tmp = swapped.local(1);
    swapped.set_local(1, swapped.local(2));
    swapped.set_local(2, tmp);
    reducer.canonicalize(&swapped);
    EXPECT_TRUE(swapped == canonical) << "orbit not collapsed";
  }
}

TEST(ConfigCanon, SingletonGroupsLeaveTheReducerInactive) {
  const algo::CasConsensus protocol(2);
  const reduction::ProcessSymmetryReducer distinct(protocol, {0, 1}, true);
  EXPECT_FALSE(distinct.active());
  const reduction::ProcessSymmetryReducer equal(protocol, {1, 1}, true);
  EXPECT_TRUE(equal.active());
  const reduction::ProcessSymmetryReducer disabled(protocol, {1, 1}, false);
  EXPECT_FALSE(disabled.active());
}

// ---------------------------------------------------------------------------
// Theorem 13 chain
// ---------------------------------------------------------------------------

TEST(Theorem13Chain, CasConsensusReachesRecordingAtStage0) {
  algo::CasConsensus protocol(3);
  const auto chain =
      valency::run_theorem13_chain(protocol, {0, 1, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
  ASSERT_EQ(chain.stages.size(), 1u);
  EXPECT_TRUE(chain.stages[0].report.config_class.recording);
  const std::string text = chain.render(protocol);
  EXPECT_NE(text.find("n-RECORDING configuration"), std::string::npos);
}

TEST(Theorem13Chain, TnnRecoverableReachesRecording) {
  algo::TnnRecoverableConsensus protocol(5, 3, 3);
  const auto chain = valency::run_theorem13_chain(protocol, {0, 1, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
  // The endpoint certifies the type is n-recording for n = processes.
  const auto& report = chain.stages.back().report;
  ASSERT_TRUE(report.same_object);
  EXPECT_TRUE(hierarchy::check_recording(
                  protocol.object_type(report.object), 3)
                  .holds);
}

TEST(Theorem13Chain, UnanimousInputsFailHonestly) {
  algo::CasConsensus protocol(2);
  const auto chain = valency::run_theorem13_chain(protocol, {0, 0});
  EXPECT_FALSE(chain.reached_recording);
  EXPECT_FALSE(chain.failure.empty());
}

// ---------------------------------------------------------------------------
// Sticky-bit protocol
// ---------------------------------------------------------------------------

TEST(StickyConsensus, SafeAndLiveUnderAllCrashRegimes) {
  for (int n = 2; n <= 4; ++n) {
    algo::StickyConsensus protocol(n);
    valency::SafetyOptions options;
    options.crash_mode = valency::CrashMode::kBoth;
    const auto r = valency::check_safety_all_inputs(protocol, options);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.violation;
    EXPECT_TRUE(valency::check_recoverable_wait_freedom(
                    protocol, valency::all_binary_inputs(n)[1])
                    .wait_free);
  }
}

TEST(StickyConsensus, Theorem13ChainAgrees) {
  algo::StickyConsensus protocol(3);
  const auto chain = valency::run_theorem13_chain(protocol, {1, 0, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
}

// ---------------------------------------------------------------------------
// rcons-serve wire protocol (DESIGN.md §12)
// ---------------------------------------------------------------------------

// The templates the mutator starts from: one valid spelling of every
// command plus every field the grammar knows.
const char* const kRequestTemplates[] = {
    "{\"id\":\"r1\",\"command\":\"ping\"}",
    "{\"id\":\"r2\",\"command\":\"metrics\"}",
    "{\"command\":\"spans\"}",
    "{\"id\":\"r4\",\"command\":\"profile\",\"target\":\"cas2\","
    "\"max_n\":3,\"threads\":2}",
    "{\"id\":\"r5\",\"command\":\"verify\",\"spec\":\"cas 2\","
    "\"max_states\":100000}",
    "{\"id\":\"r6\",\"command\":\"lint\",\"target\":\"cas2\","
    "\"threshold\":\"warning\"}",
    "{\"id\":\"r7\",\"command\":\"lint\",\"spec\":\"recording cas3 2\"}",
};

/// Applies `rounds` random byte-level mutations (overwrite, insert,
/// delete, truncate, duplicate) to a template request line.
std::string mutate_request(std::mt19937_64& rng, std::string line,
                           int rounds) {
  for (int i = 0; i < rounds && !line.empty(); ++i) {
    const std::size_t at = rng() % line.size();
    switch (rng() % 5) {
      case 0:  // overwrite with an arbitrary byte (NUL and controls too)
        line[at] = static_cast<char>(rng() % 256);
        break;
      case 1:
        line.insert(at, 1, static_cast<char>(rng() % 256));
        break;
      case 2:
        line.erase(at, 1);
        break;
      case 3:
        line.resize(at);  // truncate mid-token
        break;
      case 4:
        line.insert(at, line.substr(at / 2, 8));  // duplicate a chunk
        break;
    }
  }
  return line;
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// The parser's contract under arbitrary corruption: parse_request never
// crashes, never reads out of bounds (ASan/UBSan configs watch this run),
// and every failure is a structured error with a non-empty, echo-safe
// message. Success must round-trip sane field values.
TEST_P(WireFuzz, MutatedRequestsAlwaysYieldStructuredOutcomes) {
  std::mt19937_64 rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (int round = 0; round < 200; ++round) {
    const char* base =
        kRequestTemplates[rng() % std::size(kRequestTemplates)];
    const int rounds = 1 + static_cast<int>(rng() % 12);
    const std::string line = mutate_request(rng, base, rounds);
    const serve::ParseOutcome outcome = serve::parse_request(line);
    if (outcome.ok) {
      EXPECT_FALSE(outcome.request.command.empty()) << line;
      EXPECT_GE(outcome.request.max_n, 0);
      EXPECT_GE(outcome.request.threads, 0);
    } else {
      EXPECT_FALSE(outcome.error.empty()) << line;
      // The error message must be embeddable in a one-line response:
      // render it and check the line discipline survives.
      serve::Response error_response;
      error_response.exit_code = 2;
      error_response.error = outcome.error;
      const std::string rendered = serve::render_response(
          outcome.request.id, "r-00000000", error_response);
      EXPECT_FALSE(rendered.empty());
      EXPECT_EQ(rendered.back(), '\n');
      EXPECT_EQ(rendered.find('\n'), rendered.size() - 1)
          << "embedded newline breaks NDJSON framing: " << line;
    }
  }
}

// Whatever bytes land in a response's id/error fields, render_response
// must emit exactly one line (no control bytes escape unencoded).
TEST_P(WireFuzz, RenderedResponsesAreAlwaysOneLine) {
  std::mt19937_64 rng(GetParam() * 0x2545f4914f6cdd1dULL + 7);
  for (int round = 0; round < 100; ++round) {
    std::string wild;
    const std::size_t size = rng() % 64;
    for (std::size_t i = 0; i < size; ++i) {
      wild.push_back(static_cast<char>(rng() % 256));
    }
    serve::Response r;
    r.exit_code = static_cast<int>(rng() % 4);
    r.error = wild;
    const std::string rendered = serve::render_response(wild, wild, r);
    ASSERT_FALSE(rendered.empty());
    EXPECT_EQ(rendered.back(), '\n');
    for (std::size_t i = 0; i + 1 < rendered.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(rendered[i]);
      EXPECT_GE(c, 0x20u) << "unescaped control byte at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Range<std::uint64_t>(1, 9),
                         ::testing::PrintToStringParamName());

// The same contract at the socket level: a live daemon fed mutated
// request lines answers every one with a structured error or a valid
// response — it never crashes, and it is still serving afterwards (a
// clean ping on a fresh connection must succeed).
TEST(WireFuzz, DaemonSurvivesMutatedRequestBlast) {
  // Tight budgets: a mutated digit must not buy an expensive exploration
  // (a clamped request answers INCONCLUSIVE, which is still structured).
  serve::ServiceOptions service_options;
  service_options.max_n_cap = 3;
  service_options.max_states_cap = 20000;
  serve::Service service(service_options);
  serve::ServerOptions server_options;
  server_options.tcp_port = 0;
  serve::Server server(service, server_options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Spec-bearing templates (verify/lint of a PROTOCOL) are excluded from
  // the live blast: a single mutated digit in "cas 2" names a much larger
  // protocol, and protocol process counts are a user-trusted input (the
  // CLI has the same property), not something the state budget caps. The
  // pure parser fuzz above still mutates those templates.
  const char* const kCheapTemplates[] = {
      kRequestTemplates[0],  // ping
      kRequestTemplates[1],  // metrics
      kRequestTemplates[2],  // spans
      kRequestTemplates[3],  // profile (capped by max_n_cap above)
      kRequestTemplates[5],  // lint of a single type
  };
  std::mt19937_64 rng(0xabcdef12345ULL);
  for (int connection = 0; connection < 8; ++connection) {
    const int fd = util::connect_tcp(server.port());
    ASSERT_GE(fd, 0);
    util::LineReader reader(fd, 1 << 20);
    for (int round = 0; round < 25; ++round) {
      const char* base =
          kCheapTemplates[rng() % std::size(kCheapTemplates)];
      std::string line =
          mutate_request(rng, base, 1 + static_cast<int>(rng() % 8));
      // Keep the blast single-line: an embedded newline would just split
      // into two (also welcome) requests and desync the 1:1 read below.
      // An empty line gets no response BY CONTRACT (blank lines are
      // keep-alives, see reader_loop), so those are skipped too.
      std::erase(line, '\n');
      std::erase(line, '\r');
      if (line.empty()) continue;
      if (!util::write_all(fd, line + "\n")) break;  // daemon hung up: fine
      std::string response;
      if (reader.read_line(&response) !=
          util::LineReader::Status::kLine) {
        break;  // overflow/oversize hangup is a legitimate outcome
      }
      EXPECT_FALSE(response.empty());
      EXPECT_EQ(response.front(), '{') << response;
      EXPECT_NE(response.find("\"status\":\""), std::string::npos)
          << response;
    }
    util::shutdown_and_close(fd);
  }

  // Liveness after the blast: a well-formed ping still gets its pong.
  const int fd = util::connect_tcp(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(util::write_all(
      fd, std::string("{\"id\":\"after\",\"command\":\"ping\"}\n")));
  util::LineReader reader(fd, 1 << 20);
  std::string response;
  ASSERT_EQ(reader.read_line(&response), util::LineReader::Status::kLine);
  EXPECT_NE(response.find("\"pong\":true"), std::string::npos) << response;
  util::shutdown_and_close(fd);

  server.stop();
  server.wait();
}

}  // namespace
}  // namespace rcons
