// Property tests over RANDOM types, plus the Theorem 13 chain and the
// sticky-bit protocol.
//
// The random-type sweeps check checker-level theorems on arbitrary
// readable machines (not just the curated catalog):
//   * n-recording implies n-discerning (rcons <= cons, at witness level:
//     disjoint final values make the (response, value) pairs disjoint);
//   * non-hiding n-recording implies n-recording;
//   * both conditions are monotone (downward closed) in n;
//   * canonical and naive enumerations agree;
//   * the canonical type key is a relabeling invariant (identical across
//     random relabelings, distinct across non-isomorphic types).
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/execute.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "hierarchy/search.hpp"
#include "reduction/config_canon.hpp"
#include "reduction/type_canon.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "valency/model_checker.hpp"
#include "valency/theorem13.hpp"

namespace rcons {
namespace {

class RandomTypeSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  spec::ObjectType type() const {
    return hierarchy::random_readable_type(6, 2, 4, GetParam());
  }
};

TEST_P(RandomTypeSweep, RecordingImpliesDiscerning) {
  const spec::ObjectType t = type();
  for (int n = 2; n <= 3; ++n) {
    if (hierarchy::check_recording(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_discerning(t, n).holds)
          << t.describe() << " n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, NonhidingImpliesRecording) {
  const spec::ObjectType t = type();
  for (int n = 2; n <= 3; ++n) {
    if (hierarchy::check_recording_nonhiding(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_recording(t, n).holds) << "n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, BothConditionsAreDownwardClosed) {
  const spec::ObjectType t = type();
  for (int n = 3; n <= 4; ++n) {
    if (hierarchy::check_discerning(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_discerning(t, n - 1).holds) << "n=" << n;
    }
    if (hierarchy::check_recording(t, n).holds) {
      EXPECT_TRUE(hierarchy::check_recording(t, n - 1).holds) << "n=" << n;
    }
  }
}

TEST_P(RandomTypeSweep, CanonicalAndNaiveAgree) {
  const spec::ObjectType t = type();
  EXPECT_EQ(hierarchy::check_discerning(t, 2, true).holds,
            hierarchy::check_discerning(t, 2, false).holds);
  EXPECT_EQ(hierarchy::check_recording(t, 2, true).holds,
            hierarchy::check_recording(t, 2, false).holds);
}

TEST_P(RandomTypeSweep, WitnessesVerifyAndDecodeTablesAreSane) {
  const spec::ObjectType t = type();
  const auto r = hierarchy::check_recording(t, 2);
  if (!r.holds) return;
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(hierarchy::is_recording_witness(t, *r.witness));
  const std::vector<int> teams = hierarchy::compute_value_teams(t, *r.witness);
  for (int team : teams) {
    EXPECT_GE(team, -1);
    EXPECT_LE(team, 1);
  }
}

/// A uniformly random relabeling of `t`'s value/op/response ids.
reduction::TypeRelabeling random_relabeling(const spec::ObjectType& t,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  reduction::TypeRelabeling r = reduction::identity_relabeling(t);
  std::shuffle(r.value_perm.begin(), r.value_perm.end(), rng);
  std::shuffle(r.op_perm.begin(), r.op_perm.end(), rng);
  std::shuffle(r.response_perm.begin(), r.response_perm.end(), rng);
  return r;
}

TEST_P(RandomTypeSweep, CanonicalKeyIsARelabelingInvariant) {
  const spec::ObjectType t = type();
  const auto canon = reduction::canonicalize_type(t);
  ASSERT_TRUE(canon.complete) << t.describe();
  for (std::uint64_t round = 0; round < 4; ++round) {
    const spec::ObjectType relabeled = reduction::relabel_type(
        t, random_relabeling(t, GetParam() * 101 + round), "scrambled");
    const auto canon2 = reduction::canonicalize_type(relabeled);
    EXPECT_EQ(canon2.key, canon.key) << t.describe();
    EXPECT_EQ(canon2.hash, canon.hash);
  }
}

TEST_P(RandomTypeSweep, AutomorphismsFixTheDeltaTable) {
  const spec::ObjectType t = type();
  const auto autos = reduction::type_automorphisms(t);
  ASSERT_GE(autos.size(), 1u);
  bool saw_identity = false;
  for (const auto& phi : autos) {
    saw_identity = saw_identity || reduction::is_identity(phi);
    // relabel_type by a true automorphism reproduces the delta table, so
    // the canonical keys trivially match AND the raw tables agree entry by
    // entry.
    const spec::ObjectType image = reduction::relabel_type(t, phi);
    for (int v = 0; v < t.value_count(); ++v) {
      for (int op = 0; op < t.op_count(); ++op) {
        const auto& orig = t.apply(v, op);
        const auto& moved = image.apply(v, op);
        EXPECT_EQ(orig.response, moved.response);
        EXPECT_EQ(orig.next_value, moved.next_value);
      }
    }
  }
  EXPECT_TRUE(saw_identity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeSweep,
                         ::testing::Range<std::uint64_t>(1, 41),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------------
// Type canonicalization across the curated catalog
// ---------------------------------------------------------------------------

// Pairwise-distinct types get pairwise-distinct canonical keys: the key is
// a complete structural encoding, so only genuine isomorphism can collide.
// (swap(2) is omitted: over a binary domain it genuinely IS cas(2) up to
// relabeling — see the companion test below.)
TEST(TypeCanon, NonIsomorphicCatalogTypesNeverCollide) {
  const std::vector<spec::ObjectType> types = {
      spec::make_register(2),     spec::make_test_and_set(),
      spec::make_swap(3),         spec::make_fetch_and_add(4),
      spec::make_cas(2),          spec::make_cas(3),
      spec::make_sticky_bit(),    spec::make_consensus_object(2),
      spec::make_queue(2),        spec::make_readable_queue(2),
      spec::make_stack(2),        spec::make_tnn(5, 2),
      spec::make_xn(4),           spec::make_xn(5),
  };
  for (std::size_t i = 0; i < types.size(); ++i) {
    for (std::size_t j = i + 1; j < types.size(); ++j) {
      EXPECT_NE(reduction::canonicalize_type(types[i]).key,
                reduction::canonicalize_type(types[j]).key)
          << types[i].name() << " vs " << types[j].name();
    }
  }
}

// A structural surprise the canonicalizer uncovers: over a binary domain,
// swap and cas are the same machine. Both offer a read, an op that forces
// the value to 0, and an op that forces it to 1, with the response
// revealing the old value (swap returns it outright; cas's success bit
// determines it). The canonical key must therefore collide.
TEST(TypeCanon, BinarySwapAndCasAreIsomorphic) {
  EXPECT_EQ(reduction::canonicalize_type(spec::make_swap(2)).key,
            reduction::canonicalize_type(spec::make_cas(2)).key);
}

// A relabeled catalog type is isomorphic to the original by construction
// and must land on the same key even though ids and names all moved.
TEST(TypeCanon, RelabeledCatalogTypesCollide) {
  for (const spec::ObjectType& t :
       {spec::make_cas(3), spec::make_queue(2), spec::make_tnn(5, 2)}) {
    const auto canon = reduction::canonicalize_type(t);
    std::mt19937_64 rng(7);
    reduction::TypeRelabeling r = reduction::identity_relabeling(t);
    std::shuffle(r.value_perm.begin(), r.value_perm.end(), rng);
    std::shuffle(r.op_perm.begin(), r.op_perm.end(), rng);
    std::shuffle(r.response_perm.begin(), r.response_perm.end(), rng);
    const auto canon2 =
        reduction::canonicalize_type(reduction::relabel_type(t, r, "moved"));
    EXPECT_EQ(canon2.key, canon.key) << t.name();
  }
}

// ---------------------------------------------------------------------------
// Configuration canonicalization (process symmetry)
// ---------------------------------------------------------------------------

// Canonicalization is idempotent and constant on orbits: permuting the
// locals of equal-input processes never changes the representative.
TEST(ConfigCanon, RepresentativeIsOrbitInvariant) {
  const algo::CasConsensus protocol(3);
  const std::vector<int> inputs = {0, 1, 1};  // pids 1 and 2 interchangeable
  const reduction::ProcessSymmetryReducer reducer(protocol, inputs, true);
  ASSERT_TRUE(reducer.active());

  std::mt19937_64 rng(11);
  for (int round = 0; round < 50; ++round) {
    // Random short execution to land on an arbitrary reachable config.
    exec::Config config = exec::Config::initial(protocol, inputs);
    exec::DecisionLog log(3);
    const int steps = static_cast<int>(rng() % 6);
    for (int s = 0; s < steps; ++s) {
      const int pid = static_cast<int>(rng() % 3);
      const auto kind = (rng() % 4 == 0) ? exec::Event::Kind::kCrash
                                         : exec::Event::Kind::kStep;
      exec::apply_event(protocol, config, exec::Event{kind, pid}, log);
    }

    exec::Config canonical = config;
    reducer.canonicalize(&canonical);
    exec::Config twice = canonical;
    reducer.canonicalize(&twice);
    EXPECT_TRUE(twice == canonical) << "not idempotent";

    // Swap the interchangeable pair's locals: same orbit, same rep.
    exec::Config swapped = config;
    const exec::LocalState tmp = swapped.local(1);
    swapped.set_local(1, swapped.local(2));
    swapped.set_local(2, tmp);
    reducer.canonicalize(&swapped);
    EXPECT_TRUE(swapped == canonical) << "orbit not collapsed";
  }
}

TEST(ConfigCanon, SingletonGroupsLeaveTheReducerInactive) {
  const algo::CasConsensus protocol(2);
  const reduction::ProcessSymmetryReducer distinct(protocol, {0, 1}, true);
  EXPECT_FALSE(distinct.active());
  const reduction::ProcessSymmetryReducer equal(protocol, {1, 1}, true);
  EXPECT_TRUE(equal.active());
  const reduction::ProcessSymmetryReducer disabled(protocol, {1, 1}, false);
  EXPECT_FALSE(disabled.active());
}

// ---------------------------------------------------------------------------
// Theorem 13 chain
// ---------------------------------------------------------------------------

TEST(Theorem13Chain, CasConsensusReachesRecordingAtStage0) {
  algo::CasConsensus protocol(3);
  const auto chain =
      valency::run_theorem13_chain(protocol, {0, 1, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
  ASSERT_EQ(chain.stages.size(), 1u);
  EXPECT_TRUE(chain.stages[0].report.config_class.recording);
  const std::string text = chain.render(protocol);
  EXPECT_NE(text.find("n-RECORDING configuration"), std::string::npos);
}

TEST(Theorem13Chain, TnnRecoverableReachesRecording) {
  algo::TnnRecoverableConsensus protocol(5, 3, 3);
  const auto chain = valency::run_theorem13_chain(protocol, {0, 1, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
  // The endpoint certifies the type is n-recording for n = processes.
  const auto& report = chain.stages.back().report;
  ASSERT_TRUE(report.same_object);
  EXPECT_TRUE(hierarchy::check_recording(
                  protocol.object_type(report.object), 3)
                  .holds);
}

TEST(Theorem13Chain, UnanimousInputsFailHonestly) {
  algo::CasConsensus protocol(2);
  const auto chain = valency::run_theorem13_chain(protocol, {0, 0});
  EXPECT_FALSE(chain.reached_recording);
  EXPECT_FALSE(chain.failure.empty());
}

// ---------------------------------------------------------------------------
// Sticky-bit protocol
// ---------------------------------------------------------------------------

TEST(StickyConsensus, SafeAndLiveUnderAllCrashRegimes) {
  for (int n = 2; n <= 4; ++n) {
    algo::StickyConsensus protocol(n);
    valency::SafetyOptions options;
    options.crash_mode = valency::CrashMode::kBoth;
    const auto r = valency::check_safety_all_inputs(protocol, options);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.violation;
    EXPECT_TRUE(valency::check_recoverable_wait_freedom(
                    protocol, valency::all_binary_inputs(n)[1])
                    .wait_free);
  }
}

TEST(StickyConsensus, Theorem13ChainAgrees) {
  algo::StickyConsensus protocol(3);
  const auto chain = valency::run_theorem13_chain(protocol, {1, 0, 1});
  EXPECT_TRUE(chain.reached_recording) << chain.failure;
}

}  // namespace
}  // namespace rcons
