// Robustness of the persistent verdict cache: every corruption mode must
// degrade to a counted miss and a recompute, never a wrong verdict or a
// crash, and concurrent writers must be safe (this file runs under TSan in
// CI).
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "reduction/verdict_cache.hpp"
#include "trace/metrics.hpp"

namespace {

namespace fs = std::filesystem;
using rcons::reduction::VerdictCache;

std::int64_t counter(const char* name) {
  return rcons::trace::metrics().counter(name);
}

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rcons-cache-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The single .vc entry file in the cache directory.
  std::string entry_file() const {
    std::string found;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".vc") {
        EXPECT_TRUE(found.empty()) << "more than one entry";
        found = e.path().string();
      }
    }
    EXPECT_FALSE(found.empty()) << "no entry written";
    return found;
  }

  std::string dir_;
};

TEST_F(CacheTest, RoundTripAndCounters) {
  const VerdictCache cache(dir_);
  ASSERT_TRUE(cache.enabled());
  const std::int64_t misses = counter("cache.misses");
  const std::int64_t hits = counter("cache.hits");
  const std::int64_t stores = counter("cache.stores");

  EXPECT_EQ(cache.lookup("discerning|n=3|z=inf|spec=k"), std::nullopt);
  EXPECT_EQ(counter("cache.misses"), misses + 1);

  cache.store("discerning|n=3|z=inf|spec=k", "holds=1");
  EXPECT_EQ(counter("cache.stores"), stores + 1);
  EXPECT_EQ(cache.lookup("discerning|n=3|z=inf|spec=k"),
            std::optional<std::string>("holds=1"));
  EXPECT_EQ(counter("cache.hits"), hits + 1);

  // A different key is a clean miss, not a false hit.
  EXPECT_EQ(cache.lookup("discerning|n=4|z=inf|spec=k"), std::nullopt);
}

TEST_F(CacheTest, DisabledCacheIsInert) {
  const VerdictCache cache{std::string()};
  EXPECT_FALSE(cache.enabled());
  const std::int64_t misses = counter("cache.misses");
  cache.store("k", "v");
  EXPECT_EQ(cache.lookup("k"), std::nullopt);
  // Disabled caches do not even count misses.
  EXPECT_EQ(counter("cache.misses"), misses);
}

TEST_F(CacheTest, TruncatedEntryIsSkippedAndRewritable) {
  const VerdictCache cache(dir_);
  cache.store("k1", "holds=1");
  const std::string path = entry_file();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "rcons-cache v1\nsalt: ";
  }
  const std::int64_t corrupt = counter("cache.skipped_corrupt");
  EXPECT_EQ(cache.lookup("k1"), std::nullopt);
  EXPECT_EQ(counter("cache.skipped_corrupt"), corrupt + 1);
  // The recompute path stores over the bad entry and recovers.
  cache.store("k1", "holds=1");
  EXPECT_EQ(cache.lookup("k1"), std::optional<std::string>("holds=1"));
}

TEST_F(CacheTest, GarbageEntryIsSkipped) {
  const VerdictCache cache(dir_);
  cache.store("k1", "holds=0");
  {
    std::ofstream out(entry_file(), std::ios::trunc);
    out << "\x7f\x45\x4c\x46 not a cache entry\nat\nall\nreally\nnope\n";
  }
  const std::int64_t corrupt = counter("cache.skipped_corrupt");
  EXPECT_EQ(cache.lookup("k1"), std::nullopt);
  EXPECT_EQ(counter("cache.skipped_corrupt"), corrupt + 1);
}

TEST_F(CacheTest, StaleSaltIsSkipped) {
  const VerdictCache cache(dir_);
  cache.store("k1", "holds=1");
  const std::string path = entry_file();
  // Rewrite the entry as a past engine version would have: same shape,
  // older salt. The entry is well-formed, so it must count as stale, not
  // corrupt.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "rcons-cache v1\n"
        << "salt: rcons-verdict-v0\n"
        << "key: k1\n"
        << "payload: holds=1\n"
        << "end\n";
  }
  const std::int64_t stale = counter("cache.skipped_stale");
  const std::int64_t corrupt = counter("cache.skipped_corrupt");
  EXPECT_EQ(cache.lookup("k1"), std::nullopt);
  EXPECT_EQ(counter("cache.skipped_stale"), stale + 1);
  EXPECT_EQ(counter("cache.skipped_corrupt"), corrupt);
}

TEST_F(CacheTest, ForeignKeyInEntryIsAMissNotAHit) {
  const VerdictCache cache(dir_);
  cache.store("k1", "holds=1");
  // Simulate a 64-bit file-name hash collision: the file exists but stores
  // a different full key. Correctness demands a miss.
  {
    std::ofstream out(entry_file(), std::ios::trunc);
    out << "rcons-cache v1\n"
        << "salt: " << rcons::reduction::kEngineVersionSalt << "\n"
        << "key: some-other-key\n"
        << "payload: holds=0\n"
        << "end\n";
  }
  EXPECT_EQ(cache.lookup("k1"), std::nullopt);
}

TEST_F(CacheTest, UnwritableDirectoryCountsWriteErrors) {
  // A path under a regular FILE cannot be created as a directory.
  const std::string blocker = dir_;
  { std::ofstream out(blocker); }
  const VerdictCache cache(blocker + "/sub");
  const std::int64_t errors = counter("cache.write_errors");
  cache.store("k1", "holds=1");
  EXPECT_EQ(counter("cache.write_errors"), errors + 1);
  EXPECT_EQ(cache.lookup("k1"), std::nullopt);
}

TEST_F(CacheTest, ConcurrentWritersAndReadersConverge) {
  const VerdictCache cache(dir_);
  constexpr int kThreads = 8;
  constexpr int kKeys = 5;
  constexpr int kRounds = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::string key = "k" + std::to_string((t + round) % kKeys);
        const std::string payload = "holds=" + std::to_string((t + round) % 2);
        cache.store(key, payload);
        // Whatever a racing lookup sees must be a complete entry for the
        // right key (atomic rename: old payload, new payload, or miss —
        // never a torn read).
        if (const auto seen = cache.lookup(key)) {
          EXPECT_TRUE(*seen == "holds=0" || *seen == "holds=1") << *seen;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // After the dust settles every key resolves to some complete entry.
  for (int k = 0; k < kKeys; ++k) {
    const auto seen = cache.lookup("k" + std::to_string(k));
    ASSERT_TRUE(seen.has_value());
    EXPECT_TRUE(*seen == "holds=0" || *seen == "holds=1") << *seen;
  }
  // No temp droppings left behind.
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().extension(), ".vc") << e.path();
  }
}

}  // namespace
