// Unit tests for src/sched: the E_z / E_z* crash-budget sets (including
// the paper's own prefix-closure example), one-shot schedule enumeration,
// and the adversary-driven runner.
#include <gtest/gtest.h>

#include <set>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "sched/adversary.hpp"
#include "sched/crash_budget.hpp"
#include "sched/one_shot.hpp"
#include "spec/catalog.hpp"

namespace rcons::sched {
namespace {

using exec::Event;
using exec::Schedule;

Schedule parse(std::initializer_list<const char*> tokens) {
  Schedule s;
  for (const char* tok : tokens) {
    const int pid = tok[1] - '0';
    s.push_back(tok[0] == 'c' ? Event::crash(pid) : Event::step(pid));
  }
  return s;
}

TEST(CrashBudget, PaperPrefixClosureExample) {
  // Section 3: with n = 2, exec(C, p1 c1 p0) is in E_1(C) but NOT in
  // E_1*(C), because after the prefix p1 c1 the crash count of p1 (1)
  // exceeds z*n times the steps of p0 so far (0).
  const Schedule s = parse({"p1", "c1", "p0"});
  EXPECT_TRUE(in_ez(s, 2, 1));
  EXPECT_FALSE(in_ez_star(s, 2, 1));
}

TEST(CrashBudget, P0NeverCrashes) {
  EXPECT_FALSE(in_ez(parse({"p1", "c0"}), 2, 1));
  EXPECT_FALSE(in_ez_star(parse({"p1", "c0"}), 2, 1));
}

TEST(CrashBudget, StarIsSubsetOfPlain) {
  // Every E_z* schedule is an E_z schedule.
  const std::vector<Schedule> samples = {
      parse({"p0", "c1"}),
      parse({"p0", "p1", "c1", "c1"}),
      parse({"p0", "c1", "p0", "c1", "p1"}),
      parse({"p1", "p0", "c1"}),
  };
  for (const auto& s : samples) {
    if (in_ez_star(s, 2, 1)) {
      EXPECT_TRUE(in_ez(s, 2, 1));
    }
  }
}

TEST(CrashBudget, BudgetScalesWithZ) {
  // p0 takes 1 step; p1 may crash at most z*n = 2z times.
  Schedule s = parse({"p0"});
  for (int i = 0; i < 2; ++i) s.push_back(Event::crash(1));
  EXPECT_TRUE(in_ez_star(s, 2, 1));
  s.push_back(Event::crash(1));  // third crash
  EXPECT_FALSE(in_ez_star(s, 2, 1));
  EXPECT_TRUE(in_ez_star(s, 2, 2));  // z = 2 allows up to 4
}

TEST(CrashBudget, HigherIdsCountAllLowerSteps) {
  // n = 3: crashes of p2 are bounded by z*n*(steps of p0 AND p1).
  const Schedule s = parse({"p1", "c2", "c2", "c2"});
  EXPECT_TRUE(in_ez_star(s, 3, 1));  // 3 <= 1*3*1
  Schedule s4 = s;
  s4.push_back(Event::crash(2));
  EXPECT_FALSE(in_ez_star(s4, 3, 1));  // 4 > 3
}

TEST(CrashBudget, AccountantMatchesWholeScheduleCheck) {
  // Property: incremental accounting agrees with in_ez_star on a sweep of
  // random-ish schedules.
  const int n = 3;
  const int z = 1;
  std::uint64_t lcg = 12345;
  for (int trial = 0; trial < 500; ++trial) {
    Schedule s;
    CrashAccountant acct(n, z);
    bool star_ok = true;
    for (int len = 0; len < 12; ++len) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      const int pid = static_cast<int>((lcg >> 33) % n);
      const bool crash = ((lcg >> 17) & 3u) == 0;  // 25% crashes
      const Event e = crash ? Event::crash(pid) : Event::step(pid);
      s.push_back(e);
      if (crash) {
        if (pid == 0 || !acct.crash_allowed(pid)) {
          star_ok = false;
          break;
        }
        acct.on_crash(pid);
      } else {
        acct.on_step(pid);
      }
    }
    if (star_ok) {
      EXPECT_TRUE(in_ez_star(s, n, z)) << trial;
    } else {
      EXPECT_FALSE(in_ez_star(s, n, z)) << trial;
    }
  }
}

TEST(CrashBudget, AccountantBookkeeping) {
  CrashAccountant acct(3, 2);
  EXPECT_FALSE(acct.crash_allowed(0));
  EXPECT_FALSE(acct.crash_allowed(2));  // no steps below yet
  acct.on_step(0);
  EXPECT_EQ(acct.steps_below(1), 1);
  EXPECT_EQ(acct.steps_below(2), 1);
  EXPECT_EQ(acct.remaining_crash_budget(2), 6);  // z*n*1 = 6
  acct.on_step(2);
  EXPECT_EQ(acct.steps_below(1), 1) << "p2's steps don't fund p1";
  EXPECT_TRUE(acct.crash_allowed(1));
  acct.on_crash(1);
  EXPECT_EQ(acct.crashes(1), 1);
  EXPECT_EQ(acct.remaining_crash_budget(1), 5);
}

TEST(CrashBudget, BoundaryExactlyAtBudgetIsInclusive) {
  // The paper says "AT MOST z*n times the steps": a schedule holding
  // exactly crashes == z*n*steps is in both sets; one more crash leaves
  // them. n = 2, z = 1, one step by p0 funds exactly 2 crashes of p1.
  Schedule s = parse({"p0", "c1", "c1"});
  EXPECT_TRUE(in_ez(s, 2, 1));
  EXPECT_TRUE(in_ez_star(s, 2, 1));
  s.push_back(Event::crash(1));
  EXPECT_FALSE(in_ez(s, 2, 1));
  EXPECT_FALSE(in_ez_star(s, 2, 1));
}

TEST(CrashBudget, AccountantAdmitsExactlyTheBudget) {
  // crash_allowed must admit exactly z*n*steps_below crashes — no
  // off-by-one in either direction at the boundary.
  const int n = 2;
  const int z = 3;
  CrashAccountant acct(n, z);
  acct.on_step(0);
  const std::int64_t limit = static_cast<std::int64_t>(z) * n;  // 6
  for (std::int64_t k = 0; k < limit; ++k) {
    EXPECT_TRUE(acct.crash_allowed(1)) << "crash " << k << " of " << limit;
    EXPECT_EQ(acct.remaining_crash_budget(1), limit - k);
    acct.on_crash(1);
  }
  EXPECT_FALSE(acct.crash_allowed(1));
  EXPECT_EQ(acct.remaining_crash_budget(1), 0);
}

TEST(CrashBudget, ZeroStepsBelowMeansZeroCrashes) {
  // The z*n*0 = 0 boundary: with no funding steps no crash is admissible
  // and the remaining budget is exactly 0 for every process.
  CrashAccountant acct(4, 7);
  for (int pid = 1; pid < 4; ++pid) {
    EXPECT_FALSE(acct.crash_allowed(pid));
    EXPECT_EQ(acct.remaining_crash_budget(pid), 0);
  }
  EXPECT_FALSE(in_ez(parse({"c1"}), 2, 1));
  EXPECT_FALSE(in_ez_star(parse({"c1"}), 2, 1));
}

TEST(CrashBudget, LargeBudgetsStayExactInt64) {
  // z*n*steps = 3 * 1025 * 2^20 = 3'224'371'200 overflows int32 and is
  // not representable in a float (24-bit mantissa), so any float
  // intermediate or narrowing in the budget arithmetic shows up here as
  // an inexact remaining budget.
  const int z = 1 << 20;
  CrashAccountant acct(3, z);
  for (int i = 0; i < 1025; ++i) acct.on_step(0);
  const std::int64_t limit = 3LL * 1025LL * (1LL << 20);
  EXPECT_EQ(acct.remaining_crash_budget(1), limit);
  EXPECT_EQ(acct.remaining_crash_budget(2), limit);
  EXPECT_TRUE(acct.crash_allowed(1));
  acct.on_crash(1);
  EXPECT_EQ(acct.remaining_crash_budget(1), limit - 1);
  EXPECT_EQ(acct.remaining_crash_budget(2), limit)
      << "p1's crashes must not drain p2's budget";
}

TEST(OneShot, CountMatchesEnumeration) {
  for (int k = 0; k <= 5; ++k) {
    std::vector<int> pids;
    for (int i = 0; i < k; ++i) pids.push_back(i * 2);  // arbitrary ids
    std::set<std::vector<int>> seen;
    for_each_one_shot(pids, [&](const std::vector<int>& s) {
      EXPECT_TRUE(seen.insert(s).second);
    });
    EXPECT_EQ(seen.size(), one_shot_count(k));
  }
}

TEST(OneShot, SchedulesUseGivenPids) {
  for_each_one_shot({3, 7}, [&](const std::vector<int>& s) {
    for (int pid : s) {
      EXPECT_TRUE(pid == 3 || pid == 7);
    }
  });
}

TEST(OneShot, StartingWithFilter) {
  int count = 0;
  for_each_one_shot_starting_with(
      {0, 1, 2}, [](int pid) { return pid == 1; },
      [&](const std::vector<int>& s) {
        EXPECT_EQ(s.front(), 1);
        ++count;
      });
  // Nonempty schedules starting with p1: 1 + 2 + 2 = 5
  // (p1; p1,p0; p1,p2; p1,p0,p2; p1,p2,p0).
  EXPECT_EQ(count, 5);
}

TEST(Adversary, RoundRobinDrivesToAllDecided) {
  algo::CasConsensus protocol(3);
  RoundRobinAdversary adv(3);
  const DrivenRunResult r = drive(protocol, {1, 0, 1}, adv);
  EXPECT_TRUE(r.all_decided);
  EXPECT_FALSE(r.log.agreement_violated());
  EXPECT_EQ(r.crashes, 0);
  EXPECT_EQ(r.log.decided[0], 1);  // p0 stepped first under round-robin
}

TEST(Adversary, RandomCrashAdversaryRespectsBudget) {
  algo::CasConsensus protocol(3);
  RandomCrashAdversary adv(3, 0.4, /*seed=*/99);
  DrivenRunOptions options;
  options.regime = CrashRegime::kBudgeted;
  const DrivenRunResult r = drive(protocol, {0, 1, 0}, adv, options);
  EXPECT_TRUE(r.all_decided);
  EXPECT_FALSE(r.log.agreement_violated());
}

TEST(Adversary, CrashRegimeNoneVetoesAllCrashes) {
  algo::CasConsensus protocol(2);
  RandomCrashAdversary adv(2, 0.9, /*seed=*/7);
  DrivenRunOptions options;
  options.regime = CrashRegime::kNone;
  const DrivenRunResult r = drive(protocol, {0, 1}, adv, options);
  EXPECT_TRUE(r.all_decided);
  EXPECT_EQ(r.crashes, 0);
  EXPECT_GT(r.crashes_denied, 0);
}

/// Plays a fixed event prefix, then falls back to round-robin.
class ScriptedAdversary : public Adversary {
 public:
  ScriptedAdversary(Schedule script, int n)
      : script_(std::move(script)), fallback_(n) {}
  std::optional<exec::Event> next(const AdversaryView& view) override {
    if (pos_ < script_.size()) return script_[pos_++];
    return fallback_.next(view);
  }

 private:
  Schedule script_;
  std::size_t pos_ = 0;
  RoundRobinAdversary fallback_;
};

TEST(Adversary, StrictPersistencyDropsRelaxedWritesOnCrash) {
  // recording_consensus with relax_proposal_writes: p0's first step is a
  // relaxed proposal write, so crashing p0 immediately afterwards must
  // revert the register (exactly one drop) — and only in strict mode.
  algo::RecordingConsensus protocol(spec::make_cas(3), 2,
                                    /*relax_proposal_writes=*/true);
  for (const bool strict : {true, false}) {
    ScriptedAdversary adv(parse({"p0", "c0"}), 2);
    DrivenRunOptions options;
    options.regime = CrashRegime::kUnbounded;
    options.strict_persistency = strict;
    const DrivenRunResult r = drive(protocol, {1, 1}, adv, options);
    EXPECT_TRUE(r.all_decided) << "strict=" << strict;
    EXPECT_EQ(r.dropped_stores, strict ? 1 : 0);
  }
}

TEST(Adversary, StrictPersistencyIsNeutralForDurableProtocols) {
  // Every shipped protocol invokes durably, so strict mode never finds
  // anything to drop and the run is event-for-event identical.
  algo::CasConsensus protocol(3);
  for (const bool strict : {false, true}) {
    RandomCrashAdversary adv(3, 0.4, /*seed=*/99);
    DrivenRunOptions options;
    options.strict_persistency = strict;
    const DrivenRunResult r = drive(protocol, {0, 1, 0}, adv, options);
    EXPECT_TRUE(r.all_decided);
    EXPECT_FALSE(r.log.agreement_violated());
    EXPECT_EQ(r.dropped_stores, 0);
  }
}

TEST(Adversary, UnboundedCrashesCanBreakTasRacing) {
  // Golab's result realized empirically: with unbounded individual crashes
  // the TAS racing protocol eventually violates agreement for some seed.
  algo::TasRacingConsensus protocol;
  bool violated = false;
  for (std::uint64_t seed = 0; seed < 50 && !violated; ++seed) {
    RandomCrashAdversary adv(2, 0.3, seed);
    DrivenRunOptions options;
    options.regime = CrashRegime::kUnbounded;
    options.max_events = 10000;
    const DrivenRunResult r = drive(protocol, {0, 1}, adv, options);
    violated = r.log.agreement_violated();
  }
  EXPECT_TRUE(violated);
}

}  // namespace
}  // namespace rcons::sched
