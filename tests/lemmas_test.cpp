// Lemma-level reproduction (experiment E3 continued): for each correct
// recoverable protocol, find a critical execution and mechanically verify
// the Section 3 lemmas AT that execution — Lemma 7 (teams nonempty),
// Lemma 8 (bivalence w.r.t. fresh budgets), Lemma 9 (common poised
// object), Lemma 10 (cross-team value collisions only via p_{n-1} alone).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "spec/catalog.hpp"
#include "valency/critical.hpp"
#include "valency/lemmas.hpp"

namespace rcons::valency {
namespace {

struct LemmaCase {
  std::string name;
  std::function<std::unique_ptr<exec::Protocol>()> make;
  std::vector<int> inputs;
};

class Section3Lemmas : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(Section3Lemmas, AllLemmasHoldAtTheCriticalExecution) {
  const auto protocol = GetParam().make();
  const auto report = find_critical_execution(*protocol, GetParam().inputs);
  ASSERT_TRUE(report.has_value()) << GetParam().name;
  const std::string failures = verify_section3_lemmas(*protocol, *report);
  EXPECT_TRUE(failures.empty()) << GetParam().name << ":\n" << failures;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Section3Lemmas,
    ::testing::Values(
        LemmaCase{"cas2",
                  [] { return std::make_unique<algo::CasConsensus>(2); },
                  {0, 1}},
        LemmaCase{"cas3",
                  [] { return std::make_unique<algo::CasConsensus>(3); },
                  {0, 1, 1}},
        LemmaCase{"cas3_alt",
                  [] { return std::make_unique<algo::CasConsensus>(3); },
                  {1, 1, 0}},
        LemmaCase{"tnn_4_2",
                  [] {
                    return std::make_unique<algo::TnnRecoverableConsensus>(
                        4, 2, 2);
                  },
                  {0, 1}},
        LemmaCase{"tnn_5_3",
                  [] {
                    return std::make_unique<algo::TnnRecoverableConsensus>(
                        5, 3, 3);
                  },
                  {0, 1, 1}},
        LemmaCase{"recording_cas_2",
                  [] {
                    return std::make_unique<algo::RecordingConsensus>(
                        spec::make_cas(3), 2);
                  },
                  {1, 0}},
        LemmaCase{"recording_sticky_2",
                  [] {
                    return std::make_unique<algo::RecordingConsensus>(
                        spec::make_sticky_bit(), 2);
                  },
                  {0, 1}}),
    [](const ::testing::TestParamInfo<LemmaCase>& info) {
      return info.param.name;
    });

TEST(Section3LemmasDetail, Lemma7FlagsMissingTeam) {
  CriticalReport report;
  report.team_of = {0, 0};
  EXPECT_NE(verify_lemma7(report).find("team 1 is empty"), std::string::npos);
  report.team_of = {0, -1};
  EXPECT_NE(verify_lemma7(report).find("no team"), std::string::npos);
}

TEST(Section3LemmasDetail, Lemma9FlagsSplitObjects) {
  CriticalReport report;
  report.same_object = false;
  EXPECT_FALSE(verify_lemma9(report).empty());
}

TEST(Section3LemmasDetail, Lemma10HoldsAcrossZ) {
  algo::TnnRecoverableConsensus protocol(4, 2, 2);
  for (int z = 1; z <= 3; ++z) {
    CriticalSearchOptions options;
    options.z = z;
    const auto report = find_critical_execution(protocol, {0, 1}, options);
    ASSERT_TRUE(report.has_value()) << "z=" << z;
    EXPECT_TRUE(verify_lemma10(protocol, *report).empty()) << "z=" << z;
    EXPECT_TRUE(verify_lemma8(protocol, *report, z).empty()) << "z=" << z;
  }
}

}  // namespace
}  // namespace rcons::valency
