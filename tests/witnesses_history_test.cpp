// Tests for witness enumeration (hierarchy/witnesses) and for the
// linearizability checker + history recorder (runtime/history).
#include <gtest/gtest.h>

#include <thread>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "hierarchy/witnesses.hpp"
#include "runtime/history.hpp"
#include "runtime/live_object.hpp"
#include "runtime/pmem.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"

namespace rcons {
namespace {

using hierarchy::enumerate_witnesses;
using hierarchy::WitnessKind;

TEST(Witnesses, EveryEnumeratedWitnessChecksOut) {
  const spec::ObjectType cas = spec::make_cas(3);
  const auto e = enumerate_witnesses(cas, 3, WitnessKind::kRecording, 64);
  EXPECT_GT(e.total_found, 0u);
  for (const auto& w : e.witnesses) {
    EXPECT_TRUE(hierarchy::is_recording_witness(cas, w));
  }
}

TEST(Witnesses, NonhidingIsASubsetOfRecording) {
  const spec::ObjectType cas = spec::make_cas(3);
  const auto all = enumerate_witnesses(cas, 2, WitnessKind::kRecording, 1024);
  const auto nh =
      enumerate_witnesses(cas, 2, WitnessKind::kRecordingNonhiding, 1024);
  EXPECT_LE(nh.total_found, all.total_found);
  EXPECT_GT(nh.total_found, 0u);
  for (const auto& w : nh.witnesses) {
    EXPECT_TRUE(hierarchy::is_recording_witness(cas, w));
    EXPECT_TRUE(hierarchy::is_nonhiding_recording_witness(cas, w));
  }
}

TEST(Witnesses, NonWitnessTypeHasNone) {
  const spec::ObjectType reg = spec::make_register(2);
  const auto e = enumerate_witnesses(reg, 2, WitnessKind::kDiscerning, 8);
  EXPECT_EQ(e.total_found, 0u);
  EXPECT_TRUE(e.witnesses.empty());
  EXPECT_GT(e.assignments_tried, 0u);
}

TEST(Witnesses, MaxCountCapsStorageNotCounting) {
  const spec::ObjectType sticky = spec::make_sticky_bit();
  const auto capped = enumerate_witnesses(sticky, 2, WitnessKind::kRecording,
                                          /*max_count=*/1);
  EXPECT_EQ(capped.witnesses.size(), 1u);
  EXPECT_GE(capped.total_found, 1u);
}

// ---------------------------------------------------------------------------
// Linearizability
// ---------------------------------------------------------------------------

runtime::OpRecord rec(int thread, spec::OpId op, spec::ResponseId resp,
                      std::uint64_t invoke, std::uint64_t ret) {
  return runtime::OpRecord{thread, op, resp, invoke, ret};
}

TEST(Linearizability, SequentialHistoryAccepted) {
  const spec::ObjectType tas = spec::make_test_and_set();
  const spec::OpId op = *tas.find_op("tas");
  const spec::ResponseId won = *tas.find_response("won");
  const spec::ResponseId lost = *tas.find_response("lost");
  const std::vector<runtime::OpRecord> h = {
      rec(0, op, won, 1, 2),
      rec(1, op, lost, 3, 4),
  };
  EXPECT_TRUE(runtime::is_linearizable(tas, *tas.find_value("0"), h));
}

TEST(Linearizability, WrongOrderRejected) {
  // Thread 1 "lost" strictly before thread 0 "won": impossible.
  const spec::ObjectType tas = spec::make_test_and_set();
  const spec::OpId op = *tas.find_op("tas");
  const spec::ResponseId won = *tas.find_response("won");
  const spec::ResponseId lost = *tas.find_response("lost");
  const std::vector<runtime::OpRecord> h = {
      rec(1, op, lost, 1, 2),
      rec(0, op, won, 3, 4),
  };
  EXPECT_FALSE(runtime::is_linearizable(tas, *tas.find_value("0"), h));
}

TEST(Linearizability, OverlappingOpsMayCommuteEitherWay) {
  // Two overlapping tas ops: one won, one lost — fine in either real-time
  // arrangement because they overlap.
  const spec::ObjectType tas = spec::make_test_and_set();
  const spec::OpId op = *tas.find_op("tas");
  const spec::ResponseId won = *tas.find_response("won");
  const spec::ResponseId lost = *tas.find_response("lost");
  const std::vector<runtime::OpRecord> h = {
      rec(0, op, lost, 1, 10),
      rec(1, op, won, 2, 9),
  };
  EXPECT_TRUE(runtime::is_linearizable(tas, *tas.find_value("0"), h));
}

TEST(Linearizability, TwoWinnersRejected) {
  const spec::ObjectType tas = spec::make_test_and_set();
  const spec::OpId op = *tas.find_op("tas");
  const spec::ResponseId won = *tas.find_response("won");
  const std::vector<runtime::OpRecord> h = {
      rec(0, op, won, 1, 10),
      rec(1, op, won, 2, 9),
  };
  EXPECT_FALSE(runtime::is_linearizable(tas, *tas.find_value("0"), h));
}

TEST(Linearizability, CounterHistoryChecked) {
  const spec::ObjectType faa = spec::make_fetch_and_add(8);
  const spec::OpId op = *faa.find_op("faa");
  const auto old_resp = [&](int k) {
    return *faa.find_response("old_" + std::to_string(k));
  };
  // Three overlapping increments returning 0, 1, 2 in some overlap.
  std::vector<runtime::OpRecord> ok = {
      rec(0, op, old_resp(1), 1, 8),
      rec(1, op, old_resp(0), 2, 7),
      rec(2, op, old_resp(2), 3, 9),
  };
  EXPECT_TRUE(runtime::is_linearizable(faa, *faa.find_value("c0"), ok));
  // A duplicated old-value is impossible.
  std::vector<runtime::OpRecord> bad = {
      rec(0, op, old_resp(0), 1, 8),
      rec(1, op, old_resp(0), 2, 7),
  };
  EXPECT_FALSE(runtime::is_linearizable(faa, *faa.find_value("c0"), bad));
}

TEST(Linearizability, LiveObjectStressHistoriesAreLinearizable) {
  // End-to-end: hammer a live T_{5,2} object from 4 threads, record the
  // history, and verify it against the sequential spec.
  const spec::ObjectType tnn = spec::make_tnn(5, 2);
  for (int round = 0; round < 20; ++round) {
    runtime::PersistentArena arena;
    runtime::LiveObject obj(tnn, *tnn.find_value("s"), arena);
    runtime::HistoryRecorder recorder;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const spec::OpId ops[3] = {*tnn.find_op("op_0"), *tnn.find_op("op_1"),
                                   *tnn.find_op("op_R")};
        for (int i = 0; i < 3; ++i) {
          obj.apply_recorded(ops[(t + i) % 3], t, recorder);
        }
      });
    }
    for (auto& th : threads) th.join();
    const auto history = recorder.take();
    ASSERT_EQ(history.size(), 12u);
    EXPECT_TRUE(
        runtime::is_linearizable(tnn, *tnn.find_value("s"), history))
        << "round " << round;
  }
}

TEST(Linearizability, RecorderTimestampsAreOrdered) {
  runtime::HistoryRecorder recorder;
  const auto t1 = recorder.begin();
  recorder.finish(0, 0, 0, t1);
  const auto history = recorder.take();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_LT(history[0].invoke_ts, history[0].return_ts);
}

}  // namespace
}  // namespace rcons
