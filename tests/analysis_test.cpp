// Tests for the rcons::analysis linters: every rule in the registry must
// fire on its fixture (with the registered ID and severity) and must stay
// quiet on the shipped catalog types and protocols. The broken .type
// fixtures live in tests/fixtures/; broken protocols are defined locally
// because no shipped protocol is (or should be) broken enough.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "algo/cas_consensus.hpp"
#include "algo/naive_register.hpp"
#include "algo/propose_consensus.hpp"
#include "algo/protocol_base.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "analysis/analysis.hpp"
#include "spec/builder.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"

namespace rcons::analysis {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(RCONS_SOURCE_DIR) + "/tests/fixtures/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// True iff the report contains a finding for `rule_id` at exactly the
/// severity the registry declares for it.
bool fires(const Report& report, const char* rule_id) {
  const Severity expected = rule(rule_id).severity;
  return std::any_of(report.diagnostics().begin(), report.diagnostics().end(),
                     [&](const Diagnostic& d) {
                       return d.rule == rule_id && d.severity == expected;
                     });
}

// ---- Rule registry ----

TEST(Rules, IdsAreUniqueAndNamed) {
  std::set<std::string> ids;
  for (const RuleInfo& info : all_rules()) {
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
    EXPECT_STRNE(info.name, "");
    EXPECT_STRNE(info.summary, "");
  }
  EXPECT_GE(ids.size(), 21u);  // 8 TS + 7 PL + 6 RC
}

TEST(Rules, LookupMatchesRegistry) {
  EXPECT_STREQ(rule(kRuleUnreachableValue).id, "TS001");
  EXPECT_EQ(rule(kRuleUnreachableValue).severity, Severity::kError);
  EXPECT_EQ(rule(kRuleOpClassification).severity, Severity::kNote);
  EXPECT_EQ(rule(kRuleCrashDivergentDecision).severity, Severity::kWarning);
}

// ---- Broken fixtures: each must trip its rule at error severity ----

TEST(TypeLintFixtures, UnreachableValueWithDeclaredInitialIsError) {
  const Report r = lint_type_text(read_fixture("broken_unreachable_value.type"),
                                  "broken_unreachable_value.type");
  EXPECT_TRUE(fires(r, kRuleUnreachableValue)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(TypeLintFixtures, DeadOpIsError) {
  const Report r = lint_type_text(read_fixture("broken_dead_op.type"),
                                  "broken_dead_op.type");
  EXPECT_TRUE(fires(r, kRuleDeadOp)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(TypeLintFixtures, AliasedResponseIsError) {
  const Report r = lint_type_text(read_fixture("broken_aliased_response.type"),
                                  "broken_aliased_response.type");
  EXPECT_TRUE(fires(r, kRuleAliasedResponse)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(TypeLintFixtures, NondeterministicRowIsError) {
  const Report r =
      lint_type_text(read_fixture("broken_nondeterministic_row.type"),
                     "broken_nondeterministic_row.type");
  EXPECT_TRUE(fires(r, kRuleNondeterministicRow)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

// ---- Rules not covered by the fixtures ----

TEST(TypeLint, UnreachableValueWithoutInitialIsOnlyANote) {
  // Same machine as the fixture but no `initial` directive: the orphan
  // value could legitimately serve as an initial value in an assignment.
  spec::TypeBuilder b("no_initial");
  b.value("v0");
  b.value("v1");
  b.value("orphan");
  b.op("flip");
  b.on("v0", "flip").then("v1").returns("moved");
  b.on("v1", "flip").then("v0").returns("moved");
  b.on("orphan", "flip").then("v0").returns("escaped");
  const Report r = lint_type(b.build(), TypeLintOptions{});
  bool found_note = false;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == kRuleUnreachableValue) {
      EXPECT_EQ(d.severity, Severity::kNote);
      found_note = true;
    }
  }
  EXPECT_TRUE(found_note) << r.render_text();
  EXPECT_FALSE(r.has_findings_at_least(Severity::kError));
}

TEST(TypeLint, ShadowedReadIsWarning) {
  // `look` is injective on the reachable values {a, b} but aliases the
  // unreachable value c, so op_is_read rejects it: TS004, not TS003.
  spec::TypeBuilder b("shadowed");
  b.value("a");
  b.value("b");
  b.value("c");
  b.op("look");
  b.op("go");
  b.on("a", "look").returns("ra");
  b.on("b", "look").returns("rb");
  b.on("c", "look").returns("ra");
  b.on("a", "go").then("b").returns("done");
  b.on("b", "go").then("a").returns("done");
  b.on("c", "go").then("a").returns("done");
  const spec::ObjectType t = b.build();
  EXPECT_FALSE(t.op_is_read(*t.find_op("look")));
  const Report r = lint_type(t, TypeLintOptions{});
  EXPECT_TRUE(fires(r, kRuleShadowedRead)) << r.render_text();
  EXPECT_FALSE(fires(r, kRuleAliasedResponse)) << r.render_text();
  EXPECT_FALSE(r.has_findings_at_least(Severity::kError));
}

TEST(TypeLint, UnusedResponseIsWarning) {
  spec::TypeBuilder b("unused_resp");
  b.value("a");
  b.op("spin");
  b.response("never_returned");
  b.on("a", "spin").returns("done");
  const Report r = lint_type(b.build(), TypeLintOptions{});
  EXPECT_TRUE(fires(r, kRuleUnusedResponse)) << r.render_text();
}

TEST(TypeLint, ParseErrorSurfacesAsTotalityAudit) {
  const Report r = lint_type_text("type t\nfrobnicate\n", "garbage.type");
  ASSERT_EQ(r.diagnostics().size(), 1u);
  EXPECT_EQ(r.diagnostics()[0].rule, kRuleTotalityAudit);
  EXPECT_EQ(r.diagnostics()[0].severity, Severity::kError);
  EXPECT_EQ(r.diagnostics()[0].subject, "garbage.type");
  EXPECT_EQ(r.diagnostics()[0].location, "line 2");
}

TEST(TypeLint, ClassifiesOpsOfTestAndSet) {
  const Report r = lint_type(spec::make_test_and_set(), TypeLintOptions{});
  // tas is an idempotent mutator, read is a read; both get TS007 notes.
  int classifications = 0;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.rule == kRuleOpClassification) ++classifications;
  }
  EXPECT_EQ(classifications, 2) << r.render_text();
  EXPECT_FALSE(r.has_findings_at_least(Severity::kWarning))
      << r.render_text();
}

TEST(TypeLint, CatalogTypesHaveNoErrors) {
  for (const spec::ObjectType& t :
       {spec::make_register(4), spec::make_test_and_set(), spec::make_swap(3),
        spec::make_fetch_and_add(5), spec::make_cas(3), spec::make_sticky(3),
        spec::make_consensus_object(3), spec::make_queue(2),
        spec::make_tnn(5, 2), spec::make_xn(4)}) {
    const Report r = lint_type(t, TypeLintOptions{});
    EXPECT_FALSE(r.has_findings_at_least(Severity::kError))
        << t.name() << ":\n" << r.render_text();
  }
}

TEST(TypeLint, PeekQueueIsCorrectlyConvictedAsNonReadable) {
  // peek only reveals the front of the queue, so distinct contents with
  // equal fronts share a response: the type deliberately sits outside the
  // readable regime where the paper's characterizations are exact, and
  // TS003 is the linter saying so. This is the type-side calibration case
  // (as tas_racing is for PL007).
  const Report r = lint_type(spec::make_peek_queue(2), TypeLintOptions{});
  EXPECT_TRUE(fires(r, kRuleAliasedResponse)) << r.render_text();
}

// ---- Report rendering ----

TEST(Report, RenderTextIncludesRuleAndSummaryLine) {
  Report r;
  r.add(make_diagnostic(kRuleDeadOp, "subj", "op 'x'", "msg", "do better"));
  const std::string text = r.render_text();
  EXPECT_NE(text.find("error[TS002"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
}

TEST(Report, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, RenderJsonIsStructurallySound) {
  Report r;
  r.add(make_diagnostic(kRuleDeadOp, "has \"quotes\"", "op 'x'",
                        "line1\nline2", ""));
  const std::string json = r.render_json();
  // Minimal structural validation: balanced braces/brackets outside of
  // strings and no raw control characters.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    EXPECT_GE(static_cast<unsigned char>(c), 0x20) << "raw control char";
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << json;
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
}

TEST(Report, MergeAndThreshold) {
  Report a;
  a.add(make_diagnostic(kRuleOpClassification, "s", "", "note", ""));
  Report b;
  b.add(make_diagnostic(kRuleUnusedResponse, "s", "", "warn", ""));
  a.merge(b);
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_TRUE(a.has_findings_at_least(Severity::kNote));
  EXPECT_TRUE(a.has_findings_at_least(Severity::kWarning));
  EXPECT_FALSE(a.has_findings_at_least(Severity::kError));
}

// ---- Protocol lint: shipped protocols ----

TEST(ProtocolLint, ShippedProtocolsHaveNoErrors) {
  const spec::ObjectType cas = spec::make_cas(3);
  const algo::CasConsensus cas2(2);
  const algo::StickyConsensus sticky3(3);
  const algo::NaiveProposeConsensus propose(2, 2);
  const algo::TasRacingConsensus tas_racing;
  const algo::NaiveRegisterConsensus naive(2);
  const algo::RecordingConsensus recording(cas, 2);
  const algo::TnnWaitFreeConsensus tnn_wf(5, 2);
  const algo::TnnRecoverableConsensus tnn_rec(5, 2, 2);
  for (const exec::Protocol* p :
       {static_cast<const exec::Protocol*>(&cas2),
        static_cast<const exec::Protocol*>(&sticky3),
        static_cast<const exec::Protocol*>(&propose),
        static_cast<const exec::Protocol*>(&tas_racing),
        static_cast<const exec::Protocol*>(&naive),
        static_cast<const exec::Protocol*>(&recording),
        static_cast<const exec::Protocol*>(&tnn_wf),
        static_cast<const exec::Protocol*>(&tnn_rec)}) {
    const Report r = lint_protocol(*p);
    EXPECT_FALSE(r.has_findings_at_least(Severity::kError))
        << p->name() << ":\n" << r.render_text();
  }
}

TEST(ProtocolLint, CasConsensusIsCompletelyClean) {
  const Report r = lint_protocol(algo::CasConsensus(2));
  EXPECT_FALSE(r.has_findings_at_least(Severity::kWarning))
      << r.render_text();
}

TEST(ProtocolLint, TasRacingDecisionDivergesAcrossACrash) {
  // The calibration result: one crash is enough for a solo tas_racing
  // process to re-run the race and decide differently — the static
  // counterpart of algo_test's CrashRecoveryViolatesAgreement and the
  // reason test&set has recoverable consensus number 1.
  const Report r = lint_protocol(algo::TasRacingConsensus());
  EXPECT_TRUE(fires(r, kRuleCrashDivergentDecision)) << r.render_text();
  EXPECT_FALSE(r.has_findings_at_least(Severity::kError)) << r.render_text();
}

TEST(ProtocolLint, TasRacingIsStableWithoutCrashes) {
  ProtocolLintOptions options;
  options.crash_budget = 0;
  const Report r = lint_protocol(algo::TasRacingConsensus(), options);
  EXPECT_FALSE(fires(r, kRuleCrashDivergentDecision)) << r.render_text();
}

TEST(ProtocolLint, NaiveRegisterDecidesBeforePersisting) {
  // Input 0 never changes the register away from its initial value, so the
  // decision exists only in volatile local state.
  const Report r = lint_protocol(algo::NaiveRegisterConsensus(2));
  EXPECT_TRUE(fires(r, kRuleDecideBeforePersist)) << r.render_text();
}

// ---- Protocol lint: locally-broken protocols ----

/// A protocol poised on an op id the object's type does not have.
class BadOpProtocol : public algo::ProtocolBase {
 public:
  BadOpProtocol() : ProtocolBase("bad_op", 1) {
    add_object(spec::make_test_and_set(), "0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState&) const override {
    return exec::Action::invoke(0, 99);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return state;
  }
};

/// A protocol that "decides" a value outside {0, 1}.
class BadDecisionProtocol : public algo::ProtocolBase {
 public:
  BadDecisionProtocol() : ProtocolBase("bad_decision", 1) {
    add_object(spec::make_test_and_set(), "0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke(0, 0);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState&,
                           spec::ResponseId) const override {
    return make_decided(7);
  }
};

/// A protocol that spins on a read forever and never reaches an output
/// state (the solo state space is finite, so the exploration is exact).
class NeverDecidesProtocol : public algo::ProtocolBase {
 public:
  NeverDecidesProtocol() : ProtocolBase("never_decides", 1) {
    spec::ObjectType tas = spec::make_test_and_set();
    read_ = *tas.find_op("read");
    add_object(std::move(tas), "0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState&) const override {
    return exec::Action::invoke(0, read_);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return state;
  }

 private:
  spec::OpId read_;
};

/// A two-object protocol that only ever touches object 0.
class DeadObjectProtocol : public algo::ProtocolBase {
 public:
  DeadObjectProtocol() : ProtocolBase("dead_object", 1) {
    spec::ObjectType tas = spec::make_test_and_set();
    tas_ = *tas.find_op("tas");
    add_object(tas, "0");
    add_object(std::move(tas), "0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke(0, tas_);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState&,
                           spec::ResponseId) const override {
    return make_decided(0);
  }

 private:
  spec::OpId tas_;
};

TEST(ProtocolLint, OutOfRangeOpIsError) {
  const Report r = lint_protocol(BadOpProtocol());
  EXPECT_TRUE(fires(r, kRuleInvalidAction)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(ProtocolLint, NonBinaryDecisionIsError) {
  const Report r = lint_protocol(BadDecisionProtocol());
  EXPECT_TRUE(fires(r, kRuleInvalidDecision)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(ProtocolLint, NeverDecidingProcessIsError) {
  const Report r = lint_protocol(NeverDecidesProtocol());
  EXPECT_TRUE(fires(r, kRuleNoOutputState)) << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(ProtocolLint, UntouchedObjectIsWarning) {
  const Report r = lint_protocol(DeadObjectProtocol());
  EXPECT_TRUE(fires(r, kRuleDeadObject)) << r.render_text();
}

// ---- Recovery audit (RC rules) ----
//
// Every RC fixture pairs a clean .type file in data/broken/ with a
// deliberately broken protocol below; each pair must trip exactly its
// one RC rule, so the rules stay disjoint and the fixtures stay honest
// calibration points.

spec::ObjectType load_rc_type(const std::string& name) {
  const std::string path =
      std::string(RCONS_SOURCE_DIR) + "/data/broken/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const spec::ParseResult parsed = spec::parse_type(buffer.str());
  EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.error;
  return *parsed.type;
}

/// The distinct RC rule ids present in a report.
std::set<std::string> rc_rules_fired(const Report& report) {
  std::set<std::string> out;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.rule.rfind("RC", 0) == 0) out.insert(d.rule);
  }
  return out;
}

/// RC001: poised() consults a hidden mutable counter, so re-evaluating
/// it for the same local state yields a different action.
class NondetPoisedProtocol : public algo::ProtocolBase {
 public:
  NondetPoisedProtocol() : ProtocolBase("rc001_fixture", 1) {
    spec::ObjectType t = load_rc_type("rc001_flipflop.type");
    flip_ = *t.find_op("flip");
    read_ = *t.find_op("read");
    add_object(std::move(t), "v0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    ++calls_;
    return exec::Action::invoke(0, calls_ % 2 == 1 ? flip_ : read_);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return make_decided(static_cast<int>(state.words[1]));
  }

 private:
  mutable int calls_ = 0;
  spec::OpId flip_;
  spec::OpId read_;
};

/// RC002 (and, with a declared budget, RC006): grab the one-shot object
/// and decide by the race outcome — a crash at the output state makes
/// the solo recovery lose its own earlier race and decide differently.
class UnstableRaceProtocol : public algo::ProtocolBase {
 public:
  explicit UnstableRaceProtocol(bool declare_budget)
      : ProtocolBase(declare_budget ? "rc006_fixture" : "rc002_fixture", 1),
        declare_budget_(declare_budget) {
    spec::ObjectType t = load_rc_type(declare_budget
                                          ? "rc006_budget.type"
                                          : "rc002_one_shot.type");
    grab_ = *t.find_op("grab");
    won_ = *t.find_response("won");
    add_object(std::move(t), "free");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke(0, grab_);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState&,
                           spec::ResponseId response) const override {
    return make_decided(response == won_ ? 0 : 1);
  }
  int declared_crash_budget() const override {
    return declare_budget_ ? 1 : -1;
  }

 private:
  bool declare_budget_;
  spec::OpId grab_;
  spec::ResponseId won_;
};

/// RC003: bump a persistent counter, then decide the input. Every
/// recovery agrees on the decision but leaves a different counter in
/// NVM — the retry is not idempotent.
class CounterBumpProtocol : public algo::ProtocolBase {
 public:
  CounterBumpProtocol() : ProtocolBase("rc003_fixture", 1) {
    spec::ObjectType t = load_rc_type("rc003_counter.type");
    inc_ = *t.find_op("inc");
    add_object(std::move(t), "c0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke(0, inc_);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return make_decided(static_cast<int>(state.words[1]));
  }

 private:
  spec::OpId inc_;
};

/// RC004: set the flag with a relaxed invoke and never issue the
/// barrier; the dirty value is never read back, so only the persist gap
/// itself is reported.
class RelaxedFlagProtocol : public algo::ProtocolBase {
 public:
  RelaxedFlagProtocol() : ProtocolBase("rc004_fixture", 1) {
    spec::ObjectType t = load_rc_type("rc004_scratch.type");
    set_ = *t.find_op("set");
    add_object(std::move(t), "v0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    return exec::Action::invoke_relaxed(0, set_);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return make_decided(static_cast<int>(state.words[1]));
  }

 private:
  spec::OpId set_;
};

/// RC005: write the scratch object relaxed, read the unpersisted value
/// back, then perform a durable write to a second object while holding
/// that tainted local state (RC005 subsumes the underlying RC004 gap).
class TaintedWriteProtocol : public algo::ProtocolBase {
 public:
  TaintedWriteProtocol() : ProtocolBase("rc005_fixture", 1) {
    spec::ObjectType t = load_rc_type("rc005_taint.type");
    set_ = *t.find_op("set");
    read_ = *t.find_op("read");
    add_object(t, "v0");
    add_object(std::move(t), "v0");
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    switch (state.words[0]) {
      case 0: return exec::Action::invoke_relaxed(0, set_);
      case 1: return exec::Action::invoke(0, read_);
      default: return exec::Action::invoke(1, set_);
    }
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    if (state.words[0] >= 2) {
      return make_decided(static_cast<int>(state.words[1]));
    }
    exec::LocalState next = state;
    next.words[0] += 1;
    return next;
  }

 private:
  spec::OpId set_;
  spec::OpId read_;
};

TEST(RecoveryAudit, FixtureTypesThemselvesLintClean) {
  // The defects live in the protocols, not the types: each rc00X .type
  // file must carry zero error-severity TS findings.
  for (const char* name :
       {"rc001_flipflop.type", "rc002_one_shot.type", "rc003_counter.type",
        "rc004_scratch.type", "rc005_taint.type", "rc006_budget.type"}) {
    const std::string path =
        std::string(RCONS_SOURCE_DIR) + "/data/broken/" + name;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing fixture " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Report r = lint_type_text(buffer.str(), name);
    EXPECT_EQ(r.error_count(), 0) << name << ":\n" << r.render_text();
  }
}

TEST(RecoveryAudit, NondetPoisedFiresExactlyRC001) {
  const Report r = audit_recovery(NondetPoisedProtocol());
  EXPECT_TRUE(fires(r, kRuleRecoveryDeterminism)) << r.render_text();
  EXPECT_EQ(rc_rules_fired(r), std::set<std::string>{"RC001"})
      << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(RecoveryAudit, UnstableRaceFiresExactlyRC002) {
  const Report r = audit_recovery(UnstableRaceProtocol(false));
  EXPECT_TRUE(fires(r, kRuleDecisionStability)) << r.render_text();
  EXPECT_EQ(rc_rules_fired(r), std::set<std::string>{"RC002"})
      << r.render_text();
  // RC002 is a warning (the tas_racing calibration must stay error-clean).
  EXPECT_FALSE(r.has_findings_at_least(Severity::kError)) << r.render_text();
}

TEST(RecoveryAudit, CounterBumpFiresExactlyRC003) {
  const Report r = audit_recovery(CounterBumpProtocol());
  EXPECT_TRUE(fires(r, kRuleRecoveryIdempotence)) << r.render_text();
  EXPECT_EQ(rc_rules_fired(r), std::set<std::string>{"RC003"})
      << r.render_text();
}

TEST(RecoveryAudit, RelaxedFlagFiresExactlyRC004) {
  const Report r = audit_recovery(RelaxedFlagProtocol());
  EXPECT_TRUE(fires(r, kRulePersistGap)) << r.render_text();
  EXPECT_EQ(rc_rules_fired(r), std::set<std::string>{"RC004"})
      << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(RecoveryAudit, TaintedWriteFiresExactlyRC005) {
  const Report r = audit_recovery(TaintedWriteProtocol());
  EXPECT_TRUE(fires(r, kRuleVolatileTaint)) << r.render_text();
  // The taint finding subsumes the persist gap it rode in on.
  EXPECT_EQ(rc_rules_fired(r), std::set<std::string>{"RC005"})
      << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(RecoveryAudit, DeclaredBudgetRoutesInstabilityToRC006) {
  const Report r = audit_recovery(UnstableRaceProtocol(true));
  EXPECT_TRUE(fires(r, kRuleCrashBudget)) << r.render_text();
  EXPECT_EQ(rc_rules_fired(r), std::set<std::string>{"RC006"})
      << r.render_text();
  EXPECT_TRUE(r.has_findings_at_least(Severity::kError));
}

TEST(RecoveryAudit, ShippedProtocolsAreErrorClean) {
  const spec::ObjectType cas = spec::make_cas(3);
  const algo::CasConsensus cas2(2);
  const algo::StickyConsensus sticky3(3);
  const algo::NaiveProposeConsensus propose(2, 2);
  const algo::TasRacingConsensus tas_racing;
  const algo::NaiveRegisterConsensus naive(2);
  const algo::RecordingConsensus recording(cas, 2);
  const algo::TnnWaitFreeConsensus tnn_wf(5, 2);
  const algo::TnnRecoverableConsensus tnn_rec(5, 2, 2);
  for (const exec::Protocol* p :
       {static_cast<const exec::Protocol*>(&cas2),
        static_cast<const exec::Protocol*>(&sticky3),
        static_cast<const exec::Protocol*>(&propose),
        static_cast<const exec::Protocol*>(&tas_racing),
        static_cast<const exec::Protocol*>(&naive),
        static_cast<const exec::Protocol*>(&recording),
        static_cast<const exec::Protocol*>(&tnn_wf),
        static_cast<const exec::Protocol*>(&tnn_rec)}) {
    const Report r = audit_recovery(*p);
    EXPECT_FALSE(r.has_findings_at_least(Severity::kError))
        << p->name() << ":\n" << r.render_text();
  }
}

TEST(RecoveryAudit, TasRacingIsUnstableAcrossAnOutputCrash) {
  // The RC-side calibration twin of ProtocolLint.TasRacingDecision
  // DivergesAcrossACrash: a solo tas_racing winner that crashes after
  // deciding re-runs the race, loses against its own past application,
  // and decides differently — RC002, at warning severity.
  const Report r = audit_recovery(algo::TasRacingConsensus());
  EXPECT_TRUE(fires(r, kRuleDecisionStability)) << r.render_text();
  EXPECT_FALSE(r.has_findings_at_least(Severity::kError)) << r.render_text();
}

TEST(RecoveryAudit, RelaxedRecordingConsensusIsCaughtByRC004) {
  // The acceptance demo: "forgetting" the persist on the proposal-
  // register writes (relax_proposal_writes) must be caught statically by
  // RC004 — the runtime twin lives in runtime_test.cpp.
  const spec::ObjectType cas = spec::make_cas(3);
  const Report broken =
      audit_recovery(algo::RecordingConsensus(cas, 2, true));
  EXPECT_TRUE(fires(broken, kRulePersistGap)) << broken.render_text();
  EXPECT_TRUE(broken.has_findings_at_least(Severity::kError));

  const Report clean = audit_recovery(algo::RecordingConsensus(cas, 2));
  EXPECT_FALSE(fires(clean, kRulePersistGap)) << clean.render_text();
}

TEST(RecoveryAudit, ReportsAreBitIdenticalAcrossThreadCounts) {
  const spec::ObjectType cas = spec::make_cas(3);
  const algo::RecordingConsensus relaxed(cas, 2, true);
  RecoveryAuditOptions base;
  const std::string reference = audit_recovery(relaxed, base).render_text();
  for (int threads : {2, 4, 8}) {
    RecoveryAuditOptions options;
    options.threads = threads;
    EXPECT_EQ(audit_recovery(relaxed, options).render_text(), reference)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rcons::analysis
