// End-to-end regression for `rcons_cli lint --format=json`: stdout must be
// one well-formed JSON document — all progress chatter goes to stderr —
// even with --threads > 1 and with the RC recovery audit running on
// protocol targets. The test shells out to the real binary (path injected
// by CMake as RCONS_CLI_BIN) and validates stdout with a strict little
// JSON parser, so any stray printf to stdout breaks it.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

/// Runs a command line, captures stdout (popen shares our stderr), and
/// returns the process exit code through `exit_code`.
std::string capture_stdout(const std::string& command, int* exit_code) {
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  if (pipe != nullptr) {
    char buffer[4096];
    std::size_t got;
    while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
      out.append(buffer, got);
    }
    const int status = pclose(pipe);
    *exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  }
  return out;
}

/// Strict recursive-descent JSON validator (values, objects, arrays,
/// strings with escapes, numbers, true/false/null). Returns false on the
/// first deviation — trailing garbage included.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse_document() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool parse_value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(const char* lit) {
    const std::string s(lit);
    if (text_.compare(pos_, s.size(), s) != 0) return false;
    pos_ += s.size();
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::string cli() { return std::string(RCONS_CLI_BIN); }

TEST(CliJson, TypeTargetStdoutIsPureJson) {
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " lint --format=json --threads=4 tas cas2 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"errors\":0"), std::string::npos) << out;
}

TEST(CliJson, ProtocolTargetStdoutIsPureJsonDespiteProgress) {
  // Protocol targets run the PL lint plus the threaded RC recovery audit;
  // both announce progress on stderr, which must never leak into the JSON
  // stream on stdout.
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " lint --format=json --threads=4 protocol recording cas3 2"
              " 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"findings\""), std::string::npos) << out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A fresh per-test scratch directory under the test temp dir.
std::string scratch_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "rcons_cli_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CliJson, VerifyViolationIsPureJsonAndExitsOne) {
  // verify --format=json must keep stdout one JSON document even with
  // tracing, metrics, and span spilling all active (their chatter goes to
  // stderr / files), and a violation must exit 1.
  const std::string dir = scratch_dir("verify_json");
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " verify tas --format=json --threads=2 --trace-out=" + dir +
          " --metrics-out=" + dir + "/metrics.json --spans-out=" + dir +
          "/spans.json 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 1) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"verdict\":\"VIOLATION\""), std::string::npos) << out;
  // The spilled metrics and span files are themselves one JSON document
  // each.
  const std::string metrics = slurp(dir + "/metrics.json");
  EXPECT_TRUE(JsonParser(metrics).parse_document()) << metrics;
  // Serial scans record "safety.*", parallel scans "safety.parallel.*";
  // either way the scan aggregates must be present.
  EXPECT_NE(metrics.find("states_visited"), std::string::npos) << metrics;
  const std::string spans = slurp(dir + "/spans.json");
  EXPECT_TRUE(JsonParser(spans).parse_document()) << spans;
}

TEST(CliJson, VerifySafeExitsZero) {
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " verify cas 2 --format=json --threads=2 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"verdict\":\"SAFE\""), std::string::npos) << out;
}

TEST(CliJson, VerifyTruncatedScanExitsThreeNotZero) {
  // INCONCLUSIVE needs its own exit code: a scan truncated by
  // --max-states proves nothing, and scripts must be able to tell that
  // apart from SAFE (0) without parsing the output.
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " verify cas 2 --max-states=4 --format=json 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 3) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"verdict\":\"INCONCLUSIVE\""), std::string::npos)
      << out;
  EXPECT_EQ(out.find("\"verdict\":\"SAFE\""), std::string::npos) << out;
}

TEST(CliReplay, CapturedSafetyViolationsRoundTrip) {
  // Every violation written by verify --trace-out must replay to the
  // identical verdict and state hash (exit 0, "round-trip: OK").
  const std::string dir = scratch_dir("replay_safety");
  int exit_code = -1;
  capture_stdout(cli() + " verify tas --trace-out=" + dir + " 2>/dev/null",
                 &exit_code);
  EXPECT_EQ(exit_code, 1);
  int traces = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".trace") continue;
    ++traces;
    int replay_exit = -1;
    const std::string out = capture_stdout(
        cli() + " replay " + entry.path().string() + " 2>/dev/null",
        &replay_exit);
    EXPECT_EQ(replay_exit, 0) << out;
    EXPECT_NE(out.find("round-trip: OK"), std::string::npos) << out;
  }
  EXPECT_GE(traces, 1) << "verify tas must capture at least one violation";
}

TEST(CliReplay, RcAuditCounterexamplesRoundTrip) {
  // The relaxed recording fixture trips RC004 in every audit unit; each
  // captured trace must replay cleanly.
  const std::string dir = scratch_dir("replay_rc");
  int exit_code = -1;
  capture_stdout(cli() + " lint protocol recording cas3 2 relaxed"
                         " --trace-out=" + dir + " 2>/dev/null",
                 &exit_code);
  EXPECT_EQ(exit_code, 1);
  int traces = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".trace") continue;
    ++traces;
    int replay_exit = -1;
    const std::string out = capture_stdout(
        cli() + " replay " + entry.path().string() + " 2>/dev/null",
        &replay_exit);
    EXPECT_EQ(replay_exit, 0) << out;
    EXPECT_NE(out.find("round-trip: OK"), std::string::npos) << out;
  }
  EXPECT_GE(traces, 1);
}

TEST(CliReplay, TamperedTraceIsCaughtAsMismatch) {
  // Flip the recorded hash: replay must report the mismatch and exit 1 —
  // the round-trip check is a real check, not a formality.
  const std::string dir = scratch_dir("replay_tamper");
  int exit_code = -1;
  capture_stdout(cli() + " verify tas --trace-out=" + dir + " 2>/dev/null",
                 &exit_code);
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".trace") {
      path = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(path.empty());
  std::string text = slurp(path);
  const auto pos = text.find("state_hash: ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 12] = text[pos + 12] == '0' ? '1' : '0';
  std::ofstream(path) << text;
  int replay_exit = -1;
  const std::string out = capture_stdout(
      cli() + " replay " + path + " 2>/dev/null", &replay_exit);
  EXPECT_EQ(replay_exit, 1) << out;
  EXPECT_NE(out.find("round-trip: MISMATCH"), std::string::npos) << out;
}

TEST(CliJson, RulesCatalogListsTheRcFamily) {
  int exit_code = -1;
  const std::string out =
      capture_stdout(cli() + " lint --rules 2>/dev/null", &exit_code);
  EXPECT_EQ(exit_code, 0);
  for (const char* id : {"RC001", "RC002", "RC003", "RC004", "RC005",
                         "RC006"}) {
    EXPECT_NE(out.find(id), std::string::npos) << "missing " << id;
  }
}

TEST(CliJson, RulesCatalogJsonIsPureJson) {
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " lint --rules --format=json 2>/dev/null", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  for (const char* id : {"TS001", "PL001", "RC001", "SA001", "SA009",
                         "SA012"}) {
    EXPECT_NE(out.find(id), std::string::npos) << "missing " << id;
  }
}

TEST(CliJson, ExplainJsonIsPureJsonAndFollowsExitContract) {
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " explain SA011 --format=json 2>/dev/null", &exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"rule\":\"SA011\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"explain\":"), std::string::npos) << out;
  // Unknown rule: usage error (2), diagnostic on stderr, stdout PURE —
  // nothing half-rendered for a scripted caller to choke on.
  int bad_code = -1;
  const std::string bad = capture_stdout(
      cli() + " explain SA999 --format=json 2>/dev/null", &bad_code);
  EXPECT_EQ(bad_code, 2);
  EXPECT_TRUE(bad.empty()) << bad;
}

TEST(CliJson, OrderPairStdoutIsPureJsonAndExitsZeroEitherWay) {
  // A certified relation exists for (register2, register3)...
  int exit_code = -1;
  const std::string related = capture_stdout(
      cli() + " order register2 register3 --format=json 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << related;
  EXPECT_TRUE(JsonParser(related).parse_document()) << related;
  EXPECT_NE(related.find("\"rule\":\"SA009\""), std::string::npos) << related;
  EXPECT_NE(related.find("\"certificate\":"), std::string::npos) << related;
  // ...and none for (register2, consensus2); absence is data, still exit 0.
  int unrelated_code = -1;
  const std::string unrelated = capture_stdout(
      cli() + " order register2 consensus2 --format=json 2>/dev/null",
      &unrelated_code);
  EXPECT_EQ(unrelated_code, 0) << unrelated;
  EXPECT_TRUE(JsonParser(unrelated).parse_document()) << unrelated;
  EXPECT_NE(unrelated.find("\"relations\":[]"), std::string::npos)
      << unrelated;
}

TEST(CliJson, OrderUsageErrorsExitTwoWithPureStdout) {
  const char* const bad_invocations[] = {
      "order register2",                       // one target
      "order register2 register3 cas2",        // three targets, no --all
      "order register2 register3 --dot-out=x", // --dot-out without --all
      "order --all register2",                 // catalog of one
      "order register2 register3 --no-such",   // unknown flag
      "order --all register2 register3 --max-n=1",  // level floor
  };
  for (const char* invocation : bad_invocations) {
    int exit_code = -1;
    const std::string out = capture_stdout(
        cli() + " " + invocation + " --format=json 2>/dev/null", &exit_code);
    EXPECT_EQ(exit_code, 2) << invocation;
    EXPECT_TRUE(out.empty()) << invocation << " leaked stdout: " << out;
  }
}

TEST(CliJson, OrderCatalogStdoutIsPureJsonAndSpillsDot) {
  const std::string dir = scratch_dir("order_catalog");
  std::filesystem::create_directories(dir);
  const std::string dot_path = dir + "/order.dot";
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " order --all register2 register3 cas2 --max-n=3 --cache=off"
              " --format=json --dot-out=" + dot_path + " 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"graph\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"profiles\":"), std::string::npos) << out;
  const std::string dot = slurp(dot_path);
  EXPECT_NE(dot.find("digraph order"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"register3\" -> \"register2\""), std::string::npos)
      << dot;
}

// `serve` usage errors follow the exit-code contract (usage -> 2), the
// diagnostic goes to stderr, and stdout stays PURE even under
// --format=json: a scripted caller that misconfigures the daemon must see
// exit 2 and nothing to parse, never half a document.
TEST(CliServe, UsageErrorsExitTwoWithPureStdout) {
  const char* const bad_invocations[] = {
      "serve",                                    // no transport
      "serve --socket=/tmp/x.sock --port=0",      // both transports
      "serve --port=70000",                       // port out of range
      "serve --port=abc",                         // not a number
      "serve --socket=",                          // empty path
      "serve --port=0 --workers=0",               // worker count floor
      "serve --port=0 --workers=9999",            // worker count ceiling
      "serve --port=0 --queue-depth=0",           // queue depth floor
      "serve --port=0 --no-such-flag",            // unknown serve flag
  };
  for (const char* invocation : bad_invocations) {
    int exit_code = -1;
    const std::string out = capture_stdout(
        cli() + " " + invocation + " --format=json 2>/dev/null",
        &exit_code);
    EXPECT_EQ(exit_code, 2) << invocation;
    EXPECT_TRUE(out.empty()) << invocation << " leaked stdout: " << out;
  }
}

// The same invocations must explain themselves on stderr (the exit code
// alone is not a diagnosis).
TEST(CliServe, UsageErrorsExplainThemselvesOnStderr) {
  int exit_code = -1;
  const std::string err = capture_stdout(
      cli() + " serve 2>&1 >/dev/null", &exit_code);
  EXPECT_EQ(exit_code, 2);
  EXPECT_NE(err.find("exactly one of --socket=PATH or --port=N"),
            std::string::npos)
      << err;
}

std::string loadgen() { return std::string(RCONS_LOADGEN_BIN); }
std::string codegen_bin() { return std::string(RCONS_CODEGEN_BIN); }

// Every numeric CLI argument goes through the strict util::parse_* helpers:
// non-numeric text, trailing garbage, '+' signs, out-of-range values, and
// overflow all exit 2 with NOTHING on stdout. Before the sweep some of
// these (e.g. "--threads=2x", "profile cas3 3x") were silently accepted by
// atoi as 2 and 3.
TEST(CliNumeric, BadNumericArgumentsExitTwoWithPureStdout) {
  const char* const bad_invocations[] = {
      "verify cas 2 --threads=banana",
      "verify cas 2 --threads=-1",
      "verify cas 2 --threads=2x",             // trailing garbage
      "verify cas 2 --threads=+4",             // '+' is not a digit
      "verify cas 2 --threads=",
      "verify cas 2 --max-states=0",
      "verify cas 2 --max-states=abc",
      "verify cas 2 --max-states=-5",
      "verify cas 2 --backend=jit",
      "profile cas3 0",
      "profile cas3 3x",
      "profile cas3 99999999999999999999",     // int overflow
      "witnesses tas 1",                       // below the n floor
      "witnesses tas 13",                      // above the n ceiling
      "witnesses tas 2x",
      "search -5",
      "search 0",
      "search 2 0",
      "search 2 10 -1",                        // seed is unsigned
      "order --all register2 register3 --max-n=2x",
  };
  for (const char* invocation : bad_invocations) {
    int exit_code = -1;
    const std::string out = capture_stdout(
        cli() + " " + invocation + " --format=json 2>/dev/null", &exit_code);
    EXPECT_EQ(exit_code, 2) << invocation;
    EXPECT_TRUE(out.empty()) << invocation << " leaked stdout: " << out;
  }
}

TEST(CliNumeric, BadNumericArgumentsExplainThemselvesOnStderr) {
  const struct {
    const char* invocation;
    const char* message;
  } cases[] = {
      {"verify cas 2 --threads=banana", "--threads wants a count >= 0"},
      {"verify cas 2 --max-states=0",
       "--max-states wants a state count >= 1"},
      {"verify cas 2 --backend=jit", "unknown backend 'jit' (interp|aot)"},
      {"profile cas3 3x", "profile <type> [max_n >= 1]"},
      {"witnesses tas 1", "witnesses wants an n in [2, 12]"},
  };
  for (const auto& c : cases) {
    int exit_code = -1;
    const std::string err = capture_stdout(
        cli() + " " + std::string(c.invocation) + " 2>&1 >/dev/null",
        &exit_code);
    EXPECT_EQ(exit_code, 2) << c.invocation;
    EXPECT_NE(err.find(c.message), std::string::npos)
        << c.invocation << " said: " << err;
  }
}

// --threads=0 spells "use the hardware thread count" — the contract shared
// by rcons_cli, serve, and rcons_loadgen (anything below 0 is a usage
// error, covered above).
TEST(CliNumeric, ThreadsZeroMeansHardwareConcurrency) {
  int exit_code = -1;
  const std::string out = capture_stdout(
      cli() + " verify cas 2 --threads=0 --format=json 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
}

// rcons_loadgen shares the strict-parse helpers and the exit-2 contract;
// flag validation happens before any connection is attempted.
TEST(CliLoadgen, BadNumericFlagsExitTwoBeforeConnecting) {
  const char* const bad_invocations[] = {
      "--port=abc",  "--port=-1",        "--port=70000",
      "--clients=0", "--clients=x",      "--requests=banana",
      "--requests=-3", "--max-n=0",      "--max-n=2x",
  };
  for (const char* invocation : bad_invocations) {
    int exit_code = -1;
    const std::string out = capture_stdout(
        loadgen() + " " + invocation + " 2>/dev/null", &exit_code);
    EXPECT_EQ(exit_code, 2) << invocation;
    EXPECT_TRUE(out.empty()) << invocation << " leaked stdout: " << out;
  }
}

// The --backend flag must be invisible in the output: the same command
// under interp and aot produces byte-identical JSON documents (stats,
// witnesses, and schedules included). This is the CLI-level face of the
// bit-identity contract pinned engine-by-engine in codegen_test.cpp.
TEST(CliBackend, VerifyOutputIsByteIdenticalAcrossBackends) {
  int code_interp = -1;
  int code_aot = -1;
  const std::string interp = capture_stdout(
      cli() + " verify recording cas3 2 --format=json --backend=interp"
              " 2>/dev/null",
      &code_interp);
  const std::string aot = capture_stdout(
      cli() + " verify recording cas3 2 --format=json --backend=aot"
              " 2>/dev/null",
      &code_aot);
  EXPECT_EQ(code_interp, 0);
  EXPECT_EQ(code_aot, 0);
  ASSERT_FALSE(interp.empty());
  EXPECT_TRUE(JsonParser(interp).parse_document()) << interp;
  EXPECT_EQ(interp, aot);
}

TEST(CliBackend, ProfileOutputIsByteIdenticalAcrossBackends) {
  int code_interp = -1;
  int code_aot = -1;
  const std::string interp = capture_stdout(
      cli() + " profile cas3 3 --cache=off --format=json --backend=interp"
              " 2>/dev/null",
      &code_interp);
  const std::string aot = capture_stdout(
      cli() + " profile cas3 3 --cache=off --format=json --backend=aot"
              " 2>/dev/null",
      &code_aot);
  EXPECT_EQ(code_interp, 0);
  EXPECT_EQ(code_aot, 0);
  ASSERT_FALSE(interp.empty());
  EXPECT_EQ(interp, aot);
}

// The rcons_codegen tool: --check over the checked-in generated files must
// report no drift (the same gate CI runs), a lint-rejected spec exits 1
// with one structured JSON findings document on stdout and writes NO
// files, and usage errors exit 2.
TEST(CliCodegen, CheckModeFindsNoDriftOnTheCheckedInFiles) {
  int exit_code = -1;
  const std::string out = capture_stdout(
      codegen_bin() + " --out=" RCONS_SOURCE_DIR "/src/codegen/generated"
                      " --builtin " RCONS_SOURCE_DIR "/data --check"
                      " 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 0)
      << "generated steppers drifted — regenerate with "
         "rcons_codegen --out=src/codegen/generated --builtin data";
  EXPECT_TRUE(out.empty()) << out;
}

TEST(CliCodegen, RejectionEmitsOneJsonFindingsDocumentAndWritesNothing) {
  const std::string dir = scratch_dir("codegen_reject");
  int exit_code = -1;
  const std::string out = capture_stdout(
      codegen_bin() + " --out=" + dir +
          " --format=json"
          " " RCONS_SOURCE_DIR "/data/broken/ts006_duplicate_row.type"
          " 2>/dev/null",
      &exit_code);
  EXPECT_EQ(exit_code, 1);
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"TS006\""), std::string::npos) << out;
  EXPECT_FALSE(std::filesystem::exists(dir + "/steppers_gen.cpp"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/steppers_gen.hpp"));
}

TEST(CliCodegen, UsageErrorsExitTwo) {
  const char* const bad_invocations[] = {
      "",                                   // no --out, no inputs
      "--out=/tmp/x",                       // no inputs, no --builtin
      "--out=/tmp/x --no-such-flag",        // unknown flag
      "--out=/tmp/x /no/such/file.type",    // missing input
  };
  for (const char* invocation : bad_invocations) {
    int exit_code = -1;
    const std::string out = capture_stdout(
        codegen_bin() + " " + invocation + " 2>/dev/null", &exit_code);
    EXPECT_EQ(exit_code, 2) << invocation;
    EXPECT_TRUE(out.empty()) << invocation << " leaked stdout: " << out;
  }
}

// hunt follows the shared exit contract (0 complete / 3 budget-stopped /
// 2 usage) and --format=json stdout is one parseable document.
TEST(CliHunt, JsonOutputIsPureAndFollowsExitContract) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("rcons-cli-hunt-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const std::string base =
      cli() + " hunt --checkpoint-dir=" + dir +
      " --max-values=2 --max-ops=1 --max-responses=2 --max-n=2"
      " --threads=1 --cache=off --format=json";

  // Budget stop: a resumable partial shard, exit 3.
  int exit_code = -1;
  std::string out =
      capture_stdout(base + " --budget=2 2>/dev/null", &exit_code);
  EXPECT_EQ(exit_code, 3);
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"command\":\"hunt\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"complete\":false"), std::string::npos) << out;

  // Resume to completion: exit 0, complete:true, resumed:true.
  out = capture_stdout(base + " --resume 2>/dev/null", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_TRUE(JsonParser(out).parse_document()) << out;
  EXPECT_NE(out.find("\"complete\":true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"resumed\":true"), std::string::npos) << out;
  std::filesystem::remove_all(dir);

  // Usage errors: exit 2, nothing on stdout.
  const char* const bad_invocations[] = {
      "hunt",                                        // no --checkpoint-dir
      "hunt --checkpoint-dir=/tmp/x --shards=2 --shard=2",
      "hunt --checkpoint-dir=/tmp/x --budget=banana",
      "hunt --checkpoint-dir=/tmp/x --max-values=0",
      "hunt --checkpoint-dir=/tmp/x --no-such-flag",
  };
  for (const char* invocation : bad_invocations) {
    out = capture_stdout(cli() + " " + invocation + " 2>/dev/null",
                         &exit_code);
    EXPECT_EQ(exit_code, 2) << invocation;
    EXPECT_TRUE(out.empty()) << invocation << " leaked stdout: " << out;
  }
}

}  // namespace
