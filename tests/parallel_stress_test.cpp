// Randomized differential stress for the parallel exploration engine.
//
// Generates ~200 seeded random protocols — random readable object machines
// driven by random per-process programs, with optional spin loops and
// out-of-range decisions — and checks that the parallel safety and
// liveness engines reproduce the serial engines field-for-field on every
// one. The final soak case runs a mid-sized exploration at 8 threads
// repeatedly; under the TSan CI configuration it doubles as a data-race
// hunt through the pool, the sharded visited map, and the reduction.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algo/protocol_base.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/event.hpp"
#include "hierarchy/search.hpp"
#include "util/rng.hpp"
#include "valency/model_checker.hpp"

namespace rcons::valency {
namespace {

/// A random one-shot program over one random readable object: each process
/// applies `steps` random operations, then outputs a pseudo-random function
/// of its last response and input. Some instances spin forever on a
/// designated (pc, response) pair; some output values outside {inputs},
/// so the sweep exercises safe runs, agreement violations, validity
/// violations, and liveness failures alike.
class RandomProtocol : public algo::ProtocolBase {
 public:
  explicit RandomProtocol(std::uint64_t seed)
      : RandomProtocol(Params::draw(seed)) {}

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override {
    if (is_decided(state)) return exec::Action::decided(decision_of(state));
    const auto pc = state.words[0];
    if (pc >= params_.steps) {
      const std::int64_t last_response = state.words.size() > 2
                                             ? state.words[2]
                                             : 0;
      const int decision = static_cast<int>(
          (last_response * params_.decide_mul + state.words[1] +
           params_.decide_add) %
          params_.decide_mod);
      return exec::Action::decided(decision);
    }
    return exec::Action::invoke(
        obj_, params_.op_at[static_cast<std::size_t>(
                  pid * params_.steps + static_cast<int>(pc))]);
  }

  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId response) const override {
    exec::LocalState next = state;
    if (params_.spin_pc >= 0 && state.words[0] == params_.spin_pc &&
        response == params_.spin_response) {
      return next;  // spin: stay at this pc forever
    }
    next.words[0] += 1;
    next.words.resize(3, 0);
    next.words[2] = response;
    return next;
  }

 private:
  struct Params {
    int n = 2;
    int steps = 2;
    spec::ObjectType type;
    std::vector<spec::OpId> op_at;  // [pid * steps + pc]
    std::int64_t decide_mul = 1;
    std::int64_t decide_add = 0;
    std::int64_t decide_mod = 2;
    int spin_pc = -1;  // -1: no spin loop
    spec::ResponseId spin_response = 0;

    static Params draw(std::uint64_t seed) {
      Xoshiro256 rng(seed);
      Params p;
      p.n = 2 + static_cast<int>(rng.below(2));      // 2..3
      p.steps = 1 + static_cast<int>(rng.below(3));  // 1..3
      const int value_count = 3 + static_cast<int>(rng.below(2));
      const int op_count = 2;
      const int response_count = 3;
      p.type = hierarchy::random_readable_type(value_count, op_count,
                                               response_count, rng.next());
      p.op_at.resize(static_cast<std::size_t>(p.n * p.steps));
      for (auto& op : p.op_at) {
        // op_count team ops plus the appended read op.
        op = static_cast<spec::OpId>(rng.below(
            static_cast<std::uint64_t>(p.type.op_count())));
      }
      p.decide_mul = static_cast<std::int64_t>(1 + rng.below(3));
      p.decide_add = static_cast<std::int64_t>(rng.below(3));
      p.decide_mod = static_cast<std::int64_t>(2 + rng.below(2));  // 2..3
      if (rng.chance(0.3)) {
        p.spin_pc = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(p.steps)));
        p.spin_response = static_cast<spec::ResponseId>(rng.below(
            static_cast<std::uint64_t>(p.type.response_count())));
      }
      return p;
    }
  };

  explicit RandomProtocol(Params params)
      : ProtocolBase("random_protocol", params.n), params_(std::move(params)) {
    obj_ = add_object(params_.type, params_.type.value_name(0));
  }

  Params params_;
  exec::ObjectId obj_ = 0;
};

void ExpectSameSafety(const SafetyResult& serial, const SafetyResult& other) {
  ASSERT_EQ(serial.explored_fully, other.explored_fully);
  ASSERT_EQ(serial.agreement_ok, other.agreement_ok);
  ASSERT_EQ(serial.validity_ok, other.validity_ok);
  ASSERT_EQ(serial.states_visited, other.states_visited);
  ASSERT_EQ(serial.configs_visited, other.configs_visited);
  ASSERT_EQ(serial.violation, other.violation);
  ASSERT_EQ(serial.counterexample.has_value(),
            other.counterexample.has_value());
  if (serial.counterexample.has_value()) {
    ASSERT_EQ(exec::schedule_to_string(*serial.counterexample),
              exec::schedule_to_string(*other.counterexample));
  }
}

void ExpectSameLiveness(const LivenessResult& serial,
                        const LivenessResult& other) {
  ASSERT_EQ(serial.explored_fully, other.explored_fully);
  ASSERT_EQ(serial.wait_free, other.wait_free);
  ASSERT_EQ(serial.configs_probed, other.configs_probed);
  ASSERT_EQ(serial.stuck_pid, other.stuck_pid);
  ASSERT_EQ(serial.reaching_schedule.has_value(),
            other.reaching_schedule.has_value());
  if (serial.reaching_schedule.has_value()) {
    ASSERT_EQ(exec::schedule_to_string(*serial.reaching_schedule),
              exec::schedule_to_string(*other.reaching_schedule));
  }
}

TEST(ParallelStress, TwoHundredRandomProtocolsMatchSerial) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RandomProtocol protocol(seed);
    std::vector<int> inputs(
        static_cast<std::size_t>(protocol.process_count()), 1);
    inputs[0] = 0;

    SafetyOptions safety;
    safety.crash_mode = static_cast<CrashMode>(seed % 4);
    safety.max_states = (seed % 5 == 0) ? 40 : 50'000;  // truncate some runs
    const SafetyResult safety_serial = check_safety(protocol, inputs, safety);
    safety.threads = 2 + static_cast<int>(seed % 7);  // 2..8
    ExpectSameSafety(safety_serial, check_safety(protocol, inputs, safety));

    LivenessOptions liveness;
    liveness.solo_step_bound = 64;
    liveness.max_states = (seed % 7 == 0) ? 25 : 50'000;
    const LivenessResult liveness_serial =
        check_recoverable_wait_freedom(protocol, inputs, liveness);
    liveness.threads = 2 + static_cast<int>(seed % 7);
    ExpectSameLiveness(
        liveness_serial,
        check_recoverable_wait_freedom(protocol, inputs, liveness));
  }
}

// Many-thread soak on a mid-sized real protocol. Under the TSan CI build
// this hammers the pool / sharded-map / reduction paths for data races.
TEST(ParallelStress, EightThreadSoakStaysIdentical) {
  algo::TnnRecoverableConsensus protocol(4, 2, 2);
  SafetyOptions options;
  options.crash_mode = CrashMode::kBoth;
  const SafetyResult serial = check_safety(protocol, {0, 1}, options);
  options.threads = 8;
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    ExpectSameSafety(serial, check_safety(protocol, {0, 1}, options));
  }
}

}  // namespace
}  // namespace rcons::valency
