// The shipped data/*.type files must stay loadable and semantically equal
// to their catalog sources (they are regenerated with
// `rcons_cli export <name> > data/<name>.type`).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/analysis.hpp"
#include "hierarchy/consensus_number.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"

namespace rcons::spec {
namespace {

std::string data_dir() {
  // Tests run from the build tree; the data directory sits in the source
  // tree next to it. Allow an override for out-of-tree runs.
  if (const char* env = std::getenv("RCONS_DATA_DIR")) return env;
  return std::string(RCONS_SOURCE_DIR) + "/data";
}

ObjectType load(const std::string& name) {
  std::ifstream in(data_dir() + "/" + name + ".type");
  EXPECT_TRUE(in.good()) << "missing data file " << name;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const ParseResult r = parse_type(buffer.str());
  EXPECT_TRUE(r.ok()) << name << ": " << r.error;
  return *r.type;
}

void expect_same_machine(const ObjectType& a, const ObjectType& b) {
  ASSERT_EQ(a.value_count(), b.value_count());
  ASSERT_EQ(a.op_count(), b.op_count());
  for (ValueId v = 0; v < a.value_count(); ++v) {
    for (OpId op = 0; op < a.op_count(); ++op) {
      EXPECT_EQ(a.value_name(a.apply(v, op).next_value),
                b.value_name(b.apply(v, op).next_value));
      EXPECT_EQ(a.response_name(a.apply(v, op).response),
                b.response_name(b.apply(v, op).response));
    }
  }
}

TEST(DataFiles, TasMatchesCatalog) {
  expect_same_machine(load("tas"), make_test_and_set());
}

TEST(DataFiles, T52MatchesCatalog) {
  expect_same_machine(load("t52"), make_tnn(5, 2));
}

TEST(DataFiles, X4MatchesCatalogAndKeepsItsProfile) {
  const ObjectType x4 = load("x4");
  expect_same_machine(x4, make_xn(4));
  // The shipped machine keeps the headline profile even when loaded from
  // text (guards against serialization subtly renaming/reordering).
  EXPECT_EQ(hierarchy::discerning_level(x4, 5), (hierarchy::Level{4, true}));
  EXPECT_EQ(hierarchy::recording_level(x4, 3), (hierarchy::Level{2, true}));
}

TEST(DataFiles, X5MatchesCatalog) {
  // The headline X5 profile (cons 5, rcons 3) is pinned by the golden
  // corpus; here it is enough that the shipped file IS the catalog machine
  // cell for cell (recomputing the profile would repeat a long scan).
  expect_same_machine(load("x5"), make_xn(5));
}

TEST(DataFiles, AllShippedFilesParse) {
  for (const char* name :
       {"tas", "cas3", "sticky2", "consensus3", "t52", "x4", "x5",
        "queue2"}) {
    const ObjectType t = load(name);
    EXPECT_GT(t.value_count(), 0) << name;
  }
}

TEST(DataFiles, AllShippedFilesLintClean) {
  // The same gate `rcons_cli lint` (and CI) enforces: shipped specs must
  // carry zero error-severity findings. Notes and warnings are allowed —
  // x4/x5-style machines legitimately keep values that are only reachable
  // when chosen as an object's initial value.
  for (const char* name :
       {"tas", "cas3", "sticky2", "consensus3", "t52", "x4", "x5",
        "queue2"}) {
    std::ifstream in(data_dir() + "/" + name + ".type");
    ASSERT_TRUE(in.good()) << "missing data file " << name;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const analysis::Report report =
        analysis::lint_type_text(buffer.str(), name);
    EXPECT_EQ(report.error_count(), 0)
        << name << ":\n" << report.render_text();
  }
}

}  // namespace
}  // namespace rcons::spec
