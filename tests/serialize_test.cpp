// Tests for the type text format: parsing, error reporting, round trips
// across the whole catalog, and semantic equivalence after a round trip.
#include <gtest/gtest.h>

#include "hierarchy/consensus_number.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"

namespace rcons::spec {
namespace {

constexpr const char* kTasText = R"(
# the classic test&set bit
type tas_from_text
value 0
value 1
op tas
0 tas -> 1 / won
1 tas -> 1 / lost
readop read
)";

TEST(Parse, AcceptsWellFormedDefinition) {
  const ParseResult r = parse_type(kTasText);
  ASSERT_TRUE(r.ok()) << r.error << " at line " << r.error_line;
  EXPECT_EQ(r.type->name(), "tas_from_text");
  EXPECT_EQ(r.type->value_count(), 2);
  EXPECT_EQ(r.type->op_count(), 2);
  EXPECT_TRUE(r.type->is_readable());
  const Effect& e = r.type->apply(*r.type->find_value("0"),
                                  *r.type->find_op("tas"));
  EXPECT_EQ(r.type->response_name(e.response), "won");
  EXPECT_EQ(r.type->value_name(e.next_value), "1");
}

TEST(Parse, ParsedTasHasConsensusNumber2) {
  const ParseResult r = parse_type(kTasText);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(hierarchy::discerning_level(*r.type, 3),
            (hierarchy::Level{2, true}));
  EXPECT_EQ(hierarchy::recording_level(*r.type, 3),
            (hierarchy::Level{1, true}));
}

TEST(Parse, RejectsMissingTypeDirective) {
  const ParseResult r = parse_type("value a\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_line, 1);
}

TEST(Parse, RejectsDuplicateType) {
  const ParseResult r = parse_type("type a\ntype b\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_line, 2);
}

TEST(Parse, RejectsUndeclaredNames) {
  const ParseResult r = parse_type(
      "type t\nvalue a\nop go\na go -> BOGUS / x\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("BOGUS"), std::string::npos);
  EXPECT_EQ(r.error_line, 4);
}

TEST(Parse, RejectsIncompleteTransitionTable) {
  const ParseResult r = parse_type("type t\nvalue a\nvalue b\nop go\n"
                                   "a go -> b / x\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("missing transition"), std::string::npos);
}

TEST(Parse, RejectsDuplicateDeclarations) {
  EXPECT_FALSE(parse_type("type t\nvalue a\nvalue a\n").ok());
  EXPECT_FALSE(parse_type("type t\nvalue a\nop o\nop o\n").ok());
}

TEST(Parse, RejectsGarbageDirective) {
  const ParseResult r = parse_type("type t\nfrobnicate x\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("frobnicate"), std::string::npos);
}

TEST(Parse, CommentsAndBlankLinesIgnored) {
  const ParseResult r =
      parse_type("\n# header\ntype t\n  # indented comment\nvalue a\nop o\n"
                 "a o -> a / ok\n\n");
  EXPECT_TRUE(r.ok()) << r.error;
}

class RoundTrip : public ::testing::TestWithParam<ObjectType> {};

TEST_P(RoundTrip, SerializeParsePreservesEverything) {
  const ObjectType& original = GetParam();
  const ParseResult r = parse_type(serialize_type(original));
  ASSERT_TRUE(r.ok()) << original.name() << ": " << r.error << " at line "
                      << r.error_line;
  const ObjectType& reparsed = *r.type;
  ASSERT_EQ(reparsed.value_count(), original.value_count());
  ASSERT_EQ(reparsed.op_count(), original.op_count());
  EXPECT_EQ(reparsed.name(), original.name());
  EXPECT_EQ(reparsed.is_readable(), original.is_readable());
  for (ValueId v = 0; v < original.value_count(); ++v) {
    EXPECT_EQ(reparsed.value_name(v), original.value_name(v));
    for (OpId op = 0; op < original.op_count(); ++op) {
      const Effect& a = original.apply(v, op);
      const Effect& b = reparsed.apply(v, op);
      EXPECT_EQ(reparsed.value_name(b.next_value),
                original.value_name(a.next_value));
      EXPECT_EQ(reparsed.response_name(b.response),
                original.response_name(a.response));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, RoundTrip,
    ::testing::Values(make_register(2), make_register(4),
                      make_test_and_set(), make_swap(3), make_fetch_and_add(5),
                      make_fetch_and_increment_saturating(3), make_cas(3),
                      make_sticky(3), make_consensus_object(3), make_queue(2),
                      make_peek_queue(2), make_tnn(5, 2), make_tnn(4, 3),
                      make_xn(4)),
    [](const ::testing::TestParamInfo<ObjectType>& info) {
      std::string name = info.param.name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rcons::spec
