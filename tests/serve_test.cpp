// End-to-end tests for the rcons-serve daemon (DESIGN.md §12), running
// server + clients in ONE process so the suite can reach the service's
// test hooks and the process-global metrics registry.
//
// The load-bearing assertions:
//   * PARITY — the daemon's profile/verify/lint result payloads are
//     byte-identical to what `rcons_cli --format=json` prints for the
//     same query, pinned two ways: against the golden corpus fixtures
//     (every data/*.type) and against the live CLI binary.
//   * SINGLE-FLIGHT — 32 concurrent clients profiling isomorphic
//     relabelings of one type cost exactly ONE exploration; the other 31
//     join the flight (asserted via metrics deltas), yet every client
//     still gets a response rendered for its OWN type name.
//   * ADMISSION — a full queue answers INCONCLUSIVE immediately, a
//     capped state budget turns verify SAFE into INCONCLUSIVE, and
//     malformed or oversized requests get structured errors, never a
//     hang or a crash.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/enumerate.hpp"
#include "hierarchy/consensus_number.hpp"
#include "reduction/type_canon.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "spec/catalog.hpp"
#include "spec/serialize.hpp"
#include "trace/metrics.hpp"
#include "util/socket.hpp"

namespace {

using rcons::serve::Request;
using rcons::serve::Server;
using rcons::serve::ServerOptions;
using rcons::serve::Service;
using rcons::serve::ServiceOptions;

std::string source_dir() { return RCONS_SOURCE_DIR; }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string capture_stdout(const std::string& command, int* exit_code) {
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  if (pipe != nullptr) {
    char buffer[4096];
    std::size_t got;
    while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
      out.append(buffer, got);
    }
    const int status = pclose(pipe);
    *exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  }
  return out;
}

/// `"key":"value"` extraction from a response envelope (string fields).
std::string string_field(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = doc.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  return doc.substr(start, doc.find('"', start) - start);
}

/// The "result" payload: render_response puts it LAST, so it spans from
/// after `"result":` to the envelope's closing brace.
std::string result_payload(const std::string& line) {
  const std::string needle = "\"result\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos || line.empty() || line.back() != '}') {
    return "";
  }
  const std::size_t start = at + needle.size();
  return line.substr(start, line.size() - start - 1);
}

/// An in-process daemon on an ephemeral 127.0.0.1 port.
struct TestDaemon {
  explicit TestDaemon(ServiceOptions service_options = {},
                      ServerOptions server_options = {})
      : service(std::move(service_options)),
        server(service, [&server_options] {
          if (server_options.unix_path.empty() &&
              server_options.tcp_port < 0) {
            server_options.tcp_port = 0;  // default: ephemeral TCP
          }
          return server_options;
        }()) {
    std::string error;
    EXPECT_TRUE(server.start(&error)) << error;
  }

  Service service;
  Server server;
};

/// One NDJSON client connection. Responses may interleave, so reads are
/// matched by id (unmatched lines are parked).
class Client {
 public:
  explicit Client(int port)
      : fd_(rcons::util::connect_tcp(port)), reader_(fd_, 4u << 20) {
    EXPECT_GE(fd_, 0) << "cannot connect to 127.0.0.1:" << port;
  }
  explicit Client(const std::string& unix_path)
      : fd_(rcons::util::connect_unix(unix_path)), reader_(fd_, 4u << 20) {
    EXPECT_GE(fd_, 0) << "cannot connect to " << unix_path;
  }
  ~Client() {
    if (fd_ >= 0) rcons::util::shutdown_and_close(fd_);
  }

  bool send(const std::string& line) {
    return rcons::util::write_all(fd_, line + "\n");
  }

  /// Next response line regardless of id ("" on EOF/error).
  std::string read_any() {
    std::string line;
    if (reader_.read_line(&line) != rcons::util::LineReader::Status::kLine) {
      return "";
    }
    return line;
  }

  /// The response whose "id" field is `id` ("" on EOF/error first).
  std::string read_for(const std::string& id) {
    const auto parked = parked_.find(id);
    if (parked != parked_.end()) {
      std::string line = parked->second;
      parked_.erase(parked);
      return line;
    }
    while (true) {
      const std::string line = read_any();
      if (line.empty()) return "";
      if (string_field(line, "id") == id) return line;
      parked_[string_field(line, "id")] = line;
    }
  }

  /// send + read_for in one step.
  std::string call(const std::string& id, const std::string& request) {
    EXPECT_TRUE(send(request));
    return read_for(id);
  }

 private:
  int fd_;
  rcons::util::LineReader reader_;
  std::map<std::string, std::string> parked_;
};

TEST(ServeTest, PingAndObservabilityCommands) {
  TestDaemon daemon;
  Client client(daemon.server.port());

  const std::string pong = client.call("p", "{\"id\":\"p\",\"command\":\"ping\"}");
  EXPECT_EQ(string_field(pong, "status"), "ok") << pong;
  EXPECT_EQ(result_payload(pong), "{\"pong\":true}") << pong;

  const std::string metrics =
      client.call("m", "{\"id\":\"m\",\"command\":\"metrics\"}");
  const std::string metrics_doc = result_payload(metrics);
  ASSERT_FALSE(metrics_doc.empty()) << metrics;
  EXPECT_EQ(metrics_doc.front(), '{');
  EXPECT_NE(metrics_doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics_doc.find("serve.requests.total"), std::string::npos);

  const std::string spans =
      client.call("s", "{\"id\":\"s\",\"command\":\"spans\"}");
  const std::string spans_doc = result_payload(spans);
  ASSERT_FALSE(spans_doc.empty()) << spans;
  EXPECT_EQ(spans_doc.front(), '[');  // chrome://tracing event array
  EXPECT_EQ(spans_doc.find('\n'), std::string::npos);
}

TEST(ServeTest, UnixSocketRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("rcons-serve-test-" + std::to_string(::getpid()) + ".sock"))
          .string();
  ServerOptions server_options;
  server_options.unix_path = path;
  TestDaemon daemon({}, server_options);
  Client client(path);
  const std::string pong = client.call("p", "{\"id\":\"p\",\"command\":\"ping\"}");
  EXPECT_EQ(result_payload(pong), "{\"pong\":true}") << pong;
  std::filesystem::remove(path);
}

// The parity contract, pinned against the golden corpus: for every
// data/*.type fixture, the daemon's profile payload is byte-identical to
// (a) the fixture minus its corpus-only "file" field and (b) the live
// CLI's --format=json stdout for the same query.
TEST(ServeTest, ProfilePayloadsMatchGoldenCorpusAndCli) {
  TestDaemon daemon;
  Client client(daemon.server.port());
  std::vector<std::string> fixtures;
  for (const auto& entry : std::filesystem::directory_iterator(
           source_dir() + "/tests/fixtures/golden")) {
    if (entry.path().extension() == ".json") {
      fixtures.push_back(entry.path().string());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_FALSE(fixtures.empty());
  int id = 0;
  for (const std::string& fixture_path : fixtures) {
    std::string fixture = slurp(fixture_path);
    while (!fixture.empty() &&
           (fixture.back() == '\n' || fixture.back() == ' ')) {
      fixture.pop_back();
    }
    // Drop the corpus-only `"file":"...",` field; what remains IS the
    // CLI's profile document for that type, by corpus construction.
    const std::string file = string_field(fixture, "file");
    ASSERT_FALSE(file.empty()) << fixture_path;
    const std::string file_field = "\"file\":\"" + file + "\",";
    const std::size_t at = fixture.find(file_field);
    ASSERT_NE(at, std::string::npos) << fixture_path;
    const std::string expected =
        fixture.substr(0, at) + fixture.substr(at + file_field.size());

    const std::string max_n = [&] {
      const std::size_t n_at = fixture.find("\"max_n\":");
      std::size_t end = n_at + 8;
      while (end < fixture.size() && std::isdigit(
                 static_cast<unsigned char>(fixture[end]))) {
        ++end;
      }
      return fixture.substr(n_at + 8, end - (n_at + 8));
    }();
    const std::string target = source_dir() + "/data/" + file;
    const std::string rid = "g" + std::to_string(id++);
    const std::string response = client.call(
        rid, "{\"id\":\"" + rid + "\",\"command\":\"profile\",\"target\":\"" +
                 target + "\",\"max_n\":" + max_n + "}");
    EXPECT_EQ(string_field(response, "status"), "ok") << response;
    EXPECT_EQ(result_payload(response), expected) << file;

    int cli_exit = -1;
    const std::string cli_stdout = capture_stdout(
        std::string(RCONS_CLI_BIN) + " profile " + target + " " + max_n +
            " --format=json --cache=off 2>/dev/null",
        &cli_exit);
    EXPECT_EQ(cli_exit, 0) << file;
    EXPECT_EQ(cli_stdout, result_payload(response) + "\n") << file;
  }
}

// Verify and lint parity against the live CLI, including the exit-code
// contract carried in the envelope.
TEST(ServeTest, VerifyAndLintPayloadsMatchCli) {
  TestDaemon daemon;
  Client client(daemon.server.port());
  struct Case {
    const char* id;
    std::string request;   // daemon request line
    std::string cli_args;  // CLI spelling of the same query
  };
  const std::string type_file = source_dir() + "/data/sticky2.type";
  const std::vector<Case> cases = {
      {"v1", "{\"id\":\"v1\",\"command\":\"verify\",\"spec\":\"cas 2\"}",
       "verify cas 2"},
      {"v2",
       "{\"id\":\"v2\",\"command\":\"verify\",\"spec\":\"recording sticky2 "
       "2\"}",
       "verify recording sticky2 2"},
      {"l1", "{\"id\":\"l1\",\"command\":\"lint\",\"target\":\"cas2\"}",
       "lint cas2"},
      {"l2",
       "{\"id\":\"l2\",\"command\":\"lint\",\"target\":\"" + type_file +
           "\"}",
       "lint " + type_file},
      {"l3", "{\"id\":\"l3\",\"command\":\"lint\",\"spec\":\"sticky 2\"}",
       "lint protocol sticky 2"},
  };
  for (const Case& c : cases) {
    const std::string response = client.call(c.id, c.request);
    ASSERT_FALSE(response.empty()) << c.cli_args;
    int cli_exit = -1;
    const std::string cli_stdout = capture_stdout(
        std::string(RCONS_CLI_BIN) + " " + c.cli_args +
            " --format=json --threads=1 2>/dev/null",
        &cli_exit);
    EXPECT_EQ(cli_stdout, result_payload(response) + "\n") << c.cli_args;
    const std::size_t code_at = response.find("\"exit_code\":");
    ASSERT_NE(code_at, std::string::npos);
    EXPECT_EQ(std::stoi(response.substr(code_at + 12)), cli_exit)
        << c.cli_args << ": " << response;
  }
}

// The order and explain verbs ride the same shared command cores, so
// their payloads must match the CLI byte for byte too — including the
// usage-error path for unknown inputs.
TEST(ServeTest, OrderAndExplainPayloadsMatchCli) {
  TestDaemon daemon;
  Client client(daemon.server.port());
  struct Case {
    const char* id;
    std::string request;
    std::string cli_args;
  };
  const std::vector<Case> cases = {
      {"o1",
       "{\"id\":\"o1\",\"command\":\"order\",\"target\":\"register2\","
       "\"target_b\":\"register3\"}",
       "order register2 register3"},
      {"o2",
       "{\"id\":\"o2\",\"command\":\"order\",\"target\":\"cas2\","
       "\"target_b\":\"consensus2\"}",
       "order cas2 consensus2"},
      {"e1", "{\"id\":\"e1\",\"command\":\"explain\",\"target\":\"SA010\"}",
       "explain SA010"},
  };
  for (const Case& c : cases) {
    const std::string response = client.call(c.id, c.request);
    ASSERT_FALSE(response.empty()) << c.cli_args;
    EXPECT_EQ(string_field(response, "status"), "ok") << response;
    int cli_exit = -1;
    const std::string cli_stdout = capture_stdout(
        std::string(RCONS_CLI_BIN) + " " + c.cli_args +
            " --format=json 2>/dev/null",
        &cli_exit);
    EXPECT_EQ(cli_exit, 0) << c.cli_args;
    EXPECT_EQ(cli_stdout, result_payload(response) + "\n") << c.cli_args;
  }
  // Usage errors: unknown rule id / missing second target -> error (2).
  const std::string bad_rule = client.call(
      "e9", "{\"id\":\"e9\",\"command\":\"explain\",\"target\":\"SA999\"}");
  EXPECT_EQ(string_field(bad_rule, "status"), "error") << bad_rule;
  const std::string half_pair = client.call(
      "o9", "{\"id\":\"o9\",\"command\":\"order\",\"target\":\"cas2\"}");
  EXPECT_EQ(string_field(half_pair, "status"), "error") << half_pair;
}

// The concurrency soak (the tentpole's core guarantee): 32 clients ask
// for isomorphic relabelings of one type at once; the canonical-form
// flight key coalesces them into ONE exploration and 31 joins, and each
// client's payload still names ITS type.
TEST(ServeTest, ThirtyTwoIsomorphicClientsShareOneExploration) {
  constexpr int kClients = 32;

  // The leader holds its exploration until the other 31 clients are
  // blocked on the same flight, so the coalescing is deterministic, not
  // a lucky race.
  struct SoakState {
    std::atomic<Service*> service{nullptr};
    std::atomic<bool> timed_out{false};
  };
  auto state = std::make_shared<SoakState>();
  ServiceOptions service_options;
  service_options.hooks.before_profile_compute =
      [state](const std::string& key) {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (state->service.load()->profile_waiters(key) <
               kClients - 1) {
          if (std::chrono::steady_clock::now() > deadline) {
            state->timed_out = true;
            return;
          }
          std::this_thread::yield();
        }
      };
  ServerOptions server_options;
  server_options.workers = kClients;  // all 32 requests in flight at once
  TestDaemon daemon(service_options, server_options);
  state->service = &daemon.service;

  // 32 isomorphic variants of cas2 — distinct names, relabeled values /
  // ops / responses — written to temp .type files.
  const rcons::spec::ObjectType base = rcons::spec::make_cas(2);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("rcons-soak-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::vector<std::string> files;
  for (int i = 0; i < kClients; ++i) {
    rcons::reduction::TypeRelabeling relabeling =
        rcons::reduction::identity_relabeling(base);
    // Rotate each id space by i (mod its size): valid permutations, and
    // across 32 variants they exercise several distinct relabelings.
    const auto rotate = [i](std::vector<int>& perm) {
      const int size = static_cast<int>(perm.size());
      for (int at = 0; at < size; ++at) perm[at] = (at + i) % size;
    };
    rotate(relabeling.value_perm);
    rotate(relabeling.op_perm);
    rotate(relabeling.response_perm);
    const rcons::spec::ObjectType variant = rcons::reduction::relabel_type(
        base, relabeling, "cas2_v" + std::to_string(i));
    const std::string path =
        (dir / ("v" + std::to_string(i) + ".type")).string();
    std::ofstream out(path);
    out << rcons::spec::serialize_type(variant);
    files.push_back(path);
  }

  auto& m = rcons::trace::metrics();
  const std::int64_t explored0 = m.counter("serve.profile.explored");
  const std::int64_t leader0 = m.counter("serve.singleflight.leader");
  const std::int64_t joined0 = m.counter("serve.singleflight.joined");

  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  const int port = daemon.server.port();
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([i, port, &files, &responses] {
      Client client(port);
      responses[static_cast<std::size_t>(i)] = client.call(
          "s" + std::to_string(i),
          "{\"id\":\"s" + std::to_string(i) +
              "\",\"command\":\"profile\",\"target\":\"" +
              files[static_cast<std::size_t>(i)] + "\",\"max_n\":3}");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(state->timed_out)
      << "leader never saw 31 joiners; coalescing is broken";

  for (int i = 0; i < kClients; ++i) {
    const std::string& response = responses[static_cast<std::size_t>(i)];
    EXPECT_EQ(string_field(response, "status"), "ok") << response;
    // Every client's payload is rendered for ITS type name, not the
    // leader's.
    EXPECT_EQ(string_field(result_payload(response), "type"),
              "cas2_v" + std::to_string(i))
        << response;
  }
  EXPECT_EQ(m.counter("serve.profile.explored") - explored0, 1);
  EXPECT_EQ(m.counter("serve.singleflight.leader") - leader0, 1);
  EXPECT_EQ(m.counter("serve.singleflight.joined") - joined0, kClients - 1);
  std::filesystem::remove_all(dir);
}

// A full admission queue answers INCONCLUSIVE immediately — the daemon
// never stalls a client to hide overload.
TEST(ServeTest, FullAdmissionQueueRejectsWithInconclusive) {
  struct GateState {
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
  };
  auto gate = std::make_shared<GateState>();
  ServiceOptions service_options;
  service_options.hooks.before_profile_compute =
      [gate](const std::string&) {
        if (gate->started.exchange(true)) return;  // only the first flight
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (!gate->release &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
      };
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.queue_depth = 1;
  TestDaemon daemon(service_options, server_options);
  Client client(daemon.server.port());

  // r1 occupies the only worker (held by the gate)...
  ASSERT_TRUE(client.send(
      "{\"id\":\"r1\",\"command\":\"profile\",\"target\":\"register2\"}"));
  while (!gate->started) std::this_thread::yield();
  // ...r2 fills the depth-1 queue...
  ASSERT_TRUE(client.send(
      "{\"id\":\"r2\",\"command\":\"profile\",\"target\":\"register3\"}"));
  // ...so r3 must bounce, immediately, while r1 is still running.
  const std::string rejected = client.call(
      "r3", "{\"id\":\"r3\",\"command\":\"profile\",\"target\":\"tas\"}");
  EXPECT_EQ(string_field(rejected, "status"), "inconclusive") << rejected;
  EXPECT_NE(rejected.find("\"exit_code\":3"), std::string::npos) << rejected;
  EXPECT_NE(string_field(rejected, "error").find("admission queue full"),
            std::string::npos)
      << rejected;

  gate->release = true;
  EXPECT_EQ(string_field(client.read_for("r1"), "status"), "ok");
  EXPECT_EQ(string_field(client.read_for("r2"), "status"), "ok");
}

// The per-request state budget: a capped exploration reports
// INCONCLUSIVE (exit 3), never SAFE, and a request cannot buy more
// budget than the daemon's cap.
TEST(ServeTest, StateBudgetCapTurnsVerifyInconclusive) {
  ServiceOptions service_options;
  service_options.max_states_cap = 5;
  TestDaemon daemon(service_options);
  Client client(daemon.server.port());

  const std::string capped = client.call(
      "b1", "{\"id\":\"b1\",\"command\":\"verify\",\"spec\":\"cas 2\"}");
  EXPECT_EQ(string_field(capped, "status"), "inconclusive") << capped;
  EXPECT_NE(capped.find("\"exit_code\":3"), std::string::npos) << capped;
  EXPECT_NE(result_payload(capped).find("\"verdict\":\"INCONCLUSIVE\""),
            std::string::npos)
      << capped;

  // Asking for a bigger budget than the cap is clamped, not honored.
  const std::string greedy = client.call(
      "b2",
      "{\"id\":\"b2\",\"command\":\"verify\",\"spec\":\"cas 2\","
      "\"max_states\":1000000}");
  EXPECT_EQ(string_field(greedy, "status"), "inconclusive") << greedy;
}

// Malformed requests: structured error responses with the salvaged id,
// and the connection keeps serving afterwards.
TEST(ServeTest, MalformedRequestsGetStructuredErrors) {
  TestDaemon daemon;
  Client client(daemon.server.port());
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"e1", "{\"id\":\"e1\",\"command\":\"profile\",\"max_n\":-3}"},
      {"e2", "{\"id\":\"e2\",\"command\":\"profile\",\"bogus\":1}"},
      {"e3", "{\"id\":\"e3\",\"command\":\"ping\"} trailing"},
      {"e4", "{\"id\":\"e4\",\"command\":{\"nested\":true}}"},
      {"e5", "{\"id\":\"e5\",\"command\":\"ping\",\"max_n\":"
             "99999999999999999999999999}"},
      {"e6", "{\"id\":\"e6\"}"},
      {"e7", "{\"id\":\"e7\",\"command\":\"profile\","
             "\"target\":\"no-such-type-anywhere\"}"},
  };
  for (const auto& [id, request] : cases) {
    const std::string response = client.call(id, request);
    ASSERT_FALSE(response.empty()) << request;
    EXPECT_EQ(string_field(response, "id"), id) << response;
    EXPECT_EQ(string_field(response, "status"), "error") << response;
    EXPECT_NE(response.find("\"exit_code\":2"), std::string::npos)
        << response;
    EXPECT_FALSE(string_field(response, "error").empty()) << response;
  }
  // Lines that cannot carry an id still answer (with an empty id).
  ASSERT_TRUE(client.send("this is not json"));
  const std::string anonymous = client.read_any();
  EXPECT_EQ(string_field(anonymous, "status"), "error") << anonymous;
  // The connection is still healthy.
  const std::string pong = client.call("p", "{\"id\":\"p\",\"command\":\"ping\"}");
  EXPECT_EQ(string_field(pong, "status"), "ok") << pong;
}

// An oversized line gets one structured error and a hangup (framing is
// unrecoverable past it) — never an unbounded buffer or a stall.
TEST(ServeTest, OversizedLineAnswersErrorThenCloses) {
  ServerOptions server_options;
  server_options.max_line_bytes = 512;
  TestDaemon daemon({}, server_options);
  Client client(daemon.server.port());
  const std::string huge =
      "{\"id\":\"big\",\"command\":\"" + std::string(4096, 'x') + "\"}";
  ASSERT_TRUE(client.send(huge));
  const std::string response = client.read_any();
  EXPECT_EQ(string_field(response, "status"), "error") << response;
  EXPECT_NE(string_field(response, "error").find("exceeds"),
            std::string::npos)
      << response;
  EXPECT_EQ(client.read_any(), "");  // daemon hung up
}

// The memory verdict tier: a repeat profile of the same type is answered
// from memory (no new disk or decider work), visible as cache.mem_hits
// growth and a stable exploration count.
TEST(ServeTest, MemoryTierServesRepeatProfiles) {
  TestDaemon daemon;
  Client client(daemon.server.port());
  auto& m = rcons::trace::metrics();
  const std::string request =
      "{\"id\":\"c1\",\"command\":\"profile\",\"target\":\"sticky2\","
      "\"max_n\":3}";
  const std::string first = client.call("c1", request);
  EXPECT_EQ(string_field(first, "status"), "ok") << first;
  EXPECT_GT(daemon.service.cache().entry_count(), 0u);

  const std::int64_t hits0 = m.counter("cache.mem_hits");
  const std::string second = client.call(
      "c2",
      "{\"id\":\"c2\",\"command\":\"profile\",\"target\":\"sticky2\","
      "\"max_n\":3}");
  EXPECT_EQ(result_payload(second), result_payload(first));
  EXPECT_GT(m.counter("cache.mem_hits"), hits0)
      << "repeat profile did not hit the memory tier";
}

// The hunt verb profiles a genome by its campaign coordinates, through
// the SAME flight keyspace as profile — so its levels must match an
// in-process profile of the instantiated machine exactly.
TEST(ServeTest, HuntVerbProfilesGenomesByCoordinate) {
  TestDaemon daemon;
  Client client(daemon.server.port());

  const rcons::campaign::GenomeId id{2, 1, 2, 5};
  const std::string response = client.call(
      "h1",
      "{\"id\":\"h1\",\"command\":\"hunt\",\"spec\":\"2 1 2 5\","
      "\"max_n\":2}");
  EXPECT_EQ(string_field(response, "status"), "ok") << response;
  const std::string doc = result_payload(response);
  EXPECT_NE(doc.find("\"command\":\"hunt\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"genome\":{\"values\":2,\"ops\":1,\"responses\":2,"
                     "\"index\":5}"),
            std::string::npos)
      << doc;

  // The reported canonical hash and levels match what the libraries
  // compute for the same coordinates in-process.
  const rcons::spec::ObjectType type =
      rcons::campaign::instantiate_genome(id);
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(
                    rcons::reduction::canonicalize_type(type).hash));
  EXPECT_NE(doc.find("\"canonical_hash\":\"" + std::string(hash_hex) +
                     "\""),
            std::string::npos)
      << doc;
  const rcons::hierarchy::Level discerning =
      rcons::hierarchy::discerning_level(type, 2);
  const rcons::hierarchy::Level recording =
      rcons::hierarchy::recording_level(type, 2);
  const auto level_json = [](const char* name,
                             const rcons::hierarchy::Level& level) {
    return std::string("\"") + name +
           "\":{\"value\":" + std::to_string(level.value) +
           ",\"exact\":" + (level.exact ? "true" : "false") + "}";
  };
  EXPECT_NE(doc.find(level_json("discerning", discerning)),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find(level_json("recording", recording)),
            std::string::npos)
      << doc;

  // Repeat requests are byte-identical.
  const std::string repeat = client.call(
      "h2",
      "{\"id\":\"h2\",\"command\":\"hunt\",\"spec\":\"2 1 2 5\","
      "\"max_n\":2}");
  EXPECT_EQ(result_payload(repeat), doc);

  // Usage errors: a short spec, and an index outside its cell (cell
  // (1, 1, 1) holds exactly one machine).
  for (const auto& [id_str, bad] :
       std::vector<std::pair<std::string, std::string>>{
           {"b1",
            "{\"id\":\"b1\",\"command\":\"hunt\",\"spec\":\"2 1\"}"},
           {"b2",
            "{\"id\":\"b2\",\"command\":\"hunt\",\"spec\":\"1 1 1 5\"}"},
           {"b3", "{\"id\":\"b3\",\"command\":\"hunt\"}"}}) {
    const std::string error = client.call(id_str, bad);
    EXPECT_EQ(string_field(error, "status"), "error") << error;
    EXPECT_NE(error.find("\"exit_code\":2"), std::string::npos) << error;
    EXPECT_FALSE(string_field(error, "error").empty()) << error;
  }
}

}  // namespace
