// Unit tests for src/exec: configurations, event application, crash
// semantics (objects persist, local state resets), decision logging, and
// indistinguishability — the mechanics of Section 2's model.
#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "algo/naive_register.hpp"
#include "algo/tas_racing.hpp"
#include "exec/config.hpp"
#include "exec/event.hpp"
#include "exec/execute.hpp"

namespace rcons::exec {
namespace {

TEST(Config, InitialValuesAndStates) {
  algo::CasConsensus protocol(2);
  const Config c = Config::initial(protocol, {0, 1});
  EXPECT_EQ(c.process_count(), 2);
  EXPECT_EQ(c.object_count(), 1);
  EXPECT_EQ(c.value(0), protocol.initial_value(0));
  EXPECT_EQ(c.local(0), protocol.initial_state(0, 0));
  EXPECT_EQ(c.local(1), protocol.initial_state(1, 1));
  EXPECT_EQ(c.input(0), 0);
  EXPECT_EQ(c.input(1), 1);
}

TEST(Config, HashChangesWithValueAndLocal) {
  algo::CasConsensus protocol(2);
  Config a = Config::initial(protocol, {0, 1});
  Config b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.set_value(0, a.value(0) == 0 ? 1 : 0);
  EXPECT_NE(a.hash(), b.hash());
  Config c = a;
  LocalState changed = c.local(0);
  changed.words[0] += 7;
  c.set_local(0, changed);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(Config, IndistinguishabilityIsPerProcess) {
  algo::CasConsensus protocol(2);
  Config a = Config::initial(protocol, {0, 1});
  Config b = a;
  LocalState changed = b.local(1);
  changed.words[0] += 1;
  b.set_local(1, changed);
  EXPECT_TRUE(a.indistinguishable_to(b, {0}));
  EXPECT_FALSE(a.indistinguishable_to(b, {1}));
  EXPECT_FALSE(a.indistinguishable_to(b, {0, 1}));
  EXPECT_TRUE(a.same_object_values(b));
}

TEST(Execute, StepAppliesOperationAndDecides) {
  algo::CasConsensus protocol(2);
  Config c = Config::initial(protocol, {1, 0});
  DecisionLog log(2);
  const EventOutcome out = apply_event(protocol, c, Event::step(0), log);
  EXPECT_TRUE(out.was_invoke);
  ASSERT_TRUE(out.decision.has_value());
  EXPECT_EQ(*out.decision, 1);  // p0 wins the CAS and decides its input
  EXPECT_TRUE(log.has_output(1));
  EXPECT_FALSE(log.has_output(0));
}

TEST(Execute, SecondProcessAdoptsWinner) {
  algo::CasConsensus protocol(2);
  const ExecutionResult r = run_schedule(
      protocol, Config::initial(protocol, {1, 0}), steps({0, 1}));
  EXPECT_TRUE(r.log.has_output(1));
  EXPECT_FALSE(r.log.has_output(0));
  EXPECT_EQ(r.log.decided[0], 1);
  EXPECT_EQ(r.log.decided[1], 1);
}

TEST(Execute, CrashResetsLocalStateButNotObjects) {
  algo::TasRacingConsensus protocol;
  Config c = Config::initial(protocol, {0, 1});
  DecisionLog log(2);
  // p1 writes its register and performs tas.
  apply_event(protocol, c, Event::step(1), log);
  apply_event(protocol, c, Event::step(1), log);
  const Config before_crash = c;
  apply_event(protocol, c, Event::crash(1), log);
  EXPECT_TRUE(c.same_object_values(before_crash)) << "objects are NVM";
  EXPECT_EQ(c.local(1), protocol.initial_state(1, 1)) << "local state reset";
  EXPECT_TRUE(c.indistinguishable_to(before_crash, {0}));
}

TEST(Execute, DecisionSurvivesCrashInLog) {
  algo::CasConsensus protocol(2);
  Config c = Config::initial(protocol, {1, 1});
  DecisionLog log(2);
  apply_event(protocol, c, Event::step(0), log);  // p0 decides 1
  EXPECT_TRUE(log.has_output(1));
  apply_event(protocol, c, Event::crash(0), log);
  // The paper: "for every execution alpha' starting from C' ... p_i has
  // output the value v" — outputs are properties of the execution.
  EXPECT_TRUE(log.has_output(1));
  // But the process state is reset: it is no longer in an output state.
  EXPECT_EQ(c.local(0), protocol.initial_state(0, 1));
}

TEST(Execute, StepsInOutputStatesAreNoOps) {
  algo::CasConsensus protocol(2);
  Config c = Config::initial(protocol, {1, 0});
  DecisionLog log(2);
  apply_event(protocol, c, Event::step(0), log);
  const Config decided = c;
  const EventOutcome out = apply_event(protocol, c, Event::step(0), log);
  EXPECT_FALSE(out.was_invoke);
  EXPECT_FALSE(out.decision.has_value());
  EXPECT_EQ(c, decided);
}

TEST(Execute, AgreementViolationDetectedByLog) {
  algo::NaiveRegisterConsensus protocol(2);
  // write0, write1, then p0 reads (sees r1 -> decides 1)? No: p0 writes 0,
  // p0 reads -> decides 0; then p1 writes 1, reads -> decides 1.
  const ExecutionResult r = run_schedule(
      protocol, Config::initial(protocol, {0, 1}), steps({0, 0, 1, 1}));
  EXPECT_TRUE(r.log.agreement_violated());
}

TEST(Execute, SoloTerminatingDecision) {
  algo::CasConsensus protocol(3);
  const Config c = Config::initial(protocol, {0, 1, 1});
  EXPECT_EQ(solo_terminating_decision(protocol, c, 0), 0);
  EXPECT_EQ(solo_terminating_decision(protocol, c, 1), 1);
  // After p0 runs, everyone's solo run decides p0's value.
  const ExecutionResult r = run_schedule(protocol, c, steps({0}));
  EXPECT_EQ(solo_terminating_decision(protocol, r.config, 1), 0);
  EXPECT_EQ(solo_terminating_decision(protocol, r.config, 2), 0);
}

TEST(Execute, ScheduleNotation) {
  Schedule s = steps({0, 1});
  s.push_back(Event::crash(1));
  s.push_back(Event::step(0));
  EXPECT_EQ(schedule_to_string(s), "p0 p1 c1 p0");
  EXPECT_EQ(schedule_to_string({}), "<>");
}

TEST(Execute, LambdaSchedule) {
  const Schedule s = lambda_schedule(2, 5);  // c2 c3 c4
  ASSERT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_TRUE(s[i].is_crash());
    EXPECT_EQ(s[i].pid, static_cast<int>(i) + 2);
  }
}

TEST(Execute, RenderExecutionMentionsEvents) {
  algo::CasConsensus protocol(2);
  Schedule s = steps({0});
  s.push_back(Event::crash(0));
  const ExecutionResult r =
      run_schedule(protocol, Config::initial(protocol, {1, 0}), s);
  const std::string text = render_execution(protocol, r);
  EXPECT_NE(text.find("decides 1"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);
}

}  // namespace
}  // namespace rcons::exec
