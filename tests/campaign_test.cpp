// The rcons-hunt battery (DESIGN.md §15): exhaustiveness of the sharded
// enumeration against brute force, kill -9 crash/resume byte-identity
// through the real CLI binary, checkpoint corruption rejection in the
// VerdictCache discipline (reject loudly, re-explore, never trust), merge
// conflict provenance, and the fingerprint-seeded search sharding. The
// campaign's whole value is "interruption is free"; this file is the
// proof.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/enumerate.hpp"
#include "campaign/merge.hpp"
#include "hierarchy/search.hpp"
#include "spec/serialize.hpp"
#include "util/hashing.hpp"

namespace {

namespace fs = std::filesystem;
using rcons::campaign::Box;
using rcons::campaign::CampaignOptions;
using rcons::campaign::CampaignResult;
using rcons::campaign::Candidate;
using rcons::campaign::CheckpointLoad;
using rcons::campaign::GenomeId;
using rcons::campaign::MergeOutcome;
using rcons::campaign::ProfileRecord;
using rcons::campaign::ShardCheckpoint;

/// Runs a command line, captures stdout, and returns the exit code via
/// `exit_code` (-1 when the process died on a signal — the kill battery's
/// expected outcome).
std::string capture_stdout(const std::string& command, int* exit_code) {
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  *exit_code = -1;
  if (pipe != nullptr) {
    char buffer[4096];
    std::size_t got;
    while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
      out.append(buffer, got);
    }
    const int status = pclose(pipe);
    *exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

/// The checkpoint trailer's checksum, recomputed from the documented
/// format (FNV-1a + the splitmix64 finalizer) so corruption tests can
/// forge internally-consistent files that differ only in the field under
/// test (e.g. a stale salt with a VALID checksum).
std::string forge_trailer(const std::string& body) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : body) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(rcons::mix64(h)));
  return body + "checksum: " + hex + "\nend\n";
}

/// Splits a checkpoint file into body and trailer, applies `edit` to the
/// body, and re-forges the trailer so only the edit is wrong.
std::string with_edited_body(
    const std::string& text,
    const std::function<void(std::string*)>& edit) {
  const auto tail = text.rfind("\nchecksum: ");
  EXPECT_NE(tail, std::string::npos);
  std::string body = text.substr(0, tail + 1);
  edit(&body);
  return forge_trailer(body);
}

/// Every canonical form in the box, by brute force: instantiate and
/// canonicalize ALL genomes directly from the cell arithmetic, no walk,
/// no sharding, no dedupe shortcuts.
std::set<std::string> brute_force_forms(const Box& box) {
  std::set<std::string> forms;
  for (int v = 1; v <= box.max_values; ++v) {
    for (int o = 1; o <= box.max_ops; ++o) {
      for (int r = 1; r <= box.max_responses; ++r) {
        const std::uint64_t cell = rcons::campaign::cell_size(v, o, r);
        EXPECT_NE(cell, 0u);
        for (std::uint64_t i = 0; i < cell; ++i) {
          forms.insert(rcons::reduction::canonicalize_type(
                           rcons::campaign::instantiate_genome(
                               GenomeId{v, o, r, i}))
                           .key);
        }
      }
    }
  }
  return forms;
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("rcons-campaign-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// In-process campaign with the test defaults (tiny box, serial, no
  /// cache — determinism comes from the walk, not the environment).
  CampaignOptions options(int shards = 1, int shard_index = 0) const {
    CampaignOptions o;
    o.box = Box{2, 2, 2};
    o.max_n = 2;
    o.shards = shards;
    o.shard_index = shard_index;
    o.checkpoint_dir = dir_;
    return o;
  }

  std::string dir_;
};

// ---------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------

TEST(CampaignEnumeration, CellAndBoxArithmetic) {
  // (R*V)^(V*O): 1 value, 1 op, 1 response: one machine.
  EXPECT_EQ(rcons::campaign::cell_size(1, 1, 1), 1u);
  EXPECT_EQ(rcons::campaign::cell_size(2, 1, 2), 16u);   // 4^2
  EXPECT_EQ(rcons::campaign::cell_size(3, 2, 2), 46656u);  // 6^6
  // A box sums its cells: {V<=2, O=1, R<=2} = 1 + 2 + 4 + 16.
  EXPECT_EQ(rcons::campaign::box_size(Box{2, 1, 2}), 23u);
  // Far past 64 bits: (64*64)^(64*64) — reported as overflow, not junk.
  EXPECT_EQ(rcons::campaign::cell_size(64, 64, 64), 0u);
  EXPECT_EQ(rcons::campaign::box_size(Box{64, 64, 64}), 0u);
}

TEST(CampaignEnumeration, InstantiateBuildsReadableMachines) {
  const GenomeId id{2, 2, 2, 37};
  const auto type = rcons::campaign::instantiate_genome(id);
  EXPECT_EQ(type.value_count(), 2);
  EXPECT_EQ(type.op_count(), 3);  // o0, o1, and the appended Read
  EXPECT_TRUE(type.is_readable());
  EXPECT_EQ(type.name(), "hunt_v2o2r2_i37");
  // Distinct indices decode to distinct delta tables within a cell.
  const auto other =
      rcons::campaign::instantiate_genome(GenomeId{2, 2, 2, 38});
  EXPECT_NE(rcons::spec::serialize_type(type),
            rcons::spec::serialize_type(other));
}

TEST(CampaignEnumeration, WalkVisitsEveryPositionInOrder) {
  const Box box{2, 2, 2};
  const std::uint64_t total = rcons::campaign::box_size(box);
  std::uint64_t expected = 0;
  rcons::campaign::walk_box(box, 0, [&](const Candidate& c) {
    EXPECT_EQ(c.position, expected);
    expected += 1;
    return true;
  });
  EXPECT_EQ(expected, total);
}

TEST(CampaignEnumeration, WalkResumesMidCellArithmetically) {
  const Box box{2, 2, 2};
  std::vector<GenomeId> all;
  rcons::campaign::walk_box(box, 0, [&](const Candidate& c) {
    all.push_back(c.id);
    return true;
  });
  // Resume from a position inside the last cell: the suffix must line up
  // exactly with the full walk (the checkpoint-cursor contract).
  const std::uint64_t from = rcons::campaign::box_size(box) - 7;
  std::size_t i = static_cast<std::size_t>(from);
  rcons::campaign::walk_box(box, from, [&](const Candidate& c) {
    EXPECT_EQ(c.position, static_cast<std::uint64_t>(i));
    EXPECT_EQ(c.id, all[i]);
    i += 1;
    return true;
  });
  EXPECT_EQ(i, all.size());
}

// The tentpole differential: for every shard count, the union of the
// per-shard profiled forms equals the brute-force canonical universe —
// no form skipped, none claimed by two shards.
TEST(CampaignEnumeration, ShardedUnionEqualsBruteForce) {
  const Box box{3, 2, 2};
  std::set<std::string> brute;
  brute_force_forms(box).swap(brute);
  ASSERT_FALSE(brute.empty());
  for (const int shards : {1, 3, 5}) {
    std::vector<std::set<std::string>> claimed(
        static_cast<std::size_t>(shards));
    rcons::campaign::walk_box(box, 0, [&](const Candidate& c) {
      // What run_campaign would profile: first occurrence of the form in
      // its owning shard.
      claimed[static_cast<std::size_t>(
                  rcons::campaign::shard_of(c.canon.hash, shards))]
          .insert(c.canon.key);
      return true;
    });
    std::set<std::string> unioned;
    std::size_t sum = 0;
    for (const auto& s : claimed) {
      sum += s.size();
      unioned.insert(s.begin(), s.end());
    }
    EXPECT_EQ(sum, unioned.size()) << "a form claimed by two shards, K="
                                   << shards;
    EXPECT_EQ(unioned, brute) << "union != brute force, K=" << shards;
  }
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

TEST_F(CampaignTest, ProfiledRecordsPartitionTheBruteForceUniverse) {
  std::set<std::string> brute;
  brute_force_forms(Box{2, 2, 2}).swap(brute);
  std::set<std::string> unioned;
  std::size_t sum = 0;
  for (int shard = 0; shard < 3; ++shard) {
    const CampaignResult r = run_campaign(options(3, shard));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.complete);
    for (const ProfileRecord& record : r.checkpoint.records) {
      EXPECT_TRUE(record.readable);
      EXPECT_TRUE(unioned.insert(record.canonical_key).second)
          << "form profiled twice: " << record.canonical_key;
      sum += 1;
    }
  }
  EXPECT_EQ(sum, brute.size());
  EXPECT_EQ(unioned, brute);
}

TEST_F(CampaignTest, BudgetSlicesResumeToIdenticalBytes) {
  // Reference: one uninterrupted run.
  const CampaignResult whole = run_campaign(options());
  ASSERT_TRUE(whole.ok) << whole.error;
  ASSERT_TRUE(whole.complete);
  const std::string reference = read_file(whole.db_path);
  fs::remove(whole.db_path);

  // Sliced: profile at most 2 forms per invocation, resuming each time.
  // Every stopping point the budget can produce is exercised.
  CampaignOptions sliced = options();
  sliced.budget = 2;
  sliced.checkpoint_interval = 5;
  int invocations = 0;
  for (;; ++invocations) {
    ASSERT_LT(invocations, 200) << "budget loop does not converge";
    const CampaignResult r = run_campaign(sliced);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_LE(r.profiled, sliced.budget);
    sliced.resume = true;
    if (r.complete) break;
  }
  EXPECT_GT(invocations, 2);
  EXPECT_EQ(read_file(whole.db_path), reference);
}

TEST_F(CampaignTest, ResumeOfCompleteShardIsANoOp) {
  const CampaignResult first = run_campaign(options());
  ASSERT_TRUE(first.ok) << first.error;
  CampaignOptions again = options();
  again.resume = true;
  const CampaignResult second = run_campaign(again);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.resumed);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.visited, 0u);
  EXPECT_EQ(second.profiled, 0u);
}

TEST_F(CampaignTest, AfterCandidateHookSeesEveryVisit) {
  CampaignOptions o = options();
  std::uint64_t calls = 0;
  o.after_candidate = [&](std::uint64_t visited) {
    calls += 1;
    EXPECT_EQ(visited, calls);
  };
  const CampaignResult r = run_campaign(o);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(calls, r.visited);
}

TEST_F(CampaignTest, ConfigErrorsDoNotTouchDisk) {
  CampaignOptions o = options();
  o.shard_index = 7;  // >= shards
  const CampaignResult r = run_campaign(o);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("shard"), std::string::npos);
  CampaignOptions no_dir = options();
  no_dir.checkpoint_dir.clear();
  EXPECT_FALSE(run_campaign(no_dir).ok);
  EXPECT_TRUE(fs::is_empty(dir_));
}

// ---------------------------------------------------------------------
// Checkpoint format
// ---------------------------------------------------------------------

TEST_F(CampaignTest, CheckpointRoundTrips) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  const CheckpointLoad load =
      rcons::campaign::load_checkpoint(r.db_path, r.checkpoint);
  ASSERT_TRUE(load.ok) << load.reason;
  EXPECT_EQ(load.checkpoint.records, r.checkpoint.records);
  EXPECT_EQ(load.checkpoint.cursor, r.checkpoint.cursor);
  EXPECT_TRUE(load.checkpoint.complete);
}

TEST_F(CampaignTest, EveryTruncationIsRejected) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  const std::string full = read_file(r.db_path);
  const std::string path = dir_ + "/truncated.hunt";
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    write_file(path, full.substr(0, keep));
    const CheckpointLoad load =
        rcons::campaign::load_checkpoint(path, r.checkpoint);
    EXPECT_FALSE(load.ok) << "accepted a " << keep << "-byte truncation";
    EXPECT_FALSE(load.reason.empty());
  }
}

TEST_F(CampaignTest, BitFlipsAreRejected) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  const std::string full = read_file(r.db_path);
  const std::string path = dir_ + "/flipped.hunt";
  for (const std::size_t at :
       {std::size_t{0}, full.size() / 3, full.size() / 2,
        full.size() - 2}) {
    std::string bytes = full;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
    write_file(path, bytes);
    EXPECT_FALSE(
        rcons::campaign::load_checkpoint(path, r.checkpoint).ok)
        << "accepted a bit flip at byte " << at;
  }
}

TEST_F(CampaignTest, StaleSaltIsRejectedEvenWithValidChecksum) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  const std::string forged =
      with_edited_body(read_file(r.db_path), [](std::string* body) {
        const auto at = body->find("rcons-hunt-v1|");
        ASSERT_NE(at, std::string::npos);
        (*body)[at + 12] = '0';  // v1 -> v0
      });
  const std::string path = dir_ + "/stale.hunt";
  write_file(path, forged);
  const CheckpointLoad load =
      rcons::campaign::load_checkpoint(path, r.checkpoint);
  EXPECT_FALSE(load.ok);
  EXPECT_NE(load.reason.find("stale salt"), std::string::npos)
      << load.reason;
}

TEST_F(CampaignTest, ConfigMismatchesAreRejectedWithDistinctReasons) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  ShardCheckpoint expected = r.checkpoint;
  expected.max_n = 3;
  EXPECT_NE(rcons::campaign::load_checkpoint(r.db_path, expected)
                .reason.find("max_n mismatch"),
            std::string::npos);
  expected = r.checkpoint;
  expected.shards = 4;
  EXPECT_NE(rcons::campaign::load_checkpoint(r.db_path, expected)
                .reason.find("shard mismatch"),
            std::string::npos);
  expected = r.checkpoint;
  expected.box.max_values = 3;
  EXPECT_NE(rcons::campaign::load_checkpoint(r.db_path, expected)
                .reason.find("box mismatch"),
            std::string::npos);
  EXPECT_NE(rcons::campaign::load_checkpoint(dir_ + "/absent.hunt",
                                             r.checkpoint)
                .reason.find("no checkpoint"),
            std::string::npos);
}

TEST_F(CampaignTest, CorruptCheckpointIsReexploredToCleanResult) {
  const CampaignResult clean = run_campaign(options());
  ASSERT_TRUE(clean.ok) << clean.error;
  const std::string reference = read_file(clean.db_path);
  // Corrupt the snapshot, then resume: the file is rejected with a
  // reason, the shard re-explores from scratch, and the final database
  // is byte-identical to the clean run.
  std::string bytes = reference;
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  write_file(clean.db_path, bytes);
  CampaignOptions o = options();
  o.resume = true;
  const CampaignResult again = run_campaign(o);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.resumed);
  EXPECT_NE(again.resume_note.find("checksum"), std::string::npos)
      << again.resume_note;
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(read_file(clean.db_path), reference);
}

TEST(CampaignRecord, ParserIsStrict) {
  ProfileRecord r;
  r.id = GenomeId{2, 1, 2, 5};
  r.canonical_hash = 0xa1b2c3d4e5f60718ULL;
  r.canonical_key = "v2o2r2:0.0,1.1;1.0,0.1;";
  r.readable = true;
  r.discerning = {2, true};
  r.recording = {1, false};
  const std::string line = rcons::campaign::render_record(r);
  ProfileRecord parsed;
  ASSERT_TRUE(rcons::campaign::parse_record(line, &parsed)) << line;
  EXPECT_EQ(parsed, r);
  // Strictness: trailing junk, a short hash, uppercase hex, and a
  // malformed level token all read as corruption.
  EXPECT_FALSE(rcons::campaign::parse_record(line + " junk", &parsed));
  EXPECT_FALSE(rcons::campaign::parse_record("r 2 1 2 5 a1b2 2.1 1.0 1 k",
                                             &parsed));
  std::string upper = line;
  upper[upper.find("a1b2")] = 'A';
  EXPECT_FALSE(rcons::campaign::parse_record(upper, &parsed));
  EXPECT_FALSE(rcons::campaign::parse_record(
      "r 2 1 2 5 a1b2c3d4e5f60718 2.x 1.0 1 k", &parsed));
  EXPECT_FALSE(rcons::campaign::parse_record("", &parsed));
}

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

class MergeTest : public CampaignTest {
 protected:
  /// Runs a K-sharded campaign and returns the shard database paths.
  std::vector<std::string> run_shards(int shards) {
    std::vector<std::string> paths;
    for (int shard = 0; shard < shards; ++shard) {
      const CampaignResult r = run_campaign(options(shards, shard));
      EXPECT_TRUE(r.ok) << r.error;
      paths.push_back(r.db_path);
    }
    return paths;
  }
};

TEST_F(MergeTest, PartitioningInvariantMergedBytes) {
  const std::vector<std::string> one = run_shards(1);
  const MergeOutcome merged_one = rcons::campaign::merge_databases(one);
  ASSERT_TRUE(merged_one.ok) << merged_one.error;
  EXPECT_TRUE(merged_one.all_complete);

  const std::vector<std::string> four = run_shards(4);
  const MergeOutcome merged_four = rcons::campaign::merge_databases(four);
  ASSERT_TRUE(merged_four.ok) << merged_four.error;
  EXPECT_EQ(rcons::campaign::serialize_merged(merged_one),
            rcons::campaign::serialize_merged(merged_four));
  EXPECT_EQ(merged_four.inputs, 4u);
  EXPECT_EQ(merged_four.records.size(), merged_one.records.size());
  // Sorted by canonical key, so the table itself is deterministic.
  EXPECT_TRUE(std::is_sorted(
      merged_four.records.begin(), merged_four.records.end(),
      [](const ProfileRecord& a, const ProfileRecord& b) {
        return a.canonical_key < b.canonical_key;
      }));

  // The rendered summaries are partitioning-invariant past their input
  // tallies (the "merged N databases" header / "inputs" field), and
  // carry the landscape/gap/frontier sections E12 quotes.
  const std::string text = rcons::campaign::render_merged_text(merged_four);
  const std::string text_one =
      rcons::campaign::render_merged_text(merged_one);
  ASSERT_NE(text.find("box:"), std::string::npos);
  EXPECT_EQ(text.substr(text.find("box:")),
            text_one.substr(text_one.find("box:")));
  EXPECT_NE(text.find("(cons, rcons) landscape:"), std::string::npos);
  EXPECT_NE(text.find("gap census"), std::string::npos);
  EXPECT_NE(text.find("frontier"), std::string::npos);
  const std::string json = rcons::campaign::render_merged_json(merged_four);
  const std::string json_one =
      rcons::campaign::render_merged_json(merged_one);
  ASSERT_NE(json.find("\"input_records\""), std::string::npos);
  EXPECT_EQ(json.substr(json.find("\"input_records\"")),
            json_one.substr(json_one.find("\"input_records\"")));
  EXPECT_NE(json.find("\"distinct_forms\":" +
                      std::to_string(merged_four.records.size())),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"landscape\":["), std::string::npos);
  EXPECT_NE(json.find("\"frontier\":["), std::string::npos);
}

TEST_F(MergeTest, OverlappingInputsDedupe) {
  const std::vector<std::string> shards = run_shards(2);
  // The same shard database listed twice, plus the other shard: agreeing
  // duplicates fold away.
  const MergeOutcome merged = rcons::campaign::merge_databases(
      {shards[0], shards[1], shards[0]});
  ASSERT_TRUE(merged.ok) << merged.error;
  const MergeOutcome plain = rcons::campaign::merge_databases(shards);
  ASSERT_TRUE(plain.ok) << plain.error;
  EXPECT_EQ(rcons::campaign::serialize_merged(merged),
            rcons::campaign::serialize_merged(plain));
  EXPECT_EQ(merged.input_records,
            plain.input_records + rcons::campaign::read_checkpoint(shards[0])
                                      .checkpoint.records.size());
}

TEST_F(MergeTest, ConflictHardFailsWithBothProvenances) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_FALSE(r.checkpoint.records.empty());
  // Forge a second shard database that disagrees on one verdict.
  ShardCheckpoint lying = r.checkpoint;
  lying.records.front().recording.value += 1;
  const std::string liar_path = dir_ + "/liar.hunt";
  std::string error;
  ASSERT_TRUE(rcons::campaign::write_checkpoint(liar_path, lying, &error))
      << error;
  const MergeOutcome merged =
      rcons::campaign::merge_databases({r.db_path, liar_path});
  EXPECT_FALSE(merged.ok);
  // Both provenances — file paths AND full record lines — are printed;
  // last-writer-wins would be a silent wrong answer.
  EXPECT_NE(merged.error.find("conflict"), std::string::npos);
  EXPECT_NE(merged.error.find(r.db_path), std::string::npos);
  EXPECT_NE(merged.error.find(liar_path), std::string::npos);
  EXPECT_NE(merged.error.find(rcons::campaign::render_record(
                r.checkpoint.records.front())),
            std::string::npos);
  EXPECT_NE(merged.error.find(rcons::campaign::render_record(
                lying.records.front())),
            std::string::npos);
}

TEST_F(MergeTest, EmptyShardAndPartialShardEdgeCases) {
  // An empty shard (no records, not complete) merges fine but marks the
  // outcome partial.
  ShardCheckpoint empty;
  empty.box = Box{2, 2, 2};
  empty.max_n = 2;
  empty.shards = 2;
  empty.shard_index = 1;
  empty.cursor = 3;
  const std::string empty_path = dir_ + "/empty.hunt";
  std::string error;
  ASSERT_TRUE(rcons::campaign::write_checkpoint(empty_path, empty, &error));
  const CampaignResult r = run_campaign(options(2, 0));
  ASSERT_TRUE(r.ok) << r.error;
  const MergeOutcome merged =
      rcons::campaign::merge_databases({r.db_path, empty_path});
  ASSERT_TRUE(merged.ok) << merged.error;
  EXPECT_FALSE(merged.all_complete);
  EXPECT_EQ(merged.records.size(), r.checkpoint.records.size());
  // The text summary flags the partial view.
  EXPECT_NE(rcons::campaign::render_merged_text(merged).find("PARTIAL"),
            std::string::npos);
}

TEST_F(MergeTest, CampaignMismatchAndCorruptInputsFail) {
  const CampaignResult r = run_campaign(options());
  ASSERT_TRUE(r.ok) << r.error;
  // A database from a different campaign (other max_n).
  CampaignOptions other = options();
  other.max_n = 3;
  other.checkpoint_dir = dir_ + "/other";
  const CampaignResult r3 = run_campaign(other);
  ASSERT_TRUE(r3.ok) << r3.error;
  const MergeOutcome mismatch =
      rcons::campaign::merge_databases({r.db_path, r3.db_path});
  EXPECT_FALSE(mismatch.ok);
  EXPECT_NE(mismatch.error.find("campaign mismatch"), std::string::npos);
  // Corrupt input: hard error naming the file, not a silent skip.
  const std::string bad_path = dir_ + "/bad.hunt";
  write_file(bad_path, "rcons-hunt v1\ngarbage\n");
  const MergeOutcome corrupt =
      rcons::campaign::merge_databases({bad_path});
  EXPECT_FALSE(corrupt.ok);
  EXPECT_NE(corrupt.error.find(bad_path), std::string::npos);
  EXPECT_FALSE(rcons::campaign::merge_databases({}).ok);
}

// ---------------------------------------------------------------------
// Search sharding (the hierarchy/search seeding fix)
// ---------------------------------------------------------------------

TEST(SearchSharding, TwoRunsAreByteStable) {
  rcons::hierarchy::MachineSearchOptions o;
  o.value_count = 3;
  o.op_count = 1;
  o.response_count = 2;
  o.max_n = 2;
  o.restarts = 6;
  o.mutations_per_restart = 25;
  o.seed = 11;
  o.shards = 3;
  o.shard_index = 1;
  const auto a = rcons::hierarchy::search_gap_machines(o);
  const auto b = rcons::hierarchy::search_gap_machines(o);
  EXPECT_EQ(a.best_gap, b.best_gap);
  EXPECT_EQ(a.best_restart, b.best_restart);
  EXPECT_EQ(a.machines_evaluated, b.machines_evaluated);
  EXPECT_EQ(a.restarts_run, b.restarts_run);
  if (a.best_restart >= 0) {
    EXPECT_EQ(rcons::spec::serialize_type(a.best_type),
              rcons::spec::serialize_type(b.best_type));
  }
}

TEST(SearchSharding, ShardsPartitionTheRestartsExactly) {
  rcons::hierarchy::MachineSearchOptions o;
  o.value_count = 3;
  o.op_count = 1;
  o.response_count = 2;
  o.max_n = 2;
  o.restarts = 12;
  o.mutations_per_restart = 20;
  o.seed = 5;
  const auto whole = rcons::hierarchy::search_gap_machines(o);
  EXPECT_EQ(whole.restarts_run, 12u);

  const int kShards = 3;
  std::uint64_t restarts_covered = 0;
  std::uint64_t machines_covered = 0;
  int best_gap = -1;
  int best_restart = -1;
  std::string best_serialized;
  for (int shard = 0; shard < kShards; ++shard) {
    auto sharded = o;
    sharded.shards = kShards;
    sharded.shard_index = shard;
    const auto r = rcons::hierarchy::search_gap_machines(sharded);
    restarts_covered += r.restarts_run;
    machines_covered += r.machines_evaluated;
    if (r.best_restart >= 0 &&
        (r.best_gap > best_gap ||
         (r.best_gap == best_gap && r.best_restart < best_restart))) {
      best_gap = r.best_gap;
      best_restart = r.best_restart;
      best_serialized = rcons::spec::serialize_type(r.best_type);
    }
  }
  // Disjoint and exhaustive: every restart ran in exactly one shard, and
  // folding the shard winners by (gap desc, restart asc) reproduces the
  // unsharded result machine-for-machine.
  EXPECT_EQ(restarts_covered, 12u);
  EXPECT_EQ(machines_covered, whole.machines_evaluated);
  EXPECT_EQ(best_gap, whole.best_gap);
  EXPECT_EQ(best_restart, whole.best_restart);
  EXPECT_EQ(best_serialized,
            rcons::spec::serialize_type(whole.best_type));
}

// ---------------------------------------------------------------------
// The kill -9 battery (through the real binary)
// ---------------------------------------------------------------------

class HuntCliTest : public CampaignTest {
 protected:
  /// The hunt invocation all battery runs share: 266 candidates
  /// (V<=3, O=1, R<=2), serial, no cache, a checkpoint interval that
  /// does not divide the walk length.
  std::string hunt_command(const std::string& checkpoint_dir,
                           const std::string& extra) const {
    return std::string(RCONS_CLI_BIN) +
           " hunt --checkpoint-dir=" + checkpoint_dir +
           " --max-values=3 --max-ops=1 --max-responses=2 --max-n=2" +
           " --threads=1 --cache=off --checkpoint-interval=7 " + extra +
           " 2>/dev/null";
  }
};

TEST_F(HuntCliTest, FiftySeededKillsResumeByteIdentical) {
  // Reference: one uninterrupted run.
  const std::string ref_dir = dir_ + "/ref";
  int exit_code = -1;
  capture_stdout(hunt_command(ref_dir, ""), &exit_code);
  ASSERT_EQ(exit_code, 0);
  const std::string reference =
      read_file(ref_dir + "/shard-0-of-1.hunt");
  const std::uint64_t total = rcons::campaign::box_size(Box{3, 1, 2});
  ASSERT_EQ(total, 266u);

  int kills_observed = 0;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    // Seeded kill point: splitmix-mixed trial index over the walk.
    const std::uint64_t kill_after =
        1 + rcons::mix64(0x9e3779b97f4a7c15ULL * (trial + 1)) % total;
    const std::string trial_dir =
        dir_ + "/trial" + std::to_string(trial);
    capture_stdout("RCONS_HUNT_KILL_AFTER=" +
                       std::to_string(kill_after) + " " +
                       hunt_command(trial_dir, ""),
                   &exit_code);
    // The shell reports a SIGKILLed child as 128 + 9; a popen quirk can
    // also surface it as a raw signal status (-1 here).
    if (exit_code == 137 || exit_code == -1) kills_observed += 1;
    // Resume (no kill env). One resume always suffices: the injected
    // kill fires only in the first process.
    capture_stdout(hunt_command(trial_dir, "--resume"), &exit_code);
    ASSERT_EQ(exit_code, 0) << "trial " << trial;
    EXPECT_EQ(read_file(trial_dir + "/shard-0-of-1.hunt"), reference)
        << "trial " << trial << " (killed after " << kill_after << ")";
    fs::remove_all(trial_dir);
  }
  // The battery only proves something if the kills actually landed: the
  // hook fires on the last visited candidate at the latest, BEFORE the
  // final snapshot, so every trial must have died mid-flight.
  EXPECT_EQ(kills_observed, 50);
}

TEST_F(HuntCliTest, BudgetStopsWithExitThree) {
  int exit_code = -1;
  const std::string out =
      capture_stdout(hunt_command(dir_ + "/b", "--budget=3"), &exit_code);
  EXPECT_EQ(exit_code, 3);
  EXPECT_NE(out.find("stopped (resumable)"), std::string::npos) << out;
  // Resume to completion, still byte-identical to an uninterrupted run.
  capture_stdout(hunt_command(dir_ + "/b", "--resume"), &exit_code);
  EXPECT_EQ(exit_code, 0);
}

TEST_F(HuntCliTest, ShardedCliMergeMatchesSingleShardReference) {
  int exit_code = -1;
  capture_stdout(hunt_command(dir_ + "/one", ""), &exit_code);
  ASSERT_EQ(exit_code, 0);
  for (int shard = 0; shard < 3; ++shard) {
    capture_stdout(hunt_command(dir_ + "/three",
                                "--shards=3 --shard=" +
                                    std::to_string(shard)),
                   &exit_code);
    ASSERT_EQ(exit_code, 0) << "shard " << shard;
  }
  const std::string merge_bin = RCONS_HUNT_MERGE_BIN;
  capture_stdout(merge_bin + " --out=" + dir_ + "/one.db " + dir_ +
                     "/one/shard-0-of-1.hunt 2>/dev/null",
                 &exit_code);
  ASSERT_EQ(exit_code, 0);
  capture_stdout(merge_bin + " --out=" + dir_ + "/three.db " + dir_ +
                     "/three/shard-0-of-3.hunt " + dir_ +
                     "/three/shard-1-of-3.hunt " + dir_ +
                     "/three/shard-2-of-3.hunt 2>/dev/null",
                 &exit_code);
  ASSERT_EQ(exit_code, 0);
  EXPECT_EQ(read_file(dir_ + "/one.db"), read_file(dir_ + "/three.db"));
}

TEST_F(HuntCliTest, UsageErrorsExitTwo) {
  int exit_code = -1;
  capture_stdout(std::string(RCONS_CLI_BIN) + " hunt 2>/dev/null",
                 &exit_code);
  EXPECT_EQ(exit_code, 2);  // no --checkpoint-dir
  capture_stdout(std::string(RCONS_CLI_BIN) +
                     " hunt --checkpoint-dir=/tmp/x --shards=2 --shard=2"
                     " 2>/dev/null",
                 &exit_code);
  EXPECT_EQ(exit_code, 2);  // shard out of range
  capture_stdout(std::string(RCONS_CLI_BIN) +
                     " hunt --checkpoint-dir=/tmp/x --budget=banana"
                     " 2>/dev/null",
                 &exit_code);
  EXPECT_EQ(exit_code, 2);  // strict numeric parsing
}

}  // namespace
