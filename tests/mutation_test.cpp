// Checker-sensitivity (mutation) tests: deliberately corrupt correct
// protocols and types and assert the verifiers CATCH the corruption. A
// verifier that passes everything is worthless; these tests pin its teeth.
#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "spec/builder.hpp"
#include "spec/catalog.hpp"
#include "valency/model_checker.hpp"

namespace rcons {
namespace {

// A cas-consensus variant whose loser arm decides its OWN input instead of
// the winner's value: validity holds, agreement must break.
class StubbornCasConsensus : public algo::CasConsensus {
 public:
  explicit StubbornCasConsensus(int n) : algo::CasConsensus(n) {}

  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override {
    exec::LocalState next = algo::CasConsensus::advance(pid, state, response);
    // Corrupt the adoption: always decide own input.
    next.words[1] = state.words[1];
    return next;
  }
};

TEST(Mutation, StubbornCasIsCaughtCrashFree) {
  StubbornCasConsensus protocol(2);
  valency::SafetyOptions options;
  options.crash_mode = valency::CrashMode::kNone;
  const auto r = valency::check_safety(protocol, {0, 1}, options);
  EXPECT_FALSE(r.agreement_ok);
  ASSERT_TRUE(r.counterexample.has_value());
}

// A cas-consensus variant that decides a constant: breaks validity.
class ConstantCasConsensus : public algo::CasConsensus {
 public:
  explicit ConstantCasConsensus(int n) : algo::CasConsensus(n) {}

  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override {
    exec::LocalState next = algo::CasConsensus::advance(pid, state, response);
    next.words[1] = 0;  // always output 0
    return next;
  }
};

TEST(Mutation, ConstantDeciderFailsValidity) {
  ConstantCasConsensus protocol(2);
  const auto r = valency::check_safety(protocol, {1, 1});
  EXPECT_FALSE(r.validity_ok);
}

// A protocol that spins forever when it loses the CAS: recoverable
// wait-freedom must fail.
class SpinningCasConsensus : public algo::CasConsensus {
 public:
  explicit SpinningCasConsensus(int n) : algo::CasConsensus(n) {}

  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override {
    exec::LocalState next = algo::CasConsensus::advance(pid, state, response);
    if (next.words[0] == -1 &&
        next.words[1] != state.words[1]) {
      // Lost the race: refuse to decide and retry forever.
      return state;
    }
    return next;
  }
};

TEST(Mutation, SpinnerFailsRecoverableWaitFreedom) {
  SpinningCasConsensus protocol(2);
  valency::LivenessOptions options;
  options.solo_step_bound = 200;
  const auto r =
      valency::check_recoverable_wait_freedom(protocol, {0, 1}, options);
  EXPECT_FALSE(r.wait_free);
  EXPECT_GE(r.stuck_pid, 0);
}

// Type mutation: break test&set's winner response so both appliers see the
// same response/value pairs — 2-discerning must vanish.
TEST(Mutation, DegenerateTasLosesItsDiscerningLevel) {
  spec::TypeBuilder b("broken_tas");
  b.value("0");
  b.value("1");
  b.op("tas");
  b.on("0", "tas").then("1").returns("same");
  b.on("1", "tas").then("1").returns("same");
  b.make_read_op("read");
  const spec::ObjectType broken = b.build();
  EXPECT_FALSE(hierarchy::check_discerning(broken, 2).holds);
  EXPECT_EQ(hierarchy::discerning_level(broken, 3),
            (hierarchy::Level{1, true}));
}

// Type mutation: give cas3 a "reset" op that maps everything back to r0 —
// the EXISTENTIAL witnesses must survive (adding operations can only help).
TEST(Mutation, AddingOperationsNeverLowersLevels) {
  spec::TypeBuilder b("cas3_with_reset");
  const spec::ObjectType cas = spec::make_cas(3);
  for (spec::ValueId v = 0; v < cas.value_count(); ++v) {
    b.value(cas.value_name(v));
  }
  for (spec::OpId op = 0; op < cas.op_count(); ++op) {
    b.op(cas.op_name(op));
  }
  for (spec::ValueId v = 0; v < cas.value_count(); ++v) {
    for (spec::OpId op = 0; op < cas.op_count(); ++op) {
      const spec::Effect& e = cas.apply(v, op);
      b.on(cas.value_name(v), cas.op_name(op))
          .then(cas.value_name(e.next_value))
          .returns(cas.response_name(e.response));
    }
  }
  b.op("reset");
  for (spec::ValueId v = 0; v < cas.value_count(); ++v) {
    b.on(cas.value_name(v), "reset").then("r0").returns("ok");
  }
  const spec::ObjectType augmented = b.build();
  for (int n = 2; n <= 4; ++n) {
    EXPECT_TRUE(hierarchy::check_discerning(augmented, n).holds) << n;
    EXPECT_TRUE(hierarchy::check_recording(augmented, n).holds) << n;
  }
}

// Witness mutation: swapping one process's op in a valid witness to Read
// should (for test&set at n = 2) destroy it — pins that the evaluator
// actually looks at the ops.
TEST(Mutation, TamperedWitnessIsRejected) {
  const spec::ObjectType tas = spec::make_test_and_set();
  const auto result = hierarchy::check_discerning(tas, 2);
  ASSERT_TRUE(result.witness.has_value());
  hierarchy::Assignment tampered = *result.witness;
  tampered.ops[0] = *tas.find_op("read");
  EXPECT_FALSE(hierarchy::is_discerning_witness(tas, tampered));
}

}  // namespace
}  // namespace rcons
