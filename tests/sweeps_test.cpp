// Parameterized property sweeps across protocols, crash regimes, and
// hierarchy levels.
//
// These are the repository's property tests: each suite states one
// invariant ("correct recoverable protocols are safe under every crash
// regime", "levels computed by the two enumeration strategies agree",
// "E_z* acceptance is monotone in z", ...) and sweeps it across instances.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "hierarchy/consensus_number.hpp"
#include "sched/crash_budget.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "valency/model_checker.hpp"

namespace rcons {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: every correct recoverable protocol is safe and recoverable
// wait-free under none / individual / simultaneous / both crash regimes.
// ---------------------------------------------------------------------------

struct ProtocolCase {
  std::string name;
  std::function<std::unique_ptr<exec::Protocol>()> make;
};

class RecoverableProtocolSweep
    : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(RecoverableProtocolSweep, SafeUnderEveryCrashRegime) {
  const auto protocol = GetParam().make();
  for (const valency::CrashMode mode :
       {valency::CrashMode::kNone, valency::CrashMode::kIndividual,
        valency::CrashMode::kSimultaneous, valency::CrashMode::kBoth}) {
    valency::SafetyOptions options;
    options.crash_mode = mode;
    const auto r = valency::check_safety_all_inputs(*protocol, options);
    EXPECT_TRUE(r.ok()) << GetParam().name << " mode "
                        << static_cast<int>(mode) << ": " << r.violation;
    EXPECT_TRUE(r.explored_fully) << GetParam().name;
  }
}

TEST_P(RecoverableProtocolSweep, RecoverableWaitFree) {
  const auto protocol = GetParam().make();
  for (const auto& inputs :
       valency::all_binary_inputs(protocol->process_count())) {
    const auto r = valency::check_recoverable_wait_freedom(*protocol, inputs);
    EXPECT_TRUE(r.wait_free) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CorrectProtocols, RecoverableProtocolSweep,
    ::testing::Values(
        ProtocolCase{"cas2",
                     [] { return std::make_unique<algo::CasConsensus>(2); }},
        ProtocolCase{"cas3",
                     [] { return std::make_unique<algo::CasConsensus>(3); }},
        ProtocolCase{"tnn_3_1",
                     [] {
                       return std::make_unique<algo::TnnRecoverableConsensus>(
                           3, 1, 1);
                     }},
        ProtocolCase{"tnn_3_2",
                     [] {
                       return std::make_unique<algo::TnnRecoverableConsensus>(
                           3, 2, 2);
                     }},
        ProtocolCase{"tnn_4_2",
                     [] {
                       return std::make_unique<algo::TnnRecoverableConsensus>(
                           4, 2, 2);
                     }},
        ProtocolCase{"tnn_5_3",
                     [] {
                       return std::make_unique<algo::TnnRecoverableConsensus>(
                           5, 3, 3);
                     }},
        ProtocolCase{"recording_cas_2",
                     [] {
                       return std::make_unique<algo::RecordingConsensus>(
                           spec::make_cas(3), 2);
                     }},
        ProtocolCase{"recording_sticky_2",
                     [] {
                       return std::make_unique<algo::RecordingConsensus>(
                           spec::make_sticky_bit(), 2);
                     }}),
    [](const ::testing::TestParamInfo<ProtocolCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Sweep 2: the T_{n,n'} gap — every overload by one process fails, every
// nominal configuration succeeds (Lemma 16 across the (n, n') grid).
// ---------------------------------------------------------------------------

class TnnGapSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TnnGapSweep, NominalSafeOverloadBroken) {
  const auto [n, np] = GetParam();
  if (np >= 2) {
    algo::TnnRecoverableConsensus nominal(n, np, np);
    EXPECT_TRUE(valency::check_safety_all_inputs(nominal).ok())
        << "T_{" << n << "," << np << "} nominal";
  }
  algo::TnnRecoverableConsensus overload(n, np, np + 1);
  EXPECT_FALSE(valency::check_safety_all_inputs(overload).ok())
      << "T_{" << n << "," << np << "} overloaded";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TnnGapSweep,
    ::testing::Values(std::pair{3, 1}, std::pair{3, 2}, std::pair{4, 1},
                      std::pair{4, 2}, std::pair{4, 3}, std::pair{5, 2},
                      std::pair{5, 4}, std::pair{6, 2}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "T_" + std::to_string(info.param.first) + "_" +
             std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------------
// Sweep 3: broken protocols are broken exactly in the regime theory says.
// ---------------------------------------------------------------------------

TEST(BrokenProtocolSweep, TasRacingFailsUnderBothCrashKinds) {
  algo::TasRacingConsensus protocol;
  for (const valency::CrashMode mode : {valency::CrashMode::kIndividual,
                                        valency::CrashMode::kSimultaneous}) {
    valency::SafetyOptions options;
    options.crash_mode = mode;
    const auto r = valency::check_safety(protocol, {0, 1}, options);
    EXPECT_FALSE(r.ok()) << "mode " << static_cast<int>(mode);
  }
  // ...but is perfectly safe crash-free.
  valency::SafetyOptions none;
  none.crash_mode = valency::CrashMode::kNone;
  EXPECT_TRUE(valency::check_safety_all_inputs(protocol, none).ok());
}

// ---------------------------------------------------------------------------
// Sweep 4: crash-budget monotonicity — if a schedule is admitted by E_z*
// it is admitted by E_{z+1}*, and by E_z.
// ---------------------------------------------------------------------------

class BudgetMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BudgetMonotonicity, StarAcceptanceGrowsWithZ) {
  const int n = GetParam();
  std::uint64_t lcg = 0xabcdef12u + static_cast<std::uint64_t>(n);
  for (int trial = 0; trial < 300; ++trial) {
    exec::Schedule s;
    for (int len = 0; len < 14; ++len) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      const int pid = static_cast<int>((lcg >> 33) % n);
      const bool crash = ((lcg >> 13) & 3u) == 0;
      s.push_back(crash ? exec::Event::crash(pid) : exec::Event::step(pid));
    }
    for (int z = 1; z <= 3; ++z) {
      if (sched::in_ez_star(s, n, z)) {
        EXPECT_TRUE(sched::in_ez_star(s, n, z + 1));
        EXPECT_TRUE(sched::in_ez(s, n, z));
      }
      if (sched::in_ez(s, n, z)) {
        EXPECT_TRUE(sched::in_ez(s, n, z + 1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(N, BudgetMonotonicity, ::testing::Values(2, 3, 4),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------------
// Sweep 5: the computed hierarchy levels across the catalog match the
// known ground truth (E1 claims table as assertions).
// ---------------------------------------------------------------------------

struct LevelCase {
  std::string name;
  std::function<spec::ObjectType()> make;
  int max_n;
  hierarchy::Level expect_discerning;
  hierarchy::Level expect_recording;
};

class HierarchyLevelSweep : public ::testing::TestWithParam<LevelCase> {};

TEST_P(HierarchyLevelSweep, LevelsMatchGroundTruth) {
  const spec::ObjectType type = GetParam().make();
  const hierarchy::TypeProfile p =
      hierarchy::compute_profile(type, GetParam().max_n);
  EXPECT_EQ(p.discerning, GetParam().expect_discerning) << type.name();
  EXPECT_EQ(p.recording, GetParam().expect_recording) << type.name();
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, HierarchyLevelSweep,
    ::testing::Values(
        LevelCase{"register2", [] { return spec::make_register(2); }, 3,
                  {1, true}, {1, true}},
        LevelCase{"register3", [] { return spec::make_register(3); }, 2,
                  {1, true}, {1, true}},
        LevelCase{"tas", [] { return spec::make_test_and_set(); }, 4,
                  {2, true}, {1, true}},
        LevelCase{"swap2", [] { return spec::make_swap(2); }, 3,
                  {2, true}, {1, true}},
        LevelCase{"swap3", [] { return spec::make_swap(3); }, 3,
                  {2, true}, {1, true}},
        LevelCase{"faa4", [] { return spec::make_fetch_and_add(4); }, 3,
                  {2, true}, {1, true}},
        LevelCase{"fai3",
                  [] { return spec::make_fetch_and_increment_saturating(3); },
                  3, {2, true}, {1, true}},
        LevelCase{"cas2", [] { return spec::make_cas(2); }, 3,
                  {2, true}, {1, true}},
        LevelCase{"cas3", [] { return spec::make_cas(3); }, 4,
                  {4, false}, {4, false}},
        LevelCase{"sticky2", [] { return spec::make_sticky_bit(); }, 4,
                  {4, false}, {4, false}},
        LevelCase{"sticky3", [] { return spec::make_sticky(3); }, 3,
                  {3, false}, {3, false}},
        LevelCase{"consensus2", [] { return spec::make_consensus_object(2); },
                  5, {3, true}, {2, true}},
        LevelCase{"consensus3", [] { return spec::make_consensus_object(3); },
                  6, {4, true}, {3, true}},
        LevelCase{"tnn_4_2", [] { return spec::make_tnn(4, 2); }, 5,
                  {4, true}, {3, true}},
        LevelCase{"tnn_5_2", [] { return spec::make_tnn(5, 2); }, 6,
                  {5, true}, {4, true}},
        LevelCase{"x4", [] { return spec::make_xn(4); }, 5,
                  {4, true}, {2, true}}),
    [](const ::testing::TestParamInfo<LevelCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace rcons
