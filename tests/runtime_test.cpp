// Tests for the live runtime: persistent cells, lock-free live objects,
// and the threaded crash-injection audit (experiment E7's machinery).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "runtime/live_object.hpp"
#include "runtime/live_run.hpp"
#include "runtime/pmem.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"

namespace rcons::runtime {
namespace {

TEST(Pmem, StoreLoadRoundTrip) {
  PersistentArena arena;
  PVar* cell = arena.allocate(41);
  EXPECT_EQ(cell->load(), 41);
  cell->store(7);
  EXPECT_EQ(cell->load(), 7);
  EXPECT_GE(arena.stats().persists.load(), 1u);
}

TEST(Pmem, CompareExchangeSemantics) {
  PersistentArena arena;
  PVar* cell = arena.allocate(1);
  auto [old1, ok1] = cell->compare_exchange(1, 2);
  EXPECT_TRUE(ok1);
  EXPECT_EQ(old1, 1);
  auto [old2, ok2] = cell->compare_exchange(1, 3);
  EXPECT_FALSE(ok2);
  EXPECT_EQ(old2, 2);
  EXPECT_EQ(cell->load(), 2);
}

TEST(Pmem, ArenaAddressesAreStable) {
  PersistentArena arena;
  PVar* first = arena.allocate(0);
  for (int i = 0; i < 100; ++i) arena.allocate(i);
  first->store(123);
  EXPECT_EQ(first->load(), 123);
  EXPECT_EQ(arena.cell_count(), 101u);
}

TEST(LiveObject, SequentialSemanticsMatchSpec) {
  const spec::ObjectType tnn = spec::make_tnn(5, 2);
  PersistentArena arena;
  LiveObject obj(tnn, *tnn.find_value("s"), arena);
  const spec::OpId op1 = *tnn.find_op("op_1");
  const spec::OpId opr = *tnn.find_op("op_R");
  EXPECT_EQ(tnn.response_name(obj.apply(op1)), "1");
  EXPECT_EQ(tnn.value_name(obj.raw_value()), "s_1_1");
  EXPECT_EQ(tnn.response_name(obj.apply(opr)), "s_1_1");
  EXPECT_EQ(tnn.response_name(obj.apply(op1)), "1");
  EXPECT_EQ(tnn.response_name(obj.apply(op1)), "1");
  // Counter now at 3 > n' = 2: op_R breaks the object.
  EXPECT_EQ(tnn.response_name(obj.apply(opr)), "bot");
  EXPECT_EQ(tnn.value_name(obj.raw_value()), "s_bot");
}

TEST(LiveObject, ConcurrentTasHasExactlyOneWinner) {
  const spec::ObjectType tas = spec::make_test_and_set();
  const spec::OpId tas_op = *tas.find_op("tas");
  const spec::ResponseId won = *tas.find_response("won");
  for (int round = 0; round < 50; ++round) {
    PersistentArena arena;
    LiveObject obj(tas, *tas.find_value("0"), arena);
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        if (obj.apply(tas_op) == won) winners.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
  }
}

TEST(LiveObject, ConcurrentCountingIsLinearizable) {
  // 4 threads x 25 saturating increments: every response old_k for
  // k in 0..99 must be returned exactly once.
  const spec::ObjectType fai = spec::make_fetch_and_increment_saturating(200);
  const spec::OpId op = *fai.find_op("fai");
  PersistentArena arena;
  LiveObject obj(fai, *fai.find_value("c0"), arena);
  std::vector<int> seen(100, 0);
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const spec::ResponseId r = obj.apply(op);
        const std::string& name = fai.response_name(r);
        const int k = std::stoi(name.substr(4));  // "old_K"
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_LT(k, 100);
        seen[static_cast<std::size_t>(k)] += 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(seen[static_cast<std::size_t>(k)], 1) << "old_" << k;
  }
}

TEST(LiveRun, CasConsensusCleanUnderCrashes) {
  algo::CasConsensus protocol(3);
  LiveRunOptions options;
  options.crash_prob = 0.25;
  options.rounds = 400;
  options.seed = 7;
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_TRUE(r.ok()) << r.first_violation;
  EXPECT_GT(r.total_crashes, 0u);
  EXPECT_GE(r.total_decisions, static_cast<std::uint64_t>(3 * r.rounds));
}

TEST(LiveRun, TnnRecoverableCleanUnderCrashes) {
  algo::TnnRecoverableConsensus protocol(5, 2, 2);
  LiveRunOptions options;
  options.crash_prob = 0.3;
  options.rounds = 400;
  options.seed = 11;
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_TRUE(r.ok()) << r.first_violation;
  EXPECT_GT(r.total_crashes, 0u);
}

TEST(LiveRun, RecordingConsensusCleanUnderCrashes) {
  const spec::ObjectType cas = spec::make_cas(3);
  algo::RecordingConsensus protocol(cas, 3);
  LiveRunOptions options;
  options.crash_prob = 0.2;
  options.rounds = 300;
  options.seed = 13;
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_TRUE(r.ok()) << r.first_violation;
}

TEST(LiveRun, TasRacingBreaksUnderCrashes) {
  algo::TasRacingConsensus protocol;
  LiveRunOptions options;
  options.crash_prob = 0.3;
  options.rounds = 1000;
  options.seed = 42;
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_GT(r.agreement_violations, 0)
      << "Golab's collapse should show up in a 1000-round crash audit";
}

TEST(LiveRun, TasRacingCleanWithoutCrashes) {
  algo::TasRacingConsensus protocol;
  LiveRunOptions options;
  options.crash_prob = 0.0;
  options.rounds = 500;
  options.seed = 42;
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_TRUE(r.ok()) << r.first_violation;
  EXPECT_EQ(r.total_crashes, 0u);
}

TEST(LiveRun, FixedInputsRespectValidity) {
  algo::CasConsensus protocol(2);
  LiveRunOptions options;
  options.crash_prob = 0.1;
  options.rounds = 100;
  options.fixed_inputs = {1, 1};
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_TRUE(r.ok()) << r.first_violation;
}

TEST(LiveRun, PersistCountsAreReported) {
  algo::CasConsensus protocol(2);
  LiveRunOptions options;
  options.rounds = 10;
  const LiveRunResult r = run_live_audit(protocol, options);
  EXPECT_GT(r.pmem_persists, 0u);
}

// ---- Strict shadow persistency (RCONS_PMEM_STRICT semantics) ----

TEST(Pmem, StrictRelaxedStoreStaysVolatileUntilBarrier) {
  PersistentArena arena(/*strict=*/true);
  PVar* cell = arena.allocate(1);
  cell->store_relaxed(5);
  EXPECT_EQ(cell->volatile_value(), 5);
  EXPECT_EQ(cell->persisted_value(), 1);
  EXPECT_TRUE(cell->drop_unpersisted(5));
  EXPECT_EQ(cell->load(), 1);
  EXPECT_EQ(arena.stats().dropped.load(), 1u);
  cell->store_relaxed(7);
  cell->persist();
  EXPECT_EQ(cell->persisted_value(), 7);
  EXPECT_FALSE(cell->drop_unpersisted(7)) << "clean cell: nothing to drop";
}

TEST(Pmem, StrictCasIsVolatileUntilBarrier) {
  PersistentArena strict(/*strict=*/true);
  PVar* a = strict.allocate(0);
  EXPECT_TRUE(a->compare_exchange(0, 9).second);
  EXPECT_EQ(a->persisted_value(), 0);
  a->persist();
  EXPECT_EQ(a->persisted_value(), 9);

  // Non-strict keeps the pre-split behavior: success persists in-op.
  PersistentArena lax(/*strict=*/false);
  PVar* b = lax.allocate(0);
  EXPECT_TRUE(b->compare_exchange(0, 9).second);
  EXPECT_EQ(b->persisted_value(), 9);
}

TEST(Pmem, DropRespectsConcurrentOverwrite) {
  PersistentArena arena(/*strict=*/true);
  PVar* cell = arena.allocate(0);
  cell->store_relaxed(3);
  // Another writer replaced the value after the crashing process's store:
  // the drop must not clobber the newer value.
  cell->store_relaxed(4);
  EXPECT_FALSE(cell->drop_unpersisted(3));
  EXPECT_EQ(cell->volatile_value(), 4);
}

TEST(Pmem, PersistCountsOnlyDirtyFlushes) {
  // The CAS double-count regression: failed CASes and redundant barriers
  // must not inflate the persist count.
  PersistentArena arena(/*strict=*/false);
  PVar* cell = arena.allocate(0);
  EXPECT_TRUE(cell->compare_exchange(0, 1).second);
  EXPECT_EQ(arena.stats().persists.load(), 1u);
  EXPECT_FALSE(cell->compare_exchange(0, 2).second);
  EXPECT_EQ(arena.stats().persists.load(), 1u) << "failed CAS flushed";
  cell->persist();
  cell->persist();
  EXPECT_EQ(arena.stats().persists.load(), 1u) << "clean barrier counted";
  cell->store(1);  // same value: the dirty gate keeps the barrier free
  EXPECT_EQ(arena.stats().persists.load(), 1u);
  cell->store(5);
  EXPECT_EQ(arena.stats().persists.load(), 2u);
}

TEST(LiveRun, StrictModeKeepsShippedProtocolsClean) {
  // Shipped protocols issue every store durably, so strict-mode crash
  // injection has nothing to drop and the audits stay clean (the
  // DESIGN.md §8 behavior-identity argument) — independent of whether CI
  // also sets RCONS_PMEM_STRICT.
  algo::CasConsensus cas3(3);
  const spec::ObjectType cas = spec::make_cas(3);
  algo::RecordingConsensus recording(cas, 3);
  algo::TnnRecoverableConsensus tnn(5, 2, 2);
  for (const exec::Protocol* p :
       {static_cast<const exec::Protocol*>(&cas3),
        static_cast<const exec::Protocol*>(&recording),
        static_cast<const exec::Protocol*>(&tnn)}) {
    LiveRunOptions options;
    options.strict_persistency = true;
    options.crash_prob = 0.25;
    options.rounds = 200;
    options.seed = 23;
    const LiveRunResult r = run_live_audit(*p, options);
    EXPECT_TRUE(r.ok()) << p->name() << ": " << r.first_violation;
    EXPECT_GT(r.total_crashes, 0u) << p->name();
    EXPECT_EQ(r.dropped_stores, 0u) << p->name();
  }
}

// ---- Crash-at-every-persist-boundary audit ----

TEST(BoundaryCrash, CasConsensusSurvivesEveryBoundary) {
  algo::CasConsensus protocol(2);
  const BoundaryCrashResult r = run_boundary_crash_audit(protocol);
  EXPECT_TRUE(r.ok()) << r.first_violation;
  EXPECT_GT(r.runs, 0);
  EXPECT_GT(r.total_crashes, 0u);
  EXPECT_EQ(r.dropped_stores, 0u);
}

TEST(BoundaryCrash, RecordingConsensusSurvivesEveryBoundary) {
  const spec::ObjectType cas = spec::make_cas(3);
  algo::RecordingConsensus protocol(cas, 2);
  const BoundaryCrashResult r = run_boundary_crash_audit(protocol);
  EXPECT_TRUE(r.ok()) << r.first_violation;
  EXPECT_GT(r.total_crashes, 0u);
  EXPECT_EQ(r.dropped_stores, 0u);
}

TEST(BoundaryCrash, TnnRecoverableSurvivesEveryBoundary) {
  algo::TnnRecoverableConsensus protocol(4, 2, 2);
  const BoundaryCrashResult r = run_boundary_crash_audit(protocol);
  EXPECT_TRUE(r.ok()) << r.first_violation;
  EXPECT_GT(r.total_crashes, 0u);
}

TEST(BoundaryCrash, RelaxedRecordingConsensusIsCaughtAtRuntime) {
  // The runtime half of the acceptance demo (the static half is
  // RecoveryAudit.RelaxedRecordingConsensusIsCaughtByRC004): with the
  // proposal-write persists "forgotten", the strict boundary audit must
  // actually drop stores and surface a violation.
  const spec::ObjectType cas = spec::make_cas(3);
  algo::RecordingConsensus protocol(cas, 2, /*relax_proposal_writes=*/true);
  const BoundaryCrashResult r = run_boundary_crash_audit(protocol);
  EXPECT_GT(r.dropped_stores, 0u);
  EXPECT_FALSE(r.ok())
      << "dropping unpersisted proposal writes must break an audit";
}

}  // namespace
}  // namespace rcons::runtime
