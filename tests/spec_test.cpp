// Unit tests for src/spec: the type machinery, the catalog, and — most
// importantly — an edge-by-edge check of T_{5,2} against Figure 3 of the
// paper (experiment E2).
#include <gtest/gtest.h>

#include "spec/builder.hpp"
#include "spec/catalog.hpp"
#include "spec/object_type.hpp"
#include "spec/paper_types.hpp"

namespace rcons::spec {
namespace {

// Applies op (by name) to value (by name); returns "response->next_value".
std::string edge(const ObjectType& t, const std::string& value,
                 const std::string& op) {
  const Effect& e = t.apply(*t.find_value(value), *t.find_op(op));
  return t.response_name(e.response) + "->" + t.value_name(e.next_value);
}

TEST(Builder, BuildsTotalMachine) {
  TypeBuilder b("toy");
  b.value("a");
  b.value("b");
  b.op("go");
  b.on("a", "go").then("b").returns("moved");
  b.on("b", "go").returns("stuck");
  const ObjectType t = b.build();
  EXPECT_EQ(t.value_count(), 2);
  EXPECT_EQ(t.op_count(), 1);
  EXPECT_EQ(edge(t, "a", "go"), "moved->b");
  EXPECT_EQ(edge(t, "b", "go"), "stuck->b");
}

TEST(Builder, MakeReadOpIsARead) {
  TypeBuilder b("toy");
  b.value("a");
  b.value("b");
  b.op("go");
  b.on("a", "go").then("b").returns("x");
  b.on("b", "go").returns("x");
  b.make_read_op("read");
  const ObjectType t = b.build();
  EXPECT_TRUE(t.is_readable());
  EXPECT_TRUE(t.op_is_read(*t.find_op("read")));
  EXPECT_FALSE(t.op_is_read(*t.find_op("go")));
}

TEST(Builder, InterningIsIdempotent) {
  TypeBuilder b("toy");
  EXPECT_EQ(b.value("v"), b.value("v"));
  EXPECT_EQ(b.op("o"), b.op("o"));
  EXPECT_EQ(b.response("r"), b.response("r"));
}

TEST(ObjectType, ApplyAllAndTrace) {
  const ObjectType t = make_fetch_and_add(5);
  const ValueId c0 = *t.find_value("c0");
  const OpId faa = *t.find_op("faa");
  EXPECT_EQ(t.apply_all(c0, {faa, faa, faa}), *t.find_value("c3"));
  std::vector<ResponseId> responses;
  t.apply_trace(c0, {faa, faa}, responses);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(t.response_name(responses[0]), "old_0");
  EXPECT_EQ(t.response_name(responses[1]), "old_1");
}

TEST(ObjectType, ReachableValues) {
  const ObjectType t = make_test_and_set();
  const auto from0 = t.reachable_values(*t.find_value("0"));
  EXPECT_EQ(from0.size(), 2u);
  const auto from1 = t.reachable_values(*t.find_value("1"));
  EXPECT_EQ(from1.size(), 1u);  // 1 is absorbing
}

TEST(Catalog, RegisterSemantics) {
  const ObjectType r = make_register(3);
  EXPECT_TRUE(r.is_readable());
  EXPECT_EQ(edge(r, "r0", "write_2"), "ok->r2");
  EXPECT_EQ(edge(r, "r2", "write_1"), "ok->r1");
  EXPECT_EQ(edge(r, "r1", "read"), "r1->r1");
}

TEST(Catalog, TestAndSetSemantics) {
  const ObjectType t = make_test_and_set();
  EXPECT_TRUE(t.is_readable());
  EXPECT_EQ(edge(t, "0", "tas"), "won->1");
  EXPECT_EQ(edge(t, "1", "tas"), "lost->1");
}

TEST(Catalog, SwapReturnsOldValue) {
  const ObjectType s = make_swap(2);
  EXPECT_EQ(edge(s, "r0", "swap_1"), "old_0->r1");
  EXPECT_EQ(edge(s, "r1", "swap_0"), "old_1->r0");
  EXPECT_EQ(edge(s, "r1", "swap_1"), "old_1->r1");
}

TEST(Catalog, FetchAndAddWraps) {
  const ObjectType f = make_fetch_and_add(3);
  EXPECT_EQ(edge(f, "c2", "faa"), "old_2->c0");
}

TEST(Catalog, SaturatingFetchAndIncrementSticksAtMax) {
  const ObjectType f = make_fetch_and_increment_saturating(2);
  EXPECT_EQ(edge(f, "c1", "fai"), "old_1->c2");
  EXPECT_EQ(edge(f, "c2", "fai"), "old_2->c2");
}

TEST(Catalog, CasMatchesAndMisses) {
  const ObjectType c = make_cas(3);
  EXPECT_TRUE(c.is_readable());
  EXPECT_EQ(edge(c, "r0", "cas_0_2"), "old_0->r2");  // match: swings
  EXPECT_EQ(edge(c, "r1", "cas_0_2"), "old_1->r1");  // miss: unchanged
}

TEST(Catalog, StickyDefinesOnce) {
  const ObjectType s = make_sticky(2);
  EXPECT_EQ(edge(s, "undef", "write_1"), "is_1->s1");
  EXPECT_EQ(edge(s, "s1", "write_0"), "is_1->s1");  // already defined
  EXPECT_EQ(edge(s, "s0", "write_0"), "is_0->s0");
}

TEST(Catalog, ConsensusObjectDecidesFirstProposal) {
  const ObjectType c = make_consensus_object(3);
  EXPECT_EQ(edge(c, "undec", "propose_1"), "1->dec_1_1");
  EXPECT_EQ(edge(c, "dec_1_1", "propose_0"), "1->dec_1_2");
  EXPECT_EQ(edge(c, "dec_1_3", "propose_0"), "1->full");
  EXPECT_EQ(edge(c, "full", "propose_0"), "bot->full");
}

TEST(Catalog, QueueFifoOrder) {
  const ObjectType q = make_queue(2);
  EXPECT_FALSE(q.is_readable());
  EXPECT_EQ(edge(q, "[]", "enq_a"), "ok->[a]");
  EXPECT_EQ(edge(q, "[a]", "enq_b"), "ok->[ab]");
  EXPECT_EQ(edge(q, "[ab]", "deq"), "got_a->[b]");
  EXPECT_EQ(edge(q, "[b]", "deq"), "got_b->[]");
  EXPECT_EQ(edge(q, "[]", "deq"), "empty->[]");
  EXPECT_EQ(edge(q, "[ab]", "enq_a"), "full->[ab]");
}

TEST(Catalog, PeekQueueObservesFrontWithoutRemoving) {
  const ObjectType q = make_peek_queue(2);
  EXPECT_EQ(edge(q, "[ab]", "peek"), "front_a->[ab]");
  EXPECT_EQ(edge(q, "[]", "peek"), "empty->[]");
  // peek does not reveal the whole queue contents, so the type is still
  // not readable in the formal sense.
  EXPECT_FALSE(q.is_readable());
}

// ---------------------------------------------------------------------------
// Figure 3: the state machine of T_{5,2} (experiment E2). Every edge below
// is read off the paper's figure / Section 4 description.
// ---------------------------------------------------------------------------

class Tnn52Figure3 : public ::testing::Test {
 protected:
  const ObjectType t = make_tnn(5, 2);
};

TEST_F(Tnn52Figure3, ShapeMatchesPaper) {
  // 2n = 10 values: s, s_bot, s_{x,i} for x in {0,1}, i in 1..4.
  EXPECT_EQ(t.value_count(), 10);
  EXPECT_EQ(t.op_count(), 3);
  EXPECT_FALSE(t.is_readable());
}

TEST_F(Tnn52Figure3, OpXFromInitialValue) {
  EXPECT_EQ(edge(t, "s", "op_0"), "0->s_0_1");
  EXPECT_EQ(edge(t, "s", "op_1"), "1->s_1_1");
}

TEST_F(Tnn52Figure3, OpXAdvancesCounterAndReturnsFirstInput) {
  EXPECT_EQ(edge(t, "s_0_1", "op_0"), "0->s_0_2");
  EXPECT_EQ(edge(t, "s_0_1", "op_1"), "0->s_0_2");  // returns x=0, not 1
  EXPECT_EQ(edge(t, "s_1_2", "op_0"), "1->s_1_3");
  EXPECT_EQ(edge(t, "s_0_3", "op_1"), "0->s_0_4");
}

TEST_F(Tnn52Figure3, OpXWipesFromTopCounter) {
  EXPECT_EQ(edge(t, "s_0_4", "op_0"), "0->s_bot");
  EXPECT_EQ(edge(t, "s_0_4", "op_1"), "0->s_bot");
  EXPECT_EQ(edge(t, "s_1_4", "op_0"), "1->s_bot");
}

TEST_F(Tnn52Figure3, BotIsAbsorbing) {
  EXPECT_EQ(edge(t, "s_bot", "op_0"), "bot->s_bot");
  EXPECT_EQ(edge(t, "s_bot", "op_1"), "bot->s_bot");
  EXPECT_EQ(edge(t, "s_bot", "op_R"), "bot->s_bot");
}

TEST_F(Tnn52Figure3, OpRReadsLowCountersOnly) {
  EXPECT_EQ(edge(t, "s", "op_R"), "s->s");
  EXPECT_EQ(edge(t, "s_0_1", "op_R"), "s_0_1->s_0_1");
  EXPECT_EQ(edge(t, "s_0_2", "op_R"), "s_0_2->s_0_2");
  EXPECT_EQ(edge(t, "s_1_2", "op_R"), "s_1_2->s_1_2");
}

TEST_F(Tnn52Figure3, OpRBreaksHighCounters) {
  // i > n' = 2: op_R returns bot and wipes to s_bot.
  EXPECT_EQ(edge(t, "s_0_3", "op_R"), "bot->s_bot");
  EXPECT_EQ(edge(t, "s_0_4", "op_R"), "bot->s_bot");
  EXPECT_EQ(edge(t, "s_1_3", "op_R"), "bot->s_bot");
  EXPECT_EQ(edge(t, "s_1_4", "op_R"), "bot->s_bot");
}

TEST(Tnn, GeneralShape) {
  for (int n = 2; n <= 6; ++n) {
    for (int np = 1; np < n; ++np) {
      const ObjectType t = make_tnn(n, np);
      EXPECT_EQ(t.value_count(), 2 * n) << t.name();
      EXPECT_EQ(t.op_count(), 3) << t.name();
    }
  }
}

TEST(Tnn, ReadableExactlyWhenNPrimeIsNMinus1) {
  // With n' = n-1 there are no counters above n', so op_R is a true Read.
  EXPECT_TRUE(make_tnn(4, 3).is_readable());
  EXPECT_FALSE(make_tnn(4, 2).is_readable());
  EXPECT_FALSE(make_tnn(4, 1).is_readable());
}

TEST(Tnn, FirstOperationDeterminesNextNMinus1Responses) {
  // The paper's agreement argument: the first op fixes the responses of
  // the next n-1 operations.
  const ObjectType t = make_tnn(5, 2);
  ValueId v = t.apply(*t.find_value("s"), *t.find_op("op_1")).next_value;
  for (int k = 0; k < 4; ++k) {
    const Effect& e = t.apply(v, *t.find_op(k % 2 == 0 ? "op_0" : "op_1"));
    EXPECT_EQ(t.response_name(e.response), "1") << "k=" << k;
    v = e.next_value;
  }
  EXPECT_EQ(t.value_name(v), "s_bot");
}

TEST(EraseCounter, SymmetricEraseRestoresU) {
  EraseCounterOptions options;
  options.count_states = 2;
  const ObjectType t = make_erase_counter(options);
  EXPECT_TRUE(t.is_readable());
  EXPECT_EQ(edge(t, "u", "a"), "first->A_1");
  EXPECT_EQ(edge(t, "A_1", "b"), "sawA->A_2");
  EXPECT_EQ(edge(t, "A_2", "a"), "sawA->bot");
  EXPECT_EQ(edge(t, "A_1", "e"), "e_A_1->u");
  EXPECT_EQ(edge(t, "B_2", "e"), "e_B_2->u");
  EXPECT_EQ(edge(t, "bot", "e"), "bot->bot");
}

TEST(EraseCounter, AsymmetricEraseOnlyRestoresAStates) {
  EraseCounterOptions options;
  options.count_states = 2;
  options.erase_only_a = true;
  const ObjectType t = make_erase_counter(options);
  EXPECT_EQ(edge(t, "A_1", "e"), "e_A_1->u");
  EXPECT_EQ(edge(t, "B_1", "e"), "e_B_1->B_1");
}

TEST(EraseCounter, SaturatingVariantHasNoBotTransition) {
  EraseCounterOptions options;
  options.count_states = 2;
  options.wipe_at_overflow = false;
  const ObjectType t = make_erase_counter(options);
  EXPECT_EQ(edge(t, "A_2", "a"), "sawA->A_2");
}

TEST(Catalog, StackLifoOrder) {
  const ObjectType s = make_stack(2);
  EXPECT_FALSE(s.is_readable());
  EXPECT_EQ(edge(s, "[]", "push_a"), "ok->[a]");
  EXPECT_EQ(edge(s, "[a]", "push_b"), "ok->[ab]");
  EXPECT_EQ(edge(s, "[ab]", "pop"), "got_b->[a]");
  EXPECT_EQ(edge(s, "[a]", "pop"), "got_a->[]");
  EXPECT_EQ(edge(s, "[]", "pop"), "empty->[]");
  EXPECT_EQ(edge(s, "[ab]", "push_a"), "full->[ab]");
}

TEST(Catalog, ReadableQueueIsActuallyReadable) {
  const ObjectType q = make_readable_queue(2);
  EXPECT_TRUE(q.is_readable());
  EXPECT_EQ(edge(q, "[ab]", "read"), "[ab]->[ab]");
  EXPECT_EQ(edge(q, "[a]", "enq_b"), "ok->[ab]");
}

TEST(ObjectType, DescribeAndDotContainAllEdges) {
  const ObjectType t = make_test_and_set();
  const std::string desc = t.describe();
  EXPECT_NE(desc.find("0 --tas--> 1"), std::string::npos);
  const std::string dot = t.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("tas / won"), std::string::npos);
}

}  // namespace
}  // namespace rcons::spec
