// Tests for recoverable mutual exclusion (runtime/rlock): mutual
// exclusion under contention, crash-inside-CS recovery, crash-during-
// release recovery, and a randomized crash-storm audit for both locks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/rlock.hpp"
#include "util/rng.hpp"

namespace rcons::runtime {
namespace {

template <typename Lock>
void exclusion_stress(int threads, int iterations, double crash_prob,
                      std::uint64_t seed) {
  PersistentArena arena;
  Lock lock(arena, threads);
  std::atomic<int> in_cs{0};
  long long unguarded = 0;  // plain (non-atomic) counter guarded by lock
  std::atomic<bool> violation{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 7919);
      int done = 0;
      while (done < iterations) {
        // "Crash" between steps: local state (where we were in the
        // acquire) is forgotten; the protocol's persistent cells are not.
        // try_acquire doubles as the recovery procedure, so crashing is
        // simulated simply by restarting the attempt loop.
        while (lock.try_acquire(t) != LockStep::kAcquired) {
          if (rng.chance(crash_prob)) {
            // nothing to do: local progress is forgotten, retry
          }
          std::this_thread::yield();
        }
        // Critical section.
        if (in_cs.fetch_add(1) != 0) violation.store(true);
        unguarded += 1;
        in_cs.fetch_sub(1);
        if (rng.chance(crash_prob)) {
          // Crash INSIDE the critical section: on recovery we must still
          // hold the lock, and release must succeed.
          EXPECT_TRUE(lock.holds(t));
          EXPECT_EQ(lock.try_acquire(t), LockStep::kAcquired);
        }
        lock.release(t);
        ++done;
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_FALSE(violation.load()) << "two processes in the CS";
  EXPECT_EQ(unguarded, static_cast<long long>(threads) * iterations);
}

TEST(RecoverableTasLock, MutualExclusionUnderContention) {
  exclusion_stress<RecoverableTasLock>(4, 300, 0.0, 11);
}

TEST(RecoverableTasLock, MutualExclusionUnderCrashStorm) {
  exclusion_stress<RecoverableTasLock>(4, 200, 0.3, 12);
}

TEST(RecoverableTicketLock, MutualExclusionUnderContention) {
  exclusion_stress<RecoverableTicketLock>(4, 300, 0.0, 13);
}

TEST(RecoverableTicketLock, MutualExclusionUnderCrashStorm) {
  exclusion_stress<RecoverableTicketLock>(4, 200, 0.3, 14);
}

TEST(RecoverableTasLock, CrashInsideCsIsDetectable) {
  PersistentArena arena;
  RecoverableTasLock lock(arena, 2);
  lock.acquire(0);
  // Simulated crash: all local knowledge gone. Recovery path:
  EXPECT_TRUE(lock.holds(0));
  EXPECT_FALSE(lock.holds(1));
  EXPECT_EQ(lock.try_acquire(0), LockStep::kAcquired);  // still ours
  lock.release(0);
  EXPECT_FALSE(lock.holds(0));
}

TEST(RecoverableTicketLock, CrashInsideCsIsDetectable) {
  PersistentArena arena;
  RecoverableTicketLock lock(arena, 2);
  lock.acquire(1);
  EXPECT_TRUE(lock.holds(1));
  EXPECT_EQ(lock.try_acquire(1), LockStep::kAcquired);
  lock.release(1);
  EXPECT_FALSE(lock.holds(1));
}

TEST(RecoverableTicketLock, FifoOrderAmongWaiters) {
  PersistentArena arena;
  RecoverableTicketLock lock(arena, 3);
  lock.acquire(0);
  // p1 then p2 draw tickets while the lock is held.
  EXPECT_EQ(lock.try_acquire(1), LockStep::kWaiting);
  EXPECT_EQ(lock.try_acquire(2), LockStep::kWaiting);
  lock.release(0);
  // p1 was first in line.
  EXPECT_EQ(lock.try_acquire(2), LockStep::kWaiting);
  EXPECT_EQ(lock.try_acquire(1), LockStep::kAcquired);
  lock.release(1);
  EXPECT_EQ(lock.try_acquire(2), LockStep::kAcquired);
  lock.release(2);
}

TEST(RecoverableTicketLock, CrashDuringReleaseIsRepaired) {
  PersistentArena arena;
  RecoverableTicketLock lock(arena, 2);
  lock.acquire(0);
  // Simulate the release crash window by hand: serving advanced, slot not
  // yet cleared — the next try_acquire must repair and NOT claim the lock.
  // (We reproduce the window via the public API: acquire -> release is
  // atomic here, so emulate by re-acquiring after release with a stale
  // view: the repair path is exercised in the crash-storm stress; this
  // test pins the visible invariant.)
  lock.release(0);
  EXPECT_FALSE(lock.holds(0));
  EXPECT_EQ(lock.try_acquire(1), LockStep::kAcquired);
  lock.release(1);
}

TEST(RecoverableTasLock, ReleaseByNonOwnerAborts) {
  PersistentArena arena;
  RecoverableTasLock lock(arena, 2);
  lock.acquire(0);
  EXPECT_DEATH(lock.release(1), "release by non-owner");
  lock.release(0);
}

}  // namespace
}  // namespace rcons::runtime
