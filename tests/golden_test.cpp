// Golden regression corpus: the discerning/recording levels of every type
// in data/ are pinned in tests/fixtures/golden/<name>.json and must be
// reproduced bit-for-bit by every engine configuration — serial, parallel,
// automorphism-reduced, and cache-warm. A level change is either a checker
// regression or a deliberate semantic change; in the latter case
// regenerate the fixtures (see tests/fixtures/golden/README.md) and bump
// reduction::kEngineVersionSalt.
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/static_bounds/static_bounds.hpp"
#include "hierarchy/consensus_number.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/serialize.hpp"
#include "trace/metrics.hpp"

namespace {

using rcons::hierarchy::Level;
using rcons::hierarchy::ProfileOptions;
using rcons::hierarchy::SymmetryMode;
using rcons::hierarchy::TypeProfile;

std::string source_dir() { return RCONS_SOURCE_DIR; }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

rcons::spec::ObjectType load_type(const std::string& path) {
  const rcons::spec::ParseResult parsed = rcons::spec::parse_type(slurp(path));
  EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.error;
  return *parsed.type;
}

/// One pinned expectation, parsed from a golden fixture.
struct GoldenEntry {
  std::string file;  // data/ file name, e.g. "cas3.type"
  int max_n = 0;
  bool readable = false;
  Level discerning;
  Level recording;
};

// Extracts `"key":<json scalar>` from the single-line fixture. The corpus
// controls the format (flat, no nesting except the two level objects), so
// a full JSON parser would be overkill.
std::string json_field(const std::string& doc, const std::string& key,
                       std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = doc.find(needle, from);
  EXPECT_NE(at, std::string::npos) << "fixture lacks " << key << ": " << doc;
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (doc[begin] == '"') {
    end = doc.find('"', begin + 1);
    return doc.substr(begin + 1, end - begin - 1);
  }
  while (end < doc.size() && doc[end] != ',' && doc[end] != '}') ++end;
  return doc.substr(begin, end - begin);
}

Level json_level(const std::string& doc, const std::string& key) {
  const std::size_t at = doc.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << doc;
  Level level;
  level.value = std::stoi(json_field(doc, "value", at));
  level.exact = json_field(doc, "exact", at) == "true";
  return level;
}

GoldenEntry parse_fixture(const std::string& path) {
  const std::string doc = slurp(path);
  GoldenEntry e;
  e.file = json_field(doc, "file");
  e.max_n = std::stoi(json_field(doc, "max_n"));
  e.readable = json_field(doc, "readable") == "true";
  e.discerning = json_level(doc, "discerning");
  e.recording = json_level(doc, "recording");
  return e;
}

std::vector<std::string> fixture_paths() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(
           source_dir() + "/tests/fixtures/golden")) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

void expect_profile(const GoldenEntry& e, const TypeProfile& p,
                    const std::string& config) {
  EXPECT_EQ(p.readable, e.readable) << e.file << " [" << config << "]";
  EXPECT_EQ(p.discerning, e.discerning)
      << e.file << " [" << config << "] discerning "
      << p.discerning.to_string() << " != pinned "
      << e.discerning.to_string();
  EXPECT_EQ(p.recording, e.recording)
      << e.file << " [" << config << "] recording "
      << p.recording.to_string() << " != pinned " << e.recording.to_string();
}

// Every engine configuration reproduces every pinned profile.
TEST(GoldenCorpus, AllConfigurationsMatchPinnedLevels) {
  const std::vector<std::string> fixtures = fixture_paths();
  ASSERT_FALSE(fixtures.empty());

  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("rcons-golden-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(cache_dir);
  const rcons::reduction::VerdictCache cache(cache_dir);

  for (const std::string& path : fixtures) {
    const GoldenEntry e = parse_fixture(path);
    const rcons::spec::ObjectType type =
        load_type(source_dir() + "/data/" + e.file);

    expect_profile(
        e, rcons::hierarchy::compute_profile(type, e.max_n, /*threads=*/1),
        "serial canonical");
    expect_profile(
        e, rcons::hierarchy::compute_profile(type, e.max_n, /*threads=*/4),
        "parallel canonical");

    ProfileOptions reduced;
    reduced.mode = SymmetryMode::kAutomorphism;
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, reduced),
                   "serial automorphism");
    reduced.threads = 4;
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, reduced),
                   "parallel automorphism");

    // Static bounds prune per-n decider runs but may never change a level
    // (the bracket soundness contract); pinned profiles must survive the
    // pruned configurations bit-for-bit too.
    const rcons::analysis::BoundsReport bounds =
        rcons::analysis::analyze_static_bounds(type);
    ProfileOptions bounded;
    bounded.bounds = &bounds;
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, bounded),
                   "serial bounded");
    bounded.threads = 4;
    bounded.mode = SymmetryMode::kAutomorphism;
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, bounded),
                   "parallel bounded automorphism");

    ProfileOptions cached;
    cached.mode = SymmetryMode::kAutomorphism;
    cached.cache = &cache;
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, cached),
                   "cache cold");
    const std::int64_t hits_before =
        rcons::trace::metrics().counter("cache.hits");
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, cached),
                   "cache warm");
    EXPECT_GT(rcons::trace::metrics().counter("cache.hits"), hits_before)
        << e.file << ": warm profile did not hit the cache";

    cached.bounds = &bounds;
    expect_profile(e, rcons::hierarchy::compute_profile(type, e.max_n, cached),
                   "cache warm bounded");
  }
  std::filesystem::remove_all(cache_dir);
}

// The corpus and data/ cover each other exactly: a new .type file must gain
// a fixture, and a fixture must not outlive its type.
TEST(GoldenCorpus, CorpusCoversDataDirectoryBothWays) {
  std::set<std::string> pinned;
  for (const std::string& path : fixture_paths()) {
    const GoldenEntry e = parse_fixture(path);
    EXPECT_TRUE(
        std::filesystem::exists(source_dir() + "/data/" + e.file))
        << path << " pins missing type " << e.file;
    pinned.insert(e.file);
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(source_dir() + "/data")) {
    if (entry.path().extension() != ".type") continue;
    EXPECT_EQ(pinned.count(entry.path().filename().string()), 1u)
        << entry.path() << " has no golden fixture";
  }
}

}  // namespace
