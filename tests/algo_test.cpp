// Exhaustive verification of the consensus protocols (experiments E4-E6).
//
// Every check here explores the FULL reachable state space of the protocol
// under the individual-crash model (crashes allowed at any moment, for any
// process, including immediately after deciding), so a SAFE verdict is a
// proof for the given process count and inputs, and a VIOLATION comes with
// a concrete schedule.
#include <gtest/gtest.h>

#include "algo/cas_consensus.hpp"
#include "algo/naive_register.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/execute.hpp"
#include "spec/catalog.hpp"
#include "valency/model_checker.hpp"

namespace rcons::algo {
namespace {

using valency::check_recoverable_wait_freedom;
using valency::check_safety;
using valency::check_safety_all_inputs;
using valency::LivenessOptions;
using valency::SafetyOptions;

SafetyOptions crash_free() {
  SafetyOptions o;
  o.allow_crashes = false;
  return o;
}

// --- E4: the wait-free T_{n,n'} protocol (Lemma 15's algorithm) ----------

TEST(TnnWaitFree, SafeCrashFreeForAllInputs) {
  for (int n = 2; n <= 5; ++n) {
    TnnWaitFreeConsensus protocol(n, 1);
    const auto r = check_safety_all_inputs(protocol, crash_free());
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.violation;
    EXPECT_TRUE(r.explored_fully);
  }
}

TEST(TnnWaitFree, EveryoneDecidesTheFirstInput) {
  TnnWaitFreeConsensus protocol(3, 1);
  const auto c = exec::Config::initial(protocol, {1, 0, 0});
  // p1 moves first: everyone must decide 0.
  const auto r =
      exec::run_schedule(protocol, c, exec::steps({1, 0, 2}));
  EXPECT_EQ(r.log.decided[0], 0);
  EXPECT_EQ(r.log.decided[1], 0);
  EXPECT_EQ(r.log.decided[2], 0);
}

TEST(TnnWaitFree, WaitFreeCrashFree) {
  TnnWaitFreeConsensus protocol(4, 2);
  LivenessOptions o;
  o.allow_crashes = false;
  const auto r = check_recoverable_wait_freedom(protocol, {0, 1, 0, 1}, o);
  EXPECT_TRUE(r.wait_free);
  EXPECT_TRUE(r.explored_fully);
}

TEST(TnnWaitFree, CrashRecoveryBreaksTheOneShotProtocol) {
  // The one-shot protocol is NOT recoverable: a crashed process re-applies
  // op_x, burning through the counter; this is why Section 4 gives a
  // different algorithm for the recoverable case.
  TnnWaitFreeConsensus protocol(3, 1);
  const auto r = check_safety_all_inputs(protocol);
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.counterexample.has_value());
}

// --- E5: the recoverable T_{n,n'} protocol (Lemma 16's algorithm) --------

TEST(TnnRecoverable, SafeUnderCrashesWithNPrimeProcesses) {
  const std::pair<int, int> cases[] = {{3, 1}, {3, 2}, {4, 2}, {4, 3},
                                       {5, 2}, {6, 3}};
  for (const auto& [n, np] : cases) {
    TnnRecoverableConsensus protocol(n, np, /*processes=*/np);
    if (np < 2) continue;  // single process: trivially safe
    const auto r = check_safety_all_inputs(protocol);
    EXPECT_TRUE(r.ok()) << "T_{" << n << "," << np << "}: " << r.violation;
    EXPECT_TRUE(r.explored_fully);
  }
}

TEST(TnnRecoverable, RecoverableWaitFreeWithNPrimeProcesses) {
  TnnRecoverableConsensus protocol(4, 2, 2);
  const auto r = check_recoverable_wait_freedom(protocol, {0, 1});
  EXPECT_TRUE(r.wait_free);
  EXPECT_TRUE(r.explored_fully);
}

TEST(TnnRecoverable, OpRNeverReturnsBotWithNPrimeProcesses) {
  // "we will argue that this never happens": with n' processes the counter
  // never exceeds n', so no reachable execution decides via the bot arm
  // when all inputs agree — check validity with unanimous input 1 (the bot
  // arm decides 0, which would be a validity violation).
  TnnRecoverableConsensus protocol(5, 2, 2);
  const auto r = check_safety(protocol, {1, 1});
  EXPECT_TRUE(r.ok()) << r.violation;
}

TEST(TnnRecoverable, OverloadWithNPrimePlus1ProcessesFails) {
  // Lemma 16: n'+1 processes cannot solve recoverable consensus with
  // T_{n,n'}. For this protocol the checker exhibits the failure directly.
  const std::pair<int, int> cases[] = {{3, 1}, {4, 2}, {5, 2}};
  for (const auto& [n, np] : cases) {
    TnnRecoverableConsensus protocol(n, np, /*processes=*/np + 1);
    const auto r = check_safety_all_inputs(protocol);
    EXPECT_FALSE(r.ok()) << "T_{" << n << "," << np << "} with " << np + 1
                         << " processes should fail";
    ASSERT_TRUE(r.counterexample.has_value());
    // Replaying the counterexample reproduces the violation.
    TnnRecoverableConsensus fresh(n, np, np + 1);
    bool reproduced = false;
    for (const auto& inputs :
         valency::all_binary_inputs(fresh.process_count())) {
      const auto replay = exec::run_schedule(
          fresh, exec::Config::initial(fresh, inputs), *r.counterexample);
      unsigned outputs = 0;
      for (int v : inputs) outputs |= 1u << v;
      if (replay.log.agreement_violated() ||
          (replay.log.output_0 && !(outputs & 1u)) ||
          (replay.log.output_1 && !(outputs & 2u))) {
        reproduced = true;
      }
    }
    EXPECT_TRUE(reproduced);
  }
}

TEST(TnnRecoverable, CrashFreeItIsPlainWaitFreeConsensus)  {
  // A recoverable algorithm run without crashes is a wait-free algorithm
  // (Section 1). Overloaded with up to n-1 processes the crash-free runs
  // are still safe — T_{n,n'} has consensus number n.
  TnnRecoverableConsensus protocol(4, 2, 3);
  const auto r = check_safety_all_inputs(protocol, crash_free());
  EXPECT_TRUE(r.ok()) << r.violation;
}

// --- E6: test&set racing (Golab's collapse) ------------------------------

TEST(TasRacing, SafeAndWaitFreeCrashFree) {
  TasRacingConsensus protocol;
  const auto r = check_safety_all_inputs(protocol, crash_free());
  EXPECT_TRUE(r.ok()) << r.violation;
  LivenessOptions o;
  o.allow_crashes = false;
  EXPECT_TRUE(check_recoverable_wait_freedom(protocol, {0, 1}, o).wait_free);
}

TEST(TasRacing, CrashRecoveryViolatesAgreement) {
  TasRacingConsensus protocol;
  const auto r = check_safety(protocol, {0, 1});
  EXPECT_FALSE(r.agreement_ok);
  ASSERT_TRUE(r.counterexample.has_value());
  // The violation needs at least one crash: the schedule contains one.
  bool has_crash = false;
  for (const auto& e : *r.counterexample) has_crash |= e.is_crash();
  EXPECT_TRUE(has_crash);
}

TEST(TasRacing, StillRecoverableWaitFree) {
  // Golab's collapse is a SAFETY failure, not a liveness one: every solo
  // run still terminates.
  TasRacingConsensus protocol;
  const auto r = check_recoverable_wait_freedom(protocol, {0, 1});
  EXPECT_TRUE(r.wait_free);
}

// --- CAS consensus: the no-collapse baseline ------------------------------

TEST(CasConsensus, SafeUnderCrashes) {
  for (int n = 2; n <= 4; ++n) {
    CasConsensus protocol(n);
    const auto r = check_safety_all_inputs(protocol);
    EXPECT_TRUE(r.ok()) << "n=" << n << ": " << r.violation;
    EXPECT_TRUE(r.explored_fully);
  }
}

TEST(CasConsensus, RecoverableWaitFree) {
  CasConsensus protocol(3);
  const auto r = check_recoverable_wait_freedom(protocol, {0, 1, 1});
  EXPECT_TRUE(r.wait_free);
  EXPECT_TRUE(r.explored_fully);
}

// --- The deliberately broken register protocol ---------------------------

TEST(NaiveRegister, CheckerFindsTheRace) {
  NaiveRegisterConsensus protocol(2);
  const auto r = check_safety(protocol, {0, 1}, crash_free());
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(r.counterexample->empty());
}

TEST(NaiveRegister, UnanimousInputsAreFine) {
  NaiveRegisterConsensus protocol(2);
  EXPECT_TRUE(check_safety(protocol, {1, 1}).ok());
}

// --- The recording-based recoverable consensus algorithm ------------------
// (the algorithmic direction behind Theorem 14, non-hiding witnesses)

TEST(RecordingConsensus, CasTreeIsSafeAndLiveFor2) {
  const spec::ObjectType cas = spec::make_cas(3);
  RecordingConsensus protocol(cas, 2);
  EXPECT_EQ(protocol.node_count(), 1);
  const auto r = check_safety_all_inputs(protocol);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_TRUE(r.explored_fully);
  EXPECT_TRUE(check_recoverable_wait_freedom(protocol, {0, 1}).wait_free);
}

TEST(RecordingConsensus, CasTreeIsSafeAndLiveFor3) {
  const spec::ObjectType cas = spec::make_cas(3);
  RecordingConsensus protocol(cas, 3);
  EXPECT_EQ(protocol.node_count(), 2);  // root + one 2-process team
  const auto r = check_safety_all_inputs(protocol);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_TRUE(r.explored_fully);
  EXPECT_TRUE(
      check_recoverable_wait_freedom(protocol, {0, 1, 0}).wait_free);
}

TEST(RecordingConsensus, StickyTreeIsSafeFor3) {
  const spec::ObjectType sticky = spec::make_sticky_bit();
  RecordingConsensus protocol(sticky, 3);
  const auto r = check_safety_all_inputs(protocol);
  EXPECT_TRUE(r.ok()) << r.violation;
}

TEST(RecordingConsensus, ConsensusObjectTreeIsSafeFor2) {
  const spec::ObjectType c2 = spec::make_consensus_object(2);
  RecordingConsensus protocol(c2, 2);
  const auto r = check_safety_all_inputs(protocol);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_TRUE(check_recoverable_wait_freedom(protocol, {1, 0}).wait_free);
}

TEST(RecordingConsensus, SingleProcessDecidesItsInput) {
  const spec::ObjectType cas = spec::make_cas(3);
  RecordingConsensus protocol(cas, 1);
  const auto c = exec::Config::initial(protocol, {1});
  EXPECT_EQ(exec::solo_terminating_decision(protocol, c, 0), 1);
}

TEST(RecordingConsensus, CrashStormStillDecidesConsistently) {
  // Directed stress: interleave steps and crashes heavily and check the
  // final decisions agree. (The exhaustive check subsumes this; this test
  // documents the intended crash-robustness in one readable scenario.)
  const spec::ObjectType cas = spec::make_cas(3);
  RecordingConsensus protocol(cas, 3);
  auto c = exec::Config::initial(protocol, {1, 0, 1});
  exec::DecisionLog log(3);
  // p1 runs two steps, crashes, p2 runs three steps, crashes, everyone
  // then runs to completion.
  exec::Schedule s;
  for (int i = 0; i < 2; ++i) s.push_back(exec::Event::step(1));
  s.push_back(exec::Event::crash(1));
  for (int i = 0; i < 3; ++i) s.push_back(exec::Event::step(2));
  s.push_back(exec::Event::crash(2));
  auto r = exec::run_schedule(protocol, c, s, log);
  for (int pid = 0; pid < 3; ++pid) {
    const auto d = exec::solo_terminating_decision(protocol, r.config, pid);
    ASSERT_TRUE(d.has_value());
  }
  const auto d0 = exec::solo_terminating_decision(protocol, r.config, 0);
  // Run p0 to completion, then the others must agree with it.
  exec::Schedule rest;
  for (int i = 0; i < 50; ++i) rest.push_back(exec::Event::step(0));
  auto r2 = exec::run_schedule(protocol, r.config, rest, r.log);
  EXPECT_EQ(r2.log.decided[0], *d0);
  EXPECT_FALSE(r2.log.agreement_violated());
}

}  // namespace
}  // namespace rcons::algo
