// Randomized adversary sweeps: hundreds of seeded budgeted/unbounded crash
// schedules against correct protocols, asserting agreement + validity on
// every run. This complements the exhaustive checks with long, deep
// executions (the exhaustive checker proves correctness; these runs
// exercise the adversary/driver plumbing at scale and across budgets).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "sched/adversary.hpp"
#include "spec/catalog.hpp"

namespace rcons::sched {
namespace {

struct SweepCase {
  std::string name;
  std::function<std::unique_ptr<exec::Protocol>()> make;
  CrashRegime regime;
  double crash_prob;
};

class AdversarySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AdversarySweep, HundredSeedsStaySafe) {
  const auto protocol = GetParam().make();
  const int n = protocol->process_count();
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    RandomCrashAdversary adversary(n, GetParam().crash_prob, seed);
    DrivenRunOptions options;
    options.regime = GetParam().regime;
    options.max_events = 200'000;
    std::vector<int> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      inputs[static_cast<std::size_t>(i)] =
          static_cast<int>((seed >> i) & 1u);
    }
    const DrivenRunResult r = drive(*protocol, inputs, adversary, options);
    ASSERT_FALSE(r.log.agreement_violated())
        << GetParam().name << " seed " << seed;
    unsigned valid = 0;
    for (int v : inputs) valid |= 1u << v;
    ASSERT_FALSE(r.log.output_0 && !(valid & 1u))
        << GetParam().name << " seed " << seed;
    ASSERT_FALSE(r.log.output_1 && !(valid & 2u))
        << GetParam().name << " seed " << seed;
    // Under the budgeted regime runs must terminate (recoverable
    // wait-freedom + finite budget); unbounded runs may hit the cap.
    if (GetParam().regime == CrashRegime::kBudgeted) {
      ASSERT_TRUE(r.all_decided)
          << GetParam().name << " seed " << seed << " events " << r.events;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, AdversarySweep,
    ::testing::Values(
        SweepCase{"cas3_budgeted",
                  [] { return std::make_unique<algo::CasConsensus>(3); },
                  CrashRegime::kBudgeted, 0.4},
        SweepCase{"cas4_unbounded",
                  [] { return std::make_unique<algo::CasConsensus>(4); },
                  CrashRegime::kUnbounded, 0.3},
        SweepCase{"tnn_5_2_budgeted",
                  [] {
                    return std::make_unique<algo::TnnRecoverableConsensus>(
                        5, 2, 2);
                  },
                  CrashRegime::kBudgeted, 0.4},
        SweepCase{"tnn_6_3_unbounded",
                  [] {
                    return std::make_unique<algo::TnnRecoverableConsensus>(
                        6, 3, 3);
                  },
                  CrashRegime::kUnbounded, 0.25},
        SweepCase{"recording_cas3x3_budgeted",
                  [] {
                    return std::make_unique<algo::RecordingConsensus>(
                        spec::make_cas(3), 3);
                  },
                  CrashRegime::kBudgeted, 0.3},
        SweepCase{"recording_sticky_x2_unbounded",
                  [] {
                    return std::make_unique<algo::RecordingConsensus>(
                        spec::make_sticky_bit(), 2);
                  },
                  CrashRegime::kUnbounded, 0.35}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

TEST(AdversarySweep, BudgetedRunsRespectTheAccountantInvariant) {
  // drive() vets every adversary crash request through the accountant;
  // spot-check the resulting step/crash totals satisfy the E_z bound.
  algo::CasConsensus protocol(3);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    RandomCrashAdversary adversary(3, 0.5, seed);
    DrivenRunOptions options;
    options.regime = CrashRegime::kBudgeted;
    options.z = 1;
    const DrivenRunResult r = drive(protocol, {0, 1, 0}, adversary, options);
    // Total crashes bounded by z*n*(total steps) is a coarse corollary of
    // the per-process budget.
    ASSERT_LE(r.crashes, 1 * 3 * r.steps + 1) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcons::sched
