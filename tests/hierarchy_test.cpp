// Tests for the n-discerning / n-recording deciders and the computed
// hierarchy levels (experiment E1's claims table).
//
// Readable types: the computed levels ARE the consensus / recoverable
// consensus numbers (Ruppert; DFFR Thm 8 + this paper's Thm 13):
//   register: 1/1     test&set: 2/1 (Golab)    swap: 2/1    fetch&add: 2/1
//   cas, sticky: unbounded/unbounded
//   m-consensus object: (m+1)/m  — a readable gap-1 family
// Non-readable types: the levels are upper bounds only; T_{n,n'} and the
// FIFO queue are the showcase divergences (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "hierarchy/consensus_number.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"

namespace rcons::hierarchy {
namespace {

using spec::ObjectType;

TEST(Discerning, RegisterIsNot2Discerning) {
  const ObjectType reg = spec::make_register(2);
  EXPECT_FALSE(check_discerning(reg, 2).holds);
  EXPECT_EQ(discerning_level(reg, 3), (Level{1, true}));
}

TEST(Discerning, LargerRegisterStillLevel1) {
  const ObjectType reg = spec::make_register(3);
  EXPECT_EQ(discerning_level(reg, 2), (Level{1, true}));
}

TEST(Discerning, TestAndSetIsExactly2) {
  const ObjectType tas = spec::make_test_and_set();
  EXPECT_TRUE(check_discerning(tas, 2).holds);
  EXPECT_FALSE(check_discerning(tas, 3).holds);
  EXPECT_FALSE(check_discerning(tas, 4).holds);
  EXPECT_EQ(discerning_level(tas, 4), (Level{2, true}));
}

TEST(Discerning, WitnessIsSelfConsistent) {
  const DiscerningResult r = check_discerning(spec::make_test_and_set(), 2);
  ASSERT_TRUE(r.holds);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(is_discerning_witness(spec::make_test_and_set(), *r.witness));
  EXPECT_EQ(r.witness->team_size(0) + r.witness->team_size(1), 2);
  EXPECT_GE(r.witness->team_size(0), 1);
  EXPECT_GE(r.witness->team_size(1), 1);
}

TEST(Discerning, SwapIsExactly2) {
  const ObjectType swap = spec::make_swap(2);
  EXPECT_EQ(discerning_level(swap, 3), (Level{2, true}));
}

TEST(Discerning, FetchAndAddIsExactly2) {
  const ObjectType faa = spec::make_fetch_and_add(4);
  EXPECT_EQ(discerning_level(faa, 3), (Level{2, true}));
}

TEST(Discerning, SaturatingFetchAndIncrementIsExactly2) {
  const ObjectType fai = spec::make_fetch_and_increment_saturating(3);
  EXPECT_EQ(discerning_level(fai, 3), (Level{2, true}));
}

TEST(Discerning, CasIsUnboundedUpToCap) {
  const ObjectType cas = spec::make_cas(3);
  EXPECT_EQ(discerning_level(cas, 5), (Level{5, false}));
}

TEST(Discerning, BitCasIsAtLeast2) {
  // cas_0_1 alone behaves like test&set.
  const ObjectType cas = spec::make_cas(2);
  EXPECT_TRUE(check_discerning(cas, 2).holds);
}

TEST(Discerning, StickyIsUnboundedUpToCap) {
  const ObjectType sticky = spec::make_sticky_bit();
  EXPECT_EQ(discerning_level(sticky, 5), (Level{5, false}));
}

TEST(Discerning, ConsensusObjectLevelIsMPlus1) {
  // The (m+1)-th proposal still reports the winner (it wipes to "full" but
  // responds with the decided value); only the (m+2)-th observer is blind.
  EXPECT_EQ(discerning_level(spec::make_consensus_object(2), 5),
            (Level{3, true}));
  EXPECT_EQ(discerning_level(spec::make_consensus_object(3), 6),
            (Level{4, true}));
}

TEST(Discerning, TnnLevelIsExactlyN) {
  // Lemma 15's upper bound shows up in the checker: with n+1 one-shot
  // operations the last process sees (bot, s_bot) from both teams.
  for (int n = 2; n <= 5; ++n) {
    for (int np : {1, n - 1}) {
      if (np < 1) continue;
      const ObjectType t = spec::make_tnn(n, np);
      EXPECT_EQ(discerning_level(t, n + 1), (Level{n, true})) << t.name();
    }
  }
}

TEST(Recording, TestAndSetIsNot2Recording) {
  // Golab: recoverable consensus number of test&set is 1.
  const ObjectType tas = spec::make_test_and_set();
  EXPECT_FALSE(check_recording(tas, 2).holds);
  EXPECT_EQ(recording_level(tas, 3), (Level{1, true}));
}

TEST(Recording, RegisterSwapFaaAreLevel1) {
  EXPECT_EQ(recording_level(spec::make_register(2), 3), (Level{1, true}));
  EXPECT_EQ(recording_level(spec::make_swap(2), 3), (Level{1, true}));
  EXPECT_EQ(recording_level(spec::make_fetch_and_add(4), 3),
            (Level{1, true}));
}

TEST(Recording, CasAndStickyAreUnboundedUpToCap) {
  EXPECT_EQ(recording_level(spec::make_cas(3), 5), (Level{5, false}));
  EXPECT_EQ(recording_level(spec::make_sticky_bit(), 5), (Level{5, false}));
}

TEST(Recording, ConsensusObjectLevelIsM) {
  // One level below its discerning level: the readable gap-1 family.
  EXPECT_EQ(recording_level(spec::make_consensus_object(2), 5),
            (Level{2, true}));
  EXPECT_EQ(recording_level(spec::make_consensus_object(3), 6),
            (Level{3, true}));
}

TEST(Recording, WitnessIsSelfConsistent) {
  const RecordingResult r = check_recording(spec::make_cas(3), 3);
  ASSERT_TRUE(r.holds);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(is_recording_witness(spec::make_cas(3), *r.witness));
}

TEST(Recording, NonhidingImpliesRecording) {
  const ObjectType cas = spec::make_cas(3);
  for (int n = 2; n <= 4; ++n) {
    const RecordingResult nh = check_recording_nonhiding(cas, n);
    ASSERT_TRUE(nh.holds) << n;
    EXPECT_TRUE(is_recording_witness(cas, *nh.witness));
    EXPECT_TRUE(is_nonhiding_recording_witness(cas, *nh.witness));
  }
}

TEST(Recording, ValueTeamsDecodeIsConsistent) {
  const ObjectType cas = spec::make_cas(3);
  const RecordingResult r = check_recording_nonhiding(cas, 3);
  ASSERT_TRUE(r.holds);
  const std::vector<int> teams = compute_value_teams(cas, *r.witness);
  // u itself is not reachable by nonempty one-shot schedules (non-hiding).
  EXPECT_EQ(teams[static_cast<std::size_t>(r.witness->initial_value)], -1);
  // At least one value decodes to each team (apply any single op).
  bool seen[2] = {false, false};
  for (int t : teams) {
    if (t >= 0) seen[t] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
}

TEST(Recording, TnnLevelIsNMinus1) {
  // The value of T_{n,n'} records the first operation's subscript for up
  // to n-1 one-shot applications (the n-th wipes to s_bot). The checker
  // computes n-1 — while Lemma 16 pins the true recoverable consensus
  // number at n'. The divergence is expected: recording is sufficient only
  // for READABLE types, and T_{n,n'} is not readable.
  EXPECT_EQ(recording_level(spec::make_tnn(4, 1), 5), (Level{3, true}));
  EXPECT_EQ(recording_level(spec::make_tnn(4, 2), 5), (Level{3, true}));
  EXPECT_EQ(recording_level(spec::make_tnn(5, 2), 6), (Level{4, true}));
}

TEST(Recording, QueueRecordsFirstEnqueuerForever) {
  // The first enqueued item sits at the head until a deq — and a witness
  // may simply not assign deq. Non-readability is again what stops this
  // from implying recoverable consensus.
  const ObjectType q = spec::make_queue(2);
  EXPECT_TRUE(check_recording(q, 2).holds);
  EXPECT_TRUE(check_recording(q, 4).holds);
}

TEST(Discerning, QueueDiscernsByValueButIsNotReadable) {
  const ObjectType q = spec::make_queue(2);
  EXPECT_TRUE(check_discerning(q, 3).holds);
  EXPECT_FALSE(q.is_readable());
}

TEST(CrossValidation, CanonicalAndNaiveEnumerationsAgree) {
  const std::vector<ObjectType> types = {
      spec::make_register(2),
      spec::make_test_and_set(),
      spec::make_swap(2),
      spec::make_cas(2),
  };
  for (const ObjectType& t : types) {
    for (int n = 2; n <= 3; ++n) {
      EXPECT_EQ(check_discerning(t, n, true).holds,
                check_discerning(t, n, false).holds)
          << t.name() << " discerning n=" << n;
      EXPECT_EQ(check_recording(t, n, true).holds,
                check_recording(t, n, false).holds)
          << t.name() << " recording n=" << n;
    }
  }
}

TEST(CrossValidation, SymmetryReductionTriesFewerAssignments) {
  const ObjectType tas = spec::make_test_and_set();
  const DiscerningResult sym = check_discerning(tas, 3, true);
  const DiscerningResult naive = check_discerning(tas, 3, false);
  EXPECT_FALSE(sym.holds);
  EXPECT_FALSE(naive.holds);
  EXPECT_LT(sym.stats.assignments_tried, naive.stats.assignments_tried);
}

TEST(Monotonicity, DiscerningIsDownwardClosedEmpirically) {
  // If a type is n-discerning it is (n-1)-discerning (n-1 >= 2); verified
  // across the catalog at small n.
  const std::vector<ObjectType> types = {
      spec::make_test_and_set(),    spec::make_cas(3),
      spec::make_sticky_bit(),      spec::make_consensus_object(2),
      spec::make_tnn(4, 2),         spec::make_queue(2),
  };
  for (const ObjectType& t : types) {
    for (int n = 3; n <= 4; ++n) {
      if (check_discerning(t, n).holds) {
        EXPECT_TRUE(check_discerning(t, n - 1).holds)
            << t.name() << " " << n;
      }
      if (check_recording(t, n).holds) {
        EXPECT_TRUE(check_recording(t, n - 1).holds) << t.name() << " " << n;
      }
    }
  }
}

TEST(Profile, ComputeProfileBundlesLevels) {
  const TypeProfile p = compute_profile(spec::make_test_and_set(), 4);
  EXPECT_EQ(p.type_name, "test_and_set");
  EXPECT_TRUE(p.readable);
  EXPECT_EQ(p.consensus_number(), (Level{2, true}));
  EXPECT_EQ(p.recoverable_consensus_number(), (Level{1, true}));
}

TEST(Profile, LevelToString) {
  EXPECT_EQ((Level{3, true}).to_string(), "3");
  EXPECT_EQ((Level{5, false}).to_string(), ">= 5");
}

TEST(Xn, X4HasConsensusNumber4AndRecoverableConsensusNumber2) {
  // The paper's headline corollary for n = 4: a readable type with
  // consensus number n and recoverable consensus number n-2. The machine
  // was found by the checker-guided search; these assertions re-verify
  // every level from scratch.
  const ObjectType x4 = spec::make_xn(4);
  EXPECT_TRUE(x4.is_readable());
  EXPECT_TRUE(check_discerning(x4, 4).holds);
  EXPECT_FALSE(check_discerning(x4, 5).holds);
  EXPECT_TRUE(check_recording(x4, 2).holds);
  EXPECT_FALSE(check_recording(x4, 3).holds);
  const TypeProfile p = compute_profile(x4, 5);
  EXPECT_EQ(p.discerning, (Level{4, true}));
  EXPECT_EQ(p.recording, (Level{2, true}));
}

TEST(Xn, X5HasConsensusNumber5AndRecoverableConsensusNumber3) {
  const ObjectType x5 = spec::make_xn(5);
  EXPECT_TRUE(x5.is_readable());
  EXPECT_TRUE(check_discerning(x5, 5).holds);
  EXPECT_FALSE(check_discerning(x5, 6).holds);
  EXPECT_TRUE(check_recording(x5, 3).holds);
  EXPECT_FALSE(check_recording(x5, 4).holds);
}

TEST(Xn, X4WitnessesAreSelfConsistent) {
  const ObjectType x4 = spec::make_xn(4);
  const DiscerningResult d = check_discerning(x4, 4);
  ASSERT_TRUE(d.witness.has_value());
  EXPECT_TRUE(is_discerning_witness(x4, *d.witness));
  const RecordingResult r = check_recording(x4, 2);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(is_recording_witness(x4, *r.witness));
}

}  // namespace
}  // namespace rcons::hierarchy
