// Tests for the static bounds engine (analysis/static_bounds, DESIGN.md
// §11): the SA rule registry, the per-rule firing/near-miss fixtures in
// data/broken/sa*, bracket soundness against the exact deciders across a
// seeded random sweep, quotient level preservation, determinism of the
// reports, and the CLI surface (`explain`, `lint --explain`, byte-stable
// lint output).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/rules.hpp"
#include "analysis/static_bounds/static_bounds.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"

namespace {

using rcons::analysis::BoundsReport;
using rcons::analysis::Diagnostic;
using rcons::analysis::kLevelUnbounded;
using rcons::hierarchy::Level;
using rcons::hierarchy::ProfileOptions;
using rcons::hierarchy::TypeProfile;
namespace spec = rcons::spec;

std::string source_dir() { return RCONS_SOURCE_DIR; }

spec::ObjectType load_broken(const std::string& name) {
  const std::string path = source_dir() + "/data/broken/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const spec::ParseResult parsed = spec::parse_type(buffer.str());
  EXPECT_TRUE(parsed.ok()) << path << ": " << parsed.error;
  return *parsed.type;
}

int count_rule(const BoundsReport& r, const char* rule) {
  int n = 0;
  for (const Diagnostic& d : r.findings.diagnostics()) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// ---- Rule registry ----

// Every rule — TS, PL, RC, and the new SA block — must carry a non-empty
// one-paragraph explanation: `rcons_cli explain <id>` promises one.
TEST(StaticBoundsRegistry, EveryRuleHasNonEmptyExplain) {
  int sa_rules = 0;
  for (const auto& r : rcons::analysis::all_rules()) {
    ASSERT_NE(r.explain, nullptr) << r.id;
    EXPECT_GT(std::string(r.explain).size(), 80u)
        << r.id << ": explain should be a paragraph, not a stub";
    EXPECT_NE(std::string(r.explain), std::string(r.summary)) << r.id;
    if (std::string(r.id).rfind("SA", 0) == 0) ++sa_rules;
  }
  EXPECT_EQ(sa_rules, 12);
}

// ---- Known-type brackets ----

TEST(StaticBounds, TestAndSetIsPinnedExactly) {
  const BoundsReport r =
      rcons::analysis::analyze_static_bounds(spec::make_test_and_set());
  EXPECT_EQ(r.discerning.lo, 2);
  EXPECT_EQ(r.discerning.hi, 2);
  EXPECT_EQ(r.recording.lo, 1);
  EXPECT_EQ(r.recording.hi, 1);
  EXPECT_TRUE(r.decides_profile(6));
}

TEST(StaticBounds, RegisterIsPinnedToOne) {
  const BoundsReport r =
      rcons::analysis::analyze_static_bounds(spec::make_register(2));
  EXPECT_EQ(r.discerning.hi, 1);
  EXPECT_EQ(r.recording.hi, 1);
  EXPECT_TRUE(r.decides_profile(6));
}

TEST(StaticBounds, CasAndStickyBitAreUnbounded) {
  for (const spec::ObjectType& type :
       {spec::make_cas(3), spec::make_sticky_bit()}) {
    const BoundsReport r = rcons::analysis::analyze_static_bounds(type);
    EXPECT_EQ(r.discerning.lo, kLevelUnbounded) << type.name();
    EXPECT_EQ(r.recording.lo, kLevelUnbounded) << type.name();
    EXPECT_TRUE(r.decides_profile(6)) << type.name();
  }
}

// A decided bracket must agree with the deciders when they do run.
TEST(StaticBounds, DecidedProfilesMatchExactProfiles) {
  for (const spec::ObjectType& type :
       {spec::make_test_and_set(), spec::make_register(2),
        spec::make_cas(3)}) {
    const BoundsReport bounds = rcons::analysis::analyze_static_bounds(type);
    ProfileOptions with;
    with.bounds = &bounds;
    const TypeProfile exact = rcons::hierarchy::compute_profile(type, 4);
    const TypeProfile pruned =
        rcons::hierarchy::compute_profile(type, 4, with);
    EXPECT_EQ(pruned.discerning, exact.discerning) << type.name();
    EXPECT_EQ(pruned.recording, exact.recording) << type.name();
  }
}

// ---- Per-rule fixtures: one firing machine and one near-miss each ----

struct FixtureCase {
  const char* rule;
  const char* firing;
  const char* near_miss;
};

class StaticBoundsFixtures : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(StaticBoundsFixtures, FiringMachineTripsTheRuleExactlyOnce) {
  const FixtureCase c = GetParam();
  const BoundsReport r =
      rcons::analysis::analyze_static_bounds(load_broken(c.firing));
  EXPECT_EQ(count_rule(r, c.rule), 1)
      << c.firing << " must trip " << c.rule << " exactly once\n"
      << r.findings.render_text();
}

TEST_P(StaticBoundsFixtures, NearMissStaysSilent) {
  const FixtureCase c = GetParam();
  const BoundsReport r =
      rcons::analysis::analyze_static_bounds(load_broken(c.near_miss));
  EXPECT_EQ(count_rule(r, c.rule), 0)
      << c.near_miss << " must NOT trip " << c.rule << "\n"
      << r.findings.render_text();
}

INSTANTIATE_TEST_SUITE_P(
    Rules, StaticBoundsFixtures,
    ::testing::Values(
        FixtureCase{"SA001", "sa001_oblivious.type", "sa001_near_miss.type"},
        FixtureCase{"SA002", "sa002_duplicate.type", "sa002_near_miss.type"},
        FixtureCase{"SA003", "sa003_read_only.type", "sa003_near_miss.type"},
        FixtureCase{"SA004", "sa004_commutative.type",
                    "sa004_near_miss.type"},
        FixtureCase{"SA005", "sa005_interference.type",
                    "sa005_near_miss.type"},
        FixtureCase{"SA006", "sa006_pair.type", "sa006_near_miss.type"},
        FixtureCase{"SA007", "sa007_sticky.type", "sa007_near_miss.type"},
        FixtureCase{"SA008", "sa008_divergent.type",
                    "sa008_near_miss.type"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      return std::string(info.param.rule);
    });

// SA008's whole point is deciding machines SA007 cannot: its firing
// fixture has no single value fixed by both ops.
TEST(StaticBounds, DivergentClosureFixtureEludesStickyPair) {
  const BoundsReport r =
      rcons::analysis::analyze_static_bounds(load_broken("sa008_divergent.type"));
  EXPECT_EQ(count_rule(r, "SA007"), 0);
  EXPECT_EQ(r.discerning.lo, kLevelUnbounded);
  EXPECT_EQ(r.recording.lo, kLevelUnbounded);
}

// ---- Quotient soundness: SA001/SA002 preserve both levels exactly ----

TEST(StaticBoundsQuotient, QuotientLevelsEqualOriginalLevels) {
  for (const char* name : {"sa001_oblivious.type", "sa002_duplicate.type"}) {
    const spec::ObjectType type = load_broken(name);
    const BoundsReport r = rcons::analysis::analyze_static_bounds(type);
    ASSERT_TRUE(r.quotient_reduced) << name;
    EXPECT_EQ(r.ops_removed, 1) << name;
    EXPECT_EQ(r.quotient.op_count(), type.op_count() - 1) << name;
    const TypeProfile original = rcons::hierarchy::compute_profile(type, 3);
    const TypeProfile quotient =
        rcons::hierarchy::compute_profile(r.quotient, 3);
    EXPECT_EQ(quotient.discerning, original.discerning) << name;
    EXPECT_EQ(quotient.recording, original.recording) << name;
  }
}

// ---- Seeded differential: brackets never contradict the deciders ----

// 300 random readable machines: every bracket edge must agree with the
// exact per-n verdicts, and the pruned profile must equal the unpruned
// one for serial, parallel, and cache-warm configurations.
TEST(StaticBoundsDifferential, RandomSweepBracketsContainExactVerdicts) {
  constexpr int kSeeds = 300;
  constexpr int kMaxN = 3;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const spec::ObjectType type = rcons::hierarchy::random_readable_type(
        4, 2, 3, static_cast<std::uint64_t>(seed));
    const BoundsReport bounds = rcons::analysis::analyze_static_bounds(type);
    for (int n = 2; n <= kMaxN; ++n) {
      if (n <= bounds.discerning.lo) {
        EXPECT_TRUE(rcons::hierarchy::check_discerning(type, n).holds)
            << "seed " << seed << " n " << n << ": lo claimed by "
            << bounds.discerning.lo_by << "\n" << spec::serialize_type(type);
      }
      if (n > bounds.discerning.hi) {
        EXPECT_FALSE(rcons::hierarchy::check_discerning(type, n).holds)
            << "seed " << seed << " n " << n << ": hi claimed by "
            << bounds.discerning.hi_by << "\n" << spec::serialize_type(type);
      }
      if (n <= bounds.recording.lo) {
        EXPECT_TRUE(rcons::hierarchy::check_recording(type, n).holds)
            << "seed " << seed << " n " << n << ": lo claimed by "
            << bounds.recording.lo_by << "\n" << spec::serialize_type(type);
      }
      if (n > bounds.recording.hi) {
        EXPECT_FALSE(rcons::hierarchy::check_recording(type, n).holds)
            << "seed " << seed << " n " << n << ": hi claimed by "
            << bounds.recording.hi_by << "\n" << spec::serialize_type(type);
      }
    }
  }
}

TEST(StaticBoundsDifferential, PrunedProfilesMatchAcrossConfigurations) {
  constexpr int kSeeds = 60;
  constexpr int kMaxN = 3;
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("rcons-bounds-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(cache_dir);
  const rcons::reduction::VerdictCache cache(cache_dir);
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const spec::ObjectType type = rcons::hierarchy::random_readable_type(
        4, 2, 3, static_cast<std::uint64_t>(seed));
    const BoundsReport bounds = rcons::analysis::analyze_static_bounds(type);
    const TypeProfile plain = rcons::hierarchy::compute_profile(type, kMaxN);

    ProfileOptions serial;
    serial.bounds = &bounds;
    const TypeProfile pruned =
        rcons::hierarchy::compute_profile(type, kMaxN, serial);
    EXPECT_EQ(pruned.discerning, plain.discerning) << "seed " << seed;
    EXPECT_EQ(pruned.recording, plain.recording) << "seed " << seed;

    ProfileOptions parallel = serial;
    parallel.threads = 4;
    const TypeProfile par =
        rcons::hierarchy::compute_profile(type, kMaxN, parallel);
    EXPECT_EQ(par.discerning, plain.discerning) << "seed " << seed;
    EXPECT_EQ(par.recording, plain.recording) << "seed " << seed;

    ProfileOptions cached = serial;
    cached.cache = &cache;
    const TypeProfile cold =
        rcons::hierarchy::compute_profile(type, kMaxN, cached);
    const TypeProfile warm =
        rcons::hierarchy::compute_profile(type, kMaxN, cached);
    EXPECT_EQ(cold.discerning, plain.discerning) << "seed " << seed;
    EXPECT_EQ(cold.recording, plain.recording) << "seed " << seed;
    EXPECT_EQ(warm.discerning, plain.discerning) << "seed " << seed;
    EXPECT_EQ(warm.recording, plain.recording) << "seed " << seed;
  }
  std::filesystem::remove_all(cache_dir);
}

// The search result is a pure function of the options, bounds on or off.
TEST(StaticBoundsDifferential, SearchResultsIdenticalWithBoundsOnAndOff) {
  rcons::hierarchy::MachineSearchOptions options;
  options.value_count = 4;
  options.op_count = 2;
  options.response_count = 3;
  options.max_n = 3;
  options.restarts = 4;
  options.mutations_per_restart = 30;
  options.use_bounds = true;
  const auto with = rcons::hierarchy::search_gap_machines(options);
  options.use_bounds = false;
  const auto without = rcons::hierarchy::search_gap_machines(options);
  EXPECT_EQ(with.best_gap, without.best_gap);
  EXPECT_EQ(with.machines_evaluated, without.machines_evaluated);
  EXPECT_EQ(spec::serialize_type(with.best_type),
            spec::serialize_type(without.best_type));
  EXPECT_EQ(with.best_profile.discerning, without.best_profile.discerning);
  EXPECT_EQ(with.best_profile.recording, without.best_profile.recording);
}

// ---- Determinism ----

TEST(StaticBoundsDeterminism, RepeatedAnalysesRenderIdentically) {
  for (const char* name :
       {"sa001_oblivious.type", "sa007_sticky.type", "sa008_divergent.type"}) {
    const spec::ObjectType type = load_broken(name);
    const BoundsReport a = rcons::analysis::analyze_static_bounds(type);
    const BoundsReport b = rcons::analysis::analyze_static_bounds(type);
    EXPECT_EQ(a.render_json(), b.render_json()) << name;
    EXPECT_EQ(a.findings.render_text(), b.findings.render_text()) << name;
    EXPECT_EQ(a.describe(), b.describe()) << name;
  }
}

// Findings come out canonicalized: sorted by (rule, subject, location).
TEST(StaticBoundsDeterminism, FindingsAreInCanonicalOrder) {
  const BoundsReport r =
      rcons::analysis::analyze_static_bounds(load_broken("sa007_sticky.type"));
  const auto& diags = r.findings.diagnostics();
  ASSERT_GE(diags.size(), 2u);
  for (std::size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(diags[i - 1].rule, diags[i].rule);
  }
}

// ---- CLI surface ----

std::string capture_stdout(const std::string& command, int* exit_code) {
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  std::string out;
  if (pipe != nullptr) {
    char buffer[4096];
    std::size_t got;
    while ((got = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
      out.append(buffer, got);
    }
    const int status = pclose(pipe);
    *exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  }
  return out;
}

std::string cli() { return std::string(RCONS_CLI_BIN); }

TEST(StaticBoundsCli, ExplainPrintsEveryRule) {
  for (const auto& r : rcons::analysis::all_rules()) {
    int code = -1;
    const std::string out =
        capture_stdout(cli() + " explain " + r.id + " 2>/dev/null", &code);
    EXPECT_EQ(code, 0) << r.id;
    EXPECT_NE(out.find(r.id), std::string::npos) << out;
    EXPECT_NE(out.find(r.explain), std::string::npos)
        << r.id << ": explain text missing from output";
  }
  int code = -1;
  capture_stdout(cli() + " explain SA999 2>/dev/null", &code);
  EXPECT_EQ(code, 2);
}

TEST(StaticBoundsCli, LintExplainFlagMatchesExplainCommand) {
  int code_a = -1;
  int code_b = -1;
  const std::string a =
      capture_stdout(cli() + " explain SA007 2>/dev/null", &code_a);
  const std::string b = capture_stdout(
      cli() + " lint --explain=SA007 2>/dev/null", &code_b);
  EXPECT_EQ(code_a, 0);
  EXPECT_EQ(code_b, 0);
  EXPECT_EQ(a, b);
}

// Two runs over the same multi-target lint must be byte-identical: the
// canonical finding order is part of the CLI contract (satellite of
// DESIGN.md §11).
TEST(StaticBoundsCli, LintOutputIsByteStableAcrossRuns) {
  const std::string fixtures = source_dir() + "/data/broken";
  // (sa001's oblivious op trips TS002 at error severity by design, so the
  // byte-stability targets are fixtures that lint clean at the default
  // threshold.)
  const std::string command = cli() + " lint " + fixtures +
                              "/sa007_sticky.type " + fixtures +
                              "/sa003_read_only.type " + fixtures +
                              "/sa008_divergent.type --format=json "
                              "2>/dev/null";
  int code_a = -1;
  int code_b = -1;
  const std::string a = capture_stdout(command, &code_a);
  const std::string b = capture_stdout(command, &code_b);
  EXPECT_EQ(code_a, 0);  // SA findings are notes; default threshold=error
  EXPECT_EQ(code_b, 0);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("SA007"), std::string::npos);
}

TEST(StaticBoundsCli, ProfileJsonCarriesBoundsBlock) {
  int code = -1;
  const std::string out = capture_stdout(
      cli() + " profile tas 4 --cache=off --format=json 2>/dev/null", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("\"bounds\":{\"cons\":{\"lo\":2,\"hi\":2"),
            std::string::npos)
      << out;
  int code_off = -1;
  const std::string off = capture_stdout(
      cli() + " profile tas 4 --cache=off --format=json --bounds=off "
              "2>/dev/null",
      &code_off);
  EXPECT_EQ(code_off, 0);
  EXPECT_EQ(off.find("\"bounds\""), std::string::npos) << off;
}

}  // namespace
