// Differential tests for the symmetry-reduction layer (DESIGN.md §10).
//
// Ground truth is the unreduced engines: over a corpus of 200+ seeded
// random types and every process-symmetric protocol in algo/, the reduced
// configurations must reproduce the exact verdicts — and reduced
// counterexamples, which live in canonical frames until derandomized, must
// replay into genuine violations of the real protocol.
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "algo/cas_consensus.hpp"
#include "analysis/type_lint.hpp"
#include "algo/naive_register.hpp"
#include "algo/propose_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/execute.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "reduction/config_canon.hpp"
#include "reduction/type_canon.hpp"
#include "reduction/verdict_cache.hpp"
#include "valency/model_checker.hpp"

namespace {

using rcons::hierarchy::SymmetryMode;

// --- Hierarchy: canonical vs automorphism-reduced scans -------------------

// Every seeded type gets identical discerning/recording verdicts from the
// canonical and the automorphism-pruned enumerations, serial and parallel.
TEST(ReductionDiff, RandomTypesAgreeAcrossSymmetryModes) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const rcons::spec::ObjectType type =
        rcons::hierarchy::random_readable_type(4, 2, 3, seed);
    for (int n = 2; n <= 3; ++n) {
      const auto canonical =
          rcons::hierarchy::check_discerning(type, n, SymmetryMode::kCanonical);
      const auto reduced = rcons::hierarchy::check_discerning(
          type, n, SymmetryMode::kAutomorphism);
      EXPECT_EQ(canonical.holds, reduced.holds)
          << "discerning seed " << seed << " n " << n;

      const auto rc =
          rcons::hierarchy::check_recording(type, n, SymmetryMode::kCanonical);
      const auto ra = rcons::hierarchy::check_recording(
          type, n, SymmetryMode::kAutomorphism);
      EXPECT_EQ(rc.holds, ra.holds) << "recording seed " << seed << " n " << n;

      // The parallel automorphism scan replays the serial one bit-for-bit.
      const auto reduced4 = rcons::hierarchy::check_discerning(
          type, n, SymmetryMode::kAutomorphism, /*threads=*/4);
      EXPECT_EQ(reduced4.holds, reduced.holds) << seed;
      EXPECT_EQ(reduced4.witness, reduced.witness) << seed;
      EXPECT_EQ(reduced4.stats.assignments_tried,
                reduced.stats.assignments_tried)
          << seed;
      EXPECT_EQ(reduced4.stats.schedule_nodes, reduced.stats.schedule_nodes)
          << seed;
    }
  }
}

// The same corpus through the linter: no crash on any generated type, and
// the lint verdict is itself a relabeling invariant — an isomorphic copy
// must draw exactly as many errors and warnings as the original.
TEST(ReductionDiff, RandomTypesLintCleanlyAndInvariantly) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const rcons::spec::ObjectType type =
        rcons::hierarchy::random_readable_type(4, 2, 3, seed);
    rcons::analysis::TypeLintOptions options;
    options.initial = rcons::spec::ValueId{0};
    const auto report = rcons::analysis::lint_type(type, options);

    auto phi = rcons::reduction::identity_relabeling(type);
    std::mt19937_64 rng(seed * 7919 + 17);
    std::shuffle(phi.value_perm.begin(), phi.value_perm.end(), rng);
    std::shuffle(phi.op_perm.begin(), phi.op_perm.end(), rng);
    // Reachability questions must start from the *image* of the original
    // initial value, or the two lints would not be asking isomorphic
    // questions.
    rcons::analysis::TypeLintOptions relabeled_options;
    relabeled_options.initial = rcons::spec::ValueId{phi.value_perm[0]};
    const auto relabeled = rcons::analysis::lint_type(
        rcons::reduction::relabel_type(type, phi), relabeled_options);
    EXPECT_EQ(relabeled.error_count(), report.error_count()) << seed;
    EXPECT_EQ(relabeled.warning_count(), report.warning_count()) << seed;
    EXPECT_EQ(relabeled.note_count(), report.note_count()) << seed;
  }
}

// Cached levels equal cold levels across the same corpus: the first pass
// populates a fresh cache, the second consumes it, and a cold (uncached)
// computation referees.
TEST(ReductionDiff, RandomTypesCachedEqualsCold) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("rcons-diff-cache-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const rcons::reduction::VerdictCache cache(dir);
  rcons::hierarchy::ProfileOptions cached;
  cached.cache = &cache;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const rcons::spec::ObjectType type =
        rcons::hierarchy::random_readable_type(4, 2, 3, seed);
    const auto cold = rcons::hierarchy::compute_profile(type, 3);
    const auto first = rcons::hierarchy::compute_profile(type, 3, cached);
    const auto warm = rcons::hierarchy::compute_profile(type, 3, cached);
    EXPECT_EQ(first.discerning, cold.discerning) << seed;
    EXPECT_EQ(first.recording, cold.recording) << seed;
    EXPECT_EQ(warm.discerning, cold.discerning) << seed;
    EXPECT_EQ(warm.recording, cold.recording) << seed;
  }
  std::filesystem::remove_all(dir);
}

// --- Valency: quotient exploration vs the unreduced engines ---------------

struct ProtocolCase {
  std::unique_ptr<rcons::exec::Protocol> protocol;
  std::string label;
};

std::vector<ProtocolCase> symmetric_protocols() {
  std::vector<ProtocolCase> cases;
  for (int n = 2; n <= 3; ++n) {
    cases.push_back({std::make_unique<rcons::algo::CasConsensus>(n),
                     "cas" + std::to_string(n)});
    cases.push_back({std::make_unique<rcons::algo::StickyConsensus>(n),
                     "sticky" + std::to_string(n)});
    cases.push_back({std::make_unique<rcons::algo::NaiveRegisterConsensus>(n),
                     "naive" + std::to_string(n)});
    cases.push_back({std::make_unique<rcons::algo::NaiveProposeConsensus>(2, n),
                     "propose" + std::to_string(n)});
    cases.push_back(
        {std::make_unique<rcons::algo::TnnRecoverableConsensus>(3, 2, n),
         "tnnrec" + std::to_string(n)});
  }
  return cases;
}

// The declared process_symmetric() contract holds semantically for every
// protocol the reducer will quotient (bounded BFS audit).
TEST(ReductionDiff, DeclaredSymmetryIsSemanticallyTrue) {
  for (const auto& c : symmetric_protocols()) {
    ASSERT_TRUE(c.protocol->process_symmetric()) << c.label;
    const int n = c.protocol->process_count();
    for (const auto& inputs : rcons::valency::all_binary_inputs(n)) {
      EXPECT_TRUE(
          rcons::reduction::verify_process_symmetry(*c.protocol, inputs))
          << c.label;
    }
  }
}

TEST(ReductionDiff, SafetyVerdictsMatchUnreducedAndReplay) {
  namespace valency = rcons::valency;
  for (const auto& c : symmetric_protocols()) {
    valency::SafetyOptions plain;
    valency::SafetyOptions reduced = plain;
    reduced.reduce_symmetry = true;
    const auto off = valency::check_safety_all_inputs(*c.protocol, plain);
    const auto on = valency::check_safety_all_inputs(*c.protocol, reduced);
    EXPECT_EQ(valency::safety_verdict(off), valency::safety_verdict(on))
        << c.label;
    EXPECT_LE(on.states_visited, off.states_visited) << c.label;

    // Parallel reduced equals serial reduced bit-for-bit.
    valency::SafetyOptions reduced4 = reduced;
    reduced4.threads = 4;
    const auto on4 = valency::check_safety_all_inputs(*c.protocol, reduced4);
    EXPECT_EQ(on4.states_visited, on.states_visited) << c.label;
    EXPECT_EQ(on4.violation, on.violation) << c.label;
    EXPECT_EQ(on4.counterexample, on.counterexample) << c.label;

    // A reduced counterexample is already derandomized: replaying it on the
    // REAL protocol from some canonical input vector reproduces a
    // violation.
    if (on.counterexample.has_value()) {
      bool reproduced = false;
      for (const auto& inputs :
           valency::driver_input_vectors(*c.protocol, true)) {
        const auto er = rcons::exec::run_schedule(
            *c.protocol, rcons::exec::Config::initial(*c.protocol, inputs),
            *on.counterexample);
        unsigned valid_mask = 0;
        for (const int v : inputs) valid_mask |= 1u << v;
        const bool bad_validity =
            (er.log.output_0 && ((valid_mask >> 0) & 1u) == 0) ||
            (er.log.output_1 && ((valid_mask >> 1) & 1u) == 0);
        if (er.log.agreement_violated() || bad_validity) reproduced = true;
      }
      EXPECT_TRUE(reproduced) << c.label << ": counterexample "
                              << rcons::exec::schedule_to_string(
                                     *on.counterexample)
                              << " reproduces no violation";
    }
  }
}

TEST(ReductionDiff, LivenessVerdictsMatchUnreducedAndStuckPidsAreStuck) {
  namespace valency = rcons::valency;
  for (const auto& c : symmetric_protocols()) {
    for (const auto& inputs :
         valency::all_binary_inputs(c.protocol->process_count())) {
      valency::LivenessOptions plain;
      valency::LivenessOptions reduced = plain;
      reduced.reduce_symmetry = true;
      const auto off =
          valency::check_recoverable_wait_freedom(*c.protocol, inputs, plain);
      const auto on = valency::check_recoverable_wait_freedom(*c.protocol,
                                                              inputs, reduced);
      EXPECT_EQ(valency::liveness_verdict(off), valency::liveness_verdict(on))
          << c.label;

      valency::LivenessOptions reduced4 = reduced;
      reduced4.threads = 4;
      const auto on4 = valency::check_recoverable_wait_freedom(
          *c.protocol, inputs, reduced4);
      EXPECT_EQ(on4.stuck_pid, on.stuck_pid) << c.label;
      EXPECT_EQ(on4.reaching_schedule, on.reaching_schedule) << c.label;

      // The derandomized evidence is genuine: after the reaching schedule,
      // the reported pid really cannot decide solo.
      if (!on.wait_free && on.reaching_schedule.has_value()) {
        const auto er = rcons::exec::run_schedule(
            *c.protocol, rcons::exec::Config::initial(*c.protocol, inputs),
            *on.reaching_schedule);
        const auto decision = rcons::exec::solo_terminating_decision(
            *c.protocol, er.config, on.stuck_pid, plain.solo_step_bound);
        EXPECT_FALSE(decision.has_value())
            << c.label << ": pid " << on.stuck_pid << " decides after all";
      }
    }
  }
}

// Input-vector orbit reduction: the all-inputs driver skips non-canonical
// vectors exactly when reducing a symmetric protocol, and never otherwise.
TEST(ReductionDiff, DriverInputVectorsQuotientOnlyWhenSymmetric) {
  const rcons::algo::CasConsensus cas(3);
  const auto all = rcons::valency::driver_input_vectors(cas, false);
  const auto orbits = rcons::valency::driver_input_vectors(cas, true);
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(orbits.size(), 4u);  // 000, 001, 011, 111
  for (const auto& inputs : orbits) {
    EXPECT_TRUE(rcons::reduction::inputs_canonical(inputs));
  }

  struct Asymmetric : rcons::algo::CasConsensus {
    using CasConsensus::CasConsensus;
    bool process_symmetric() const override { return false; }
  };
  const Asymmetric pinned(3);
  EXPECT_EQ(rcons::valency::driver_input_vectors(pinned, true).size(), 8u);
}

}  // namespace
