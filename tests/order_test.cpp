// Tests for the certified simulation analysis and the implements-lattice
// (analysis/order, rules SA009-SA012, DESIGN.md §13): known-pair relations
// for each rule, independent re-validation of every emitted certificate,
// rejection of corrupted certificates, the 200-pair property sweep, the
// 300-seed differential proving lattice-implied brackets contain the exact
// verdicts, catalog consistency, lattice closure mechanics, verdict-cache
// seeding, and profile pruning through ProfileOptions::order_*.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analysis/order/certificate.hpp"
#include "analysis/order/lattice.hpp"
#include "analysis/order/simulation.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "reduction/type_canon.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/builder.hpp"
#include "spec/catalog.hpp"
#include "spec/serialize.hpp"
#include "trace/metrics.hpp"

namespace rcons::analysis::order {
namespace {

using rcons::hierarchy::ProfileOptions;
using rcons::hierarchy::TypeProfile;

const OrderRelation* find_relation(const OrderAnalysis& a, int high,
                                   int low) {
  for (const OrderRelation& r : a.relations) {
    if (r.high == high && r.low == low) return &r;
  }
  return nullptr;
}

bool exact_holds(const spec::ObjectType& type, const char* kind, int n) {
  return std::string(kind) == "discerning"
             ? hierarchy::check_discerning(type, n).holds
             : hierarchy::check_recording(type, n).holds;
}

std::int64_t counter(const char* name) {
  return rcons::trace::metrics().counter(name);
}

/// `base` plus one oblivious no-op (SA001's shape: a self-loop with one
/// constant fresh response at every value) — the pair shape that separates
/// the SA011 quotient route from the direct SA009 embedding.
spec::ObjectType with_oblivious_nop(const spec::ObjectType& base,
                                    const std::string& name) {
  spec::TypeBuilder b(name);
  for (spec::ValueId v = 0; v < base.value_count(); ++v) {
    b.value(base.value_name(v));
  }
  for (spec::OpId op = 0; op < base.op_count(); ++op) {
    b.op(base.op_name(op));
    for (spec::ValueId v = 0; v < base.value_count(); ++v) {
      const spec::Effect& e = base.apply(v, op);
      b.on(base.value_name(v), base.op_name(op))
          .then(base.value_name(e.next_value))
          .returns(base.response_name(e.response));
    }
  }
  b.op("nop");
  for (spec::ValueId v = 0; v < base.value_count(); ++v) {
    b.on(base.value_name(v), "nop").then(base.value_name(v)).returns("idle");
  }
  return b.build();
}

/// base x {0, 1} with base's ops acting on the first coordinate and the
/// second coordinate inert: the canonical SA012 projection source (drop
/// the extra coordinate).
spec::ObjectType product_with_bit(const spec::ObjectType& base,
                                  const std::string& name) {
  spec::TypeBuilder b(name);
  const auto pair_name = [&](spec::ValueId v, int bit) {
    return base.value_name(v) + "|" + std::to_string(bit);
  };
  for (int bit = 0; bit < 2; ++bit) {
    for (spec::ValueId v = 0; v < base.value_count(); ++v) {
      b.value(pair_name(v, bit));
    }
  }
  for (spec::OpId op = 0; op < base.op_count(); ++op) {
    b.op(base.op_name(op));
    for (int bit = 0; bit < 2; ++bit) {
      for (spec::ValueId v = 0; v < base.value_count(); ++v) {
        const spec::Effect& e = base.apply(v, op);
        b.on(pair_name(v, bit), base.op_name(op))
            .then(pair_name(e.next_value, bit))
            .returns(base.response_name(e.response));
      }
    }
  }
  return b.build();
}

spec::ObjectType reversed_relabel(const spec::ObjectType& type,
                                  const std::string& name) {
  reduction::TypeRelabeling perm = reduction::identity_relabeling(type);
  for (std::size_t i = 0; i < perm.value_perm.size(); ++i) {
    perm.value_perm[i] = static_cast<int>(perm.value_perm.size() - 1 - i);
  }
  return reduction::relabel_type(type, perm, name);
}

/// The SA012 witness pair: swap2 is a projection of cyc4 (drop the second
/// coordinate of a Z4 rotation) but does NOT embed into it — cyc4's f has
/// order 4, so no 2-cycle exists to host an injective image of swap2's f,
/// and cyc4's r is not a quotient-removable op.
spec::ObjectType make_swap2() {
  spec::TypeBuilder b("swap2");
  b.value("p");
  b.value("q");
  b.op("f");
  b.on("p", "f").then("q").returns("ok");
  b.on("q", "f").then("p").returns("ok");
  b.op("r");
  b.on("p", "r").then("p").returns("p");
  b.on("q", "r").then("q").returns("q");
  return b.build();
}

spec::ObjectType make_cyc4() {
  spec::TypeBuilder b("cyc4");
  for (const char* v : {"p0", "q0", "p1", "q1"}) b.value(v);
  b.op("f");
  b.on("p0", "f").then("q0").returns("ok");
  b.on("q0", "f").then("p1").returns("ok");
  b.on("p1", "f").then("q1").returns("ok");
  b.on("q1", "f").then("p0").returns("ok");
  b.op("r");  // first-coordinate read: constant on fibers, not a Read
  b.on("p0", "r").then("p0").returns("p");
  b.on("p1", "r").then("p1").returns("p");
  b.on("q0", "r").then("q0").returns("q");
  b.on("q1", "r").then("q1").returns("q");
  return b.build();
}

// ---- Known relations, one per rule --------------------------------------

TEST(OrderKnownRelations, SmallRegisterEmbedsIntoLargerRegister) {
  const spec::ObjectType r2 = spec::make_register(2);
  const spec::ObjectType r3 = spec::make_register(3);
  const OrderAnalysis a = analyze_order(r2, r3);
  ASSERT_EQ(a.relations.size(), 1u) << a.findings.render_text();
  const OrderRelation* rel = find_relation(a, 1, 0);  // register3 >= register2
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->cert.rule, "SA009");
  EXPECT_EQ(rel->cert.kind, CertKind::kEmbedding);
  EXPECT_TRUE(rel->cert.removed.empty());
  std::string why;
  EXPECT_TRUE(verify_certificate(r3, r2, rel->cert, &why)) << why;
  // No relation the other way: register2 can neither host an injective
  // image of register3's three values nor project onto more values than
  // it has.
  EXPECT_FALSE(a.related(0, 1));
  EXPECT_FALSE(a.budget_exhausted);
}

TEST(OrderKnownRelations, RelabeledTypeIsIsomorphicBothWays) {
  const spec::ObjectType cas = spec::make_cas(3);
  const spec::ObjectType relabeled = reversed_relabel(cas, "cas3_relabeled");
  const OrderAnalysis a = analyze_order(cas, relabeled);
  ASSERT_EQ(a.relations.size(), 2u) << a.findings.render_text();
  EXPECT_TRUE(a.related(0, 1));
  EXPECT_TRUE(a.related(1, 0));
  const spec::ObjectType* types[2] = {&cas, &relabeled};
  for (const OrderRelation& r : a.relations) {
    EXPECT_EQ(r.cert.rule, "SA010");
    EXPECT_EQ(r.cert.kind, CertKind::kEmbedding);
    std::string why;
    EXPECT_TRUE(
        verify_certificate(*types[r.high], *types[r.low], r.cert, &why))
        << why;
  }
}

TEST(OrderKnownRelations, QuotientRouteFiresOnlyAfterObliviousRemoval) {
  const spec::ObjectType r2 = spec::make_register(2);
  const spec::ObjectType nopped = with_oblivious_nop(r2, "register2_nop");
  const OrderAnalysis a = analyze_order(r2, nopped);
  ASSERT_EQ(a.relations.size(), 2u) << a.findings.render_text();
  // register2 simulates the nop-variant only through the SA001 quotient —
  // the oblivious nop has no direct image (no register2 op self-loops with
  // one constant response at every value)...
  const OrderRelation* quotient = find_relation(a, 0, 1);
  ASSERT_NE(quotient, nullptr);
  EXPECT_EQ(quotient->cert.rule, "SA011");
  ASSERT_EQ(quotient->cert.removed.size(), 1u);
  EXPECT_EQ(quotient->cert.removed[0].duplicate_of, spec::OpId{-1});
  std::string why;
  EXPECT_TRUE(verify_certificate(r2, nopped, quotient->cert, &why)) << why;
  // ...while the nop-variant hosts register2 verbatim (plain SA009).
  const OrderRelation* direct = find_relation(a, 1, 0);
  ASSERT_NE(direct, nullptr);
  EXPECT_EQ(direct->cert.rule, "SA009");
  EXPECT_TRUE(direct->cert.removed.empty());
  EXPECT_TRUE(verify_certificate(nopped, r2, direct->cert, &why)) << why;
}

TEST(OrderKnownRelations, ProjectionDecomposesAProductCycle) {
  const spec::ObjectType cyc4 = make_cyc4();
  const spec::ObjectType swap2 = make_swap2();
  const OrderAnalysis a = analyze_order(cyc4, swap2);
  ASSERT_EQ(a.relations.size(), 1u) << a.findings.render_text();
  const OrderRelation* rel = find_relation(a, 0, 1);  // cyc4 >= swap2
  ASSERT_NE(rel, nullptr);
  // The search only reaches the projection after the embedding and
  // quotient routes fail, so SA012 here certifies that the relation is
  // genuinely weaker than an embedding.
  EXPECT_EQ(rel->cert.rule, "SA012");
  EXPECT_EQ(rel->cert.kind, CertKind::kProjection);
  std::string why;
  EXPECT_TRUE(verify_certificate(cyc4, swap2, rel->cert, &why)) << why;
  EXPECT_FALSE(a.related(1, 0));
}

// ---- Certificate checker: corruption is rejected, never trusted ---------

TEST(OrderCertificates, CorruptedCertificatesAreRejected) {
  const spec::ObjectType r2 = spec::make_register(2);
  const spec::ObjectType r3 = spec::make_register(3);
  const OrderAnalysis a = analyze_order(r2, r3);
  const OrderRelation* rel = find_relation(a, 1, 0);
  ASSERT_NE(rel, nullptr);
  const SimulationCertificate good = rel->cert;
  ASSERT_TRUE(verify_certificate(r3, r2, good));

  {  // Out-of-range value image.
    SimulationCertificate c = good;
    c.value_map[0] = r3.value_count();
    std::string why;
    EXPECT_FALSE(verify_certificate(r3, r2, c, &why));
    EXPECT_FALSE(why.empty());
  }
  {  // Injectivity broken: two low values share an image.
    SimulationCertificate c = good;
    c.value_map[1] = c.value_map[0];
    EXPECT_FALSE(verify_certificate(r3, r2, c));
  }
  {  // Op image redirected: delta preservation must fail somewhere.
    SimulationCertificate c = good;
    c.op_map[0] = (c.op_map[0] + 1) % r3.op_count();
    EXPECT_FALSE(verify_certificate(r3, r2, c));
  }
  {  // A produced response unmapped.
    SimulationCertificate c = good;
    bool mutated = false;
    for (int& r : c.response_map) {
      if (r != -1) {
        r = -1;
        mutated = true;
        break;
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify_certificate(r3, r2, c));
  }
  {  // Kind flipped: the same maps cannot double as a projection.
    SimulationCertificate c = good;
    c.kind = CertKind::kProjection;
    EXPECT_FALSE(verify_certificate(r3, r2, c));
  }
  {  // A removal with a bogus justification: register ops are neither
     // oblivious nor duplicates, so the re-derived SA001 claim must fail.
    SimulationCertificate c = good;
    c.removed.push_back({spec::OpId{0}, spec::OpId{-1}});
    c.op_map[0] = -1;
    EXPECT_FALSE(verify_certificate(r3, r2, c));
  }
  {  // Degenerate certificate: empty maps on non-empty types.
    SimulationCertificate c;
    c.rule = "SA009";
    std::string why;
    EXPECT_FALSE(verify_certificate(r3, r2, c, &why));
    EXPECT_FALSE(why.empty());
  }
}

// The SA002 (duplicate-op) removal justification, accepted and then
// broken every way the checker distinguishes.
TEST(OrderCertificates, DuplicateRemovalJustificationsAreReDerived) {
  const spec::ObjectType r2 = spec::make_register(2);
  // register2 plus two verbatim copies of op 0: SA002 removals.
  spec::TypeBuilder b("register2_dups");
  for (spec::ValueId v = 0; v < r2.value_count(); ++v) {
    b.value(r2.value_name(v));
  }
  for (spec::OpId op = 0; op < r2.op_count(); ++op) b.op(r2.op_name(op));
  b.op("copy_a");
  b.op("copy_b");
  for (spec::ValueId v = 0; v < r2.value_count(); ++v) {
    for (spec::OpId op = 0; op < r2.op_count(); ++op) {
      const spec::Effect& e = r2.apply(v, op);
      b.on(r2.value_name(v), r2.op_name(op))
          .then(r2.value_name(e.next_value))
          .returns(r2.response_name(e.response));
    }
    const spec::Effect& e0 = r2.apply(v, 0);
    for (const char* copy : {"copy_a", "copy_b"}) {
      b.on(r2.value_name(v), copy)
          .then(r2.value_name(e0.next_value))
          .returns(r2.response_name(e0.response));
    }
  }
  const spec::ObjectType dups = b.build();
  const spec::OpId copy_a = *dups.find_op("copy_a");
  const spec::OpId copy_b = *dups.find_op("copy_b");

  SimulationCertificate good;
  good.rule = "SA011";
  good.kind = CertKind::kEmbedding;
  good.removed = {{copy_a, spec::OpId{0}}, {copy_b, spec::OpId{0}}};
  good.value_map.resize(static_cast<std::size_t>(r2.value_count()));
  for (int v = 0; v < r2.value_count(); ++v) good.value_map[v] = v;
  good.op_map.assign(static_cast<std::size_t>(dups.op_count()), -1);
  for (spec::OpId op = 0; op < r2.op_count(); ++op) good.op_map[op] = op;
  good.response_map.resize(static_cast<std::size_t>(dups.response_count()));
  for (int r = 0; r < dups.response_count(); ++r) {
    good.response_map[static_cast<std::size_t>(r)] = r;
  }
  std::string why;
  ASSERT_TRUE(verify_certificate(r2, dups, good, &why)) << why;

  {  // Removed op id out of range.
    SimulationCertificate c = good;
    c.removed[0].op = dups.op_count();
    EXPECT_FALSE(verify_certificate(r2, dups, c));
  }
  {  // The same op removed twice.
    SimulationCertificate c = good;
    c.removed[1] = c.removed[0];
    EXPECT_FALSE(verify_certificate(r2, dups, c));
  }
  {  // duplicate_of out of range / self-referential.
    SimulationCertificate c = good;
    c.removed[0].duplicate_of = dups.op_count();
    EXPECT_FALSE(verify_certificate(r2, dups, c));
    c.removed[0].duplicate_of = c.removed[0].op;
    EXPECT_FALSE(verify_certificate(r2, dups, c));
  }
  {  // Claimed twin has different rows (copy_a does not duplicate op 1).
    SimulationCertificate c = good;
    c.removed[0].duplicate_of = spec::OpId{1};
    std::string reason;
    EXPECT_FALSE(verify_certificate(r2, dups, c, &reason));
    EXPECT_FALSE(reason.empty());
  }
  {  // duplicate_of pointing at an op that is itself removed.
    SimulationCertificate c = good;
    c.removed[1].duplicate_of = copy_a;
    EXPECT_FALSE(verify_certificate(r2, dups, c));
  }
  {  // Map-shape rejections the register pair above cannot reach.
    SimulationCertificate c = good;
    c.response_map.pop_back();
    EXPECT_FALSE(verify_certificate(r2, dups, c));
    c = good;
    c.value_map.pop_back();
    EXPECT_FALSE(verify_certificate(r2, dups, c));
  }
  // The removal list is part of the serialized certificate.
  const std::string json = certificate_json(good);
  EXPECT_NE(json.find("\"removed\":[{\"op\":"), std::string::npos);
  EXPECT_NE(json.find("\"duplicate_of\":0"), std::string::npos);
}

TEST(OrderCertificates, ProjectionCorruptionsAreRejected) {
  const spec::ObjectType cyc4 = make_cyc4();
  const spec::ObjectType swap2 = make_swap2();
  const OrderAnalysis a = analyze_order(cyc4, swap2);
  const OrderRelation* rel = find_relation(a, 0, 1);
  ASSERT_NE(rel, nullptr);
  const SimulationCertificate good = rel->cert;
  ASSERT_EQ(good.kind, CertKind::kProjection);

  {  // Out-of-range fiber image.
    SimulationCertificate c = good;
    c.value_map[0] = swap2.value_count();
    EXPECT_FALSE(verify_certificate(cyc4, swap2, c));
  }
  {  // Surjectivity broken: every high value lands on one low value.
    SimulationCertificate c = good;
    c.value_map.assign(c.value_map.size(), 0);
    std::string why;
    EXPECT_FALSE(verify_certificate(cyc4, swap2, c, &why));
    EXPECT_NE(why.find("surjective"), std::string::npos) << why;
  }
  {  // A produced response left unmapped.
    SimulationCertificate c = good;
    bool mutated = false;
    for (int& r : c.response_map) {
      if (r != -1) {
        r = -1;
        mutated = true;
        break;
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(verify_certificate(cyc4, swap2, c));
  }
  {  // Op image redirected: the dual delta condition must fail somewhere.
    SimulationCertificate c = good;
    c.op_map[0] = (c.op_map[0] + 1) % cyc4.op_count();
    EXPECT_FALSE(verify_certificate(cyc4, swap2, c));
  }
}

TEST(OrderCertificates, DegenerateTypesAndTotalRemovalAreRejected) {
  const spec::ObjectType r2 = spec::make_register(2);
  {  // Empty types carry no witnesses at all.
    const spec::ObjectType empty;
    SimulationCertificate c;
    c.rule = "SA009";
    std::string why;
    EXPECT_FALSE(verify_certificate(empty, r2, c, &why));
    EXPECT_FALSE(verify_certificate(r2, empty, c, &why));
    EXPECT_FALSE(why.empty());
  }
  {  // Removing every low op leaves nothing to map a witness onto.
    spec::TypeBuilder b("all_oblivious");
    b.value("a");
    b.value("b");
    b.op("nop");
    b.on("a", "nop").then("a").returns("idle");
    b.on("b", "nop").then("b").returns("idle");
    const spec::ObjectType low = b.build();
    SimulationCertificate c;
    c.rule = "SA011";
    c.removed = {{spec::OpId{0}, spec::OpId{-1}}};
    c.value_map = {0, 1};
    c.op_map = {-1};
    c.response_map = {-1};
    std::string why;
    EXPECT_FALSE(verify_certificate(r2, low, c, &why));
    EXPECT_NE(why.find("kept"), std::string::npos) << why;
  }
}

// ---- Property sweep: 200 random pairs -----------------------------------

// Every certificate the search emits re-validates through the independent
// checker, and an out-of-range mutation of any map is rejected. Mutations
// are driven OUT of range deliberately: redirecting a map within range can
// accidentally land on another valid witness of a symmetric machine, so
// only out-of-range corruption makes rejection unconditional.
TEST(OrderProperty, RandomPairCertificatesVerifyAndMutationsAreRejected) {
  constexpr int kPairs = 200;
  int relations_seen = 0;
  for (int seed = 1; seed <= kPairs; ++seed) {
    const spec::ObjectType base = hierarchy::random_readable_type(
        4, 2, 3, static_cast<std::uint64_t>(seed));
    // Random independent pairs almost never relate; derive the partner
    // from the base by a seed-selected transformation that guarantees the
    // search has something to certify (isomorph / oblivious extension /
    // product), and keep one independent pair in the mix as a negative.
    spec::ObjectType other;
    switch (seed % 4) {
      case 0:
        other = reversed_relabel(base, "relabeled");
        break;
      case 1:
        other = with_oblivious_nop(base, "nopped");
        break;
      case 2:
        other = product_with_bit(base, "product");
        break;
      default:
        other = hierarchy::random_readable_type(
            4, 2, 3, static_cast<std::uint64_t>(seed + 10000));
        break;
    }
    const OrderAnalysis analysis = analyze_order(base, other);
    if (seed % 4 != 3) {
      EXPECT_FALSE(analysis.relations.empty())
          << "seed " << seed << " lost its constructed relation\n"
          << spec::serialize_type(base) << spec::serialize_type(other);
    }
    const spec::ObjectType* types[2] = {&base, &other};
    for (const OrderRelation& r : analysis.relations) {
      ++relations_seen;
      const spec::ObjectType& high = *types[r.high];
      const spec::ObjectType& low = *types[r.low];
      std::string why;
      EXPECT_TRUE(verify_certificate(high, low, r.cert, &why))
          << "seed " << seed << " rule " << r.cert.rule << ": " << why;

      SimulationCertificate bad_value = r.cert;
      ASSERT_FALSE(bad_value.value_map.empty());
      bad_value.value_map[0] = high.value_count() + low.value_count();
      EXPECT_FALSE(verify_certificate(high, low, bad_value))
          << "seed " << seed;
      SimulationCertificate bad_op = r.cert;
      for (int& op : bad_op.op_map) {
        if (op != -1) {
          op = high.op_count();
          break;
        }
      }
      EXPECT_FALSE(verify_certificate(high, low, bad_op)) << "seed " << seed;
      SimulationCertificate bad_response = r.cert;
      bad_response.response_map.assign(bad_response.response_map.size(),
                                       high.response_count());
      EXPECT_FALSE(verify_certificate(high, low, bad_response))
          << "seed " << seed;
    }
  }
  EXPECT_GT(relations_seen, 0);
}

// ---- 300-seed differential ----------------------------------------------

// The acceptance gate for lattice-driven pruning: feed node 0's EXACT
// per-n verdicts into the lattice, then demand that every per-n verdict
// the closure derives for node 1 agrees with node 1's own exact checker
// verdict. Pairs are constructed to relate (isomorph / oblivious
// extension / product) so both propagation directions — holds up to
// dominators, fails down to the dominated — fire across the sweep.
TEST(OrderDifferential, ImpliedBracketsContainExactVerdicts) {
  constexpr int kSeeds = 300;
  constexpr int kMaxN = 3;
  int decided = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const spec::ObjectType base = hierarchy::random_readable_type(
        4, 2, 3, static_cast<std::uint64_t>(seed));
    spec::ObjectType other;
    switch (seed % 3) {
      case 0:
        other = reversed_relabel(base, "relabeled");
        break;
      case 1:
        other = with_oblivious_nop(base, "nopped");
        break;
      default:
        other = product_with_bit(base, "product");
        break;
    }
    OrderLattice lattice;
    lattice.add_type(base);
    lattice.add_type(other);
    ASSERT_GT(lattice.relate_all(), 0) << "seed " << seed;
    for (const char* kind : {"discerning", "recording"}) {
      for (int n = 2; n <= kMaxN; ++n) {
        lattice.note_verdict(0, kind, n, exact_holds(base, kind, n));
      }
      const LevelBracket bracket = lattice.implied(1, kind);
      for (int n = 2; n <= kMaxN; ++n) {
        if (!bracket.decides(n)) continue;
        ++decided;
        EXPECT_EQ(bracket.verdict(n), exact_holds(other, kind, n))
            << "seed " << seed << " kind " << kind << " n " << n << " by "
            << bracket.decided_by(n) << "\n"
            << spec::serialize_type(base) << spec::serialize_type(other);
      }
    }
  }
  // The differential is vacuous unless the closure actually decides
  // verdicts across the sweep.
  EXPECT_GT(decided, kSeeds);
}

// ---- Catalog consistency ------------------------------------------------

// No fact the lattice derives over the shipped catalog may contradict the
// catalog's explored profiles — the cross-check `order --all` rests on.
TEST(OrderCatalog, DerivedFactsAgreeWithExploredCatalogProfiles) {
  constexpr int kMaxN = 3;
  const std::vector<spec::ObjectType> types = {
      spec::make_register(2),         spec::make_register(3),
      spec::make_test_and_set(),      spec::make_sticky_bit(),
      spec::make_consensus_object(2), spec::make_cas(2)};
  OrderLattice lattice;
  for (const spec::ObjectType& t : types) lattice.add_type(t);
  EXPECT_GT(lattice.relate_all(), 0);
  std::vector<TypeProfile> profiles;
  profiles.reserve(types.size());
  for (int i = 0; i < lattice.size(); ++i) {
    profiles.push_back(hierarchy::compute_profile(lattice.type(i), kMaxN));
    lattice.note_profile(i, profiles.back(), kMaxN);
  }
  for (int i = 0; i < lattice.size(); ++i) {
    for (const char* kind : {"discerning", "recording"}) {
      const LevelBracket bracket = lattice.implied(i, kind);
      const hierarchy::Level level = std::string(kind) == "discerning"
                                         ? profiles[i].discerning
                                         : profiles[i].recording;
      for (int n = 2; n <= kMaxN; ++n) {
        if (!bracket.decides(n)) continue;
        EXPECT_EQ(bracket.verdict(n), n <= level.value)
            << lattice.name(i) << " " << kind << " n " << n << " by "
            << bracket.decided_by(n);
      }
    }
  }
}

// ---- Lattice mechanics --------------------------------------------------

TEST(OrderLatticeMechanics, InvalidCertificatesAreRefusedAtIntake) {
  OrderLattice lattice;
  lattice.add_type(spec::make_register(3));
  lattice.add_type(spec::make_register(2));
  SimulationCertificate bogus;
  bogus.rule = "SA009";
  bogus.kind = CertKind::kEmbedding;
  bogus.value_map = {0, 0};  // not injective
  bogus.op_map.assign(
      static_cast<std::size_t>(spec::make_register(2).op_count()), 0);
  bogus.response_map.assign(
      static_cast<std::size_t>(spec::make_register(2).response_count()), 0);
  EXPECT_FALSE(lattice.add_relation(0, 1, bogus));
  EXPECT_TRUE(lattice.edges().empty());
  EXPECT_FALSE(lattice.dominates(0, 1));
}

TEST(OrderLatticeMechanics, DominanceClosesTransitivelyAndFlowsBothWays) {
  const spec::ObjectType r2 = spec::make_register(2);
  const spec::ObjectType r3 = spec::make_register(3);
  const spec::ObjectType r4 = spec::make_register(4);
  OrderLattice lattice;
  const int n2 = lattice.add_type(r2);
  const int n3 = lattice.add_type(r3);
  const int n4 = lattice.add_type(r4);
  // Install only the adjacent hops; r4 >= r2 must follow by closure.
  const OrderAnalysis a32 = analyze_order(r3, r2);
  const OrderAnalysis a43 = analyze_order(r4, r3);
  const OrderRelation* hop32 = find_relation(a32, 0, 1);
  const OrderRelation* hop43 = find_relation(a43, 0, 1);
  ASSERT_NE(hop32, nullptr);
  ASSERT_NE(hop43, nullptr);
  ASSERT_TRUE(lattice.add_relation(n3, n2, hop32->cert));
  ASSERT_TRUE(lattice.add_relation(n4, n3, hop43->cert));
  ASSERT_EQ(lattice.edges().size(), 2u);
  EXPECT_TRUE(lattice.dominates(n4, n2));
  EXPECT_FALSE(lattice.dominates(n2, n4));
  EXPECT_TRUE(lattice.dominates(n2, n2));  // reflexive by definition

  // Verdicts flow the full path: holds at r2 lifts to r4 through two
  // certified hops, with provenance naming the edge adjacent to the
  // queried node.
  lattice.note_verdict(n2, "discerning", 2, true);
  const LevelBracket up = lattice.implied(n4, "discerning");
  EXPECT_TRUE(up.decides(2));
  EXPECT_TRUE(up.verdict(2));
  EXPECT_EQ(up.decided_by(2), "SA009");
  // And a failure at r4 caps everything it dominates.
  lattice.note_verdict(n4, "recording", 3, false);
  const LevelBracket down = lattice.implied(n2, "recording");
  EXPECT_TRUE(down.decides(3));
  EXPECT_FALSE(down.verdict(3));
  // The wrong directions must NOT flow: r2 holding says nothing about the
  // nodes it is dominated by being dominated, and r4 failing says nothing
  // about its dominators.
  EXPECT_FALSE(lattice.implied(n2, "discerning").decides(2));
  EXPECT_FALSE(lattice.implied(n4, "recording").decides(3));
}

TEST(OrderLatticeMechanics, ImpliedExcludesTheNodeItself) {
  OrderLattice lattice;
  lattice.add_type(spec::make_register(2));
  lattice.add_type(spec::make_consensus_object(2));  // unrelated pair
  EXPECT_EQ(lattice.relate_all(), 0);
  lattice.note_verdict(0, "discerning", 2, true);
  // A node's own verdicts must not feed back into its own bracket — the
  // bracket exists to prune that node's exploration, which must never
  // consume its own output.
  EXPECT_FALSE(lattice.implied(0, "discerning").decides(2));
  // And with no edges, nothing reaches the other node either.
  EXPECT_FALSE(lattice.implied(1, "discerning").decides(2));
}

TEST(OrderLatticeMechanics, ParallelEdgesDedupeToTheFirstCertificate) {
  const spec::ObjectType r2 = spec::make_register(2);
  const spec::ObjectType r3 = spec::make_register(3);
  OrderLattice lattice;
  const int low = lattice.add_type(r2);
  const int high = lattice.add_type(r3);
  const OrderAnalysis a = analyze_order(r3, r2);
  const OrderRelation* hop = find_relation(a, 0, 1);
  ASSERT_NE(hop, nullptr);
  ASSERT_TRUE(lattice.add_relation(high, low, hop->cert));
  // A second certificate for the same ordered pair is dropped — one
  // certified hop suffices for every consumer.
  EXPECT_FALSE(lattice.add_relation(high, low, hop->cert));
  EXPECT_EQ(lattice.edges().size(), 1u);
}

// ---- Verdict-cache seeding ----------------------------------------------

TEST(OrderLatticeCache, PropagateSeedsProfileKeysWithoutOverwriting) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("rcons-order-cache-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const reduction::VerdictCache cache(dir);

  OrderLattice lattice;
  const int low = lattice.add_type(spec::make_cas(2));
  const int high = lattice.add_type(spec::make_cas(3));
  ASSERT_GT(lattice.relate_all(), 0);
  ASSERT_TRUE(lattice.dominates(high, low));
  lattice.note_verdict(low, "discerning", 2, true);

  // Pre-seed the implied key with a sentinel: propagate is lookup-then-
  // store, like the bounds seeding, and must never clobber an entry.
  const std::string key = hierarchy::verdict_cache_key(
      "discerning", 2, lattice.canon_key(high));
  cache.store(key, "holds=1|by=sentinel");
  EXPECT_EQ(lattice.propagate(cache, 3), 0);
  EXPECT_EQ(cache.lookup(key).value_or(""), "holds=1|by=sentinel");

  // With the sentinel gone, propagate writes the derived fact under the
  // exact key the profile scans read back, tagged by the certifying rule.
  std::filesystem::remove_all(dir);
  EXPECT_EQ(lattice.propagate(cache, 3), 1);
  EXPECT_EQ(cache.lookup(key).value_or(""), "holds=1|by=SA009");
  std::filesystem::remove_all(dir);
}

// ---- Profile pruning through ProfileOptions::order_* --------------------

TEST(OrderPruning, LatticePrunedProfilesMatchPlainProfiles) {
  constexpr int kMaxN = 3;
  const spec::ObjectType cas2 = spec::make_cas(2);
  const spec::ObjectType cas3 = spec::make_cas(3);
  OrderLattice lattice;
  const int low = lattice.add_type(cas2);
  const int high = lattice.add_type(cas3);
  ASSERT_GT(lattice.relate_all(), 0);
  lattice.note_profile(low, hierarchy::compute_profile(cas2, kMaxN), kMaxN);

  const TypeProfile plain = hierarchy::compute_profile(cas3, kMaxN);
  const LevelBracket discerning = lattice.implied(high, "discerning");
  const LevelBracket recording = lattice.implied(high, "recording");
  ASSERT_TRUE(discerning.decides(2))
      << "cas2 holds at n = 2, so the edge must decide cas3 at n = 2";
  ProfileOptions options;
  options.order_discerning = &discerning;
  options.order_recording = &recording;
  const std::int64_t pruned_before =
      counter("order.pruned_lo") + counter("order.pruned_hi");
  const TypeProfile pruned = hierarchy::compute_profile(cas3, kMaxN, options);
  EXPECT_EQ(pruned.discerning, plain.discerning);
  EXPECT_EQ(pruned.recording, plain.recording);
  EXPECT_GT(counter("order.pruned_lo") + counter("order.pruned_hi"),
            pruned_before)
      << "the order brackets must actually skip decider runs";
}

// ---- Determinism --------------------------------------------------------

TEST(OrderDeterminism, RepeatedAnalysesRenderIdentically) {
  const spec::ObjectType a = spec::make_cas(3);
  const spec::ObjectType b = spec::make_register(3);
  const OrderAnalysis first = analyze_order(a, b);
  const OrderAnalysis second = analyze_order(a, b);
  ASSERT_EQ(first.relations.size(), second.relations.size());
  for (std::size_t i = 0; i < first.relations.size(); ++i) {
    EXPECT_EQ(first.relations[i].cert, second.relations[i].cert);
  }
  EXPECT_EQ(first.findings.render_text(), second.findings.render_text());
  EXPECT_EQ(first.nodes_explored, second.nodes_explored);

  const auto build = [&] {
    OrderLattice lattice;
    lattice.add_type(a);
    lattice.add_type(b);
    lattice.relate_all();
    return lattice.dominance_json() + "\n" + lattice.dominance_dot();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace rcons::analysis::order
