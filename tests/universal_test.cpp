// Tests for the recoverable universal construction (runtime/universal):
// sequential semantics, linearizability under contention, recoverable
// re-invocation (detectability), and crash-storm stress.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/history.hpp"
#include "runtime/universal.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "util/rng.hpp"

namespace rcons::runtime {
namespace {

TEST(Universal, SequentialSemanticsMatchDirectApplication) {
  const spec::ObjectType q = spec::make_queue(2);
  PersistentArena arena;
  UniversalObject obj(q, *q.find_value("[]"), arena, 16);

  const spec::OpId enq_a = *q.find_op("enq_a");
  const spec::OpId enq_b = *q.find_op("enq_b");
  const spec::OpId deq = *q.find_op("deq");

  EXPECT_EQ(q.response_name(obj.apply(enq_a, 0, 1)), "ok");
  EXPECT_EQ(q.response_name(obj.apply(enq_b, 0, 2)), "ok");
  EXPECT_EQ(q.response_name(obj.apply(deq, 1, 1)), "got_a");
  EXPECT_EQ(q.response_name(obj.apply(deq, 1, 2)), "got_b");
  EXPECT_EQ(q.response_name(obj.apply(deq, 0, 3)), "empty");
  EXPECT_EQ(q.value_name(obj.current_value()), "[]");
  EXPECT_EQ(obj.log_length(), 5);
}

TEST(Universal, ReinvocationIsIdempotent) {
  // Detectability: re-applying the same (pid, seq) — the post-crash path —
  // returns the original response and does not linearize again.
  const spec::ObjectType tas = spec::make_test_and_set();
  PersistentArena arena;
  UniversalObject obj(tas, *tas.find_value("0"), arena, 8);
  const spec::OpId op = *tas.find_op("tas");

  const auto first = obj.apply(op, 3, 7);
  EXPECT_EQ(tas.response_name(first), "won");
  for (int retry = 0; retry < 5; ++retry) {
    EXPECT_EQ(obj.apply(op, 3, 7), first);
  }
  EXPECT_EQ(obj.log_length(), 1);
  EXPECT_TRUE(obj.is_applied(3, 7));
  EXPECT_FALSE(obj.is_applied(3, 8));
  // A genuinely new operation still linearizes.
  EXPECT_EQ(tas.response_name(obj.apply(op, 4, 1)), "lost");
  EXPECT_EQ(obj.log_length(), 2);
}

TEST(Universal, IsAppliedAnswersTheDetectabilityQuery) {
  const spec::ObjectType reg = spec::make_register(2);
  PersistentArena arena;
  UniversalObject obj(reg, *reg.find_value("r0"), arena, 8);
  EXPECT_FALSE(obj.is_applied(0, 1));
  obj.apply(*reg.find_op("write_1"), 0, 1);
  EXPECT_TRUE(obj.is_applied(0, 1));
}

TEST(Universal, ConcurrentTasThroughUniversalHasOneWinner) {
  const spec::ObjectType tas = spec::make_test_and_set();
  const spec::OpId op = *tas.find_op("tas");
  const spec::ResponseId won = *tas.find_response("won");
  for (int round = 0; round < 30; ++round) {
    PersistentArena arena;
    UniversalObject obj(tas, *tas.find_value("0"), arena, 16);
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        if (obj.apply(op, t, 1) == won) winners.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(winners.load(), 1) << "round " << round;
    EXPECT_EQ(obj.log_length(), 4);
  }
}

TEST(Universal, ContendedHistoriesAreLinearizable) {
  const spec::ObjectType tnn = spec::make_tnn(6, 3);
  for (int round = 0; round < 15; ++round) {
    PersistentArena arena;
    UniversalObject obj(tnn, *tnn.find_value("s"), arena, 32);
    HistoryRecorder recorder;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const spec::OpId ops[3] = {*tnn.find_op("op_0"), *tnn.find_op("op_1"),
                                   *tnn.find_op("op_R")};
        for (std::uint64_t i = 0; i < 3; ++i) {
          const spec::OpId op = ops[(t + i) % 3];
          const std::uint64_t ts = recorder.begin();
          const spec::ResponseId r = obj.apply(op, t, i);
          recorder.finish(t, op, r, ts);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_TRUE(is_linearizable(tnn, *tnn.find_value("s"), recorder.take()))
        << "round " << round;
  }
}

TEST(Universal, CrashStormWithRetriesStaysConsistent) {
  // Threads "crash" (abandon the call) at random points and re-invoke with
  // the SAME seq, mimicking the recovery path. Every operation id must end
  // up applied exactly once and the final value must equal the replay of
  // the log.
  const spec::ObjectType faa = spec::make_fetch_and_add(64);
  const spec::OpId op = *faa.find_op("faa");
  PersistentArena arena;
  UniversalObject obj(faa, *faa.find_value("c0"), arena, 64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      for (std::uint64_t seq = 0; seq < 8; ++seq) {
        spec::ResponseId first_response = -1;
        // Retry loop: each iteration is an invocation; "crash" = retry.
        for (int attempt = 0; attempt < 4; ++attempt) {
          const spec::ResponseId r = obj.apply(op, t, seq);
          if (first_response < 0) {
            first_response = r;
          } else {
            EXPECT_EQ(r, first_response) << "non-idempotent re-invocation";
          }
          if (!rng.chance(0.5)) break;  // no crash this time
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(obj.log_length(), 32);  // 4 threads x 8 ops, once each
  EXPECT_EQ(faa.value_name(obj.current_value()), "c32");
}

TEST(Universal, LogFullAborts) {
  const spec::ObjectType tas = spec::make_test_and_set();
  PersistentArena arena;
  UniversalObject obj(tas, *tas.find_value("0"), arena, 2);
  obj.apply(*tas.find_op("tas"), 0, 1);
  obj.apply(*tas.find_op("tas"), 0, 2);
  EXPECT_DEATH(obj.apply(*tas.find_op("tas"), 0, 3), "universal log full");
}

}  // namespace
}  // namespace rcons::runtime
