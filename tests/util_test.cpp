// Unit tests for src/util: combinatorics, RNG determinism, hashing,
// strings, the table renderer, the thread pool, and the sharded min-map.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <unordered_set>
#include <vector>

#include "util/combinatorics.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/sharded_set.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rcons {
namespace {

TEST(Combinatorics, FactorialSmallValues) {
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(1), 1u);
  EXPECT_EQ(factorial(5), 120u);
  EXPECT_EQ(factorial(10), 3628800u);
  EXPECT_EQ(factorial(20), 2432902008176640000ULL);
}

TEST(Combinatorics, BinomialBasics) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 6), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Combinatorics, OrderedSubsetCountMatchesFormula) {
  // |S(P)| = sum_k C(n,k) k!: 1, 2, 5, 16, 65, 326, 1957 (OEIS A000522).
  EXPECT_EQ(ordered_subset_count(0), 1u);
  EXPECT_EQ(ordered_subset_count(1), 2u);
  EXPECT_EQ(ordered_subset_count(2), 5u);
  EXPECT_EQ(ordered_subset_count(3), 16u);
  EXPECT_EQ(ordered_subset_count(4), 65u);
  EXPECT_EQ(ordered_subset_count(5), 326u);
  EXPECT_EQ(ordered_subset_count(6), 1957u);
}

TEST(Combinatorics, OrderedSubsetEnumerationIsExactAndDistinct) {
  for (unsigned n = 0; n <= 5; ++n) {
    std::set<std::vector<int>> seen;
    for_each_ordered_subset(n, [&](const std::vector<int>& s) {
      EXPECT_TRUE(seen.insert(s).second) << "duplicate sequence";
      std::set<int> members(s.begin(), s.end());
      EXPECT_EQ(members.size(), s.size()) << "repeated process in sequence";
    });
    EXPECT_EQ(seen.size(), ordered_subset_count(n));
  }
}

TEST(Combinatorics, SubsetEnumerationCountsPowerSet) {
  int count = 0;
  for_each_subset(4, [&](const std::vector<int>&) { ++count; });
  EXPECT_EQ(count, 16);
}

TEST(Combinatorics, PermutationEnumeration) {
  std::set<std::vector<int>> seen;
  for_each_permutation({2, 0, 1}, [&](const std::vector<int>& p) {
    seen.insert(p);
  });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Combinatorics, MultisetEnumerationCountsStarsAndBars) {
  // Multisets of size k from m symbols: C(m+k-1, k).
  for (unsigned m = 1; m <= 4; ++m) {
    for (unsigned k = 0; k <= 4; ++k) {
      std::uint64_t count = 0;
      for_each_multiset(m, k, [&](const std::vector<int>& ms) {
        ++count;
        for (std::size_t i = 1; i < ms.size(); ++i) {
          EXPECT_LE(ms[i - 1], ms[i]) << "multiset not sorted";
        }
      });
      EXPECT_EQ(count, binomial(m + k - 1, k)) << "m=" << m << " k=" << k;
    }
  }
}

TEST(Combinatorics, AssignmentEnumerationCountsPower) {
  std::uint64_t count = 0;
  for_each_assignment(3, 4, [&](const std::vector<int>&) { ++count; });
  EXPECT_EQ(count, 81u);
}

TEST(Combinatorics, BipartitionCounts) {
  // Ordered: 2^n - 2 (all nonempty/nonfull masks). Unordered: half.
  int ordered = 0;
  for_each_bipartition(4, true, [&](const std::vector<int>&) { ++ordered; });
  EXPECT_EQ(ordered, 14);
  int unordered = 0;
  for_each_bipartition(4, false, [&](const std::vector<int>& team_of) {
    EXPECT_EQ(team_of[0], 0) << "canonical orientation pins p0 to team 0";
    ++unordered;
  });
  EXPECT_EQ(unordered, 7);
}

TEST(Combinatorics, BipartitionTeamsNonempty) {
  for_each_bipartition(3, true, [&](const std::vector<int>& team_of) {
    int t0 = 0;
    int t1 = 0;
    for (int t : team_of) (t == 0 ? t0 : t1)++;
    EXPECT_GE(t0, 1);
    EXPECT_GE(t1, 1);
  });
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, SeedZeroExpandsThroughSplitMix) {
  // Seed 0 must not degenerate: the internal state is the SplitMix64
  // expansion of the seed (nonzero), not the raw seed copied into the
  // words — an all-zero state would make xoshiro emit zeros forever.
  Xoshiro256 rng(0);
  SplitMix64 sm(0);
  const auto& s = rng.state();
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], sm.next()) << "state word " << i;
  }
  EXPECT_FALSE(s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0);
  const std::uint64_t a = rng.next();
  const std::uint64_t b = rng.next();
  EXPECT_FALSE(a == 0 && b == 0);
  EXPECT_NE(a, b);
}

TEST(Rng, ReseedWhileFreshMatchesFreshConstruction) {
  Xoshiro256 reseeded(1);
  EXPECT_TRUE(reseeded.fresh());
  reseeded.reseed(42);
  Xoshiro256 fresh(42);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(reseeded.next(), fresh.next());
  }
  EXPECT_FALSE(reseeded.fresh());
}

TEST(RngDeathTest, ReseedAfterDrawIsRejected) {
  // Mid-run reseeding silently breaks single-seed reproducibility (every
  // consumer logs one seed per run), so it is a checked error.
  Xoshiro256 rng(3);
  (void)rng.next();
  EXPECT_DEATH(rng.reseed(4), "reseed");
}

TEST(Hashing, VectorHashDistinguishesContentAndLength) {
  EXPECT_NE(hash_vector(std::vector<int>{1, 2, 3}),
            hash_vector(std::vector<int>{1, 2, 4}));
  EXPECT_NE(hash_vector(std::vector<int>{1, 2}),
            hash_vector(std::vector<int>{1, 2, 0}));
  EXPECT_EQ(hash_vector(std::vector<int>{5, 6}),
            hash_vector(std::vector<int>{5, 6}));
}

TEST(Hashing, FewCollisionsOnSmallVectors) {
  std::unordered_set<std::uint64_t> hashes;
  int total = 0;
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int c = 0; c < 16; ++c) {
        hashes.insert(hash_vector(std::vector<int>{a, b, c}));
        ++total;
      }
    }
  }
  EXPECT_EQ(static_cast<int>(hashes.size()), total);
}

TEST(Strings, JoinAndSplitRoundTrip) {
  const std::vector<std::string> items{"a", "bb", "", "c"};
  EXPECT_EQ(join(items, ","), "a,bb,,c");
  EXPECT_EQ(split("a,bb,,c", ','), items);
}

TEST(Strings, JoinInts) {
  EXPECT_EQ(join_ints({1, 2, 3}, " "), "1 2 3");
  EXPECT_EQ(join_ints({}, " "), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcde", 3), "abc");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"type", "cons", "rcons"});
  t.add_row({"test_and_set", "2", "1"});
  t.add_row({"cas3", ">= 6", ">= 6"});
  const std::string out = t.render();
  EXPECT_NE(out.find("test_and_set"), std::string::npos);
  EXPECT_NE(out.find(">= 6"), std::string::npos);
  // Every rendered line has equal width.
  std::size_t width = std::string::npos;
  for (const auto& line : split(out, '\n')) {
    if (line.empty()) continue;
    if (width == std::string::npos) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Parallel, HardwareThreadsIsPositive) {
  EXPECT_GE(util::hardware_threads(), 1);
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, 1,
                    [&](std::size_t chunk, std::size_t begin,
                        std::size_t end) {
    EXPECT_LT(chunk, pool.chunk_count(kCount, 1));
    EXPECT_LE(begin, end);
    EXPECT_LE(end, kCount);
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, ParallelForOnEmptyRangeNeverInvokesBody) {
  util::ThreadPool pool(3);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 1, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(Parallel, ChunkingIsAPureFunctionOfCountAndThreads) {
  // Deterministic reductions index per-chunk buffers, so the chunk
  // geometry must not depend on runtime scheduling.
  util::ThreadPool a(4);
  util::ThreadPool b(4);
  for (const std::size_t count : {1u, 7u, 64u, 1000u, 4097u}) {
    EXPECT_EQ(a.chunk_count(count, 1), b.chunk_count(count, 1));
    EXPECT_EQ(a.chunk_size(count, 1), b.chunk_size(count, 1));
    EXPECT_GE(a.chunk_size(count, 1) * a.chunk_count(count, 1), count);
  }
}

TEST(Parallel, SubmitAndWaitIdleRunsEveryTask) {
  util::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(Parallel, SingleThreadPoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::size_t covered = 0;
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t begin,
                               std::size_t end) {
    covered += end - begin;
  });
  EXPECT_EQ(covered, 10u);
}

TEST(ShardedMinMap, KeepsTheMinimumValuePerKey) {
  util::ShardedMinMap<int, int> map(4);
  EXPECT_TRUE(map.insert_min(7, 30));
  EXPECT_FALSE(map.insert_min(7, 40));  // larger: rejected
  EXPECT_TRUE(map.insert_min(7, 10));   // smaller: displaces
  EXPECT_EQ(map.lookup(7), std::optional<int>(10));
  EXPECT_EQ(map.lookup(8), std::nullopt);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_GE(map.shard_count(), 8u);
}

TEST(ShardedMinMap, ConcurrentRacesConvergeToTheMinimum) {
  util::ThreadPool pool(8);
  util::ShardedMinMap<int, int> map(pool.thread_count());
  constexpr int kKeys = 64;
  // 8 * 200 racing inserts per key; the final value must be the global
  // minimum proposed for that key, independent of interleaving.
  pool.parallel_for(8 * 200, 1,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      for (int key = 0; key < kKeys; ++key) {
        map.insert_min(key, static_cast<int>(i) + key);
      }
    }
  });
  ASSERT_EQ(map.size(), static_cast<std::size_t>(kKeys));
  for (int key = 0; key < kKeys; ++key) {
    EXPECT_EQ(map.lookup(key), std::optional<int>(key));
  }
}

}  // namespace
}  // namespace rcons
