// The consensus-object overload story (readable twin of E5): the naive
// propose protocol is wait-free correct up to m+1 processes, breaks at
// m+2 even crash-free, and breaks at ANY process count >= 2 under
// crash-recovery — while the recording-tree algorithm over the same type
// is crash-robust at its recording level.
#include <gtest/gtest.h>

#include "algo/propose_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "spec/catalog.hpp"
#include "valency/model_checker.hpp"

namespace rcons::algo {
namespace {

valency::SafetyOptions crash_free() {
  valency::SafetyOptions o;
  o.crash_mode = valency::CrashMode::kNone;
  return o;
}

TEST(NaivePropose, CrashFreeSafeUpToMPlus1Processes) {
  for (int m = 1; m <= 3; ++m) {
    for (int procs = 2; procs <= m + 1; ++procs) {
      NaiveProposeConsensus protocol(m, procs);
      const auto r = valency::check_safety_all_inputs(protocol, crash_free());
      EXPECT_TRUE(r.ok()) << "m=" << m << " procs=" << procs << ": "
                          << r.violation;
    }
  }
}

TEST(NaivePropose, CrashFreeBreaksAtMPlus2Processes) {
  // The (m+2)-th proposer meets a wedged object; the bot arm fabricates 0.
  for (int m = 1; m <= 3; ++m) {
    NaiveProposeConsensus protocol(m, m + 2);
    const auto r = valency::check_safety_all_inputs(protocol, crash_free());
    EXPECT_FALSE(r.ok()) << "m=" << m;
  }
}

TEST(NaivePropose, CrashRecoveryBreaksEvenTwoProcesses) {
  // Retries burn ports: with individual crashes even 2 processes overflow
  // an m-ported object. The type's rcons is m (it is m-recording) — the
  // POWER is there, the naive protocol just cannot harvest it.
  for (int m = 1; m <= 3; ++m) {
    NaiveProposeConsensus protocol(m, 2);
    const auto r = valency::check_safety_all_inputs(protocol);
    EXPECT_FALSE(r.ok()) << "m=" << m;
    ASSERT_TRUE(r.counterexample.has_value());
    bool has_crash = false;
    for (const auto& e : *r.counterexample) has_crash |= e.is_crash();
    EXPECT_TRUE(has_crash) << "m=" << m;
  }
}

TEST(NaivePropose, RecordingTreeOverTheSameTypeIsCrashRobust) {
  const spec::ObjectType c2 = spec::make_consensus_object(2);
  RecordingConsensus protocol(c2, 2);
  const auto r = valency::check_safety_all_inputs(protocol);
  EXPECT_TRUE(r.ok()) << r.violation;
  EXPECT_TRUE(
      valency::check_recoverable_wait_freedom(protocol, {0, 1}).wait_free);
}

TEST(NaivePropose, SimultaneousCrashesAlsoBreakIt) {
  NaiveProposeConsensus protocol(2, 2);
  valency::SafetyOptions options;
  options.crash_mode = valency::CrashMode::kSimultaneous;
  const auto r = valency::check_safety_all_inputs(protocol, options);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace rcons::algo
