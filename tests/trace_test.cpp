// Unit tests for the rcons-trace layer (DESIGN.md §9): the structured
// event buffer and sink, the `.trace` counterexample interchange format,
// the metrics registry, and — the load-bearing property — the capture →
// serialize → parse → replay ROUND TRIP: a captured counterexample must
// replay to the identical verdict string and state hash for all three
// counterexample kinds (safety, liveness, rc), and captured traces must be
// bit-identical for every thread count.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "analysis/recovery_audit.hpp"
#include "exec/event.hpp"
#include "exec/protocol.hpp"
#include "spec/catalog.hpp"
#include "trace/counterexample.hpp"
#include "trace/metrics.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "valency/model_checker.hpp"

namespace rcons::trace {
namespace {

// ---------------------------------------------------------------------------
// TraceBuffer and the emission sink

TraceEvent make_event(Kind kind, int pid) {
  TraceEvent e;
  e.kind = kind;
  e.pid = pid;
  return e;
}

TEST(TraceBuffer, SerializeIsDeterministicAndFieldAware) {
  TraceBuffer b;
  TraceEvent step = make_event(Kind::kStep, 0);
  step.object = 1;
  step.op = 2;
  step.response = 3;
  step.state_hash = 0xabcULL;
  b.append(step);
  TraceEvent decide = make_event(Kind::kDecide, 1);
  decide.decision = 1;
  b.append(decide);
  const std::string text = b.serialize();
  EXPECT_EQ(text, b.serialize()) << "serialization must be deterministic";
  EXPECT_NE(text.find("0 step p0 obj=1 op=2 resp=3 hash=0000000000000abc"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 decide p1 decision=1 hash=0000000000000000"),
            std::string::npos)
      << text;
  // Unset fields (object, decision, budget) must not serialize at all.
  EXPECT_EQ(text.find("obj=-1"), std::string::npos) << text;
  EXPECT_EQ(text.find("budget"), std::string::npos) << text;
}

TEST(TraceBuffer, MergePreservesUnitOrder) {
  TraceBuffer a;
  TraceBuffer b;
  a.append(make_event(Kind::kStep, 0));
  b.append(make_event(Kind::kStep, 1));
  TraceBuffer merged;
  merged.merge_from(a);
  merged.merge_from(b);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.events()[0].pid, 0);
  EXPECT_EQ(merged.events()[1].pid, 1);
}

TEST(TraceBuffer, AnnotateBudgetPatchesTheCrashNotTheRecover) {
  // exec::apply_event emits kCrash then kRecover for one crash event; the
  // accountant annotation arrives after both and must land on the kCrash.
  TraceBuffer b;
  b.append(make_event(Kind::kStep, 1));
  b.append(make_event(Kind::kCrash, 1));
  b.append(make_event(Kind::kRecover, 1));
  b.annotate_last_crash_budget(5);
  EXPECT_EQ(b.events()[0].crash_budget, -1);
  EXPECT_EQ(b.events()[1].crash_budget, 5);
  EXPECT_EQ(b.events()[2].crash_budget, -1);
}

TEST(TraceSink, MacroEmitsOnlyWithSinkInstalledAndScopesCompose) {
  TraceBuffer outer;
  TraceBuffer inner;
  RCONS_TRACE(make_event(Kind::kStep, 0));  // no sink: dropped
  {
    ScopedSink outer_scope(&outer);
    RCONS_TRACE(make_event(Kind::kStep, 1));
    {
      ScopedSink inner_scope(&inner);
      RCONS_TRACE(make_event(Kind::kStep, 2));
    }
    RCONS_TRACE(make_event(Kind::kStep, 3));
  }
  RCONS_TRACE(make_event(Kind::kStep, 4));  // sink restored to null
#ifdef RCONS_TRACE_DISABLED
  EXPECT_TRUE(outer.empty());
  EXPECT_TRUE(inner.empty());
#else
  ASSERT_EQ(outer.size(), 2u);
  EXPECT_EQ(outer.events()[0].pid, 1);
  EXPECT_EQ(outer.events()[1].pid, 3);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner.events()[0].pid, 2);
#endif
}

// ---------------------------------------------------------------------------
// The .trace interchange format

TEST(TraceFormat, SerializeParseRoundTripPreservesEveryField) {
  Counterexample c;
  // kLiveness is the kind that serializes every optional field, including
  // solo_bound (a liveness-only replay parameter).
  c.kind = CounterexampleKind::kLiveness;
  c.protocol_spec = "recording cas3 2 relaxed";
  c.inputs = {0, 1};
  c.schedule = {exec::Event::step(0), exec::Event::crash(0),
                exec::Event::step(0)};
  c.pid = 0;
  c.input = 1;
  c.solo_bound = 77;
  c.rule = "RC004";
  c.note = "step 0 leaves a store: unpersisted";
  c.verdict = "RC decisions=none";
  c.state_hash = 0x0123456789abcdefULL;
  const std::string text = serialize_counterexample(c);
  const TraceParseResult parsed = parse_counterexample(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Counterexample& d = *parsed.trace;
  EXPECT_EQ(d.kind, c.kind);
  EXPECT_EQ(d.protocol_spec, c.protocol_spec);
  EXPECT_EQ(d.inputs, c.inputs);
  EXPECT_EQ(d.schedule, c.schedule);
  EXPECT_EQ(d.pid, c.pid);
  EXPECT_EQ(d.input, c.input);
  EXPECT_EQ(d.solo_bound, c.solo_bound);
  EXPECT_EQ(d.rule, c.rule);
  EXPECT_EQ(d.note, c.note);
  EXPECT_EQ(d.verdict, c.verdict);
  EXPECT_EQ(d.state_hash, c.state_hash);
  // Reserializing the parse is byte-identical: the format is canonical.
  EXPECT_EQ(serialize_counterexample(d), text);
}

TEST(TraceFormat, EmptyScheduleUsesTheSentinel) {
  Counterexample c;
  c.kind = CounterexampleKind::kLiveness;
  c.pid = 1;
  c.verdict = "NOT-WAIT-FREE p1";
  c.state_hash = 1;
  const std::string text = serialize_counterexample(c);
  EXPECT_NE(text.find("schedule: <>"), std::string::npos) << text;
  const TraceParseResult parsed = parse_counterexample(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_TRUE(parsed.trace->schedule.empty());
}

TEST(TraceFormat, ParserRejectsMalformedInput) {
  // No header.
  EXPECT_FALSE(parse_counterexample("kind: safety\n").ok());
  // Wrong version.
  EXPECT_FALSE(
      parse_counterexample("rcons-trace v2\nkind: safety\n").ok());
  // Missing round-trip fields.
  EXPECT_FALSE(
      parse_counterexample("rcons-trace v1\nkind: safety\nschedule: p0\n")
          .ok());
  // Unknown kind.
  EXPECT_FALSE(parse_counterexample("rcons-trace v1\nkind: vibes\n"
                                    "schedule: p0\nverdict: X\n"
                                    "state_hash: 0000000000000001\n")
                   .ok());
  // Malformed schedule token.
  EXPECT_FALSE(parse_counterexample("rcons-trace v1\nkind: safety\n"
                                    "schedule: p0 q1\nverdict: X\n"
                                    "state_hash: 0000000000000001\n")
                   .ok());
}

// ---------------------------------------------------------------------------
// Capture → replay round trips, one per counterexample kind

TEST(ReplayRoundTrip, SafetyViolation) {
  algo::TasRacingConsensus protocol;
  valency::SafetyOptions options;
  options.crash_mode = valency::CrashMode::kIndividual;
  std::optional<Counterexample> captured;
  for (const auto& inputs :
       valency::all_binary_inputs(protocol.process_count())) {
    const valency::SafetyResult r =
        valency::check_safety(protocol, inputs, options);
    if (!r.ok()) {
      captured = capture_safety(protocol, inputs, r);
      break;
    }
  }
  ASSERT_TRUE(captured.has_value()) << "tas under crashes must violate";
  EXPECT_EQ(captured->kind, CounterexampleKind::kSafety);
  EXPECT_NE(captured->verdict.find("VIOLATION"), std::string::npos);
  const ReplayResult r = replay(protocol, *captured);
  EXPECT_TRUE(r.matches(*captured))
      << "replayed '" << r.verdict << "' vs captured '" << captured->verdict
      << "'";
#ifndef RCONS_TRACE_DISABLED
  EXPECT_FALSE(r.timeline.empty());
#endif
  // The guarantee must survive the text format too.
  const TraceParseResult reparsed =
      parse_counterexample(serialize_counterexample(*captured));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_TRUE(replay(protocol, *reparsed.trace).matches(*captured));
}

/// Never decides: every process spins on a register read forever, so the
/// liveness scan flags a stuck process at the initial configuration.
class StuckProtocol : public exec::Protocol {
 public:
  StuckProtocol() : type_(spec::make_register(2)) {}

  std::string name() const override { return "stuck"; }
  int process_count() const override { return 2; }
  int object_count() const override { return 1; }
  const spec::ObjectType& object_type(exec::ObjectId) const override {
    return type_;
  }
  spec::ValueId initial_value(exec::ObjectId) const override { return 0; }
  exec::LocalState initial_state(exec::ProcessId,
                                 int input) const override {
    return {{input}};
  }
  exec::Action poised(exec::ProcessId,
                      const exec::LocalState&) const override {
    return exec::Action::invoke(0, 0);
  }
  exec::LocalState advance(exec::ProcessId, const exec::LocalState& state,
                           spec::ResponseId) const override {
    return state;
  }

 private:
  spec::ObjectType type_;
};

TEST(ReplayRoundTrip, LivenessViolation) {
  StuckProtocol protocol;
  const std::vector<int> inputs = {0, 1};
  valency::LivenessOptions options;
  const valency::LivenessResult r =
      valency::check_recoverable_wait_freedom(protocol, inputs, options);
  ASSERT_EQ(valency::liveness_verdict(r),
            valency::LivenessVerdict::kNotWaitFree);
  const std::optional<Counterexample> captured =
      capture_liveness(protocol, inputs, r, options.solo_step_bound);
  ASSERT_TRUE(captured.has_value());
  EXPECT_EQ(captured->kind, CounterexampleKind::kLiveness);
  EXPECT_NE(captured->verdict.find("NOT-WAIT-FREE"), std::string::npos)
      << captured->verdict;
  const ReplayResult replayed = replay(protocol, *captured);
  EXPECT_TRUE(replayed.matches(*captured))
      << "replayed '" << replayed.verdict << "' vs captured '"
      << captured->verdict << "'";
  const TraceParseResult reparsed =
      parse_counterexample(serialize_counterexample(*captured));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_TRUE(replay(protocol, *reparsed.trace).matches(*captured));
}

TEST(ReplayRoundTrip, RcAuditCounterexamples) {
  // The relaxed recording fixture is the canonical RC004 violator: every
  // (process, input) unit leaves its first proposal store unpersisted.
  algo::RecordingConsensus protocol(spec::make_cas(3), 2,
                                    /*relax_proposal_writes=*/true);
  const analysis::RecoveryAuditResult result =
      analysis::audit_recovery_traced(protocol);
  ASSERT_FALSE(result.counterexamples.empty());
  for (const Counterexample& c : result.counterexamples) {
    EXPECT_EQ(c.kind, CounterexampleKind::kRcAudit);
    EXPECT_FALSE(c.rule.empty());
    const ReplayResult r = replay(protocol, c);
    EXPECT_TRUE(r.matches(c))
        << serialize_counterexample(c) << "replayed '" << r.verdict
        << "' hash " << r.state_hash;
#ifndef RCONS_TRACE_DISABLED
    EXPECT_FALSE(r.timeline.empty());
#endif
    const TraceParseResult reparsed =
        parse_counterexample(serialize_counterexample(c));
    ASSERT_TRUE(reparsed.ok()) << reparsed.error;
    EXPECT_TRUE(replay(protocol, *reparsed.trace).matches(c));
  }
}

TEST(ReplayRoundTrip, CleanProtocolAuditsWithoutCounterexamples) {
  algo::RecordingConsensus protocol(spec::make_cas(3), 2);
  const analysis::RecoveryAuditResult result =
      analysis::audit_recovery_traced(protocol);
  EXPECT_TRUE(result.counterexamples.empty())
      << serialize_counterexample(result.counterexamples.front());
}

// ---------------------------------------------------------------------------
// Determinism across thread counts

TEST(TraceDeterminism, RcAuditCapturesBitIdenticalAcrossThreads) {
  algo::RecordingConsensus protocol(spec::make_cas(3), 2,
                                    /*relax_proposal_writes=*/true);
  const auto run = [&protocol](int threads) {
    analysis::RecoveryAuditOptions options;
    options.threads = threads;
    const analysis::RecoveryAuditResult result =
        analysis::audit_recovery_traced(protocol, options);
    std::string text;
    for (const Counterexample& c : result.counterexamples) {
      text += serialize_counterexample(c);
      text += '\n';
    }
    return text;
  };
  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
}

TEST(TraceDeterminism, SafetyCaptureBitIdenticalAcrossThreads) {
  algo::TasRacingConsensus protocol;
  const auto run = [&protocol](int threads) {
    valency::SafetyOptions options;
    options.crash_mode = valency::CrashMode::kIndividual;
    options.threads = threads;
    for (const auto& inputs :
         valency::all_binary_inputs(protocol.process_count())) {
      const valency::SafetyResult r =
          valency::check_safety(protocol, inputs, options);
      if (!r.ok()) {
        const std::optional<Counterexample> c =
            capture_safety(protocol, inputs, r);
        return c ? serialize_counterexample(*c) : std::string();
      }
    }
    return std::string();
  };
  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run(4));
}

TEST(TraceDeterminism, ReplayTimelineIsStable) {
  // Two replays of the same counterexample serialize to byte-identical
  // event streams (no timestamps, no run-dependent state in the buffer).
  algo::RecordingConsensus protocol(spec::make_cas(3), 2,
                                    /*relax_proposal_writes=*/true);
  const analysis::RecoveryAuditResult result =
      analysis::audit_recovery_traced(protocol);
  ASSERT_FALSE(result.counterexamples.empty());
  const Counterexample& c = result.counterexamples.front();
  EXPECT_EQ(replay(protocol, c).timeline.serialize(),
            replay(protocol, c).timeline.serialize());
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, RegistryAggregatesAndSerializes) {
  MetricsRegistry reg;
  reg.add("scan.states", 3);
  reg.add("scan.states", 4);
  reg.set_gauge("frontier", 9);
  reg.max_gauge("frontier", 5);   // lower: must not regress the gauge
  reg.max_gauge("frontier", 12);  // higher: must raise it
  reg.observe("depth", 1);
  reg.observe("depth", 100);
  EXPECT_EQ(reg.counter("scan.states"), 7);
  EXPECT_EQ(reg.gauge("frontier"), 12);
  const HistogramSnapshot h = reg.histogram("depth");
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 101);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 100);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"scan.states\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"frontier\":12"), std::string::npos) << json;
  reg.reset();
  EXPECT_EQ(reg.counter("scan.states"), 0);
}

TEST(Metrics, ScopedSpanRecordsWallClock) {
  MetricsRegistry& reg = metrics();
  const std::size_t spans_before = reg.spans().size();
  { ScopedSpan span("trace_test.span"); }
  EXPECT_EQ(reg.spans().size(), spans_before + 1);
  EXPECT_GE(reg.counter("trace_test.span.wall_us"), 0);
  const std::string chrome = reg.spans_to_chrome_json();
  EXPECT_NE(chrome.find("trace_test.span"), std::string::npos);
}

TEST(Metrics, EnginesReportScanAggregates) {
  // A safety scan must leave its footprint in the global registry.
  metrics().reset();
  algo::TasRacingConsensus protocol;
  valency::SafetyOptions options;
  const valency::SafetyResult r =
      valency::check_safety(protocol, {0, 1}, options);
  EXPECT_EQ(metrics().counter("safety.states_visited"),
            static_cast<std::int64_t>(r.states_visited));
  EXPECT_EQ(metrics().counter("safety.scans"), 1);
  EXPECT_GT(metrics().gauge("safety.max_frontier"), 0);
}

}  // namespace
}  // namespace rcons::trace
