#include "sched/crash_budget.hpp"

#include "util/assert.hpp"

namespace rcons::sched {

CrashAccountant::CrashAccountant(int n, int z)
    : n_(n),
      z_(z),
      steps_(static_cast<std::size_t>(n), 0),
      crashes_(static_cast<std::size_t>(n), 0),
      steps_below_(static_cast<std::size_t>(n), 0) {
  RCONS_CHECK_MSG(n >= 1, "need at least one process");
  RCONS_CHECK_MSG(z >= 1, "the paper's execution sets require z >= 1");
}

void CrashAccountant::on_step(exec::ProcessId pid) {
  RCONS_CHECK(pid >= 0 && pid < n_);
  steps_[static_cast<std::size_t>(pid)] += 1;
  for (int i = pid + 1; i < n_; ++i) {
    steps_below_[static_cast<std::size_t>(i)] += 1;
  }
}

void CrashAccountant::on_crash(exec::ProcessId pid) {
  RCONS_CHECK_MSG(crash_allowed(pid), "crash by p", pid,
                  " violates the E_z* budget");
  crashes_[static_cast<std::size_t>(pid)] += 1;
}

void CrashAccountant::on_event(const exec::Event& event) {
  if (event.is_crash()) {
    on_crash(event.pid);
  } else {
    on_step(event.pid);
  }
}

bool CrashAccountant::crash_allowed(exec::ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < n_);
  if (pid == 0) return false;  // p_0 never crashes
  const std::int64_t limit =
      static_cast<std::int64_t>(z_) * n_ *
      steps_below_[static_cast<std::size_t>(pid)];
  return crashes_[static_cast<std::size_t>(pid)] + 1 <= limit;
}

std::int64_t CrashAccountant::crashes(exec::ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < n_);
  return crashes_[static_cast<std::size_t>(pid)];
}

std::int64_t CrashAccountant::steps(exec::ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < n_);
  return steps_[static_cast<std::size_t>(pid)];
}

std::int64_t CrashAccountant::steps_below(exec::ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < n_);
  return steps_below_[static_cast<std::size_t>(pid)];
}

std::int64_t CrashAccountant::remaining_crash_budget(
    exec::ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < n_);
  if (pid == 0) return 0;
  const std::int64_t limit =
      static_cast<std::int64_t>(z_) * n_ *
      steps_below_[static_cast<std::size_t>(pid)];
  return limit - crashes_[static_cast<std::size_t>(pid)];
}

namespace {

/// Walks a schedule tallying steps/crashes; invokes `violation_check` after
/// each event (for E_z*) or only at the end (for E_z). Returns true iff no
/// violation was observed.
bool check_schedule(const exec::Schedule& schedule, int n, int z,
                    bool per_prefix) {
  RCONS_CHECK(n >= 1 && z >= 1);
  std::vector<std::int64_t> steps(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> crashes(static_cast<std::size_t>(n), 0);

  const auto all_within_budget = [&] {
    std::int64_t below = 0;
    for (int i = 0; i < n; ++i) {
      if (i > 0 && crashes[static_cast<std::size_t>(i)] >
                       static_cast<std::int64_t>(z) * n * below) {
        return false;
      }
      below += steps[static_cast<std::size_t>(i)];
    }
    return true;
  };

  for (const exec::Event& event : schedule) {
    RCONS_CHECK(event.pid >= 0 && event.pid < n);
    if (event.is_crash()) {
      if (event.pid == 0) return false;  // p_0 never crashes
      crashes[static_cast<std::size_t>(event.pid)] += 1;
    } else {
      steps[static_cast<std::size_t>(event.pid)] += 1;
    }
    if (per_prefix && !all_within_budget()) return false;
  }
  return per_prefix ? true : all_within_budget();
}

}  // namespace

bool in_ez(const exec::Schedule& schedule, int n, int z) {
  return check_schedule(schedule, n, z, /*per_prefix=*/false);
}

bool in_ez_star(const exec::Schedule& schedule, int n, int z) {
  return check_schedule(schedule, n, z, /*per_prefix=*/true);
}

}  // namespace rcons::sched
