#include "sched/one_shot.hpp"

#include "util/assert.hpp"
#include "util/combinatorics.hpp"

namespace rcons::sched {

std::uint64_t one_shot_count(int k) {
  RCONS_CHECK(k >= 0);
  return ordered_subset_count(static_cast<unsigned>(k));
}

void for_each_one_shot(
    const std::vector<exec::ProcessId>& pids,
    const std::function<void(const std::vector<exec::ProcessId>&)>& visit) {
  std::vector<exec::ProcessId> mapped;
  for_each_ordered_subset(
      static_cast<unsigned>(pids.size()),
      [&](const std::vector<int>& indices) {
        mapped.clear();
        mapped.reserve(indices.size());
        for (int idx : indices) {
          mapped.push_back(pids[static_cast<std::size_t>(idx)]);
        }
        visit(mapped);
      });
}

void for_each_one_shot_starting_with(
    const std::vector<exec::ProcessId>& pids,
    const std::function<bool(exec::ProcessId)>& first_ok,
    const std::function<void(const std::vector<exec::ProcessId>&)>& visit) {
  for_each_one_shot(pids, [&](const std::vector<exec::ProcessId>& schedule) {
    if (schedule.empty()) return;
    if (!first_ok(schedule.front())) return;
    visit(schedule);
  });
}

std::vector<std::vector<exec::ProcessId>> all_one_shot(
    const std::vector<exec::ProcessId>& pids) {
  std::vector<std::vector<exec::ProcessId>> out;
  out.reserve(one_shot_count(static_cast<int>(pids.size())));
  for_each_one_shot(pids, [&](const std::vector<exec::ProcessId>& schedule) {
    out.push_back(schedule);
  });
  return out;
}

}  // namespace rcons::sched
