// Adversaries: online schedulers that drive a protocol execution.
//
// "An execution is produced by an adversary, who decides which process will
// take the next step in each configuration. The adversary also decides if
// and when processes crash." These adversaries are used by the randomized
// property tests and the live runtime audits; the exhaustive model checker
// (src/valency) enumerates all adversary choices instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "exec/config.hpp"
#include "exec/execute.hpp"
#include "sched/crash_budget.hpp"
#include "util/rng.hpp"

namespace rcons::sched {

/// Observable state an adversary may consult when picking the next event.
struct AdversaryView {
  const exec::Protocol* protocol = nullptr;
  const exec::Config* config = nullptr;
  const exec::DecisionLog* log = nullptr;
  const CrashAccountant* accountant = nullptr;
  std::int64_t events_so_far = 0;

  /// True iff pid is currently NOT in an output state (stepping it does
  /// real work). Note this differs from the decision log: a process that
  /// output a value and then crashed is active again, though its past
  /// output stands.
  bool active(exec::ProcessId pid) const;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Picks the next event, or nullopt to stop the run. Crash events chosen
  /// here are only applied if permitted by the run's crash regime.
  virtual std::optional<exec::Event> next(const AdversaryView& view) = 0;
};

/// Steps processes 0..n-1 cyclically, skipping decided processes; never
/// crashes anyone; stops when all processes have decided.
class RoundRobinAdversary : public Adversary {
 public:
  explicit RoundRobinAdversary(int n);
  std::optional<exec::Event> next(const AdversaryView& view) override;

 private:
  int n_;
  int cursor_ = 0;
};

/// Picks a uniformly random undecided process each round and crashes it
/// (instead of stepping) with probability `crash_prob`, honouring the E_z*
/// budget when one is installed. Stops when all processes have decided.
class RandomCrashAdversary : public Adversary {
 public:
  RandomCrashAdversary(int n, double crash_prob, std::uint64_t seed);
  std::optional<exec::Event> next(const AdversaryView& view) override;

 private:
  int n_;
  double crash_prob_;
  Xoshiro256 rng_;
};

/// How crashes are constrained during a driven run.
enum class CrashRegime {
  /// No crashes permitted at all (classic wait-free setting).
  kNone,
  /// Individual crashes, limited only by the E_z* accountant.
  kBudgeted,
  /// Individual crashes with no budget (adversary's discretion). Note that
  /// under this regime a recoverable algorithm need not terminate; use
  /// max_events to bound runs.
  kUnbounded,
};

struct DrivenRunOptions {
  CrashRegime regime = CrashRegime::kBudgeted;
  int z = 1;
  std::int64_t max_events = 1'000'000;
  /// Strict shadow persistency: a crash additionally reverts every object
  /// whose last value change came from the crashing process's *relaxed*
  /// invokes (Action::invoke_relaxed) to its persisted value — the
  /// exec-layer counterpart of RCONS_PMEM_STRICT in the live runtime.
  /// Durable invokes (the default for every shipped protocol) persist as
  /// part of the step, so this is behavior-neutral unless a protocol
  /// actually opens a persist gap.
  bool strict_persistency = false;
};

struct DrivenRunResult {
  exec::Config config;
  exec::DecisionLog log;
  std::int64_t events = 0;
  std::int64_t steps = 0;
  std::int64_t crashes = 0;
  std::int64_t crashes_denied = 0;  // adversary crash choices vetoed by regime
  std::int64_t dropped_stores = 0;  // strict-mode crash drops
  bool all_decided = false;
  bool hit_event_limit = false;
};

/// Drives `protocol` from its initial configuration for `inputs` using the
/// adversary, under the given crash regime.
DrivenRunResult drive(const exec::Protocol& protocol,
                      const std::vector<int>& inputs, Adversary& adversary,
                      const DrivenRunOptions& options = {});

}  // namespace rcons::sched
