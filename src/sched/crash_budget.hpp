// The paper's crash-budget execution sets (Section 3).
//
// For a configuration C and integer z > 0:
//   * E_z(C)  — executions from C with no crashes by p_0 in which, for every
//     process p_i (i >= 1), the number of crashes by p_i is at most z*n
//     times the number of steps collectively taken by p_0..p_{i-1} in the
//     WHOLE execution.
//   * E_z*(C) — the prefix-closed refinement: the same bound must hold in
//     EVERY prefix.
//
// E_z*(C) is prefix-closed but E_z(C) is not (the paper's example:
// exec(C, p1 c1 p0) is in E_1(C) but its prefix p1 c1 is not in E_1*(C)).
// Intuitively, processes with smaller identifiers have higher priority:
// they may crash less often, and p_0 never crashes, so in any infinite
// execution some process takes infinitely many steps without crashing —
// which is what lets the valency argument go through (Lemma 6).
//
// CrashAccountant tracks the budget incrementally so the model checker can
// ask "may p_i crash now?" in O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/event.hpp"

namespace rcons::sched {

class CrashAccountant {
 public:
  /// n = number of processes, z = the budget multiplier (z >= 1).
  CrashAccountant(int n, int z);

  int process_count() const { return n_; }
  int z() const { return z_; }

  /// Records a step by `pid`.
  void on_step(exec::ProcessId pid);

  /// Records a crash by `pid`. RCONS_CHECKs that the crash is allowed under
  /// the E_z* rule (call crash_allowed first when exploring).
  void on_crash(exec::ProcessId pid);

  /// Applies an event (step or crash).
  void on_event(const exec::Event& event);

  /// True iff appending a crash by `pid` right now keeps the execution in
  /// E_z* — i.e. pid != 0 and crashes(pid)+1 <= z*n*steps_below(pid).
  bool crash_allowed(exec::ProcessId pid) const;

  /// Crashes taken by pid so far.
  std::int64_t crashes(exec::ProcessId pid) const;

  /// Steps taken by pid so far.
  std::int64_t steps(exec::ProcessId pid) const;

  /// Steps collectively taken by p_0 .. p_{pid-1} so far.
  std::int64_t steps_below(exec::ProcessId pid) const;

  /// Remaining crash allowance for pid under the current prefix
  /// (z*n*steps_below(pid) - crashes(pid)); 0 for p_0.
  std::int64_t remaining_crash_budget(exec::ProcessId pid) const;

 private:
  int n_;
  int z_;
  std::vector<std::int64_t> steps_;
  std::vector<std::int64_t> crashes_;
  // prefix_steps_[i] = steps by p_0..p_{i-1}; maintained incrementally.
  std::vector<std::int64_t> steps_below_;
};

/// Whole-schedule membership tests (for completed schedules from some C;
/// membership depends only on the schedule, not the configuration).
bool in_ez(const exec::Schedule& schedule, int n, int z);
bool in_ez_star(const exec::Schedule& schedule, int n, int z);

}  // namespace rcons::sched
