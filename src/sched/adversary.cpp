#include "sched/adversary.hpp"

#include "util/assert.hpp"

namespace rcons::sched {

bool AdversaryView::active(exec::ProcessId pid) const {
  return protocol->poised(pid, config->local(pid)).kind !=
         exec::Action::Kind::kDecided;
}

RoundRobinAdversary::RoundRobinAdversary(int n) : n_(n) { RCONS_CHECK(n >= 1); }

std::optional<exec::Event> RoundRobinAdversary::next(
    const AdversaryView& view) {
  for (int tried = 0; tried < n_; ++tried) {
    const int pid = cursor_;
    cursor_ = (cursor_ + 1) % n_;
    if (view.active(pid)) {
      return exec::Event::step(pid);
    }
  }
  return std::nullopt;  // everyone is in an output state
}

RandomCrashAdversary::RandomCrashAdversary(int n, double crash_prob,
                                           std::uint64_t seed)
    : n_(n), crash_prob_(crash_prob), rng_(seed) {
  RCONS_CHECK(n >= 1);
}

std::optional<exec::Event> RandomCrashAdversary::next(
    const AdversaryView& view) {
  std::vector<int> undecided;
  undecided.reserve(static_cast<std::size_t>(n_));
  for (int pid = 0; pid < n_; ++pid) {
    if (view.active(pid)) {
      undecided.push_back(pid);
    }
  }
  if (undecided.empty()) return std::nullopt;
  if (rng_.chance(crash_prob_)) {
    // Crashes may hit ANY process — including one that has already
    // decided: a crash wipes its volatile state, so on recovery it re-runs
    // the algorithm from scratch. (This is the adversary move behind
    // Golab's test&set impossibility.)
    return exec::Event::crash(static_cast<int>(rng_.below(
        static_cast<std::uint64_t>(n_))));
  }
  const int pid = undecided[static_cast<std::size_t>(
      rng_.below(undecided.size()))];
  return exec::Event::step(pid);
}

DrivenRunResult drive(const exec::Protocol& protocol,
                      const std::vector<int>& inputs, Adversary& adversary,
                      const DrivenRunOptions& options) {
  const int n = protocol.process_count();
  DrivenRunResult result;
  result.config = exec::Config::initial(protocol, inputs);
  result.log = exec::DecisionLog(n);
  CrashAccountant accountant(n, options.z >= 1 ? options.z : 1);

  // Done when every process sits in an output state (a process that
  // crashed after deciding is NOT done — it must re-run to completion).
  const auto all_settled = [&] {
    for (int pid = 0; pid < n; ++pid) {
      if (protocol.poised(pid, result.config.local(pid)).kind !=
          exec::Action::Kind::kDecided) {
        return false;
      }
    }
    return true;
  };

  while (result.events < options.max_events) {
    if (all_settled()) {
      result.all_decided = true;
      return result;
    }
    AdversaryView view{&protocol, &result.config, &result.log, &accountant,
                       result.events};
    std::optional<exec::Event> event = adversary.next(view);
    if (!event.has_value()) break;

    if (event->is_crash()) {
      const bool allowed = [&] {
        switch (options.regime) {
          case CrashRegime::kNone:
            return false;
          case CrashRegime::kBudgeted:
            return accountant.crash_allowed(event->pid);
          case CrashRegime::kUnbounded:
            return true;
        }
        return false;
      }();
      if (!allowed) {
        result.crashes_denied += 1;
        continue;  // the adversary's crash was vetoed; let it pick again
      }
      if (options.regime == CrashRegime::kBudgeted) {
        accountant.on_crash(event->pid);
      }
      result.crashes += 1;
    } else {
      accountant.on_step(event->pid);
      result.steps += 1;
    }
    exec::apply_event(protocol, result.config, *event, result.log);
    result.events += 1;
  }

  result.all_decided = all_settled();
  result.hit_event_limit = result.events >= options.max_events;
  return result;
}

}  // namespace rcons::sched
