#include "sched/adversary.hpp"

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace rcons::sched {

namespace {

/// One registry update per run (not per event): drive() sits under the
/// adversary sweeps, so per-event mutex traffic would be measurable.
void record_drive_metrics(const DrivenRunResult& result) {
  auto& m = trace::metrics();
  m.add("drive.runs", 1);
  m.add("drive.events", result.events);
  m.add("drive.steps", result.steps);
  m.add("drive.crashes", result.crashes);
  m.add("drive.crashes_denied", result.crashes_denied);
  m.add("drive.dropped_stores", result.dropped_stores);
}

}  // namespace

bool AdversaryView::active(exec::ProcessId pid) const {
  return protocol->poised(pid, config->local(pid)).kind !=
         exec::Action::Kind::kDecided;
}

RoundRobinAdversary::RoundRobinAdversary(int n) : n_(n) { RCONS_CHECK(n >= 1); }

std::optional<exec::Event> RoundRobinAdversary::next(
    const AdversaryView& view) {
  for (int tried = 0; tried < n_; ++tried) {
    const int pid = cursor_;
    cursor_ = (cursor_ + 1) % n_;
    if (view.active(pid)) {
      return exec::Event::step(pid);
    }
  }
  return std::nullopt;  // everyone is in an output state
}

RandomCrashAdversary::RandomCrashAdversary(int n, double crash_prob,
                                           std::uint64_t seed)
    : n_(n), crash_prob_(crash_prob), rng_(seed) {
  RCONS_CHECK(n >= 1);
}

std::optional<exec::Event> RandomCrashAdversary::next(
    const AdversaryView& view) {
  std::vector<int> undecided;
  undecided.reserve(static_cast<std::size_t>(n_));
  for (int pid = 0; pid < n_; ++pid) {
    if (view.active(pid)) {
      undecided.push_back(pid);
    }
  }
  if (undecided.empty()) return std::nullopt;
  if (rng_.chance(crash_prob_)) {
    // Crashes may hit ANY process — including one that has already
    // decided: a crash wipes its volatile state, so on recovery it re-runs
    // the algorithm from scratch. (This is the adversary move behind
    // Golab's test&set impossibility.)
    return exec::Event::crash(static_cast<int>(rng_.below(
        static_cast<std::uint64_t>(n_))));
  }
  const int pid = undecided[static_cast<std::size_t>(
      rng_.below(undecided.size()))];
  return exec::Event::step(pid);
}

DrivenRunResult drive(const exec::Protocol& protocol,
                      const std::vector<int>& inputs, Adversary& adversary,
                      const DrivenRunOptions& options) {
  const int n = protocol.process_count();
  DrivenRunResult result;
  result.config = exec::Config::initial(protocol, inputs);
  result.log = exec::DecisionLog(n);
  CrashAccountant accountant(n, options.z >= 1 ? options.z : 1);

  // Strict shadow persistency: the persisted value of each object plus a
  // bitmask of processes with unpersisted (relaxed) writes to it. A
  // durable invoke flushes the object (whole-cell barrier, any writer); a
  // crash reverts every object the victim wrote relaxed.
  const int object_count = protocol.object_count();
  std::vector<spec::ValueId> persisted;
  std::vector<std::uint64_t> relaxed_writers;
  if (options.strict_persistency) {
    RCONS_CHECK(n <= 64);
    persisted.reserve(static_cast<std::size_t>(object_count));
    for (exec::ObjectId obj = 0; obj < object_count; ++obj) {
      persisted.push_back(result.config.value(obj));
    }
    relaxed_writers.assign(static_cast<std::size_t>(object_count), 0);
  }

  // Done when every process sits in an output state (a process that
  // crashed after deciding is NOT done — it must re-run to completion).
  const auto all_settled = [&] {
    for (int pid = 0; pid < n; ++pid) {
      if (protocol.poised(pid, result.config.local(pid)).kind !=
          exec::Action::Kind::kDecided) {
        return false;
      }
    }
    return true;
  };

  while (result.events < options.max_events) {
    if (all_settled()) {
      result.all_decided = true;
      record_drive_metrics(result);
      return result;
    }
    AdversaryView view{&protocol, &result.config, &result.log, &accountant,
                       result.events};
    std::optional<exec::Event> event = adversary.next(view);
    if (!event.has_value()) break;

    if (event->is_crash()) {
      const bool allowed = [&] {
        switch (options.regime) {
          case CrashRegime::kNone:
            return false;
          case CrashRegime::kBudgeted:
            return accountant.crash_allowed(event->pid);
          case CrashRegime::kUnbounded:
            return true;
        }
        return false;
      }();
      if (!allowed) {
        result.crashes_denied += 1;
        continue;  // the adversary's crash was vetoed; let it pick again
      }
      if (options.regime == CrashRegime::kBudgeted) {
        accountant.on_crash(event->pid);
      }
      result.crashes += 1;
    } else {
      accountant.on_step(event->pid);
      result.steps += 1;
    }
    if (options.strict_persistency && !event->is_crash()) {
      // Peek the poised action so we know which object the step touches
      // and whether the invoke carries its persist barrier.
      const exec::Action action =
          protocol.poised(event->pid, result.config.local(event->pid));
      if (action.kind == exec::Action::Kind::kInvoke) {
        const auto obj = static_cast<std::size_t>(action.object);
        const spec::ValueId before = result.config.value(action.object);
        exec::apply_event(protocol, result.config, *event, result.log);
        result.events += 1;
        if (action.durable) {
          // Whole-cell barrier: the step's persist flushes the object no
          // matter who wrote it last.
          persisted[obj] = result.config.value(action.object);
          relaxed_writers[obj] = 0;
          RCONS_TRACE(trace::TraceEvent{trace::Kind::kPersist, event->pid,
                                        action.object, -1, -1, -1,
                                        result.config.hash(), -1});
        } else if (result.config.value(action.object) != before) {
          relaxed_writers[obj] |= std::uint64_t{1} << event->pid;
        }
        continue;
      }
      // Decided processes no-op; fall through to the shared apply below.
    }
    exec::apply_event(protocol, result.config, *event, result.log);
    result.events += 1;
    if (event->is_crash() && options.regime == CrashRegime::kBudgeted) {
      RCONS_TRACE_ANNOTATE_BUDGET(
          accountant.remaining_crash_budget(event->pid));
    }
    if (options.strict_persistency && event->is_crash()) {
      // Drop the victim's unpersisted stores: every object whose dirty
      // value it contributed to reverts to its persisted value. Reverting
      // co-written cells too is deliberate — the shadow model persists
      // whole cells, and an adversary may always crash the co-writers at
      // the same boundary.
      const std::uint64_t bit = std::uint64_t{1} << event->pid;
      for (std::size_t obj = 0; obj < relaxed_writers.size(); ++obj) {
        if (relaxed_writers[obj] & bit) {
          result.config.set_value(static_cast<exec::ObjectId>(obj),
                                  persisted[obj]);
          relaxed_writers[obj] = 0;
          result.dropped_stores += 1;
          RCONS_TRACE(trace::TraceEvent{
              trace::Kind::kDrop, event->pid, static_cast<std::int32_t>(obj),
              -1, -1, -1, result.config.hash(), -1});
        }
      }
    }
  }

  result.all_decided = all_settled();
  result.hit_event_limit = result.events >= options.max_events;
  record_drive_metrics(result);
  return result;
}

}  // namespace rcons::sched
