// One-shot schedule space S(P') (Section 2).
//
// "For all P' subset of {p_0,..,p_{n-1}}, define S(P') as the set of
// schedules that contain at most one instance of every process in P'."
// These are exactly the ordered sequences of distinct processes from P'
// (including the empty schedule); S(P') drives both the n-discerning and
// n-recording definitions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/event.hpp"

namespace rcons::sched {

/// |S(P')| for |P'| = k (includes the empty schedule).
std::uint64_t one_shot_count(int k);

/// Invokes `visit` for every schedule in S(pids) (sequences of distinct
/// members of `pids`, including the empty one). The vector passed to
/// `visit` is reused; copy if retained.
void for_each_one_shot(
    const std::vector<exec::ProcessId>& pids,
    const std::function<void(const std::vector<exec::ProcessId>&)>& visit);

/// Invokes `visit` for every NONEMPTY schedule in S(pids) whose first
/// process satisfies `first_ok`.
void for_each_one_shot_starting_with(
    const std::vector<exec::ProcessId>& pids,
    const std::function<bool(exec::ProcessId)>& first_ok,
    const std::function<void(const std::vector<exec::ProcessId>&)>& visit);

/// Materializes S(pids) as a vector of schedules (for tests / small k).
std::vector<std::vector<exec::ProcessId>> all_one_shot(
    const std::vector<exec::ProcessId>& pids);

}  // namespace rcons::sched
