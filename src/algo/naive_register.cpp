#include "algo/naive_register.hpp"

#include "spec/catalog.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

namespace {
constexpr std::int64_t kPcWrite = 0;
constexpr std::int64_t kPcRead = 1;
}  // namespace

NaiveRegisterConsensus::NaiveRegisterConsensus(int n)
    : ProtocolBase("naive_register(n=" + std::to_string(n) + ")", n) {
  spec::ObjectType reg = spec::make_register(2);
  write_[0] = *reg.find_op("write_0");
  write_[1] = *reg.find_op("write_1");
  read_ = *reg.find_op("read");
  val_[0] = *reg.find_response("r0");
  val_[1] = *reg.find_response("r1");
  reg_ = add_object(std::move(reg), "r0");
}

exec::Action NaiveRegisterConsensus::poised(exec::ProcessId,
                                            const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const std::int64_t pc = state.words[0];
  const int input = static_cast<int>(state.words[1]);
  if (pc == kPcWrite) return exec::Action::invoke(reg_, write_[input]);
  RCONS_CHECK(pc == kPcRead);
  return exec::Action::invoke(reg_, read_);
}

exec::LocalState NaiveRegisterConsensus::advance(
    exec::ProcessId, const exec::LocalState& state,
    spec::ResponseId response) const {
  const std::int64_t pc = state.words[0];
  if (pc == kPcWrite) {
    exec::LocalState next = state;
    next.words[0] = kPcRead;
    return next;
  }
  RCONS_CHECK(pc == kPcRead);
  return make_decided(response == val_[1] ? 1 : 0);
}

}  // namespace rcons::algo
