#include "algo/sticky_consensus.hpp"

#include "spec/catalog.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

StickyConsensus::StickyConsensus(int n)
    : ProtocolBase("sticky_consensus(n=" + std::to_string(n) + ")", n) {
  spec::ObjectType sticky = spec::make_sticky_bit();
  write_[0] = *sticky.find_op("write_0");
  write_[1] = *sticky.find_op("write_1");
  is_[0] = *sticky.find_response("is_0");
  is_[1] = *sticky.find_response("is_1");
  bit_ = add_object(std::move(sticky), "undef");
}

exec::Action StickyConsensus::poised(exec::ProcessId,
                                     const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const int input = static_cast<int>(state.words[1]);
  return exec::Action::invoke(bit_, write_[input]);
}

exec::LocalState StickyConsensus::advance(exec::ProcessId,
                                          const exec::LocalState& state,
                                          spec::ResponseId response) const {
  (void)state;
  if (response == is_[0]) return make_decided(0);
  RCONS_CHECK(response == is_[1]);
  return make_decided(1);
}

}  // namespace rcons::algo
