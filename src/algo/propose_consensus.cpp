#include "algo/propose_consensus.hpp"

#include "spec/catalog.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

NaiveProposeConsensus::NaiveProposeConsensus(int m, int processes)
    : ProtocolBase("naive_propose(m=" + std::to_string(m) +
                       ",procs=" + std::to_string(processes) + ")",
                   processes) {
  spec::ObjectType type = spec::make_consensus_object(m);
  propose_[0] = *type.find_op("propose_0");
  propose_[1] = *type.find_op("propose_1");
  val_[0] = *type.find_response("0");
  val_[1] = *type.find_response("1");
  bot_ = *type.find_response("bot");
  obj_ = add_object(std::move(type), "undec");
}

exec::Action NaiveProposeConsensus::poised(exec::ProcessId,
                                           const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const int input = static_cast<int>(state.words[1]);
  return exec::Action::invoke(obj_, propose_[input]);
}

exec::LocalState NaiveProposeConsensus::advance(
    exec::ProcessId, const exec::LocalState& state,
    spec::ResponseId response) const {
  (void)state;
  if (response == val_[0]) return make_decided(0);
  if (response == val_[1]) return make_decided(1);
  RCONS_CHECK(response == bot_);
  // The wedged-object arm: fabricate 0 (mirrors the T_{n,n'} protocol's
  // bot arm; with crash-recovery this arm is reachable and wrong).
  return make_decided(0);
}

}  // namespace rcons::algo
