// A deliberately broken register-only "consensus" protocol.
//
// Each process writes its input to one shared register and then reads it,
// deciding whatever it reads. Two processes with different inputs can
// interleave write/write/read/read so that both decide the second writer's
// value — which *satisfies* agreement — or write/read/write/read so that
// they decide different values. The model checker must find the violating
// interleaving (it is the standard FLP-style sanity test for the checker,
// and the registers-have-consensus-number-1 baseline of experiment E1).
#pragma once

#include "algo/protocol_base.hpp"

namespace rcons::algo {

class NaiveRegisterConsensus : public ProtocolBase {
 public:
  explicit NaiveRegisterConsensus(int n);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;
  bool process_symmetric() const override { return true; }

 private:
  exec::ObjectId reg_;
  spec::OpId write_[2];
  spec::OpId read_;
  spec::ResponseId val_[2];
};

}  // namespace rcons::algo
