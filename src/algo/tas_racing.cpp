#include "algo/tas_racing.hpp"

#include "spec/catalog.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

namespace {
constexpr std::int64_t kPcWrite = 0;   // poised to write own input register
constexpr std::int64_t kPcTas = 1;     // poised to apply tas
constexpr std::int64_t kPcPeek = 2;    // lost: poised to read other register
}  // namespace

TasRacingConsensus::TasRacingConsensus()
    : ProtocolBase("tas_racing", /*process_count=*/2) {
  spec::ObjectType tas = spec::make_test_and_set();
  tas_op_ = *tas.find_op("tas");
  tas_won_ = *tas.find_response("won");
  tas_obj_ = add_object(std::move(tas), "0");

  // Binary registers; r0 encodes input 0, r1 encodes input 1. The register
  // starts at r0 but is always written before it is read.
  for (int i = 0; i < 2; ++i) {
    spec::ObjectType reg = spec::make_register(2);
    reg_write_[0] = *reg.find_op("write_0");
    reg_write_[1] = *reg.find_op("write_1");
    reg_read_ = *reg.find_op("read");
    reg_val_[0] = *reg.find_response("r0");
    reg_val_[1] = *reg.find_response("r1");
    reg_[i] = add_object(std::move(reg), "r0");
  }
}

exec::Action TasRacingConsensus::poised(exec::ProcessId pid,
                                        const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const std::int64_t pc = state.words[0];
  const int input = static_cast<int>(state.words[1]);
  switch (pc) {
    case kPcWrite:
      return exec::Action::invoke(reg_[pid], reg_write_[input]);
    case kPcTas:
      return exec::Action::invoke(tas_obj_, tas_op_);
    case kPcPeek:
      return exec::Action::invoke(reg_[1 - pid], reg_read_);
    default:
      RCONS_CHECK_MSG(false, "bad pc ", pc);
  }
  return exec::Action::decided(0);  // unreachable
}

exec::LocalState TasRacingConsensus::advance(exec::ProcessId,
                                             const exec::LocalState& state,
                                             spec::ResponseId response) const {
  const std::int64_t pc = state.words[0];
  const int input = static_cast<int>(state.words[1]);
  exec::LocalState next = state;
  switch (pc) {
    case kPcWrite:
      next.words[0] = kPcTas;
      return next;
    case kPcTas:
      if (response == tas_won_) {
        return make_decided(input);
      }
      next.words[0] = kPcPeek;
      return next;
    case kPcPeek:
      return make_decided(response == reg_val_[1] ? 1 : 0);
    default:
      RCONS_CHECK_MSG(false, "bad pc ", pc);
  }
  return state;  // unreachable
}

}  // namespace rcons::algo
