#include "algo/tnn_protocols.hpp"

#include "spec/paper_types.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

namespace {
// pc values for both protocols.
constexpr std::int64_t kPcStart = 0;       // poised to apply op_R / op_x
constexpr std::int64_t kPcAfterRead = 1;   // recoverable: poised to apply op_x
}  // namespace

TnnWaitFreeConsensus::TnnWaitFreeConsensus(int n, int nprime)
    : ProtocolBase("tnn_wait_free(n=" + std::to_string(n) +
                       ",n'=" + std::to_string(nprime) + ")",
                   n),
      n_(n) {
  spec::ObjectType type = spec::make_tnn(n, nprime);
  resp_0_ = *type.find_response("0");
  resp_1_ = *type.find_response("1");
  op_for_input_[0] = *type.find_op("op_0");
  op_for_input_[1] = *type.find_op("op_1");
  add_object(std::move(type), "s");
}

exec::Action TnnWaitFreeConsensus::poised(exec::ProcessId,
                                          const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  RCONS_CHECK(state.words[0] == kPcStart);
  const int input = static_cast<int>(state.words[1]);
  return exec::Action::invoke(0, op_for_input_[input]);
}

exec::LocalState TnnWaitFreeConsensus::advance(
    exec::ProcessId, const exec::LocalState& state,
    spec::ResponseId response) const {
  RCONS_CHECK(state.words[0] == kPcStart);
  if (response == resp_0_) return make_decided(0);
  if (response == resp_1_) return make_decided(1);
  // The n-process one-shot protocol can never see bot (at most n operations
  // are applied and the wipe response still reports the first input), but
  // stay total: treat bot like the paper's recoverable protocol does.
  return make_decided(0);
}

TnnRecoverableConsensus::TnnRecoverableConsensus(int n, int nprime,
                                                 int processes)
    : ProtocolBase("tnn_recoverable(n=" + std::to_string(n) +
                       ",n'=" + std::to_string(nprime) +
                       ",procs=" + std::to_string(processes) + ")",
                   processes),
      n_(n),
      nprime_(nprime) {
  spec::ObjectType type = spec::make_tnn(n, nprime);
  op_r_ = *type.find_op("op_R");
  op_for_input_[0] = *type.find_op("op_0");
  op_for_input_[1] = *type.find_op("op_1");
  resp_0_ = *type.find_response("0");
  resp_1_ = *type.find_response("1");
  resp_bot_ = *type.find_response("bot");
  resp_s_ = *type.find_response("s");
  // op_R on s_{v,i} with i <= n' returns the value's own name; map those
  // responses to the decision v.
  sval_decode_.assign(static_cast<std::size_t>(type.response_count()), -1);
  for (int v = 0; v <= 1; ++v) {
    for (int i = 1; i <= n - 1; ++i) {
      const std::string name =
          "s_" + std::to_string(v) + "_" + std::to_string(i);
      if (auto r = type.find_response(name)) {
        sval_decode_[static_cast<std::size_t>(*r)] = v;
      }
    }
  }
  add_object(std::move(type), "s");
}

exec::Action TnnRecoverableConsensus::poised(
    exec::ProcessId, const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const std::int64_t pc = state.words[0];
  if (pc == kPcStart) {
    return exec::Action::invoke(0, op_r_);
  }
  RCONS_CHECK(pc == kPcAfterRead);
  const int input = static_cast<int>(state.words[1]);
  return exec::Action::invoke(0, op_for_input_[input]);
}

exec::LocalState TnnRecoverableConsensus::advance(
    exec::ProcessId, const exec::LocalState& state,
    spec::ResponseId response) const {
  const std::int64_t pc = state.words[0];
  if (pc == kPcStart) {
    // Response of op_R.
    if (response == resp_s_) {
      exec::LocalState next = state;
      next.words[0] = kPcAfterRead;
      return next;
    }
    if (response == resp_bot_) {
      // "If the operation returns bot, then the process decides 0 (we will
      // argue that this never happens)" — it never happens with <= n'
      // processes; with n'+1 processes this arm is what breaks agreement.
      return make_decided(0);
    }
    const int v = sval_decode_[static_cast<std::size_t>(response)];
    RCONS_CHECK_MSG(v >= 0, "unexpected op_R response");
    return make_decided(v);
  }
  RCONS_CHECK(pc == kPcAfterRead);
  // Response of op_x: decide the returned value.
  if (response == resp_0_) return make_decided(0);
  if (response == resp_1_) return make_decided(1);
  RCONS_CHECK(response == resp_bot_);
  return make_decided(0);
}

}  // namespace rcons::algo
