// Recoverable consensus from a single compare-and-swap cell.
//
// The cell starts undefined; each process CASes it from undefined to its
// own input and decides the cell's winner. Because CAS both decides the
// race and durably records the winner in non-volatile state, a crashed
// process simply re-runs its CAS: if it had already won, its retry returns
// its own value. This is the canonical example of a type whose recoverable
// consensus number equals its consensus number at every level (CAS is
// n-recording for every n — experiment E1).
#pragma once

#include "algo/protocol_base.hpp"

namespace rcons::algo {

class CasConsensus : public ProtocolBase {
 public:
  explicit CasConsensus(int n);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;
  bool process_symmetric() const override { return true; }

 private:
  exec::ObjectId cell_;
  spec::OpId cas_to_[2];          // cas undef -> value x
  spec::ResponseId old_undef_;    // response when the CAS won
  spec::ResponseId old_val_[2];   // response when value x was already set
};

}  // namespace rcons::algo
