// The two consensus protocols of Section 4, built on one T_{n,n'} object.
//
// Wait-free protocol (n processes, crash-free): "A process with input x
// applies op_x to O and decides the value returned by the operation." The
// first operation fixes the value returned by the next n-1 operations, so
// with at most n one-shot applications everyone sees the first process's
// input.
//
// Recoverable protocol (n' processes, individual crash-recovery): "A
// process with input x first applies op_R. If the operation returns a value
// s_{v,i}, then the process decides v. If the operation returns bot, then
// the process decides 0 (we will argue that this never happens). Otherwise,
// the operation returns the initial value s. In this case, the process
// applies op_x and then decides the value returned." With only n'
// processes the counter can never exceed n', so op_R never breaks the
// object; a crash between op_R and op_x merely repeats op_R.
//
// Running the recoverable protocol with MORE than n' processes is exactly
// what Lemma 16 forbids; tnn_recoverable_overload() builds that
// configuration so the model checker can exhibit the failure.
#pragma once

#include <memory>

#include "algo/protocol_base.hpp"

namespace rcons::algo {

/// Section 4's one-shot wait-free consensus for `n` processes using a
/// single T_{n,nprime} object.
class TnnWaitFreeConsensus : public ProtocolBase {
 public:
  TnnWaitFreeConsensus(int n, int nprime);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;
  bool process_symmetric() const override { return true; }

 private:
  int n_;
  spec::OpId op_for_input_[2];
  spec::ResponseId resp_0_;
  spec::ResponseId resp_1_;
};

/// Section 4's recoverable consensus protocol, run by `processes`
/// processes over a single T_{n,nprime} object. Correct when
/// processes <= nprime; building it with processes = nprime + 1 yields the
/// Lemma 16 counterexample machine.
class TnnRecoverableConsensus : public ProtocolBase {
 public:
  TnnRecoverableConsensus(int n, int nprime, int processes);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;

  /// The correct configuration (processes <= nprime) tolerates repeated
  /// individual crashes — a crash merely repeats op_R — so it declares a
  /// budget for rule RC006 to audit. The overload configuration is the
  /// Lemma 16 counterexample and claims nothing.
  int declared_crash_budget() const override {
    return process_count() <= nprime_ ? 2 : -1;
  }
  bool process_symmetric() const override { return true; }

 private:
  int n_;
  int nprime_;
  spec::OpId op_r_;
  spec::OpId op_for_input_[2];
  spec::ResponseId resp_0_;
  spec::ResponseId resp_1_;
  spec::ResponseId resp_bot_;
  spec::ResponseId resp_s_;
  // decode[r] = decided value for response r of op_R on s_{v,i}, else -1.
  std::vector<int> sval_decode_;
};

}  // namespace rcons::algo
