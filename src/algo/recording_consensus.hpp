// Recoverable wait-free consensus from a readable n-recording type
// (the algorithmic direction of the paper's Theorem 14; DFFR Theorem 8
// style, restricted to NON-HIDING witnesses — see below).
//
// Construction. A non-hiding k-recording witness for a set of k processes
// gives a crash-robust "first team" detector: the object starts at u, each
// process applies its witness operation AT MOST ONCE, and any read
//   * returning u means nobody has applied yet (non-hiding: no one-shot
//     schedule returns to u), and
//   * returning w != u identifies, via the disjoint U_0/U_1 sets, the team
//     of the first process to apply — stably, because every prefix of the
//     application sequence is itself a one-shot schedule starting with the
//     same process.
// At-most-once application survives crashes without any helper object: a
// recovering process re-reads the object, and only applies if it still
// reads u — if it had applied before the crash, the object can never show
// u again.
//
// Consensus then runs on a binary tree of detectors. Each tree node holds
// one recording object and two proposal registers; its two children are
// the witness's two teams. A process resolves its leaf (its own input),
// then at each ancestor node: writes its current value into its team's
// proposal register, reads the object (applying its witness operation
// first if the object still shows u), decodes the first team x, and adopts
// PROP[x]. The first process to apply at a node wrote its team's proposal
// beforehand, so PROP[x] is always set by the time any reader decodes x;
// all members of team x propose the same value (inductive agreement within
// the child), so PROP[x] is single-valued and stable, which also makes
// crash re-execution idempotent. Everyone exits the root with the same
// value.
//
// Scope note (documented substitution, DESIGN.md): DFFR's Theorem 8 also
// covers HIDING witnesses (u in U_x with |T_xbar| = 1) via a subtler
// protocol; this implementation requires a non-hiding witness at every
// tree node and RCONS_CHECKs at construction. Every infinite-consensus-
// number type in our catalog (cas, sticky, consensus objects) admits
// non-hiding witnesses at all levels; the exhaustive model checker
// verifies the resulting protocols end-to-end (experiments E5/E7).
#pragma once

#include <vector>

#include "algo/protocol_base.hpp"
#include "hierarchy/recording.hpp"

namespace rcons::algo {

class RecordingConsensus : public ProtocolBase {
 public:
  /// Builds the tree of detectors for `n` processes over `type`.
  /// Requires: type is readable and has non-hiding k-recording witnesses
  /// for every team size k that arises in the tree (RCONS_CHECKed).
  ///
  /// `relax_proposal_writes` is a deliberate fault-injection knob for the
  /// persistency analyses: when true, the proposal-register writes are
  /// issued as relaxed (unpersisted) invokes, exactly as if the persist()
  /// after the store had been forgotten. The resulting protocol is caught
  /// statically by rule RC004 and at runtime by the strict boundary-crash
  /// audit; it must never be used outside those tests.
  explicit RecordingConsensus(const spec::ObjectType& type, int n,
                              bool relax_proposal_writes = false);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;
  exec::LocalState initial_state(exec::ProcessId pid,
                                 int input) const override;

  /// Number of internal tree nodes (== number of recording objects used).
  int node_count() const { return static_cast<int>(nodes_.size()); }

  std::string describe_state(exec::ProcessId pid,
                             const exec::LocalState& state) const override;

 private:
  struct Node {
    std::vector<int> pids;  // members, sorted
    exec::ObjectId object = -1;
    exec::ObjectId prop[2] = {-1, -1};
    spec::ValueId u = 0;
    // Per-pid (indexed by global pid; -1 if not a member).
    std::vector<int> team_of_pid;
    std::vector<spec::OpId> op_of_pid;
    // Object value -> first team (-1 = not reachable one-shot).
    std::vector<int> value_team;
  };

  /// Recursively builds the node for `pids`; returns its index, or -1 for
  /// singleton sets (leaves need no node).
  int build_node(const spec::ObjectType& type, const std::vector<int>& pids);

  const Node& node(int idx) const { return nodes_[static_cast<std::size_t>(idx)]; }

  bool relax_proposal_writes_ = false;
  spec::OpId read_op_;
  // Read response -> value of the recording type (response ids of the read
  // op are value-injective by definition of readability).
  std::vector<spec::ValueId> read_resp_value_;

  // Proposal register vocabulary (shared by all prop registers; they are
  // instances of register(3): r0 = unset, r1 = proposes 0, r2 = proposes 1).
  spec::OpId prop_write_[2];
  spec::OpId prop_read_;
  spec::ResponseId prop_resp_[3];  // r0/r1/r2 read responses

  std::vector<Node> nodes_;
  // paths_[pid] = node indices from the lowest internal node containing pid
  // up to the root.
  std::vector<std::vector<int>> paths_;
};

}  // namespace rcons::algo
