// Recoverable consensus from a single sticky bit.
//
// The sticky register is the classic universal type (consensus number
// infinity): the first write defines the value forever and every write
// reports the defined value. That makes consensus one operation long —
// write your input, decide the response — and crash-recovery is free:
// re-executing the write after a crash returns the same (sticky) value.
// The simplest possible illustration that "no collapse" types exist at
// every level of the recoverable hierarchy (experiment E1's sticky row).
#pragma once

#include "algo/protocol_base.hpp"

namespace rcons::algo {

class StickyConsensus : public ProtocolBase {
 public:
  explicit StickyConsensus(int n);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;
  bool process_symmetric() const override { return true; }

 private:
  exec::ObjectId bit_;
  spec::OpId write_[2];
  spec::ResponseId is_[2];
};

}  // namespace rcons::algo
