#include "algo/protocol_base.hpp"

#include "util/assert.hpp"

namespace rcons::algo {

ProtocolBase::ProtocolBase(std::string name, int process_count)
    : name_(std::move(name)), process_count_(process_count) {
  RCONS_CHECK(process_count >= 1);
}

const spec::ObjectType& ProtocolBase::object_type(exec::ObjectId obj) const {
  RCONS_CHECK(obj >= 0 && obj < object_count());
  return objects_[static_cast<std::size_t>(obj)];
}

spec::ValueId ProtocolBase::initial_value(exec::ObjectId obj) const {
  RCONS_CHECK(obj >= 0 && obj < object_count());
  return initial_values_[static_cast<std::size_t>(obj)];
}

exec::LocalState ProtocolBase::initial_state(exec::ProcessId pid,
                                             int input) const {
  RCONS_CHECK(pid >= 0 && pid < process_count());
  RCONS_CHECK_MSG(input == 0 || input == 1, "binary consensus inputs only");
  exec::LocalState s;
  s.words = {0, input};
  return s;
}

exec::ObjectId ProtocolBase::add_object(spec::ObjectType type,
                                        std::string_view initial) {
  const auto v = type.find_value(initial);
  RCONS_CHECK_MSG(v.has_value(), "type ", type.name(), " has no value '",
                  std::string(initial), "'");
  objects_.push_back(std::move(type));
  initial_values_.push_back(*v);
  return object_count() - 1;
}

exec::LocalState ProtocolBase::make_decided(int value) {
  exec::LocalState s;
  s.words = {kDecidedPc, value};
  return s;
}

bool ProtocolBase::is_decided(const exec::LocalState& s) {
  return !s.words.empty() && s.words[0] == kDecidedPc;
}

int ProtocolBase::decision_of(const exec::LocalState& s) {
  RCONS_CHECK(is_decided(s));
  return static_cast<int>(s.words[1]);
}

}  // namespace rcons::algo
