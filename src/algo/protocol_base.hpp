// Shared plumbing for concrete protocols: object tables and local-state
// conventions.
//
// Conventions used by every protocol in this module:
//   * words[0] is the program counter (pc). pc == kDecidedPc means the
//     process is in an output state and words[1] holds its decision.
//   * words[1] holds the process's input until it is replaced by the
//     decision (protocols that need the input later keep their own copy).
// Protocols are strictly deterministic functions of (pid, local state),
// as the model requires.
#pragma once

#include <string>
#include <vector>

#include "exec/protocol.hpp"
#include "spec/object_type.hpp"

namespace rcons::algo {

/// pc value marking an output state; words[1] = decided value.
inline constexpr std::int64_t kDecidedPc = -1;

class ProtocolBase : public exec::Protocol {
 public:
  ProtocolBase(std::string name, int process_count);

  std::string name() const override { return name_; }
  int process_count() const override { return process_count_; }
  int object_count() const override {
    return static_cast<int>(objects_.size());
  }
  const spec::ObjectType& object_type(exec::ObjectId obj) const override;
  spec::ValueId initial_value(exec::ObjectId obj) const override;

  /// Default initial state: pc = 0, words[1] = input.
  exec::LocalState initial_state(exec::ProcessId pid, int input) const override;

 protected:
  /// Registers an object; returns its id. `initial` is a value *name* of
  /// `type` (checked).
  exec::ObjectId add_object(spec::ObjectType type, std::string_view initial);

  /// Helpers for decided states.
  static exec::LocalState make_decided(int value);
  static bool is_decided(const exec::LocalState& s);
  static int decision_of(const exec::LocalState& s);

 private:
  std::string name_;
  int process_count_;
  std::vector<spec::ObjectType> objects_;
  std::vector<spec::ValueId> initial_values_;
};

}  // namespace rcons::algo
