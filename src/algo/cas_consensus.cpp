#include "algo/cas_consensus.hpp"

#include "spec/catalog.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

CasConsensus::CasConsensus(int n)
    : ProtocolBase("cas_consensus(n=" + std::to_string(n) + ")", n) {
  // Domain 3: r0 = undefined, r1 = decided 0, r2 = decided 1.
  spec::ObjectType cas = spec::make_cas(3);
  cas_to_[0] = *cas.find_op("cas_0_1");
  cas_to_[1] = *cas.find_op("cas_0_2");
  old_undef_ = *cas.find_response("old_0");
  old_val_[0] = *cas.find_response("old_1");
  old_val_[1] = *cas.find_response("old_2");
  cell_ = add_object(std::move(cas), "r0");
}

exec::Action CasConsensus::poised(exec::ProcessId,
                                  const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const int input = static_cast<int>(state.words[1]);
  return exec::Action::invoke(cell_, cas_to_[input]);
}

exec::LocalState CasConsensus::advance(exec::ProcessId,
                                       const exec::LocalState& state,
                                       spec::ResponseId response) const {
  const int input = static_cast<int>(state.words[1]);
  if (response == old_undef_) {
    return make_decided(input);  // won the race
  }
  if (response == old_val_[0]) return make_decided(0);
  RCONS_CHECK(response == old_val_[1]);
  return make_decided(1);
}

}  // namespace rcons::algo
