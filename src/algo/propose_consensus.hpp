// The naive consensus-object protocol — and why crash-recovery breaks it.
//
// An m-ported consensus object decides the first proposal and echoes it to
// the next m-1 proposers, then wedges ("full", responding bot). The
// obvious protocol — propose your input, decide the response — is
// wait-free correct for up to m+1 processes (the (m+1)-th proposal still
// echoes the winner). Under crash-recovery it is BROKEN for every process
// count >= 2: a crashed process re-proposes, each retry burns a port, and
// once the object wedges the bot arm fabricates a decision.
//
// This is the readable-type twin of the T_{n,n'} overload experiment (E5):
// the type's recoverable consensus number is m (it is m-recording, E1),
// but reaching that power needs the read-before-apply discipline of
// RecordingConsensus, not naive re-proposing. The model checker exhibits
// the exact crash schedule that kills this protocol.
#pragma once

#include "algo/protocol_base.hpp"

namespace rcons::algo {

class NaiveProposeConsensus : public ProtocolBase {
 public:
  /// `m` ports on the consensus object; `processes` participants.
  NaiveProposeConsensus(int m, int processes);

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;
  bool process_symmetric() const override { return true; }

 private:
  exec::ObjectId obj_;
  spec::OpId propose_[2];
  spec::ResponseId val_[2];
  spec::ResponseId bot_;
};

}  // namespace rcons::algo
