// The classic 2-process test&set consensus protocol — and why recovery
// breaks it (Golab, SPAA 2020: test&set has consensus number 2 but
// recoverable consensus number 1).
//
// Protocol (crash-free correct): p_i writes its input to register R_i,
// applies tas; the winner decides its own input, the loser reads the other
// register and decides that. Under crash-recovery the winner can crash
// after its tas but before deciding: on recovery it re-runs, loses its own
// race, and adopts the other process's input — while the original loser has
// already adopted the crashed winner's input. The model checker exhibits
// this two-crash-free-steps-plus-one-crash violation (experiment E6).
#pragma once

#include "algo/protocol_base.hpp"

namespace rcons::algo {

class TasRacingConsensus : public ProtocolBase {
 public:
  TasRacingConsensus();

  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override;
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override;

 private:
  exec::ObjectId tas_obj_;
  exec::ObjectId reg_[2];
  spec::OpId tas_op_;
  spec::ResponseId tas_won_;
  spec::OpId reg_write_[2];  // write_0 / write_1 on the registers
  spec::OpId reg_read_;
  spec::ResponseId reg_val_[2];  // read responses "r0"/"r1"
};

}  // namespace rcons::algo
