#include "algo/recording_consensus.hpp"

#include <sstream>

#include "spec/catalog.hpp"
#include "util/assert.hpp"

namespace rcons::algo {

namespace {
// Phases of the per-node step program (words[0]).
constexpr std::int64_t kPhaseWriteProp = 0;
constexpr std::int64_t kPhaseRead1 = 1;
constexpr std::int64_t kPhaseApply = 2;
constexpr std::int64_t kPhaseRead2 = 3;
constexpr std::int64_t kPhaseReadProp = 4;

// words layout: [phase, input, path_pos, current_value, decoded_team]
constexpr std::size_t kWInput = 1;
constexpr std::size_t kWPathPos = 2;
constexpr std::size_t kWValue = 3;
constexpr std::size_t kWTeam = 4;
}  // namespace

RecordingConsensus::RecordingConsensus(const spec::ObjectType& type, int n,
                                       bool relax_proposal_writes)
    : ProtocolBase("recording_consensus(" + type.name() +
                       ",n=" + std::to_string(n) +
                       (relax_proposal_writes ? ",relaxed" : "") + ")",
                   n),
      relax_proposal_writes_(relax_proposal_writes) {
  RCONS_CHECK_MSG(type.is_readable(),
                  "recording consensus requires a readable type");
  read_op_ = *type.read_op();
  read_resp_value_.assign(static_cast<std::size_t>(type.response_count()), -1);
  for (spec::ValueId v = 0; v < type.value_count(); ++v) {
    read_resp_value_[static_cast<std::size_t>(
        type.apply(v, read_op_).response)] = v;
  }

  // Proposal register vocabulary (identical across instances).
  {
    const spec::ObjectType reg = spec::make_register(3);
    prop_write_[0] = *reg.find_op("write_1");
    prop_write_[1] = *reg.find_op("write_2");
    prop_read_ = *reg.find_op("read");
    prop_resp_[0] = *reg.find_response("r0");
    prop_resp_[1] = *reg.find_response("r1");
    prop_resp_[2] = *reg.find_response("r2");
  }

  paths_.resize(static_cast<std::size_t>(n));
  if (n >= 2) {
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    build_node(type, all);
  }
}

int RecordingConsensus::build_node(const spec::ObjectType& type,
                                   const std::vector<int>& pids) {
  const int k = static_cast<int>(pids.size());
  RCONS_CHECK(k >= 2);
  const hierarchy::RecordingResult result =
      hierarchy::check_recording_nonhiding(type, k);
  RCONS_CHECK_MSG(result.holds, "type ", type.name(),
                  " has no non-hiding ", k, "-recording witness");
  const hierarchy::Assignment& witness = *result.witness;

  Node node;
  node.pids = pids;
  node.u = witness.initial_value;
  node.value_team = hierarchy::compute_value_teams(type, witness);
  node.team_of_pid.assign(static_cast<std::size_t>(process_count()), -1);
  node.op_of_pid.assign(static_cast<std::size_t>(process_count()), -1);
  std::vector<int> team_members[2];
  for (int i = 0; i < k; ++i) {
    const int pid = pids[static_cast<std::size_t>(i)];
    const int team = witness.team_of[static_cast<std::size_t>(i)];
    node.team_of_pid[static_cast<std::size_t>(pid)] = team;
    node.op_of_pid[static_cast<std::size_t>(pid)] =
        witness.ops[static_cast<std::size_t>(i)];
    team_members[team].push_back(pid);
  }

  // Children first so per-pid paths come out bottom-up.
  for (int team = 0; team <= 1; ++team) {
    if (team_members[team].size() >= 2) {
      build_node(type, team_members[team]);
    }
  }

  node.object = add_object(type, type.value_name(node.u));
  node.prop[0] = add_object(spec::make_register(3), "r0");
  node.prop[1] = add_object(spec::make_register(3), "r0");

  nodes_.push_back(std::move(node));
  const int idx = static_cast<int>(nodes_.size()) - 1;
  for (int pid : pids) {
    paths_[static_cast<std::size_t>(pid)].push_back(idx);
  }
  return idx;
}

exec::Action RecordingConsensus::poised(exec::ProcessId pid,
                                        const exec::LocalState& state) const {
  if (is_decided(state)) return exec::Action::decided(decision_of(state));
  const auto& path = paths_[static_cast<std::size_t>(pid)];
  if (path.empty()) {
    // Single-process instance: decide the input directly.
    return exec::Action::decided(static_cast<int>(state.words[kWInput]));
  }
  const std::int64_t phase = state.words[0];
  const auto pos = static_cast<std::size_t>(state.words[kWPathPos]);
  RCONS_CHECK(pos < path.size());
  const Node& nd = node(path[pos]);
  switch (phase) {
    case kPhaseWriteProp: {
      const int team = nd.team_of_pid[static_cast<std::size_t>(pid)];
      const auto value = static_cast<std::size_t>(state.words[kWValue]);
      RCONS_CHECK(value <= 1);
      return relax_proposal_writes_
                 ? exec::Action::invoke_relaxed(nd.prop[team],
                                                prop_write_[value])
                 : exec::Action::invoke(nd.prop[team], prop_write_[value]);
    }
    case kPhaseRead1:
    case kPhaseRead2:
      return exec::Action::invoke(nd.object, read_op_);
    case kPhaseApply:
      return exec::Action::invoke(
          nd.object, nd.op_of_pid[static_cast<std::size_t>(pid)]);
    case kPhaseReadProp: {
      const auto team = static_cast<std::size_t>(state.words[kWTeam]);
      RCONS_CHECK(team <= 1);
      return exec::Action::invoke(nd.prop[team], prop_read_);
    }
    default:
      RCONS_CHECK_MSG(false, "bad phase ", phase);
  }
  return exec::Action::decided(0);  // unreachable
}

exec::LocalState RecordingConsensus::advance(exec::ProcessId pid,
                                             const exec::LocalState& state,
                                             spec::ResponseId response) const {
  const auto& path = paths_[static_cast<std::size_t>(pid)];
  RCONS_CHECK(!path.empty());
  const std::int64_t phase = state.words[0];
  const auto pos = static_cast<std::size_t>(state.words[kWPathPos]);
  const Node& nd = node(path[pos]);
  exec::LocalState next = state;

  const auto decode_and_go_read_prop =
      [&](spec::ResponseId read_resp) -> exec::LocalState {
    const spec::ValueId v = read_resp_value_[static_cast<std::size_t>(read_resp)];
    RCONS_CHECK(v >= 0);
    if (v == static_cast<spec::ValueId>(nd.u)) {
      // Object still at u: nobody has applied (non-hiding witness), so it
      // is our turn to apply our operation.
      next.words[0] = kPhaseApply;
      return next;
    }
    const int team = nd.value_team[static_cast<std::size_t>(v)];
    if (team < 0) {
      // Unreachable for a valid witness; stay total rather than aborting so
      // the model checker can surface the bug as an agreement/validity
      // violation instead of killing the process.
      return make_decided(0);
    }
    next.words[kWTeam] = team;
    next.words[0] = kPhaseReadProp;
    return next;
  };

  switch (phase) {
    case kPhaseWriteProp:
      next.words[0] = kPhaseRead1;
      return next;
    case kPhaseRead1:
      return decode_and_go_read_prop(response);
    case kPhaseApply:
      next.words[0] = kPhaseRead2;
      return next;
    case kPhaseRead2: {
      exec::LocalState after = decode_and_go_read_prop(response);
      // After our own application the object cannot read as u again.
      RCONS_CHECK_MSG(after.words.empty() || after.words[0] != kPhaseApply,
                      "non-hiding witness read u after an application");
      return after;
    }
    case kPhaseReadProp: {
      int value = -1;
      if (response == prop_resp_[1]) value = 0;
      if (response == prop_resp_[2]) value = 1;
      if (value < 0) {
        // PROP[x] unset would mean the first team's proposal was missing —
        // impossible for a correct witness; stay total (see above).
        return make_decided(0);
      }
      next.words[kWValue] = value;
      if (pos + 1 == path.size()) {
        return make_decided(value);
      }
      next.words[kWPathPos] = static_cast<std::int64_t>(pos + 1);
      next.words[0] = kPhaseWriteProp;
      next.words[kWTeam] = -1;
      return next;
    }
    default:
      RCONS_CHECK_MSG(false, "bad phase ", phase);
  }
  return state;  // unreachable
}

std::string RecordingConsensus::describe_state(
    exec::ProcessId pid, const exec::LocalState& state) const {
  if (is_decided(state)) {
    return "p" + std::to_string(pid) + "[decided " +
           std::to_string(decision_of(state)) + "]";
  }
  static const char* kPhaseNames[] = {"write_prop", "read1", "apply", "read2",
                                      "read_prop"};
  std::ostringstream oss;
  oss << "p" << pid << "[" << kPhaseNames[state.words[0]] << " node#"
      << state.words[kWPathPos] << " v=" << state.words[kWValue] << "]";
  return oss.str();
}

exec::LocalState RecordingConsensus::initial_state(exec::ProcessId pid,
                                                   int input) const {
  (void)pid;
  RCONS_CHECK(input == 0 || input == 1);
  exec::LocalState s;
  s.words = {kPhaseWriteProp, input, 0, input, -1};
  return s;
}

}  // namespace rcons::algo
