// Events and schedules (Section 2).
//
// "An execution consists of an alternating sequence of configurations and
// events, each of which is either a step or a crash of some process." A
// schedule is the projection of an execution onto its events; we write
// steps as the process id and crashes as c_i, matching the paper.
#pragma once

#include <string>
#include <vector>

#include "exec/protocol.hpp"

namespace rcons::exec {

struct Event {
  enum class Kind { kStep, kCrash };

  Kind kind = Kind::kStep;
  ProcessId pid = 0;

  static Event step(ProcessId pid) { return Event{Kind::kStep, pid}; }
  static Event crash(ProcessId pid) { return Event{Kind::kCrash, pid}; }

  bool is_step() const { return kind == Kind::kStep; }
  bool is_crash() const { return kind == Kind::kCrash; }

  friend bool operator==(const Event&, const Event&) = default;
};

using Schedule = std::vector<Event>;

/// Renders a schedule in the paper's notation, e.g. "p0 p1 c1 p0".
std::string schedule_to_string(const Schedule& schedule);

/// Builds a crash-free schedule of steps from process ids.
Schedule steps(const std::vector<ProcessId>& pids);

/// The paper's lambda_k: the schedule c_k c_{k+1} ... c_{n-1} in which the
/// processes with ids k..n-1 crash once each, in order.
Schedule lambda_schedule(int k, int n);

inline std::string schedule_to_string(const Schedule& schedule) {
  std::string out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) out += " ";
    out += schedule[i].is_crash() ? "c" : "p";
    out += std::to_string(schedule[i].pid);
  }
  return out.empty() ? "<>" : out;
}

inline Schedule steps(const std::vector<ProcessId>& pids) {
  Schedule s;
  s.reserve(pids.size());
  for (ProcessId pid : pids) s.push_back(Event::step(pid));
  return s;
}

inline Schedule lambda_schedule(int k, int n) {
  Schedule s;
  for (int i = k; i < n; ++i) s.push_back(Event::crash(i));
  return s;
}

}  // namespace rcons::exec
