#include "exec/execute.hpp"

#include <sstream>

#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace rcons::exec {

EventOutcome apply_event(const Protocol& protocol, Config& config,
                         Event event, DecisionLog& log) {
  EventOutcome out;
  out.event = event;
  const ProcessId pid = event.pid;
  RCONS_CHECK(pid >= 0 && pid < config.process_count());

  if (event.is_crash()) {
    config.set_local(pid, protocol.initial_state(pid, config.input(pid)));
    // In the model a crash resets and immediately recovers (shared memory
    // persists, volatile local state is lost), so the two trace events are
    // adjacent and share the post-reset hash.
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kCrash, pid, -1, -1, -1, -1,
                                  config.hash(), -1});
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kRecover, pid, -1, -1, -1, -1,
                                  config.hash(), -1});
    return out;
  }

  const Action action = protocol.poised(pid, config.local(pid));
  if (action.kind == Action::Kind::kDecided) {
    // Steps in output states are no-ops.
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kStep, pid, -1, -1, -1, -1,
                                  config.hash(), -1});
    return out;
  }

  out.was_invoke = true;
  out.object = action.object;
  out.op = action.op;
  // AOT backend hook: a protocol that carries packed tables steps through
  // them; the tables are entry-identical to ObjectType::apply, so the two
  // paths cannot diverge (DESIGN.md §14).
  const spec::PackedDelta* packed = protocol.packed_delta(action.object);
  const spec::Effect effect =
      packed != nullptr
          ? packed->effect(config.value(action.object), action.op)
          : protocol.object_type(action.object)
                .apply(config.value(action.object), action.op);
  out.response = effect.response;
  config.set_value(action.object, effect.next_value);
  LocalState next = protocol.advance(pid, config.local(pid), effect.response);
  config.set_local(pid, std::move(next));

  RCONS_TRACE(trace::TraceEvent{trace::Kind::kStep, pid, action.object,
                                action.op, effect.response, -1, config.hash(),
                                -1});

  const Action after = protocol.poised(pid, config.local(pid));
  if (after.kind == Action::Kind::kDecided) {
    out.decision = after.decision;
    log.record(pid, after.decision);
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kDecide, pid, -1, -1, -1,
                                  after.decision, config.hash(), -1});
  }
  return out;
}

ExecutionResult run_schedule(const Protocol& protocol, Config start,
                             const Schedule& schedule, DecisionLog log) {
  if (log.decided.empty()) {
    log = DecisionLog(start.process_count());
  }
  ExecutionResult result{std::move(start), std::move(log), {}};
  result.outcomes.reserve(schedule.size());
  for (const Event& event : schedule) {
    result.outcomes.push_back(
        apply_event(protocol, result.config, event, result.log));
  }
  return result;
}

std::optional<int> solo_terminating_decision(const Protocol& protocol,
                                             Config start, ProcessId pid,
                                             int max_steps) {
  DecisionLog log(start.process_count());
  Config config = std::move(start);
  // Already in an output state?
  {
    const Action action = protocol.poised(pid, config.local(pid));
    if (action.kind == Action::Kind::kDecided) return action.decision;
  }
  for (int i = 0; i < max_steps; ++i) {
    const EventOutcome out =
        apply_event(protocol, config, Event::step(pid), log);
    if (out.decision.has_value()) return out.decision;
  }
  return std::nullopt;
}

std::string render_execution(const Protocol& protocol,
                             const ExecutionResult& result) {
  std::ostringstream oss;
  for (const EventOutcome& out : result.outcomes) {
    if (out.event.is_crash()) {
      oss << "  c" << out.event.pid << "  (crash: p" << out.event.pid
          << " resets to its initial state)\n";
      continue;
    }
    oss << "  p" << out.event.pid;
    if (out.was_invoke) {
      const spec::ObjectType& type = protocol.object_type(out.object);
      oss << "  applies " << type.op_name(out.op) << " on O" << out.object
          << " -> " << type.response_name(out.response);
    } else {
      oss << "  (no-op: already in an output state)";
    }
    if (out.decision.has_value()) {
      oss << "  [decides " << *out.decision << "]";
    }
    oss << "\n";
  }
  oss << "  final: " << result.config.describe(protocol) << "\n";
  return oss.str();
}

}  // namespace rcons::exec
