// The algorithm model of Section 2.
//
// "An algorithm defines a set of objects, an initial value for each of these
// objects, and an initial state for each process. Furthermore, for every
// state of every process, an algorithm defines the next step that process
// will apply. A step can be an operation applied to some object or a no op.
// ... If a process takes a step when it is in an output state, that step is
// always a no op."
//
// A Protocol realizes this: per-process deterministic state machines over
// shared objects of finite deterministic types. Local states are small
// integer vectors so the exhaustive tools can hash and memoize them; word 0
// is conventionally a program counter but the framework does not care.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/object_type.hpp"
#include "spec/packed_delta.hpp"
#include "util/hashing.hpp"

namespace rcons::exec {

using ProcessId = int;
using ObjectId = int;

/// A process's volatile local state. Reset to the initial state on a crash.
struct LocalState {
  std::vector<std::int64_t> words;

  friend bool operator==(const LocalState&, const LocalState&) = default;
};

struct LocalStateHash {
  std::size_t operator()(const LocalState& s) const {
    return static_cast<std::size_t>(hash_vector(s.words));
  }
};

/// What a process is poised to do in its current local state.
struct Action {
  enum class Kind {
    /// Apply `op` to object `object`.
    kInvoke,
    /// The process is in an output state with decision `decision`; any
    /// further step is a no-op (per the model).
    kDecided,
  };

  Kind kind = Kind::kInvoke;
  ObjectId object = 0;
  spec::OpId op = 0;
  int decision = -1;
  /// Whether the invocation carries its persist barrier. The paper's
  /// model persists every operation as part of the step, so plain
  /// invoke() (durable) is the default and every engine treats it as
  /// before. invoke_relaxed() marks a store that becomes durable only at
  /// a later barrier — the shadow-persistency analyses (rules RC004 and
  /// RC005) and the strict live runtime give such writes crash-drop
  /// semantics.
  bool durable = true;

  static Action invoke(ObjectId object, spec::OpId op) {
    Action a;
    a.kind = Kind::kInvoke;
    a.object = object;
    a.op = op;
    return a;
  }
  static Action invoke_relaxed(ObjectId object, spec::OpId op) {
    Action a = invoke(object, op);
    a.durable = false;
    return a;
  }
  static Action decided(int value) {
    Action a;
    a.kind = Kind::kDecided;
    a.decision = value;
    return a;
  }
};

/// A deterministic consensus algorithm for a fixed number of processes over
/// a fixed set of shared objects. Implementations must be stateless: all
/// per-execution state lives in LocalState and the object values, so the
/// exhaustive tools can replay and branch executions freely.
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  /// Number of processes p_0 .. p_{n-1}.
  virtual int process_count() const = 0;

  /// Number of shared objects O_0 .. O_{m-1}.
  virtual int object_count() const = 0;

  /// The (finite deterministic) type of each object.
  virtual const spec::ObjectType& object_type(ObjectId obj) const = 0;

  /// The initial value of each object.
  virtual spec::ValueId initial_value(ObjectId obj) const = 0;

  /// The initial local state of process `pid` with consensus input `input`
  /// (binary consensus: input is 0 or 1). Crashes reset to exactly this.
  virtual LocalState initial_state(ProcessId pid, int input) const = 0;

  /// The next step the process will apply from `state` (deterministic).
  virtual Action poised(ProcessId pid, const LocalState& state) const = 0;

  /// The successor state after the process's invocation returns `response`.
  /// Only called when poised(pid, state) is an invoke.
  virtual LocalState advance(ProcessId pid, const LocalState& state,
                             spec::ResponseId response) const = 0;

  /// Optional human-readable rendering of a local state (for traces).
  virtual std::string describe_state(ProcessId pid,
                                     const LocalState& state) const;

  /// Whether the algorithm treats processes interchangeably: name(),
  /// initial_state(), poised() and advance() must not depend on `pid` (two
  /// processes with the same input and local state behave identically).
  /// Declaring true lets the model checker quotient configurations by
  /// input-preserving process permutations (see src/reduction/). The
  /// declaration is audited semantically by
  /// reduction::verify_process_symmetry. Default: false (no reduction).
  virtual bool process_symmetric() const { return false; }

  /// Optional branch-free delta table for object `obj` (the AOT backend,
  /// DESIGN.md §14). When non-null, apply_event steps the object through
  /// the packed table instead of ObjectType::apply; the table must agree
  /// with object_type(obj) entry for entry (codegen::AcceleratedProtocol
  /// verifies this before serving one). The returned pointer must stay
  /// valid for the protocol's lifetime. Default: nullptr (the
  /// interpreter path — behaviour is identical either way).
  virtual const spec::PackedDelta* packed_delta(ObjectId) const {
    return nullptr;
  }

  /// Optional crash-budget annotation: the maximum number of crashes per
  /// process per execution this protocol claims to tolerate (the solo
  /// projection of the paper's E_z sets; see sched::CrashAccountant for
  /// the full budget arithmetic). Rule RC006 audits the claim by
  /// exhaustive solo exploration within the declared budget. Return -1
  /// (the default) to declare nothing.
  virtual int declared_crash_budget() const { return -1; }
};

}  // namespace rcons::exec
