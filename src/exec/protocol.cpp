#include "exec/protocol.hpp"

#include <sstream>

namespace rcons::exec {

std::string Protocol::describe_state(ProcessId pid,
                                     const LocalState& state) const {
  std::ostringstream oss;
  oss << "p" << pid << "[";
  for (std::size_t i = 0; i < state.words.size(); ++i) {
    if (i != 0) oss << ",";
    oss << state.words[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace rcons::exec
