// Execution backend selection (DESIGN.md §14).
//
// kInterp is the original interpreter: every engine steps object types
// through ObjectType::apply and explores heap-allocated Configs. kAot
// routes the same engines through the ahead-of-time stepper layer
// (spec/packed_delta.hpp + src/codegen/): branch-free packed delta tables
// — compiled in by rcons_codegen when the type was seen at build time,
// re-encoded at runtime otherwise — and, for the serial valency engines, a
// packed-tuple state representation. The two backends are BIT-IDENTICAL
// in every result field; only throughput differs. Interp stays the
// default everywhere.
#pragma once

#include <string_view>

namespace rcons::exec {

enum class Backend {
  kInterp,
  kAot,
};

inline const char* backend_name(Backend backend) {
  return backend == Backend::kAot ? "aot" : "interp";
}

/// Parses "aot" | "interp" (the --backend= spellings).
inline bool parse_backend(std::string_view text, Backend* out) {
  if (text == "aot") {
    *out = Backend::kAot;
    return true;
  }
  if (text == "interp") {
    *out = Backend::kInterp;
    return true;
  }
  return false;
}

}  // namespace rcons::exec
