// The execution engine: applies events to configurations per the model.
//
// A step by p_i applies the operation p_i is poised to apply (or is a no-op
// if p_i is in an output state); a crash c_i resets p_i's local state to its
// initial state while every shared object keeps its value (non-volatile
// memory). Decisions are properties of executions, not configurations: once
// a process outputs v, "p_i has output v" holds in every extension, even if
// p_i later crashes. ExecutionResult therefore carries the decision log
// separately from the final configuration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exec/config.hpp"
#include "exec/event.hpp"
#include "exec/protocol.hpp"

namespace rcons::exec {

/// What happened when one event was applied.
struct EventOutcome {
  Event event;
  /// For invoke steps: the object/op/response involved.
  bool was_invoke = false;
  ObjectId object = -1;
  spec::OpId op = -1;
  spec::ResponseId response = -1;
  /// Set when this step moved the process into an output state.
  std::optional<int> decision;
};

/// Per-execution decision bookkeeping.
struct DecisionLog {
  /// decided[pid] = last value output by pid in this execution, or -1.
  std::vector<int> decided;
  /// Union of all values ever output in this execution (survives crashes).
  bool output_0 = false;
  bool output_1 = false;

  explicit DecisionLog(int process_count = 0)
      : decided(static_cast<std::size_t>(process_count), -1) {}

  void record(ProcessId pid, int value) {
    decided[static_cast<std::size_t>(pid)] = value;
    if (value == 0) output_0 = true;
    if (value == 1) output_1 = true;
  }

  bool any_output() const { return output_0 || output_1; }
  bool agreement_violated() const { return output_0 && output_1; }

  /// True iff some process has output `v` in this execution.
  bool has_output(int v) const { return v == 0 ? output_0 : output_1; }
};

/// Applies one event in place; returns what happened. A crash of a decided
/// process erases its *state* but the decision stays recorded in `log`.
EventOutcome apply_event(const Protocol& protocol, Config& config,
                         Event event, DecisionLog& log);

/// Result of running a schedule.
struct ExecutionResult {
  Config config;
  DecisionLog log;
  std::vector<EventOutcome> outcomes;
};

/// exec(C, sigma): runs the events of `schedule` from `start`.
/// `log` seeds the decision bookkeeping (pass a fresh DecisionLog to treat
/// `start` as the beginning of the execution).
ExecutionResult run_schedule(const Protocol& protocol, Config start,
                             const Schedule& schedule,
                             DecisionLog log = DecisionLog{});

/// Runs pid solo (steps only, no crashes) from `start` until it decides, up
/// to `max_steps` steps. Returns the decided value, or nullopt if the bound
/// was hit (which for a recoverable wait-free algorithm indicates a bug —
/// solo crash-free runs must terminate).
std::optional<int> solo_terminating_decision(const Protocol& protocol,
                                             Config start, ProcessId pid,
                                             int max_steps = 10000);

/// Pretty-prints an execution (events, responses, decisions) for traces.
std::string render_execution(const Protocol& protocol,
                             const ExecutionResult& result);

}  // namespace rcons::exec
