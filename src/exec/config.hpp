// Configurations (Section 2).
//
// "A configuration of a consensus algorithm consists of a state for each
// process and a value for each object." Inputs are carried alongside so
// that a crash can reset a process to *its* initial state (which depends on
// its input); they are constant within an execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/protocol.hpp"
#include "spec/object_type.hpp"

namespace rcons::exec {

class Config {
 public:
  Config() = default;

  /// The initial configuration of `protocol` for the given binary inputs
  /// (inputs.size() must equal protocol.process_count()).
  static Config initial(const Protocol& protocol,
                        const std::vector<int>& inputs);

  int process_count() const { return static_cast<int>(locals_.size()); }
  int object_count() const { return static_cast<int>(values_.size()); }

  spec::ValueId value(ObjectId obj) const;
  void set_value(ObjectId obj, spec::ValueId v);

  const LocalState& local(ProcessId pid) const;
  void set_local(ProcessId pid, LocalState state);

  int input(ProcessId pid) const;

  /// value(O, C) for all objects, in object order.
  const std::vector<spec::ValueId>& values() const { return values_; }

  /// Indistinguishability to a set of processes: every process in `group`
  /// has the same state in both configurations (C ~Q C'). Object values are
  /// deliberately NOT compared — the paper's lemmas pair this with a
  /// separate "all objects have the same values" condition; see
  /// same_object_values.
  bool indistinguishable_to(const Config& other,
                            const std::vector<ProcessId>& group) const;

  /// "All of the objects have the same values in C and C'".
  bool same_object_values(const Config& other) const;

  /// Stable hash over object values and local states (not inputs, which are
  /// fixed per exploration anyway). Used by the model checker's visited set.
  std::uint64_t hash() const;

  friend bool operator==(const Config&, const Config&) = default;

  /// Debug rendering: object values by name + local states.
  std::string describe(const Protocol& protocol) const;

 private:
  std::vector<spec::ValueId> values_;
  std::vector<LocalState> locals_;
  std::vector<int> inputs_;
};

struct ConfigHash {
  std::size_t operator()(const Config& c) const {
    return static_cast<std::size_t>(c.hash());
  }
};

}  // namespace rcons::exec
