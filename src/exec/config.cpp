#include "exec/config.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace rcons::exec {

Config Config::initial(const Protocol& protocol,
                       const std::vector<int>& inputs) {
  RCONS_CHECK_MSG(static_cast<int>(inputs.size()) == protocol.process_count(),
                  "inputs size ", inputs.size(), " != process count ",
                  protocol.process_count());
  Config c;
  c.values_.resize(static_cast<std::size_t>(protocol.object_count()));
  for (ObjectId obj = 0; obj < protocol.object_count(); ++obj) {
    c.values_[static_cast<std::size_t>(obj)] = protocol.initial_value(obj);
  }
  c.locals_.resize(static_cast<std::size_t>(protocol.process_count()));
  c.inputs_ = inputs;
  for (ProcessId pid = 0; pid < protocol.process_count(); ++pid) {
    c.locals_[static_cast<std::size_t>(pid)] =
        protocol.initial_state(pid, inputs[static_cast<std::size_t>(pid)]);
  }
  return c;
}

spec::ValueId Config::value(ObjectId obj) const {
  RCONS_CHECK(obj >= 0 && obj < object_count());
  return values_[static_cast<std::size_t>(obj)];
}

void Config::set_value(ObjectId obj, spec::ValueId v) {
  RCONS_CHECK(obj >= 0 && obj < object_count());
  values_[static_cast<std::size_t>(obj)] = v;
}

const LocalState& Config::local(ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < process_count());
  return locals_[static_cast<std::size_t>(pid)];
}

void Config::set_local(ProcessId pid, LocalState state) {
  RCONS_CHECK(pid >= 0 && pid < process_count());
  locals_[static_cast<std::size_t>(pid)] = std::move(state);
}

int Config::input(ProcessId pid) const {
  RCONS_CHECK(pid >= 0 && pid < process_count());
  return inputs_[static_cast<std::size_t>(pid)];
}

bool Config::indistinguishable_to(const Config& other,
                                  const std::vector<ProcessId>& group) const {
  for (ProcessId pid : group) {
    if (local(pid) != other.local(pid)) return false;
  }
  return true;
}

bool Config::same_object_values(const Config& other) const {
  return values_ == other.values_;
}

std::uint64_t Config::hash() const {
  std::uint64_t seed = hash_vector(values_);
  for (const LocalState& s : locals_) {
    hash_combine(seed, hash_vector(s.words));
  }
  return seed;
}

std::string Config::describe(const Protocol& protocol) const {
  std::ostringstream oss;
  oss << "objects{";
  for (ObjectId obj = 0; obj < object_count(); ++obj) {
    if (obj != 0) oss << ", ";
    oss << "O" << obj << "="
        << protocol.object_type(obj).value_name(value(obj));
  }
  oss << "} locals{";
  for (ProcessId pid = 0; pid < process_count(); ++pid) {
    if (pid != 0) oss << ", ";
    oss << protocol.describe_state(pid, local(pid));
  }
  oss << "}";
  return oss.str();
}

}  // namespace rcons::exec
