// Exhaustive safety and liveness verification of consensus protocols.
//
// Safety (agreement + validity) is checked over the FULL individual-crash
// model: any process (including p_0) may crash at any time, with no budget.
// This is strictly more adversarial than any E_z / E_z* set, so "safe here"
// implies "safe in the paper's model"; conversely every counterexample
// schedule found is a genuine execution of the model. The state space is
// finite (finite types, finite local-state machines), so the check is
// exact: it explores every reachable (configuration, outputs-so-far) pair.
//
// Agreement is checked in the strong form "at most one distinct value is
// ever output in the execution" (this subsumes the paper's two-process
// phrasing and additionally flags a single process outputting two values
// across a crash).
//
// Recoverable wait-freedom is checked as: from every reachable
// configuration, every process, run solo and crash-free, outputs within a
// bounded number of its own steps. (The paper's condition asks exactly
// that a process "either crashes or outputs a value after a finite number
// of its own steps" from its initial state; quantifying over all reachable
// configurations covers all recovery points.)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exec/backend.hpp"
#include "exec/config.hpp"
#include "exec/event.hpp"
#include "exec/execute.hpp"
#include "exec/protocol.hpp"

namespace rcons::valency {

/// Which crash events the exploration may inject (Section 1 distinguishes
/// INDIVIDUAL crashes — any process, any time — from SIMULTANEOUS crashes,
/// where all processes crash together, modelling whole-machine power
/// failure. The paper's results are about individual crashes; the
/// simultaneous mode exists to contrast the two regimes experimentally).
enum class CrashMode {
  kNone,          // classic wait-free analysis
  kIndividual,    // any single process may crash at any step
  kSimultaneous,  // only the all-processes-at-once crash event
  kBoth,          // individual and simultaneous events
};

struct SafetyOptions {
  CrashMode crash_mode = CrashMode::kIndividual;
  /// Deprecated alias: allow_crashes = false forces CrashMode::kNone.
  bool allow_crashes = true;
  /// Abort exploration beyond this many (config, mask) states.
  std::size_t max_states = 5'000'000;
  /// Exploration threads. 1 (the default) runs the original serial
  /// engine; > 1 runs the level-synchronous parallel engine, whose
  /// deterministic reduction makes EVERY result field — verdict,
  /// violation string, counterexample schedule, states_visited,
  /// configs_visited, explored_fully — bit-identical to the serial
  /// engine's for any thread count (see DESIGN.md §7; pinned by
  /// tests/parallel_diff_test.cpp). 0 means util::hardware_threads().
  int threads = 1;
  /// Quotient the exploration by process symmetry (DESIGN.md §10). Takes
  /// effect only when the protocol declares process_symmetric(); verdicts
  /// are unchanged, counterexample schedules are rewritten back into real
  /// executions, and the serial/parallel bit-identity contract holds
  /// within the reduced mode (state counts differ from the unreduced run
  /// by construction — that is the point).
  bool reduce_symmetry = false;
  /// Which exec backend steps objects (DESIGN.md §14). kInterp (default)
  /// is ObjectType::apply; kAot runs the packed-table engines over
  /// compiled-in steppers (model_checker_aot.cpp). EVERY result field is
  /// bit-identical across backends for any thread count — the AOT path is
  /// purely a performance choice (pinned by tests/codegen_test.cpp).
  exec::Backend backend = exec::Backend::kInterp;

  CrashMode effective_mode() const {
    return allow_crashes ? crash_mode : CrashMode::kNone;
  }
};

struct SafetyResult {
  bool explored_fully = false;   // false if max_states was hit
  bool agreement_ok = true;
  bool validity_ok = true;
  std::size_t states_visited = 0;
  std::size_t configs_visited = 0;
  /// On violation: a schedule from the initial configuration reproducing it.
  std::optional<exec::Schedule> counterexample;
  std::string violation;  // human-readable description

  bool ok() const { return agreement_ok && validity_ok; }
};

/// Three-way reading of a SafetyResult. A truncated exploration that found
/// no violation proves NOTHING — callers must surface kInconclusive, never
/// "safe" (pinned by tests for both engines).
enum class SafetyVerdict { kSafe, kViolation, kInconclusive };

SafetyVerdict safety_verdict(const SafetyResult& result);
/// "SAFE" | "VIOLATION" | "INCONCLUSIVE" (what rcons_cli prints).
std::string_view safety_verdict_name(const SafetyResult& result);

/// Exhaustively checks agreement and validity for the given inputs.
SafetyResult check_safety(const exec::Protocol& protocol,
                          const std::vector<int>& inputs,
                          const SafetyOptions& options = {});

/// Runs check_safety over every input vector in {0,1}^n.
SafetyResult check_safety_all_inputs(const exec::Protocol& protocol,
                                     const SafetyOptions& options = {});

struct LivenessOptions {
  bool allow_crashes = true;
  std::size_t max_states = 2'000'000;
  /// Solo-run step bound per (config, process) probe.
  int solo_step_bound = 1000;
  /// Same contract as SafetyOptions::threads: 1 = serial engine, > 1 =
  /// parallel engine with bit-identical results, 0 = hardware threads.
  int threads = 1;
  /// Same contract as SafetyOptions::reduce_symmetry.
  bool reduce_symmetry = false;
  /// Same contract as SafetyOptions::backend.
  exec::Backend backend = exec::Backend::kInterp;
};

struct LivenessResult {
  bool explored_fully = false;
  bool wait_free = true;
  std::size_t configs_probed = 0;
  /// On violation: the process that failed to output solo.
  int stuck_pid = -1;
  std::optional<exec::Schedule> reaching_schedule;
};

/// Three-way reading of a LivenessResult, mirroring safety_verdict: a
/// truncated scan that found no stuck process is kInconclusive.
enum class LivenessVerdict { kWaitFree, kNotWaitFree, kInconclusive };

LivenessVerdict liveness_verdict(const LivenessResult& result);
/// "YES" | "NO" | "INCONCLUSIVE" (what rcons_cli prints).
std::string_view liveness_verdict_name(const LivenessResult& result);

/// Checks recoverable wait-freedom (solo termination from every reachable
/// configuration) for the given inputs.
LivenessResult check_recoverable_wait_freedom(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const LivenessOptions& options = {});

/// All input vectors in {0,1}^n for an n-process protocol.
std::vector<std::vector<int>> all_binary_inputs(int n);

/// The input vectors an all-inputs driver must cover: all of {0,1}^n, or —
/// when `reduce_symmetry` is set and the protocol declares
/// process_symmetric() — only the sorted orbit representatives under
/// process permutation (a violation for any vector maps to a violation for
/// its sorted form by relabeling the execution). Shared by the library
/// drivers and the CLI's verify command so they skip identically.
std::vector<std::vector<int>> driver_input_vectors(
    const exec::Protocol& protocol, bool reduce_symmetry);

}  // namespace rcons::valency
