// Internal vocabulary shared by the serial and parallel exploration
// engines in model_checker.cpp / model_checker_parallel.cpp.
//
// Both engines enumerate the same search graph over (configuration,
// outputs-so-far-mask) nodes and MUST agree bit-for-bit on every field of
// their results (the differential suite in tests/parallel_diff_test.cpp
// pins this). The shared pieces here are the node type, the fixed
// transition order, and the violation message formats; keeping them in one
// place is what makes "identical violation strings" a structural property
// rather than a testing accident.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "exec/config.hpp"
#include "exec/event.hpp"
#include "util/hashing.hpp"
#include "valency/model_checker.hpp"

namespace rcons::valency::detail {

/// The parallel engines (model_checker_parallel.cpp). Reached only through
/// check_safety / check_safety_all_inputs / check_recoverable_wait_freedom
/// when options.threads != 1.
SafetyResult check_safety_parallel(const exec::Protocol& protocol,
                                   const std::vector<int>& inputs,
                                   const SafetyOptions& options);
SafetyResult check_safety_all_inputs_parallel(const exec::Protocol& protocol,
                                              const SafetyOptions& options);
LivenessResult check_liveness_parallel(const exec::Protocol& protocol,
                                       const std::vector<int>& inputs,
                                       const LivenessOptions& options);

/// The AOT backend's engines (model_checker_aot.cpp). Reached through the
/// same entry points when options.backend == exec::Backend::kAot; results
/// are bit-identical to the interpreter engines' by construction.
SafetyResult check_safety_aot(const exec::Protocol& protocol,
                              const std::vector<int>& inputs,
                              const SafetyOptions& options);
LivenessResult check_liveness_aot(const exec::Protocol& protocol,
                                  const std::vector<int>& inputs,
                                  const LivenessOptions& options);

/// Exploration node: a configuration plus the monotone mask of values
/// output so far (bit v = some process output v in this execution).
struct Node {
  exec::Config config;
  unsigned mask = 0;

  friend bool operator==(const Node&, const Node&) = default;
};

struct NodeHash {
  std::size_t operator()(const Node& n) const {
    std::uint64_t seed = n.config.hash();
    hash_combine(seed, n.mask);
    return static_cast<std::size_t>(seed);
  }
};

/// Transition indexing, identical to the serial expansion order:
///   t = 2*pid     -> step(pid)
///   t = 2*pid + 1 -> crash(pid)        (individual-crash modes only)
///   t = 2*n       -> simultaneous crash c_0 .. c_{n-1}  (safety only)
/// A node's transitions are explored in increasing t; a level's nodes in
/// increasing frontier index. "slot" = node_index * transitions_per_node
/// + t totally orders one level's expansions exactly as the serial FIFO
/// engine performs them.
inline int transitions_per_node(int n) { return 2 * n + 1; }

inline bool transition_is_step(int t, int n) { return t < 2 * n && t % 2 == 0; }
inline bool transition_is_crash(int t, int n) {
  return t < 2 * n && t % 2 == 1;
}
inline bool transition_is_simultaneous(int t, int n) { return t == 2 * n; }
inline int transition_pid(int t) { return t / 2; }

/// The schedule segment a transition contributes to a counterexample.
inline exec::Schedule transition_segment(int t, int n) {
  if (transition_is_simultaneous(t, n)) {
    exec::Schedule all_crash;
    for (int pid = 0; pid < n; ++pid) {
      all_crash.push_back(exec::Event::crash(pid));
    }
    return all_crash;
  }
  const int pid = transition_pid(t);
  return {transition_is_step(t, n) ? exec::Event::step(pid)
                                   : exec::Event::crash(pid)};
}

/// "agreement: distinct values 0 and 1 were output" — shared by both
/// engines so violation strings match bit-for-bit. `mask` is the
/// outputs-so-far mask at the moment of the violation (>= 2 bits set).
inline std::string agreement_message(unsigned mask) {
  std::string values;
  for (int v = 0; v < 32; ++v) {
    if ((mask >> v) & 1u) {
      if (!values.empty()) values += " and ";
      values += std::to_string(v);
    }
  }
  return "agreement: distinct values " + values + " were output";
}

inline std::string validity_message(int pid, int value) {
  return "validity: p" + std::to_string(pid) + " output " +
         std::to_string(value) + " which is nobody's input";
}

/// Every node the engines ever store satisfies popcount(mask) <= 1 and
/// contains no invalid output bit: an expansion that would produce a
/// >= 2-bit or invalid mask is reported as a violation BEFORE the node is
/// inserted. The parallel engine's reconstruction of the serial visited
/// counts relies on this invariant (a violating node can never collide
/// with an already-visited one).
inline bool node_mask_invariant(unsigned mask) {
  return std::popcount(mask) <= 1;
}

}  // namespace rcons::valency::detail
