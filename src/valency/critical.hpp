// Critical executions and the configuration classification of Section 3.
//
// This module mechanizes the objects the paper's proofs construct:
//   * a CRITICAL execution alpha (bivalent w.r.t. E_z*, every one-event
//     admissible extension univalent — one-event suffices because
//     univalence persists along extensions, Observation 2);
//   * the TEAMS at C-alpha: p_i is on team v if alpha-p_i is v-univalent
//     (Lemma 7 guarantees both teams are nonempty);
//   * the common poised object O (Lemma 9: in a critical execution every
//     process is poised to access the same object);
//   * the classification of C-alpha as an n-RECORDING configuration,
//     a v-HIDING configuration, or neither (Observation 11), computed from
//     the sets U_x of O-values reachable by one-shot schedules of the
//     poised operations.
// Theorem 13's walk ends in an n-recording configuration whose poised
// object witnesses that its *type* is n-recording; find_critical_execution
// plus classify_critical let the tests and examples replay that argument
// on concrete protocols and cross-check the result against the standalone
// recording checker (experiment E3).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exec/event.hpp"
#include "exec/protocol.hpp"
#include "valency/valence.hpp"

namespace rcons::valency {

struct CriticalSearchOptions {
  int z = 1;
  int credit_cap = 6;
  /// Abort the greedy walk after this many events.
  std::size_t max_walk_events = 2000;
  std::size_t max_states = 2'000'000;
  /// If nonempty, the greedy walk only takes events by these processes
  /// (criticality itself is still judged against ALL one-event
  /// extensions). Theorem 13's chain construction uses this to follow the
  /// paper's "alpha_i contains only events by p_{n-i}..p_{n-1}" stages.
  std::vector<int> allowed_pids;
};

struct ConfigClass {
  /// U_x = O-values reachable by nonempty one-shot schedules of the poised
  /// operations whose first process is on team x.
  std::vector<spec::ValueId> u0;
  std::vector<spec::ValueId> u1;
  bool disjoint = false;
  /// Set if u = value(O, C-alpha) is in U_v: the configuration is v-hiding.
  std::optional<int> hiding_v;
  /// The n-recording configuration condition of Section 3.
  bool recording = false;
};

struct CriticalReport {
  /// The critical execution's schedule (from the initial configuration).
  exec::Schedule schedule;
  BudgetState end_state;
  /// team_of[i]: valence of alpha-p_i (0 or 1). Criticality makes these
  /// well defined.
  std::vector<int> team_of;
  /// Lemma 9: all processes poised on the same object?
  bool same_object = false;
  exec::ObjectId object = -1;
  std::vector<spec::OpId> poised_ops;  // per pid; valid when same_object
  ConfigClass config_class;            // valid when same_object

  std::string render(const exec::Protocol& protocol) const;
};

/// Greedily extends executions in E_z* from the initial configuration for
/// `inputs` while they remain bivalent; returns the critical report, or
/// nullopt if the initial configuration is not bivalent or the walk budget
/// ran out (possible for adversarially cyclic protocols; not for the
/// protocols in this repository).
std::optional<CriticalReport> find_critical_execution(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const CriticalSearchOptions& options = {});

/// As above but starting from an arbitrary configuration with FRESH crash
/// budgets — the E_z*(D_i) re-rooting that Theorem 13's chain performs at
/// every stage.
std::optional<CriticalReport> find_critical_execution_from(
    const exec::Protocol& protocol, exec::Config start,
    const CriticalSearchOptions& options = {});

/// Classifies a configuration in which every process is poised to apply an
/// operation to `object`: computes U_0/U_1 for the given teams and poised
/// ops and evaluates the recording / v-hiding conditions.
ConfigClass classify_poised_configuration(const exec::Protocol& protocol,
                                          const exec::Config& config,
                                          exec::ObjectId object,
                                          const std::vector<int>& team_of,
                                          const std::vector<spec::OpId>& ops);

}  // namespace rcons::valency
