#include "valency/lemmas.hpp"

#include <sstream>

#include "sched/one_shot.hpp"
#include "util/assert.hpp"

namespace rcons::valency {

std::string verify_lemma7(const CriticalReport& report) {
  bool team0 = false;
  bool team1 = false;
  for (std::size_t i = 0; i < report.team_of.size(); ++i) {
    const int t = report.team_of[i];
    if (t == 0) team0 = true;
    if (t == 1) team1 = true;
    if (t != 0 && t != 1) {
      return "lemma 7: p" + std::to_string(i) +
             " has no team (its one-step extension is not univalent)";
    }
  }
  if (!team0) return "lemma 7: team 0 is empty";
  if (!team1) return "lemma 7: team 1 is empty";
  return {};
}

std::string verify_lemma8(const exec::Protocol& protocol,
                          const CriticalReport& report, int z,
                          int credit_cap) {
  ValencyAnalyzer analyzer(protocol, z, credit_cap);
  const BudgetState fresh = analyzer.initial_state(report.end_state.config);
  if (analyzer.valence(fresh) != Valence::kBivalent) {
    return "lemma 8: C-alpha is not bivalent w.r.t. E_z*(C-alpha)";
  }
  return {};
}

std::string verify_lemma9(const CriticalReport& report) {
  if (!report.same_object) {
    return "lemma 9: processes are poised on different objects";
  }
  return {};
}

std::string verify_lemma10(const exec::Protocol& protocol,
                           const CriticalReport& report) {
  if (!report.same_object) return "lemma 10: prerequisite (lemma 9) failed";
  const int n = protocol.process_count();
  const spec::ObjectType& type = protocol.object_type(report.object);
  const spec::ValueId u = report.end_state.config.value(report.object);

  const int vbar = report.team_of[static_cast<std::size_t>(n - 1)];
  const int v = 1 - vbar;

  // All (first process, remainder schedule) -> resulting O value, split by
  // the first process's team.
  struct Outcome {
    int first = -1;
    std::vector<int> rest;
    spec::ValueId value = 0;
  };
  std::vector<Outcome> by_team[2];

  for (int first = 0; first < n; ++first) {
    std::vector<int> others;
    for (int p = 0; p < n; ++p) {
      if (p != first) others.push_back(p);
    }
    const int team = report.team_of[static_cast<std::size_t>(first)];
    sched::for_each_one_shot(others, [&](const std::vector<int>& rest) {
      spec::ValueId value =
          type.apply(u, report.poised_ops[static_cast<std::size_t>(first)])
              .next_value;
      for (int p : rest) {
        value =
            type.apply(value, report.poised_ops[static_cast<std::size_t>(p)])
                .next_value;
      }
      by_team[team].push_back(Outcome{first, rest, value});
    });
  }

  std::ostringstream failures;
  for (const Outcome& a : by_team[v]) {
    for (const Outcome& b : by_team[vbar]) {
      if (a.value != b.value) continue;
      if (b.first == n - 1 && b.rest.empty()) continue;  // the allowed case
      failures << "lemma 10: value " << type.value_name(a.value)
               << " reachable from team " << v << " via p" << a.first
               << " and from team " << vbar << " via p" << b.first
               << " with a non-trivial schedule\n";
    }
  }
  return failures.str();
}

std::string verify_section3_lemmas(const exec::Protocol& protocol,
                                   const CriticalReport& report, int z) {
  std::string out;
  for (const std::string& failure :
       {verify_lemma7(report), verify_lemma8(protocol, report, z),
        verify_lemma9(report), verify_lemma10(protocol, report)}) {
    out += failure;
  }
  return out;
}

}  // namespace rcons::valency
