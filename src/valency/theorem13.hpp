// The chain construction of Theorem 13, mechanized.
//
// The paper proves that any n-process recoverable wait-free consensus
// algorithm over deterministic types yields an n-recording configuration
// by building a chain D_0, D_0', ..., D_l, D_l':
//   * D_i' is reachable from D_i via an execution critical w.r.t.
//     E_1*(D_i);
//   * while D_i' is v-HIDING (and not n-recording), the construction
//     crashes the suffix processes (the schedule lambda_{n-i}) to form
//     D_{i+1}, whose critical execution involves only those suffix
//     processes;
//   * the special "neither" case at D_0' steps p_{n-1} and crashes it;
//   * the chain ends at an n-RECORDING configuration (which certifies the
//     poised object's type is n-recording).
//
// run_theorem13_chain replays this construction on a concrete protocol,
// re-rooting budgets at every stage exactly as the paper's E_1*(D_i)
// does. For the protocols in this repository the very first critical
// configuration is already n-recording (stage count 1) — the hiding and
// neither branches exist for fidelity and report honestly if a stage
// cannot be completed (which, for a correct recoverable algorithm, would
// contradict the theorem).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "exec/protocol.hpp"
#include "valency/critical.hpp"

namespace rcons::valency {

struct ChainStage {
  /// Events applied to reach this stage's D_i from the previous stage's
  /// D_{i-1}' (lambda crashes, or the special p_{n-1} c_{n-1} step).
  exec::Schedule bridge;
  /// The critical report at D_i' (critical execution, teams, object,
  /// classification).
  CriticalReport report;
};

struct Theorem13Chain {
  std::vector<ChainStage> stages;
  bool reached_recording = false;
  std::string failure;  // nonempty if the chain could not be completed

  std::string render(const exec::Protocol& protocol) const;
};

/// Runs the construction from the initial configuration for `inputs`.
Theorem13Chain run_theorem13_chain(const exec::Protocol& protocol,
                                   const std::vector<int>& inputs,
                                   const CriticalSearchOptions& options = {});

}  // namespace rcons::valency
