#include "valency/model_checker.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_map>

#include "codegen/accel.hpp"
#include "reduction/config_canon.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"
#include "valency/explore.hpp"

namespace rcons::valency {

namespace {

using detail::Node;
using detail::NodeHash;

std::vector<exec::Schedule> reconstruct_segments(
    const std::unordered_map<Node, std::pair<Node, exec::Schedule>, NodeHash>&
        parents,
    Node node, const Node& root) {
  std::vector<exec::Schedule> segments;
  while (!(node == root)) {
    const auto it = parents.find(node);
    RCONS_CHECK(it != parents.end());
    segments.push_back(it->second.second);
    node = it->second.first;
  }
  std::reverse(segments.begin(), segments.end());
  return segments;
}

exec::Schedule reconstruct(
    const std::unordered_map<Node, std::pair<Node, exec::Schedule>, NodeHash>&
        parents,
    Node node, const Node& root) {
  exec::Schedule schedule;
  for (const exec::Schedule& seg :
       reconstruct_segments(parents, std::move(node), root)) {
    schedule.insert(schedule.end(), seg.begin(), seg.end());
  }
  return schedule;
}

/// Per-scan tallies reported to the registry once, at scope exit (the
/// registry mutex must stay off the BFS hot path).
struct ScanMetrics {
  std::string prefix;
  trace::ScopedSpan span;
  std::size_t states = 0;
  std::size_t configs = 0;
  std::size_t max_frontier = 0;

  explicit ScanMetrics(std::string p) : prefix(p), span(p + ".scan") {}
  ~ScanMetrics() {
    auto& m = trace::metrics();
    m.add(prefix + ".scans", 1);
    m.add(prefix + ".states_visited", static_cast<std::int64_t>(states));
    m.add(prefix + ".configs_visited", static_cast<std::int64_t>(configs));
    m.max_gauge(prefix + ".max_frontier",
                static_cast<std::int64_t>(max_frontier));
    m.observe(prefix + ".frontier_peak",
              static_cast<std::int64_t>(max_frontier));
  }
};

}  // namespace

SafetyVerdict safety_verdict(const SafetyResult& result) {
  if (!result.ok()) return SafetyVerdict::kViolation;
  return result.explored_fully ? SafetyVerdict::kSafe
                               : SafetyVerdict::kInconclusive;
}

std::string_view safety_verdict_name(const SafetyResult& result) {
  switch (safety_verdict(result)) {
    case SafetyVerdict::kSafe: return "SAFE";
    case SafetyVerdict::kViolation: return "VIOLATION";
    case SafetyVerdict::kInconclusive: break;
  }
  return "INCONCLUSIVE";
}

LivenessVerdict liveness_verdict(const LivenessResult& result) {
  if (!result.wait_free) return LivenessVerdict::kNotWaitFree;
  return result.explored_fully ? LivenessVerdict::kWaitFree
                               : LivenessVerdict::kInconclusive;
}

std::string_view liveness_verdict_name(const LivenessResult& result) {
  switch (liveness_verdict(result)) {
    case LivenessVerdict::kWaitFree: return "YES";
    case LivenessVerdict::kNotWaitFree: return "NO";
    case LivenessVerdict::kInconclusive: break;
  }
  return "INCONCLUSIVE";
}

std::vector<std::vector<int>> all_binary_inputs(int n) {
  RCONS_CHECK(n >= 1 && n < 20);
  std::vector<std::vector<int>> out;
  out.reserve(std::size_t{1} << n);
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    std::vector<int> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      inputs[static_cast<std::size_t>(i)] = (mask >> i) & 1u;
    }
    out.push_back(std::move(inputs));
  }
  return out;
}

SafetyResult check_safety(const exec::Protocol& protocol,
                          const std::vector<int>& inputs,
                          const SafetyOptions& options) {
  if (options.backend == exec::Backend::kAot) {
    return detail::check_safety_aot(protocol, inputs, options);
  }
  if (options.threads != 1) {
    return detail::check_safety_parallel(protocol, inputs, options);
  }
  const int n = protocol.process_count();
  SafetyResult result;

  unsigned valid_mask = 0;
  for (int v : inputs) valid_mask |= 1u << v;

  const reduction::ProcessSymmetryReducer reducer(
      protocol, inputs,
      options.reduce_symmetry && protocol.process_symmetric());

  Node root{exec::Config::initial(protocol, inputs), 0};
  reducer.canonicalize(&root.config);  // a no-op per the symmetry contract
  std::unordered_map<Node, std::pair<Node, exec::Schedule>, NodeHash> parents;
  std::deque<Node> frontier{root};
  std::unordered_map<std::uint64_t, bool> seen_configs;  // stats only
  std::unordered_map<Node, bool, NodeHash> visited;
  visited.emplace(root, true);
  seen_configs.emplace(root.config.hash(), true);

  // On a violation, the reconstructed schedule is expressed over canonical
  // frames when reducing; derandomize it into a real execution and re-aim
  // the validity message at the real deciding process (the schedule's last
  // event) before reporting.
  const auto fail = [&](const Node& at, bool is_validity, int pid, int value,
                        unsigned mask) {
    exec::Schedule schedule;
    if (reducer.active()) {
      schedule = reduction::derandomize_schedule(
                     protocol, inputs, reducer,
                     reconstruct_segments(parents, at, root))
                     .schedule;
      if (is_validity) pid = schedule.back().pid;
    } else {
      schedule = reconstruct(parents, at, root);
    }
    result.counterexample = std::move(schedule);
    result.violation = is_validity ? detail::validity_message(pid, value)
                                   : detail::agreement_message(mask);
  };

  ScanMetrics scan("safety");
  while (!frontier.empty()) {
    scan.states = visited.size();
    scan.configs = seen_configs.size();
    scan.max_frontier = std::max(scan.max_frontier, frontier.size());
    if (visited.size() > options.max_states) {
      result.states_visited = visited.size();
      result.configs_visited = seen_configs.size();
      result.explored_fully = false;
      return result;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();

    for (int pid = 0; pid < n; ++pid) {
      // Step transition.
      {
        Node next = node;
        exec::DecisionLog log(n);
        const exec::EventOutcome out = exec::apply_event(
            protocol, next.config, exec::Event::step(pid), log);
        if (out.decision.has_value()) {
          const int v = *out.decision;
          if (((valid_mask >> v) & 1u) == 0) {
            result.validity_ok = false;
            parents.emplace(
                Node{next.config, next.mask | (1u << v)},
                std::make_pair(node, exec::Schedule{exec::Event::step(pid)}));
            fail(Node{next.config, next.mask | (1u << v)},
                 /*is_validity=*/true, pid, v, 0);
            result.states_visited = visited.size();
            result.configs_visited = seen_configs.size();
            return result;
          }
          next.mask |= 1u << v;
          // Agreement in the strong multivalued form: any TWO distinct
          // values ever output violate (a plain `mask == 0b11` check would
          // silently pass e.g. outputs {1, 2}, whose mask is 0b110).
          if (std::popcount(next.mask) >= 2) {
            result.agreement_ok = false;
            parents.emplace(next, std::make_pair(node, exec::Schedule{exec::Event::step(pid)}));
            fail(next, /*is_validity=*/false, pid, -1, next.mask);
            result.states_visited = visited.size();
            result.configs_visited = seen_configs.size();
            return result;
          }
        }
        reducer.canonicalize(&next.config);
        if (visited.emplace(next, true).second) {
          seen_configs.emplace(next.config.hash(), true);
          parents.emplace(next, std::make_pair(node, exec::Schedule{exec::Event::step(pid)}));
          frontier.push_back(std::move(next));
        }
      }
      // Individual crash transition.
      if (options.effective_mode() == CrashMode::kIndividual ||
          options.effective_mode() == CrashMode::kBoth) {
        Node next = node;
        exec::DecisionLog log(n);
        exec::apply_event(protocol, next.config, exec::Event::crash(pid), log);
        reducer.canonicalize(&next.config);
        if (visited.emplace(next, true).second) {
          seen_configs.emplace(next.config.hash(), true);
          parents.emplace(next, std::make_pair(node, exec::Schedule{exec::Event::crash(pid)}));
          frontier.push_back(std::move(next));
        }
      }
    }

    // Simultaneous crash transition: every process crashes at once (whole-
    // machine power failure). Rendered in counterexamples as the event run
    // c_0 c_1 ... c_{n-1} with no interleaved steps.
    if (options.effective_mode() == CrashMode::kSimultaneous ||
        options.effective_mode() == CrashMode::kBoth) {
      Node next = node;
      exec::DecisionLog log(n);
      exec::Schedule all_crash;
      for (int pid = 0; pid < n; ++pid) {
        all_crash.push_back(exec::Event::crash(pid));
        exec::apply_event(protocol, next.config, exec::Event::crash(pid), log);
      }
      reducer.canonicalize(&next.config);
      if (visited.emplace(next, true).second) {
        seen_configs.emplace(next.config.hash(), true);
        parents.emplace(next, std::make_pair(node, std::move(all_crash)));
        frontier.push_back(std::move(next));
      }
    }
  }

  result.explored_fully = true;
  result.states_visited = visited.size();
  result.configs_visited = seen_configs.size();
  scan.states = visited.size();
  scan.configs = seen_configs.size();
  return result;
}

std::vector<std::vector<int>> driver_input_vectors(
    const exec::Protocol& protocol, bool reduce_symmetry) {
  std::vector<std::vector<int>> out;
  const bool orbit_only = reduce_symmetry && protocol.process_symmetric();
  for (auto& inputs : all_binary_inputs(protocol.process_count())) {
    if (orbit_only && !reduction::inputs_canonical(inputs)) continue;
    out.push_back(std::move(inputs));
  }
  return out;
}

SafetyResult check_safety_all_inputs(const exec::Protocol& protocol,
                                     const SafetyOptions& options) {
  if (options.threads != 1) {
    // Under the AOT backend the parallel all-inputs driver runs over the
    // accelerating wrapper; the serial driver below needs no special case
    // because each per-input check_safety call dispatches on its own.
    if (options.backend == exec::Backend::kAot) {
      const codegen::AcceleratedProtocol accel(protocol);
      SafetyOptions inner = options;
      inner.backend = exec::Backend::kInterp;
      return detail::check_safety_all_inputs_parallel(accel, inner);
    }
    return detail::check_safety_all_inputs_parallel(protocol, options);
  }
  SafetyResult merged;
  merged.explored_fully = true;
  for (const auto& inputs :
       driver_input_vectors(protocol, options.reduce_symmetry)) {
    SafetyResult r = check_safety(protocol, inputs, options);
    merged.states_visited += r.states_visited;
    merged.configs_visited += r.configs_visited;
    merged.explored_fully = merged.explored_fully && r.explored_fully;
    if (!r.ok()) {
      merged.agreement_ok = r.agreement_ok;
      merged.validity_ok = r.validity_ok;
      merged.counterexample = std::move(r.counterexample);
      merged.violation = std::move(r.violation);
      return merged;
    }
  }
  return merged;
}

LivenessResult check_recoverable_wait_freedom(const exec::Protocol& protocol,
                                              const std::vector<int>& inputs,
                                              const LivenessOptions& options) {
  if (options.backend == exec::Backend::kAot) {
    return detail::check_liveness_aot(protocol, inputs, options);
  }
  if (options.threads != 1) {
    return detail::check_liveness_parallel(protocol, inputs, options);
  }
  const int n = protocol.process_count();
  LivenessResult result;

  const reduction::ProcessSymmetryReducer reducer(
      protocol, inputs,
      options.reduce_symmetry && protocol.process_symmetric());

  Node root{exec::Config::initial(protocol, inputs), 0};
  reducer.canonicalize(&root.config);  // a no-op per the symmetry contract
  std::unordered_map<Node, std::pair<Node, exec::Schedule>, NodeHash> parents;
  std::unordered_map<std::uint64_t, bool> probed_configs;
  std::unordered_map<Node, bool, NodeHash> visited;
  std::deque<Node> frontier{root};
  visited.emplace(root, true);

  ScanMetrics scan("liveness");
  while (!frontier.empty()) {
    scan.states = visited.size();
    scan.configs = probed_configs.size();
    scan.max_frontier = std::max(scan.max_frontier, frontier.size());
    if (visited.size() > options.max_states) {
      result.explored_fully = false;
      return result;
    }
    Node node = std::move(frontier.front());
    frontier.pop_front();

    // Probe solo termination once per distinct configuration.
    if (probed_configs.emplace(node.config.hash(), true).second) {
      result.configs_probed += 1;
      for (int pid = 0; pid < n; ++pid) {
        const std::optional<int> decided = exec::solo_terminating_decision(
            protocol, node.config, pid, options.solo_step_bound);
        if (!decided.has_value()) {
          result.wait_free = false;
          if (reducer.active()) {
            // The stuck process was probed in the canonical frame; report
            // the real process behind it in the derandomized execution.
            auto fixed = reduction::derandomize_schedule(
                protocol, inputs, reducer,
                reconstruct_segments(parents, node, root));
            result.stuck_pid = fixed.real_pid(pid);
            result.reaching_schedule = std::move(fixed.schedule);
          } else {
            result.stuck_pid = pid;
            result.reaching_schedule = reconstruct(parents, node, root);
          }
          return result;
        }
      }
    }

    for (int pid = 0; pid < n; ++pid) {
      {
        Node next = node;
        exec::DecisionLog log(n);
        const exec::EventOutcome out = exec::apply_event(
            protocol, next.config, exec::Event::step(pid), log);
        if (out.decision.has_value()) next.mask |= 1u << *out.decision;
        reducer.canonicalize(&next.config);
        if (visited.emplace(next, true).second) {
          parents.emplace(next, std::make_pair(node, exec::Schedule{exec::Event::step(pid)}));
          frontier.push_back(std::move(next));
        }
      }
      if (options.allow_crashes) {
        Node next = node;
        exec::DecisionLog log(n);
        exec::apply_event(protocol, next.config, exec::Event::crash(pid), log);
        reducer.canonicalize(&next.config);
        if (visited.emplace(next, true).second) {
          parents.emplace(next, std::make_pair(node, exec::Schedule{exec::Event::crash(pid)}));
          frontier.push_back(std::move(next));
        }
      }
    }
  }

  result.explored_fully = true;
  scan.states = visited.size();
  scan.configs = probed_configs.size();
  return result;
}

}  // namespace rcons::valency
