#include "valency/valence.hpp"

#include <deque>
#include <unordered_set>

#include "exec/execute.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace rcons::valency {

std::uint64_t BudgetState::hash() const {
  std::uint64_t seed = config.hash();
  for (int c : credits) hash_combine(seed, static_cast<std::uint64_t>(c));
  return seed;
}

namespace {
struct BudgetStateHash {
  std::size_t operator()(const BudgetState& s) const {
    return static_cast<std::size_t>(s.hash());
  }
};
}  // namespace

ValencyAnalyzer::ValencyAnalyzer(const exec::Protocol& protocol, int z,
                                 int credit_cap, std::size_t max_states)
    : protocol_(protocol),
      n_(protocol.process_count()),
      z_(z),
      credit_cap_(credit_cap),
      max_states_(max_states) {
  RCONS_CHECK(z >= 1);
  RCONS_CHECK(credit_cap >= 1);
}

BudgetState ValencyAnalyzer::initial_state(exec::Config config) const {
  BudgetState s;
  s.config = std::move(config);
  s.credits.assign(static_cast<std::size_t>(n_), 0);
  return s;
}

bool ValencyAnalyzer::crash_allowed(const BudgetState& state,
                                    exec::ProcessId pid) const {
  return pid > 0 && state.credits[static_cast<std::size_t>(pid)] >= 1;
}

BudgetState ValencyAnalyzer::apply(const BudgetState& state,
                                   const exec::Event& event) const {
  BudgetState next = state;
  exec::DecisionLog log(n_);
  if (event.is_crash()) {
    RCONS_CHECK_MSG(crash_allowed(state, event.pid),
                    "inadmissible crash of p", event.pid);
    next.credits[static_cast<std::size_t>(event.pid)] -= 1;
    exec::apply_event(protocol_, next.config, event, log);
    return next;
  }
  exec::apply_event(protocol_, next.config, event, log);
  // A step by pid grants z*n crash credits to every higher-id process
  // (credit_i = z*n*steps_below(i) - crashes(i), saturated at the cap).
  for (int i = event.pid + 1; i < n_; ++i) {
    auto& c = next.credits[static_cast<std::size_t>(i)];
    c = std::min(credit_cap_, c + z_ * n_);
  }
  return next;
}

DecisionMask ValencyAnalyzer::reachable_decisions(const BudgetState& state) {
  const std::uint64_t key = state.hash();
  if (const auto it = memo_.find(key); it != memo_.end()) {
    return it->second;
  }

  DecisionMask mask = 0;
  std::unordered_set<std::uint64_t> visited;
  std::deque<BudgetState> frontier{state};
  visited.insert(key);

  bool truncated_here = false;
  while (!frontier.empty() && mask != kBothDecisions) {
    if (visited.size() > max_states_) {
      truncated_here = true;
      truncated_ = true;
      break;
    }
    BudgetState node = std::move(frontier.front());
    frontier.pop_front();
    states_explored_ += 1;

    for (int pid = 0; pid < n_; ++pid) {
      // Step by pid (always admissible).
      {
        BudgetState next = node;
        exec::DecisionLog log(n_);
        const exec::EventOutcome out = exec::apply_event(
            protocol_, next.config, exec::Event::step(pid), log);
        for (int i = pid + 1; i < n_; ++i) {
          auto& c = next.credits[static_cast<std::size_t>(i)];
          c = std::min(credit_cap_, c + z_ * n_);
        }
        if (out.decision.has_value()) {
          mask |= *out.decision == 0 ? kDecision0 : kDecision1;
          if (mask == kBothDecisions) break;
        }
        if (visited.insert(next.hash()).second) {
          frontier.push_back(std::move(next));
        }
      }
      // Crash of pid, if the budget allows.
      if (crash_allowed(node, pid)) {
        BudgetState next = node;
        next.credits[static_cast<std::size_t>(pid)] -= 1;
        exec::DecisionLog log(n_);
        exec::apply_event(protocol_, next.config, exec::Event::crash(pid),
                          log);
        if (visited.insert(next.hash()).second) {
          frontier.push_back(std::move(next));
        }
      }
    }
  }

  // Only memoize complete explorations: a truncated mask is a lower bound
  // and must not poison later queries.
  if (!truncated_here) {
    memo_.emplace(key, mask);
  }
  return mask;
}

Valence ValencyAnalyzer::valence(const BudgetState& state, DecisionMask past) {
  const DecisionMask mask = past | reachable_decisions(state);
  switch (mask) {
    case kBothDecisions:
      return Valence::kBivalent;
    case kDecision0:
      return Valence::kUnivalent0;
    case kDecision1:
      return Valence::kUnivalent1;
    default:
      return Valence::kNone;
  }
}

}  // namespace rcons::valency
