// Valency with respect to the crash-budget execution sets E_z* (Section 3).
//
// The paper defines valency for EXECUTIONS, not configurations: whether a
// decision v is reachable from C-alpha by an extension beta with
// alpha-beta in E_z*(C) depends on the crash budget already consumed by
// alpha. A BudgetState therefore pairs the end configuration with the
// remaining per-process crash credits (credit_i = z*n*steps_below(i) -
// crashes(i); p_0 has no credit, ever).
//
// Credits grow without bound as low-id processes take steps, which would
// make the reachability state space infinite; ValencyAnalyzer saturates
// credits at a cap. Saturation is sound for bivalence (every execution it
// considers is a genuine E_z* execution) and complete once the cap exceeds
// the crashes any decision-reaching extension needs — for terminating
// protocols a cap around the longest solo run suffices; the analyzer
// reports whether any exploration was truncated so callers can raise the
// cap.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "exec/config.hpp"
#include "exec/event.hpp"
#include "exec/protocol.hpp"

namespace rcons::valency {

/// Bit 0 set = a decision of 0 is reachable; bit 1 = decision of 1.
using DecisionMask = unsigned;

inline constexpr DecisionMask kDecision0 = 0b01;
inline constexpr DecisionMask kDecision1 = 0b10;
inline constexpr DecisionMask kBothDecisions = 0b11;

struct BudgetState {
  exec::Config config;
  /// credits[i]: crashes p_i may still take (saturated at the cap);
  /// credits[0] is always 0.
  std::vector<int> credits;

  friend bool operator==(const BudgetState&, const BudgetState&) = default;
  std::uint64_t hash() const;
};

/// Valency classification of an execution end-state.
enum class Valence {
  kBivalent,
  kUnivalent0,
  kUnivalent1,
  /// No decision reachable at all (cannot happen for a recoverable
  /// wait-free algorithm under E_z*, but the analyzer stays total).
  kNone,
};

class ValencyAnalyzer {
 public:
  /// z: the budget multiplier of E_z*. credit_cap: saturation bound on
  /// per-process credits. max_states: exploration limit per query cache.
  ValencyAnalyzer(const exec::Protocol& protocol, int z, int credit_cap = 6,
                  std::size_t max_states = 2'000'000);

  /// The initial budget state for exec from C with fresh budgets (the
  /// empty execution from C).
  BudgetState initial_state(exec::Config config) const;

  /// Applies an event to a budget state (steps grant credits to higher
  /// ids; crashes consume one credit). RCONS_CHECKs crash admissibility.
  BudgetState apply(const BudgetState& state, const exec::Event& event) const;

  /// True iff a crash of pid is admissible now (pid > 0, credit left).
  bool crash_allowed(const BudgetState& state, exec::ProcessId pid) const;

  /// The set of decisions reachable from `state` by executions that respect
  /// the remaining budgets (including decisions taken by the very next
  /// step). Exact up to credit saturation; memoized.
  DecisionMask reachable_decisions(const BudgetState& state);

  /// Classifies `state` given decisions already made along the way in
  /// `past` (per the paper, "has decided" persists along the execution).
  Valence valence(const BudgetState& state, DecisionMask past = 0);

  /// True if any reachable_decisions exploration hit max_states (results
  /// are then lower bounds on reachability).
  bool truncated() const { return truncated_; }

  std::size_t memo_size() const { return memo_.size(); }
  std::uint64_t states_explored() const { return states_explored_; }

  int z() const { return z_; }
  int credit_cap() const { return credit_cap_; }

 private:
  const exec::Protocol& protocol_;
  int n_;
  int z_;
  int credit_cap_;
  std::size_t max_states_;
  bool truncated_ = false;
  std::uint64_t states_explored_ = 0;
  std::unordered_map<std::uint64_t, DecisionMask> memo_;
};

}  // namespace rcons::valency
