// The AOT exec backend's serial exploration engine (DESIGN.md §14).
//
// The interpreter engine in model_checker.cpp spends most of its time
// copying Config objects (three vectors, plus one heap vector per local
// state) and re-hashing them for the visited set. This engine explores the
// SAME search graph over a packed representation: a configuration is a
// flat array of 16-bit lanes — one lane per object value, one interned
// local-state id per process — stepped through the branch-free PackedDelta
// tables and a per-(pid, state) transition cache, so expanding a node is a
// few loads and one small memcpy instead of a Config deep copy.
//
// Bit-identity contract: every result field — verdict, violation string,
// counterexample schedule, states_visited, configs_visited, explored_fully
// — is identical to the serial interpreter's, because the engine mirrors
// its expansion order (FIFO, pid-ascending, step before crash, then the
// simultaneous crash), its node identity (interning is injective, so
// lane equality == Config equality), its canonicalization (per-group
// stable sort under the same lexicographic comparator), and even its
// configs_visited statistic (Config::hash is replicated exactly from
// cached per-state word hashes, collisions included). Pinned by
// tests/codegen_test.cpp and the golden corpus.
//
// Local-state machines are discovered LAZILY: poised/advance are only
// invoked on (state, response) pairs produced by reachable executions, so
// protocols whose advance() asserts on impossible pairs behave exactly as
// they do under the interpreter.
//
// Fallbacks (results still bit-identical, only slower): a trace sink
// installed on this thread routes to the interpreter loop over an
// AcceleratedProtocol so step-level trace hooks keep firing; exceeding the
// 16-bit lane caps (65536 distinct local states or object values) rolls
// over to the same path.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "codegen/accel.hpp"
#include "reduction/config_canon.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"
#include "valency/explore.hpp"

namespace rcons::valency::detail {

namespace {

/// Thrown when the packed representation's 16-bit lane caps are exceeded;
/// the dispatcher catches it and re-runs on the interpreter path.
struct LaneOverflow {};

/// Mirror of the interpreter engines' scan tallies (same metric names, so
/// dashboards do not care which backend ran).
struct ScanMetrics {
  std::string prefix;
  trace::ScopedSpan span;
  std::size_t states = 0;
  std::size_t configs = 0;
  std::size_t max_frontier = 0;

  explicit ScanMetrics(std::string p) : prefix(p), span(p + ".scan") {}
  ~ScanMetrics() {
    auto& m = trace::metrics();
    m.add(prefix + ".scans", 1);
    m.add(prefix + ".states_visited", static_cast<std::int64_t>(states));
    m.add(prefix + ".configs_visited", static_cast<std::int64_t>(configs));
    m.max_gauge(prefix + ".max_frontier",
                static_cast<std::int64_t>(max_frontier));
    m.observe(prefix + ".frontier_peak",
              static_cast<std::int64_t>(max_frontier));
  }
};

using Lane = std::uint16_t;
constexpr std::size_t kMaxLane = 65536;
constexpr std::uint32_t kNoParent = 0xffffffffu;

exec::Schedule concat_segments(const std::vector<exec::Schedule>& segments) {
  exec::Schedule schedule;
  for (const exec::Schedule& seg : segments) {
    schedule.insert(schedule.end(), seg.begin(), seg.end());
  }
  return schedule;
}

class PackedEngine {
 public:
  PackedEngine(const exec::Protocol& protocol,
               const codegen::AcceleratedProtocol& accel,
               const std::vector<int>& inputs, bool reduce)
      : protocol_(protocol),
        inputs_(inputs),
        n_(protocol.process_count()),
        m_(protocol.object_count()),
        width_(m_ + n_) {
    tables_.resize(static_cast<std::size_t>(m_));
    for (int obj = 0; obj < m_; ++obj) {
      const spec::ObjectType& type = protocol.object_type(obj);
      if (static_cast<std::size_t>(type.value_count()) > kMaxLane) {
        throw LaneOverflow{};
      }
      tables_[static_cast<std::size_t>(obj)] = accel.packed_delta(obj);
    }
    step_.resize(static_cast<std::size_t>(n_));
    init_sid_.resize(static_cast<std::size_t>(n_));
    for (int pid = 0; pid < n_; ++pid) {
      init_sid_[static_cast<std::size_t>(pid)] = intern(protocol.initial_state(
          pid, inputs[static_cast<std::size_t>(pid)]));
    }
    if (reduce) {
      // Same grouping as reduction::ProcessSymmetryReducer: equal-input
      // pids in ascending order, singleton groups dropped.
      std::map<int, std::vector<int>> by_input;
      for (int pid = 0; pid < n_; ++pid) {
        by_input[inputs[static_cast<std::size_t>(pid)]].push_back(pid);
      }
      for (auto& [input, pids] : by_input) {
        (void)input;
        if (pids.size() >= 2) groups_.push_back(std::move(pids));
      }
    }
  }

  PackedEngine(const PackedEngine&) = delete;
  PackedEngine& operator=(const PackedEngine&) = delete;

  SafetyResult run_safety(const SafetyOptions& options);
  LivenessResult run_liveness(const LivenessOptions& options);

 private:
  /// One (pid, interned state) transition-cache slot.
  struct StepCache {
    bool known = false;
    bool decided = false;
    int decision = -1;
    int object = 0;
    int op = 0;
    std::vector<std::int32_t> succ;  // response -> interned state, -1 unset
  };

  Lane intern(exec::LocalState state) {
    const auto it = ids_.find(state);
    if (it != ids_.end()) return it->second;
    if (states_.size() >= kMaxLane) throw LaneOverflow{};
    const Lane id = static_cast<Lane>(states_.size());
    word_hashes_.push_back(hash_vector(state.words));
    states_.push_back(state);
    ids_.emplace(std::move(state), id);
    return id;
  }

  StepCache& slot(int pid, Lane sid) {
    auto& row = step_[static_cast<std::size_t>(pid)];
    if (row.size() <= sid) row.resize(static_cast<std::size_t>(sid) + 1);
    StepCache& cache = row[sid];
    if (!cache.known) {
      const exec::Action action = protocol_.poised(pid, states_[sid]);
      cache.known = true;
      if (action.kind == exec::Action::Kind::kDecided) {
        cache.decided = true;
        cache.decision = action.decision;
      } else {
        cache.object = action.object;
        cache.op = action.op;
        cache.succ.assign(static_cast<std::size_t>(
                              protocol_.object_type(action.object)
                                  .response_count()),
                          -1);
      }
    }
    return cache;
  }

  Lane successor(int pid, Lane sid, int response) {
    const std::int32_t cached =
        step_[static_cast<std::size_t>(pid)][sid]
            .succ[static_cast<std::size_t>(response)];
    if (cached >= 0) return static_cast<Lane>(cached);
    const Lane nsid = intern(protocol_.advance(pid, states_[sid], response));
    step_[static_cast<std::size_t>(pid)][sid]
        .succ[static_cast<std::size_t>(response)] = nsid;
    return nsid;
  }

  /// Identical arrangement to ProcessSymmetryReducer::canonicalize: the
  /// comparator reads the interned words, and interning is injective, so
  /// the stable sort produces exactly the lanes of the canonical Config.
  void canonicalize(Lane* lanes) {
    for (const auto& group : groups_) {
      sort_buf_.clear();
      for (const int pid : group) {
        sort_buf_.push_back(lanes[m_ + pid]);
      }
      std::stable_sort(sort_buf_.begin(), sort_buf_.end(),
                       [this](Lane a, Lane b) {
                         return std::lexicographical_compare(
                             states_[a].words.begin(), states_[a].words.end(),
                             states_[b].words.begin(), states_[b].words.end());
                       });
      for (std::size_t j = 0; j < group.size(); ++j) {
        lanes[static_cast<std::size_t>(m_) +
              static_cast<std::size_t>(group[j])] = sort_buf_[j];
      }
    }
  }

  /// Exact replica of Config::hash() for the configuration these lanes
  /// encode (object values then per-local word hashes), so the
  /// configs_visited statistic — which counts distinct HASH VALUES —
  /// matches the interpreter collision for collision.
  std::uint64_t config_hash(const Lane* lanes) const {
    std::uint64_t seed = 0;
    hash_combine(seed, static_cast<std::uint64_t>(m_));
    for (int obj = 0; obj < m_; ++obj) {
      hash_combine(seed, static_cast<std::uint64_t>(lanes[obj]));
    }
    for (int pid = 0; pid < n_; ++pid) {
      hash_combine(seed, word_hashes_[lanes[m_ + pid]]);
    }
    return seed;
  }

  const Lane* lanes_of(std::uint32_t id) const {
    return arena_.data() + static_cast<std::size_t>(id) * width_;
  }

  std::uint32_t push_node(const Lane* lanes, unsigned mask,
                          std::uint32_t parent, std::uint16_t via) {
    const auto id = static_cast<std::uint32_t>(parent_.size());
    arena_.insert(arena_.end(), lanes, lanes + width_);
    parent_.push_back(parent);
    via_.push_back(via);
    mask_.push_back(mask);
    return id;
  }

  void pop_node() {
    arena_.resize(arena_.size() - static_cast<std::size_t>(width_));
    parent_.pop_back();
    via_.pop_back();
    mask_.pop_back();
  }

  struct NodeHasher {
    const PackedEngine* e;
    std::size_t operator()(std::uint32_t id) const {
      const Lane* lanes = e->lanes_of(id);
      std::uint64_t seed = hash_range(lanes, lanes + e->width_);
      hash_combine(seed, e->mask_[id]);
      return static_cast<std::size_t>(seed);
    }
  };
  struct NodeEq {
    const PackedEngine* e;
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      if (e->mask_[a] != e->mask_[b]) return false;
      const Lane* la = e->lanes_of(a);
      return std::equal(la, la + e->width_, e->lanes_of(b));
    }
  };

  /// The engine's edge segments from the root to `at`, one per via
  /// transition — the same shape reconstruct_segments produces in the
  /// interpreter engine.
  std::vector<exec::Schedule> segments_to(std::uint32_t at) const {
    std::vector<exec::Schedule> segments;
    for (std::uint32_t cur = at; parent_[cur] != kNoParent;
         cur = parent_[cur]) {
      segments.push_back(transition_segment(via_[cur], n_));
    }
    std::reverse(segments.begin(), segments.end());
    return segments;
  }

  const exec::Protocol& protocol_;
  const std::vector<int>& inputs_;
  const int n_;
  const int m_;
  const int width_;
  std::vector<const spec::PackedDelta*> tables_;

  // Local-state interner (shared across pids; the transition cache is
  // per-pid so asymmetric protocols stay correct).
  std::vector<exec::LocalState> states_;
  std::vector<std::uint64_t> word_hashes_;
  std::unordered_map<exec::LocalState, Lane, exec::LocalStateHash> ids_;
  std::vector<std::vector<StepCache>> step_;
  std::vector<Lane> init_sid_;
  std::vector<std::vector<int>> groups_;
  std::vector<Lane> sort_buf_;

  // Node arena: lanes, parent edge, transition index, outputs mask.
  std::vector<Lane> arena_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint16_t> via_;
  std::vector<unsigned> mask_;
};

SafetyResult PackedEngine::run_safety(const SafetyOptions& options) {
  SafetyResult result;
  unsigned valid_mask = 0;
  for (const int v : inputs_) valid_mask |= 1u << v;

  const CrashMode mode = options.effective_mode();
  const bool individual =
      mode == CrashMode::kIndividual || mode == CrashMode::kBoth;
  const bool simultaneous =
      mode == CrashMode::kSimultaneous || mode == CrashMode::kBoth;

  const reduction::ProcessSymmetryReducer reducer(
      protocol_, inputs_,
      options.reduce_symmetry && protocol_.process_symmetric());

  std::unordered_set<std::uint32_t, NodeHasher, NodeEq> visited(
      16, NodeHasher{this}, NodeEq{this});
  std::unordered_set<std::uint64_t> seen_configs;

  // Root node.
  std::vector<Lane> node(static_cast<std::size_t>(width_));
  for (int obj = 0; obj < m_; ++obj) {
    node[static_cast<std::size_t>(obj)] =
        static_cast<Lane>(protocol_.initial_value(obj));
  }
  for (int pid = 0; pid < n_; ++pid) {
    node[static_cast<std::size_t>(m_ + pid)] =
        init_sid_[static_cast<std::size_t>(pid)];
  }
  canonicalize(node.data());  // a no-op per the symmetry contract
  push_node(node.data(), 0, kNoParent, 0);
  visited.insert(0);
  seen_configs.insert(config_hash(node.data()));

  std::vector<std::uint32_t> queue{0};
  std::size_t head = 0;
  std::vector<Lane> cand(static_cast<std::size_t>(width_));

  const auto fail = [&](std::uint32_t at, bool is_validity, int pid, int value,
                        unsigned mask) {
    exec::Schedule schedule;
    if (reducer.active()) {
      schedule = reduction::derandomize_schedule(protocol_, inputs_, reducer,
                                                 segments_to(at))
                     .schedule;
      if (is_validity) pid = schedule.back().pid;
    } else {
      schedule = concat_segments(segments_to(at));
    }
    result.counterexample = std::move(schedule);
    result.violation = is_validity ? validity_message(pid, value)
                                   : agreement_message(mask);
  };

  // Append-then-dedup: push the candidate into the arena, try the visited
  // set, retract on a duplicate. The set's size therefore always equals
  // the interpreter's visited.size().
  const auto try_insert = [&](unsigned mask, std::uint32_t parent,
                              std::uint16_t via) {
    const std::uint32_t id = push_node(cand.data(), mask, parent, via);
    if (visited.insert(id).second) {
      seen_configs.insert(config_hash(cand.data()));
      queue.push_back(id);
    } else {
      pop_node();
    }
  };

  ScanMetrics scan("safety");
  while (head < queue.size()) {
    scan.states = visited.size();
    scan.configs = seen_configs.size();
    scan.max_frontier = std::max(scan.max_frontier, queue.size() - head);
    if (visited.size() > options.max_states) {
      result.states_visited = visited.size();
      result.configs_visited = seen_configs.size();
      result.explored_fully = false;
      return result;
    }
    const std::uint32_t id = queue[head++];
    node.assign(lanes_of(id), lanes_of(id) + width_);
    const unsigned mask = mask_[id];

    for (int pid = 0; pid < n_; ++pid) {
      // Step transition. A step of a decided process is a no-op (config
      // and mask unchanged — the popped node, already visited), so only
      // invoke states expand.
      const Lane sid = node[static_cast<std::size_t>(m_ + pid)];
      const StepCache& info = slot(pid, sid);
      if (!info.decided) {
        const int object = info.object;
        const int op = info.op;
        const spec::PackedDelta& table =
            *tables_[static_cast<std::size_t>(object)];
        std::copy(node.begin(), node.end(), cand.begin());
        const std::uint32_t entry =
            table.raw(cand[static_cast<std::size_t>(object)], op);
        cand[static_cast<std::size_t>(object)] =
            static_cast<Lane>(table.next_value_of(entry));
        const Lane nsid = successor(pid, sid, table.response_of(entry));
        cand[static_cast<std::size_t>(m_ + pid)] = nsid;
        unsigned next_mask = mask;
        const StepCache& after = slot(pid, nsid);
        if (after.decided) {
          const int v = after.decision;
          if (((valid_mask >> v) & 1u) == 0) {
            result.validity_ok = false;
            const std::uint32_t bad =
                push_node(cand.data(), mask | (1u << v), id,
                          static_cast<std::uint16_t>(2 * pid));
            fail(bad, /*is_validity=*/true, pid, v, 0);
            result.states_visited = visited.size();
            result.configs_visited = seen_configs.size();
            return result;
          }
          next_mask |= 1u << v;
          if (std::popcount(next_mask) >= 2) {
            result.agreement_ok = false;
            const std::uint32_t bad =
                push_node(cand.data(), next_mask, id,
                          static_cast<std::uint16_t>(2 * pid));
            fail(bad, /*is_validity=*/false, pid, -1, next_mask);
            result.states_visited = visited.size();
            result.configs_visited = seen_configs.size();
            return result;
          }
        }
        canonicalize(cand.data());
        try_insert(next_mask, id, static_cast<std::uint16_t>(2 * pid));
      }
      // Individual crash transition.
      if (individual) {
        std::copy(node.begin(), node.end(), cand.begin());
        cand[static_cast<std::size_t>(m_ + pid)] =
            init_sid_[static_cast<std::size_t>(pid)];
        canonicalize(cand.data());
        try_insert(mask, id, static_cast<std::uint16_t>(2 * pid + 1));
      }
    }

    // Simultaneous crash transition.
    if (simultaneous) {
      std::copy(node.begin(), node.end(), cand.begin());
      for (int pid = 0; pid < n_; ++pid) {
        cand[static_cast<std::size_t>(m_ + pid)] =
            init_sid_[static_cast<std::size_t>(pid)];
      }
      canonicalize(cand.data());
      try_insert(mask, id, static_cast<std::uint16_t>(2 * n_));
    }
  }

  result.explored_fully = true;
  result.states_visited = visited.size();
  result.configs_visited = seen_configs.size();
  scan.states = visited.size();
  scan.configs = seen_configs.size();
  return result;
}

LivenessResult PackedEngine::run_liveness(const LivenessOptions& options) {
  LivenessResult result;

  const reduction::ProcessSymmetryReducer reducer(
      protocol_, inputs_,
      options.reduce_symmetry && protocol_.process_symmetric());

  std::unordered_set<std::uint32_t, NodeHasher, NodeEq> visited(
      16, NodeHasher{this}, NodeEq{this});
  std::unordered_set<std::uint64_t> probed_configs;

  std::vector<Lane> node(static_cast<std::size_t>(width_));
  for (int obj = 0; obj < m_; ++obj) {
    node[static_cast<std::size_t>(obj)] =
        static_cast<Lane>(protocol_.initial_value(obj));
  }
  for (int pid = 0; pid < n_; ++pid) {
    node[static_cast<std::size_t>(m_ + pid)] =
        init_sid_[static_cast<std::size_t>(pid)];
  }
  canonicalize(node.data());
  push_node(node.data(), 0, kNoParent, 0);
  visited.insert(0);

  std::vector<std::uint32_t> queue{0};
  std::size_t head = 0;
  std::vector<Lane> cand(static_cast<std::size_t>(width_));
  std::vector<Lane> solo_values(static_cast<std::size_t>(m_));

  // The packed replica of exec::solo_terminating_decision: decided at the
  // start -> that decision; otherwise run solo crash-free steps until one
  // moves the process into an output state or the bound runs out.
  const auto solo_decision = [&](const Lane* lanes,
                                 int pid) -> std::optional<int> {
    Lane sid = lanes[m_ + pid];
    {
      const StepCache& info = slot(pid, sid);
      if (info.decided) return info.decision;
    }
    std::copy(lanes, lanes + m_, solo_values.begin());
    for (int i = 0; i < options.solo_step_bound; ++i) {
      const StepCache& info = slot(pid, sid);
      const spec::PackedDelta& table =
          *tables_[static_cast<std::size_t>(info.object)];
      const std::uint32_t entry =
          table.raw(solo_values[static_cast<std::size_t>(info.object)],
                    info.op);
      solo_values[static_cast<std::size_t>(info.object)] =
          static_cast<Lane>(table.next_value_of(entry));
      sid = successor(pid, sid, table.response_of(entry));
      const StepCache& after = slot(pid, sid);
      if (after.decided) return after.decision;
    }
    return std::nullopt;
  };

  const auto try_insert = [&](unsigned mask, std::uint32_t parent,
                              std::uint16_t via) {
    const std::uint32_t id = push_node(cand.data(), mask, parent, via);
    if (visited.insert(id).second) {
      queue.push_back(id);
    } else {
      pop_node();
    }
  };

  ScanMetrics scan("liveness");
  while (head < queue.size()) {
    scan.states = visited.size();
    scan.configs = probed_configs.size();
    scan.max_frontier = std::max(scan.max_frontier, queue.size() - head);
    if (visited.size() > options.max_states) {
      result.explored_fully = false;
      return result;
    }
    const std::uint32_t id = queue[head++];
    node.assign(lanes_of(id), lanes_of(id) + width_);
    const unsigned mask = mask_[id];

    // Probe solo termination once per distinct configuration.
    if (probed_configs.insert(config_hash(node.data())).second) {
      result.configs_probed += 1;
      for (int pid = 0; pid < n_; ++pid) {
        const std::optional<int> decided = solo_decision(node.data(), pid);
        if (!decided.has_value()) {
          result.wait_free = false;
          if (reducer.active()) {
            auto fixed = reduction::derandomize_schedule(
                protocol_, inputs_, reducer, segments_to(id));
            result.stuck_pid = fixed.real_pid(pid);
            result.reaching_schedule = std::move(fixed.schedule);
          } else {
            result.stuck_pid = pid;
            result.reaching_schedule = concat_segments(segments_to(id));
          }
          return result;
        }
      }
    }

    for (int pid = 0; pid < n_; ++pid) {
      const Lane sid = node[static_cast<std::size_t>(m_ + pid)];
      const StepCache& info = slot(pid, sid);
      if (!info.decided) {
        const int object = info.object;
        const int op = info.op;
        const spec::PackedDelta& table =
            *tables_[static_cast<std::size_t>(object)];
        std::copy(node.begin(), node.end(), cand.begin());
        const std::uint32_t entry =
            table.raw(cand[static_cast<std::size_t>(object)], op);
        cand[static_cast<std::size_t>(object)] =
            static_cast<Lane>(table.next_value_of(entry));
        const Lane nsid = successor(pid, sid, table.response_of(entry));
        cand[static_cast<std::size_t>(m_ + pid)] = nsid;
        unsigned next_mask = mask;
        const StepCache& after = slot(pid, nsid);
        if (after.decided) next_mask |= 1u << after.decision;
        canonicalize(cand.data());
        try_insert(next_mask, id, static_cast<std::uint16_t>(2 * pid));
      }
      if (options.allow_crashes) {
        std::copy(node.begin(), node.end(), cand.begin());
        cand[static_cast<std::size_t>(m_ + pid)] =
            init_sid_[static_cast<std::size_t>(pid)];
        canonicalize(cand.data());
        try_insert(mask, id, static_cast<std::uint16_t>(2 * pid + 1));
      }
    }
  }

  result.explored_fully = true;
  scan.states = visited.size();
  scan.configs = probed_configs.size();
  return result;
}

}  // namespace

SafetyResult check_safety_aot(const exec::Protocol& protocol,
                              const std::vector<int>& inputs,
                              const SafetyOptions& options) {
  const codegen::AcceleratedProtocol accel(protocol);
  SafetyOptions inner = options;
  inner.backend = exec::Backend::kInterp;
  if (options.threads != 1) {
    // The parallel engines step through apply_event, which consults the
    // wrapper's packed tables; nothing else changes, so their
    // deterministic-reduction contract carries over unchanged.
    return check_safety_parallel(accel, inputs, inner);
  }
  if (trace::thread_sink() != nullptr) {
    // Keep step-level trace hooks firing: route through the interpreter
    // loop (still table-accelerated via the wrapper).
    return check_safety(accel, inputs, inner);
  }
  try {
    PackedEngine engine(protocol, accel, inputs,
                        options.reduce_symmetry &&
                            protocol.process_symmetric());
    return engine.run_safety(options);
  } catch (const LaneOverflow&) {
    return check_safety(accel, inputs, inner);
  }
}

LivenessResult check_liveness_aot(const exec::Protocol& protocol,
                                  const std::vector<int>& inputs,
                                  const LivenessOptions& options) {
  const codegen::AcceleratedProtocol accel(protocol);
  LivenessOptions inner = options;
  inner.backend = exec::Backend::kInterp;
  if (options.threads != 1) {
    return check_liveness_parallel(accel, inputs, inner);
  }
  if (trace::thread_sink() != nullptr) {
    return check_recoverable_wait_freedom(accel, inputs, inner);
  }
  try {
    PackedEngine engine(protocol, accel, inputs,
                        options.reduce_symmetry &&
                            protocol.process_symmetric());
    return engine.run_liveness(options);
  } catch (const LaneOverflow&) {
    return check_recoverable_wait_freedom(accel, inputs, inner);
  }
}

}  // namespace rcons::valency::detail
