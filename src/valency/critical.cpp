#include "valency/critical.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "exec/execute.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace rcons::valency {

namespace {

/// One admissible extension event together with its successor state and
/// the updated past-decisions mask.
struct Extension {
  exec::Event event{};
  BudgetState state;
  DecisionMask past = 0;
};

std::vector<Extension> admissible_extensions(const exec::Protocol& protocol,
                                             const ValencyAnalyzer& analyzer,
                                             const BudgetState& state,
                                             DecisionMask past) {
  const int n = protocol.process_count();
  std::vector<Extension> out;
  out.reserve(static_cast<std::size_t>(2 * n));
  for (int pid = 0; pid < n; ++pid) {
    {
      Extension ext;
      ext.event = exec::Event::step(pid);
      ext.state = state;
      exec::DecisionLog log(n);
      const exec::EventOutcome outc = exec::apply_event(
          protocol, ext.state.config, ext.event, log);
      for (int i = pid + 1; i < n; ++i) {
        auto& c = ext.state.credits[static_cast<std::size_t>(i)];
        c = std::min(analyzer.credit_cap(), c + analyzer.z() * n);
      }
      ext.past = past;
      if (outc.decision.has_value()) {
        ext.past |= *outc.decision == 0 ? kDecision0 : kDecision1;
      }
      out.push_back(std::move(ext));
    }
    if (analyzer.crash_allowed(state, pid)) {
      Extension ext;
      ext.event = exec::Event::crash(pid);
      ext.state = state;
      ext.state.credits[static_cast<std::size_t>(pid)] -= 1;
      exec::DecisionLog log(n);
      exec::apply_event(protocol, ext.state.config, ext.event, log);
      ext.past = past;
      out.push_back(std::move(ext));
    }
  }
  return out;
}

}  // namespace

ConfigClass classify_poised_configuration(const exec::Protocol& protocol,
                                          const exec::Config& config,
                                          exec::ObjectId object,
                                          const std::vector<int>& team_of,
                                          const std::vector<spec::OpId>& ops) {
  const int n = protocol.process_count();
  const spec::ObjectType& type = protocol.object_type(object);
  const spec::ValueId u = config.value(object);

  // U_x over nonempty one-shot schedules of the poised ops, first in T_x.
  std::vector<bool> in_u[2];
  in_u[0].assign(static_cast<std::size_t>(type.value_count()), false);
  in_u[1].assign(static_cast<std::size_t>(type.value_count()), false);

  std::vector<int> used;  // recursion bookkeeping
  const std::function<void(unsigned, spec::ValueId, int)> dfs =
      [&](unsigned mask, spec::ValueId value, int first_team) {
        if (first_team >= 0) {
          in_u[first_team][static_cast<std::size_t>(value)] = true;
        }
        for (int j = 0; j < n; ++j) {
          if (mask & (1u << j)) continue;
          const spec::Effect& e =
              type.apply(value, ops[static_cast<std::size_t>(j)]);
          const int team = first_team >= 0
                               ? first_team
                               : team_of[static_cast<std::size_t>(j)];
          dfs(mask | (1u << j), e.next_value, team);
        }
      };
  dfs(0u, u, -1);

  ConfigClass result;
  result.disjoint = true;
  for (spec::ValueId v = 0; v < type.value_count(); ++v) {
    if (in_u[0][static_cast<std::size_t>(v)]) result.u0.push_back(v);
    if (in_u[1][static_cast<std::size_t>(v)]) result.u1.push_back(v);
    if (in_u[0][static_cast<std::size_t>(v)] &&
        in_u[1][static_cast<std::size_t>(v)]) {
      result.disjoint = false;
    }
  }
  for (int x = 0; x <= 1; ++x) {
    if (in_u[x][static_cast<std::size_t>(u)]) result.hiding_v = x;
  }

  if (result.disjoint) {
    bool hiding_ok = true;
    if (result.hiding_v.has_value()) {
      const int xbar = 1 - *result.hiding_v;
      const int size_xbar = static_cast<int>(
          std::count(team_of.begin(), team_of.end(), xbar));
      hiding_ok = size_xbar == 1;
    }
    result.recording = hiding_ok;
  }
  return result;
}

std::optional<CriticalReport> find_critical_execution(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const CriticalSearchOptions& options) {
  return find_critical_execution_from(
      protocol, exec::Config::initial(protocol, inputs), options);
}

std::optional<CriticalReport> find_critical_execution_from(
    const exec::Protocol& protocol, exec::Config start,
    const CriticalSearchOptions& options) {
  const int n = protocol.process_count();
  ValencyAnalyzer analyzer(protocol, options.z, options.credit_cap,
                           options.max_states);

  BudgetState state = analyzer.initial_state(std::move(start));
  DecisionMask past = 0;
  if (analyzer.valence(state, past) != Valence::kBivalent) {
    return std::nullopt;  // need a bivalent starting point (Observation 1)
  }

  exec::Schedule schedule;
  std::unordered_set<std::uint64_t> walked;
  walked.insert(state.hash());

  for (std::size_t iter = 0; iter < options.max_walk_events; ++iter) {
    std::vector<Extension> extensions =
        admissible_extensions(protocol, analyzer, state, past);

    // Criticality test: every one-event admissible extension univalent
    // (judged over ALL processes, even when the walk itself is
    // restricted).
    const auto allowed = [&](const Extension& ext) {
      if (options.allowed_pids.empty()) return true;
      for (int pid : options.allowed_pids) {
        if (pid == ext.event.pid) return true;
      }
      return false;
    };
    const Extension* bivalent_unvisited = nullptr;
    const Extension* bivalent_any = nullptr;
    bool all_univalent = true;
    for (const Extension& ext : extensions) {
      if (analyzer.valence(ext.state, ext.past) == Valence::kBivalent) {
        all_univalent = false;
        if (!allowed(ext)) continue;
        if (bivalent_any == nullptr) bivalent_any = &ext;
        if (bivalent_unvisited == nullptr &&
            walked.find(ext.state.hash()) == walked.end()) {
          bivalent_unvisited = &ext;
        }
      }
    }

    if (all_univalent) {
      CriticalReport report;
      report.schedule = std::move(schedule);
      report.end_state = state;
      report.team_of.assign(static_cast<std::size_t>(n), -1);
      for (const Extension& ext : extensions) {
        if (ext.event.is_crash()) continue;
        const Valence v = analyzer.valence(ext.state, ext.past);
        report.team_of[static_cast<std::size_t>(ext.event.pid)] =
            v == Valence::kUnivalent0 ? 0 : (v == Valence::kUnivalent1 ? 1
                                                                       : -1);
      }
      // Lemma 9: the common poised object.
      report.poised_ops.assign(static_cast<std::size_t>(n), -1);
      report.same_object = true;
      exec::ObjectId object = -1;
      for (int pid = 0; pid < n; ++pid) {
        const exec::Action action =
            protocol.poised(pid, state.config.local(pid));
        if (action.kind != exec::Action::Kind::kInvoke) {
          report.same_object = false;
          break;
        }
        if (object < 0) object = action.object;
        if (action.object != object) report.same_object = false;
        report.poised_ops[static_cast<std::size_t>(pid)] = action.op;
      }
      report.object = object;
      if (report.same_object) {
        report.config_class = classify_poised_configuration(
            protocol, state.config, object, report.team_of,
            report.poised_ops);
      }
      return report;
    }

    // Keep walking: prefer an unvisited bivalent extension; fall back to a
    // visited one (bounded by max_walk_events) to honour the definition.
    const Extension* chosen =
        bivalent_unvisited != nullptr ? bivalent_unvisited : bivalent_any;
    if (chosen == nullptr) {
      // Bivalent extensions exist but none by an allowed process: the
      // restricted walk cannot make progress (Theorem 13's argument rules
      // this out for its stages; report honestly rather than cheating).
      return std::nullopt;
    }
    schedule.push_back(chosen->event);
    past = chosen->past;
    state = chosen->state;
    walked.insert(state.hash());
  }
  return std::nullopt;  // walk budget exhausted
}

std::string CriticalReport::render(const exec::Protocol& protocol) const {
  std::ostringstream oss;
  oss << "critical execution alpha = " << exec::schedule_to_string(schedule)
      << "\n";
  oss << "teams at C-alpha:";
  for (std::size_t i = 0; i < team_of.size(); ++i) {
    oss << "  p" << i << " -> team "
        << (team_of[i] >= 0 ? std::to_string(team_of[i]) : "?");
  }
  oss << "\n";
  if (!same_object) {
    oss << "processes are NOT all poised on one object (unexpected; "
           "Lemma 9 violated?)\n";
    return oss.str();
  }
  const spec::ObjectType& type = protocol.object_type(object);
  oss << "common poised object: O" << object << " of type " << type.name()
      << ", value " << type.value_name(end_state.config.value(object))
      << "\n";
  oss << "poised operations:";
  for (std::size_t i = 0; i < poised_ops.size(); ++i) {
    oss << "  p" << i << ":" << type.op_name(poised_ops[i]);
  }
  oss << "\n";
  const auto render_set = [&](const std::vector<spec::ValueId>& vs) {
    std::string s = "{";
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (i != 0) s += ", ";
      s += type.value_name(vs[i]);
    }
    return s + "}";
  };
  oss << "U_0 = " << render_set(config_class.u0)
      << "  U_1 = " << render_set(config_class.u1)
      << (config_class.disjoint ? "  (disjoint)" : "  (INTERSECT)") << "\n";
  if (config_class.hiding_v.has_value()) {
    oss << "configuration is " << *config_class.hiding_v << "-hiding\n";
  }
  oss << "configuration is "
      << (config_class.recording ? "n-RECORDING" : "not n-recording") << "\n";
  return oss.str();
}

}  // namespace rcons::valency
