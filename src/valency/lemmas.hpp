// Mechanical verification of the paper's Section 3 lemmas at a concrete
// critical execution.
//
// find_critical_execution returns a CriticalReport; the verifiers here
// re-establish, by direct enumeration, the properties the paper proves
// about such executions:
//   * Lemma 7  — both teams are nonempty.
//   * Lemma 8  — the end configuration is bivalent with respect to
//                E_z*(C-alpha) with FRESH budgets (strictly stronger than
//                the execution being bivalent w.r.t. E_z*(C)).
//   * Lemma 9  — every process is poised to apply an operation to the
//                same object.
//   * Lemma 10 — if schedules p_i R_i (team v first) and p_j R_j (team
//                vbar first) drive O to the same value, then p_j is the
//                highest-id process and R_j is empty, where vbar is
//                p_{n-1}'s team.
// Each verifier returns a human-readable failure description (empty =
// verified), so tests can assert emptiness and examples can print the
// outcome; a non-empty result on a correct recoverable algorithm would
// contradict the paper.
#pragma once

#include <string>

#include "exec/protocol.hpp"
#include "valency/critical.hpp"

namespace rcons::valency {

/// Lemma 7: both teams nonempty (every process classified, both teams
/// inhabited).
std::string verify_lemma7(const CriticalReport& report);

/// Lemma 8: C-alpha is bivalent w.r.t. E_z*(C-alpha) — i.e. with budgets
/// restarted at the critical configuration.
std::string verify_lemma8(const exec::Protocol& protocol,
                          const CriticalReport& report, int z = 1,
                          int credit_cap = 6);

/// Lemma 9: one common poised object.
std::string verify_lemma9(const CriticalReport& report);

/// Lemma 10: enumerate all one-shot schedule pairs (p_i R_i, p_j R_j)
/// with p_i on team v and p_j on team vbar (= p_{n-1}'s team) and check
/// that equal resulting O-values force p_j = p_{n-1} and R_j empty.
std::string verify_lemma10(const exec::Protocol& protocol,
                           const CriticalReport& report);

/// Runs all of the above; returns the concatenated failures.
std::string verify_section3_lemmas(const exec::Protocol& protocol,
                                   const CriticalReport& report, int z = 1);

}  // namespace rcons::valency
