// The parallel exploration engine (DESIGN.md §7).
//
// Both checkers run LEVEL-SYNCHRONOUS breadth-first search, which is
// exactly the order the serial FIFO engine visits nodes in. Each level:
//
//   1. EXPAND (parallel): the frontier is chunked across the pool. Every
//      (node k, transition t) expansion is tagged with its SLOT
//      k * transitions_per_node + t — the position at which the serial
//      engine would perform it. Successors race into a sharded
//      ShardedMinMap keyed by the node; the map keeps the minimum
//      (level, slot) discovery key, so after the barrier the map holds the
//      serial engine's first-discovery assignment regardless of thread
//      interleaving. Violations are detected per-expansion (they depend
//      only on the node and the transition, never on visited-set state),
//      and each chunk keeps its smallest violating slot.
//
//   2. REDUCE (sequential, cheap): confirmed winners are sorted by slot —
//      yielding the exact frontier order the serial engine would enqueue —
//      and a sweep over the frontier replays the serial engine's
//      bookkeeping: pop-time max_states checks, per-config stats, and the
//      earliest violating slot. Because the sweep consumes winners in slot
//      order, every count it reports equals the serial engine's count at
//      the same point, including mid-level truncations and violations.
//
// The result: verdicts, violation strings, counterexample schedules and
// all statistics are bit-identical to the serial engine for every thread
// count. Wasted work on early exit is bounded by one level.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "exec/execute.hpp"
#include "reduction/config_canon.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/sharded_set.hpp"
#include "valency/explore.hpp"
#include "valency/model_checker.hpp"

namespace rcons::valency::detail {

namespace {

/// The position at which the serial engine first creates a node: level,
/// then slot within the level's expansion sequence. Previous levels always
/// order before the current one, so a rediscovery of an old node never
/// displaces it.
struct DiscoveryKey {
  std::uint32_t level = 0;
  std::uint64_t slot = 0;
};

struct DiscoveryKeyLess {
  bool operator()(const DiscoveryKey& a, const DiscoveryKey& b) const {
    if (a.level != b.level) return a.level < b.level;
    return a.slot < b.slot;
  }
};

/// One stored search node: the node plus its discovery edge (index of the
/// parent in the previous level and the transition taken), from which
/// counterexample schedules are reconstructed without a parents hash map.
struct Stored {
  Node node;
  std::uint32_t parent = 0;
  std::uint16_t transition = 0;
};

std::uint64_t slot_of(const Stored& s, int tpn) {
  return static_cast<std::uint64_t>(s.parent) *
             static_cast<std::uint64_t>(tpn) +
         s.transition;
}

std::vector<exec::Schedule> path_segments(
    const std::vector<std::vector<Stored>>& levels, std::size_t level,
    std::size_t index, int n) {
  std::vector<exec::Schedule> segments;
  while (level > 0) {
    const Stored& s = levels[level][index];
    segments.push_back(transition_segment(s.transition, n));
    index = s.parent;
    --level;
  }
  std::reverse(segments.begin(), segments.end());
  return segments;
}

exec::Schedule path_to(const std::vector<std::vector<Stored>>& levels,
                       std::size_t level, std::size_t index, int n) {
  exec::Schedule schedule;
  for (const exec::Schedule& seg : path_segments(levels, level, index, n)) {
    schedule.insert(schedule.end(), seg.begin(), seg.end());
  }
  return schedule;
}

using VisitedMap = util::ShardedMinMap<Node, DiscoveryKey, NodeHash,
                                       DiscoveryKeyLess>;

struct Candidate {
  Node node;
  std::uint64_t slot = 0;
};

constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

/// Level-synchronous scan tallies, reported once at scope exit. Workers
/// never touch the registry: the coordinating thread records per-level
/// frontier sizes, which is both cheap and thread-count-independent.
struct ParallelScanMetrics {
  std::string prefix;
  trace::ScopedSpan span;
  std::size_t states = 0;
  std::size_t levels = 0;
  std::size_t max_frontier = 0;

  explicit ParallelScanMetrics(std::string p)
      : prefix(p), span(p + ".scan") {}
  ~ParallelScanMetrics() {
    auto& m = trace::metrics();
    m.add(prefix + ".scans", 1);
    m.add(prefix + ".states_visited", static_cast<std::int64_t>(states));
    m.max_gauge(prefix + ".max_frontier",
                static_cast<std::int64_t>(max_frontier));
    m.max_gauge(prefix + ".max_depth", static_cast<std::int64_t>(levels));
    m.observe(prefix + ".frontier_peak",
              static_cast<std::int64_t>(max_frontier));
  }

  void on_level(std::size_t frontier_size) {
    levels += 1;
    max_frontier = std::max(max_frontier, frontier_size);
    trace::metrics().observe(prefix + ".frontier_level",
                             static_cast<std::int64_t>(frontier_size));
  }
};

/// Confirms which candidates still own their map entry (a later chunk may
/// have found a smaller slot for the same node) and orders them by slot —
/// the serial enqueue order of the next frontier.
std::vector<Stored> confirm_winners(
    std::vector<std::vector<Candidate>>& chunk_candidates,
    const VisitedMap& discovered, std::uint32_t next_level, int tpn) {
  std::vector<Stored> winners;
  for (auto& chunk : chunk_candidates) {
    for (Candidate& cand : chunk) {
      const auto key = discovered.lookup(cand.node);
      RCONS_CHECK(key.has_value());
      if (key->level == next_level && key->slot == cand.slot) {
        winners.push_back(
            Stored{std::move(cand.node),
                   static_cast<std::uint32_t>(cand.slot /
                                              static_cast<std::uint64_t>(tpn)),
                   static_cast<std::uint16_t>(cand.slot %
                                              static_cast<std::uint64_t>(tpn))});
      }
    }
    chunk.clear();
  }
  std::sort(winners.begin(), winners.end(),
            [tpn](const Stored& a, const Stored& b) {
    return slot_of(a, tpn) < slot_of(b, tpn);
  });
  return winners;
}

SafetyResult safety_impl(const exec::Protocol& protocol,
                         const std::vector<int>& inputs,
                         const SafetyOptions& options,
                         util::ThreadPool& pool) {
  const int n = protocol.process_count();
  const int tpn = transitions_per_node(n);
  const CrashMode mode = options.effective_mode();
  const bool individual =
      mode == CrashMode::kIndividual || mode == CrashMode::kBoth;
  const bool simultaneous =
      mode == CrashMode::kSimultaneous || mode == CrashMode::kBoth;

  unsigned valid_mask = 0;
  for (int v : inputs) valid_mask |= 1u << v;

  const reduction::ProcessSymmetryReducer reducer(
      protocol, inputs,
      options.reduce_symmetry && protocol.process_symmetric());

  SafetyResult result;

  std::vector<std::vector<Stored>> levels;
  levels.push_back(
      {Stored{Node{exec::Config::initial(protocol, inputs), 0}, 0, 0}});
  reducer.canonicalize(&levels[0][0].node.config);  // no-op per contract

  VisitedMap discovered(pool.thread_count());
  discovered.insert_min(levels[0][0].node, DiscoveryKey{0, 0});
  std::unordered_set<std::uint64_t> seen_configs;
  seen_configs.insert(levels[0][0].node.config.hash());
  std::size_t stored_count = 1;

  struct FoundViolation {
    std::uint64_t slot = kNoSlot;
    bool validity = false;  // else: agreement
    int pid = -1;
    int value = -1;
    unsigned mask = 0;  // outputs mask at the violation (agreement message)
  };

  ParallelScanMetrics scan("safety.parallel");
  for (std::uint32_t level = 0;; ++level) {
    if (levels[level].empty()) break;
    const std::vector<Stored>& frontier = levels[level];
    RCONS_CHECK(frontier.size() <=
                std::numeric_limits<std::uint32_t>::max());
    scan.on_level(frontier.size());
    scan.states = stored_count;

    const std::size_t chunks = pool.chunk_count(frontier.size(), 1);
    std::vector<std::vector<Candidate>> chunk_candidates(chunks);
    std::vector<FoundViolation> chunk_violation(chunks);

    pool.parallel_for(
        frontier.size(), 1,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      std::vector<Candidate>& candidates = chunk_candidates[chunk];
      FoundViolation& violation = chunk_violation[chunk];
      for (std::size_t k = begin;
           k < end && violation.slot == kNoSlot; ++k) {
        const Node& node = frontier[k].node;
        for (int t = 0; t < tpn; ++t) {
          if (transition_is_crash(t, n) && !individual) continue;
          if (transition_is_simultaneous(t, n) && !simultaneous) continue;
          const std::uint64_t slot =
              static_cast<std::uint64_t>(k) *
                  static_cast<std::uint64_t>(tpn) +
              static_cast<std::uint64_t>(t);
          Node next = node;
          exec::DecisionLog log(n);
          if (transition_is_step(t, n)) {
            const int pid = transition_pid(t);
            const exec::EventOutcome out = exec::apply_event(
                protocol, next.config, exec::Event::step(pid), log);
            if (out.decision.has_value()) {
              const int v = *out.decision;
              if (((valid_mask >> v) & 1u) == 0) {
                violation = FoundViolation{slot, /*validity=*/true, pid, v,
                                           next.mask | (1u << v)};
                break;  // later slots in this chunk can never matter
              }
              next.mask |= 1u << v;
              if (std::popcount(next.mask) >= 2) {
                violation = FoundViolation{slot, /*validity=*/false, pid, v,
                                           next.mask};
                break;
              }
            }
          } else if (transition_is_crash(t, n)) {
            exec::apply_event(protocol, next.config,
                              exec::Event::crash(transition_pid(t)), log);
          } else {
            for (int pid = 0; pid < n; ++pid) {
              exec::apply_event(protocol, next.config,
                                exec::Event::crash(pid), log);
            }
          }
          reducer.canonicalize(&next.config);
          if (discovered.insert_min(next, DiscoveryKey{level + 1, slot})) {
            candidates.push_back(Candidate{std::move(next), slot});
          }
        }
      }
    });

    // ---- Deterministic reduction ----
    const FoundViolation* violation = nullptr;
    for (const FoundViolation& v : chunk_violation) {
      if (v.slot != kNoSlot && (violation == nullptr ||
                                v.slot < violation->slot)) {
        violation = &v;
      }
    }

    std::vector<Stored> winners =
        confirm_winners(chunk_candidates, discovered, level + 1, tpn);

    // Sweep the frontier in serial pop order, merging winners (= serial
    // visited-set insertions) in slot order as we go.
    std::size_t wi = 0;
    const auto merge_below = [&](std::uint64_t slot_limit) {
      while (wi < winners.size() && slot_of(winners[wi], tpn) < slot_limit) {
        seen_configs.insert(winners[wi].node.config.hash());
        ++wi;
      }
    };
    for (std::size_t k = 0; k < frontier.size(); ++k) {
      merge_below(static_cast<std::uint64_t>(k) *
                  static_cast<std::uint64_t>(tpn));
      if (stored_count + wi > options.max_states) {
        result.explored_fully = false;
        result.states_visited = stored_count + wi;
        result.configs_visited = seen_configs.size();
        return result;
      }
      if (violation != nullptr &&
          violation->slot < (static_cast<std::uint64_t>(k) + 1) *
                                static_cast<std::uint64_t>(tpn)) {
        merge_below(violation->slot);
        std::vector<exec::Schedule> segments = path_segments(
            levels, level,
            static_cast<std::size_t>(violation->slot /
                                     static_cast<std::uint64_t>(tpn)),
            n);
        segments.push_back(transition_segment(
            static_cast<int>(violation->slot %
                             static_cast<std::uint64_t>(tpn)),
            n));
        exec::Schedule schedule;
        int violating_pid = violation->pid;
        if (reducer.active()) {
          schedule = reduction::derandomize_schedule(protocol, inputs,
                                                     reducer, segments)
                         .schedule;
          // The deciding step is the schedule's last event; like the
          // serial engine, report its real-frame process id.
          if (violation->validity) violating_pid = schedule.back().pid;
        } else {
          for (const exec::Schedule& seg : segments) {
            schedule.insert(schedule.end(), seg.begin(), seg.end());
          }
        }
        if (violation->validity) {
          result.validity_ok = false;
          result.violation =
              validity_message(violating_pid, violation->value);
        } else {
          result.agreement_ok = false;
          result.violation = agreement_message(violation->mask);
        }
        result.counterexample = std::move(schedule);
        result.states_visited = stored_count + wi;
        result.configs_visited = seen_configs.size();
        return result;
      }
    }
    merge_below(kNoSlot);
    stored_count += winners.size();
    levels.push_back(std::move(winners));
  }

  result.explored_fully = true;
  result.states_visited = stored_count;
  result.configs_visited = seen_configs.size();
  scan.states = stored_count;
  return result;
}

LivenessResult liveness_impl(const exec::Protocol& protocol,
                             const std::vector<int>& inputs,
                             const LivenessOptions& options,
                             util::ThreadPool& pool) {
  const int n = protocol.process_count();
  const int tpn = 2 * n;  // step/crash interleaved; no simultaneous event

  const reduction::ProcessSymmetryReducer reducer(
      protocol, inputs,
      options.reduce_symmetry && protocol.process_symmetric());

  LivenessResult result;

  std::vector<std::vector<Stored>> levels;
  levels.push_back(
      {Stored{Node{exec::Config::initial(protocol, inputs), 0}, 0, 0}});
  reducer.canonicalize(&levels[0][0].node.config);  // no-op per contract

  VisitedMap discovered(pool.thread_count());
  discovered.insert_min(levels[0][0].node, DiscoveryKey{0, 0});
  std::unordered_set<std::uint64_t> probed_configs;
  std::size_t stored_count = 1;

  ParallelScanMetrics scan("liveness.parallel");
  for (std::uint32_t level = 0;; ++level) {
    if (levels[level].empty()) break;
    const std::vector<Stored>& frontier = levels[level];
    RCONS_CHECK(frontier.size() <=
                std::numeric_limits<std::uint32_t>::max());
    scan.on_level(frontier.size());
    scan.states = stored_count;

    // Probe jobs: the first node (in pop order) of each configuration not
    // yet probed — exactly the set the serial engine would probe while
    // draining this level.
    std::vector<std::size_t> probe_nodes;
    {
      std::unordered_set<std::uint64_t> claimed;
      for (std::size_t k = 0; k < frontier.size(); ++k) {
        const std::uint64_t h = frontier[k].node.config.hash();
        if (probed_configs.count(h) == 0 && claimed.insert(h).second) {
          probe_nodes.push_back(k);
        }
      }
    }
    std::vector<int> probe_stuck(probe_nodes.size(), -1);
    pool.parallel_for(
        probe_nodes.size(), 1,
        [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const exec::Config& config = frontier[probe_nodes[i]].node.config;
        for (int pid = 0; pid < n; ++pid) {
          if (!exec::solo_terminating_decision(protocol, config, pid,
                                               options.solo_step_bound)
                   .has_value()) {
            probe_stuck[i] = pid;
            break;
          }
        }
      }
    });

    const std::size_t chunks = pool.chunk_count(frontier.size(), 1);
    std::vector<std::vector<Candidate>> chunk_candidates(chunks);
    pool.parallel_for(
        frontier.size(), 1,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      std::vector<Candidate>& candidates = chunk_candidates[chunk];
      for (std::size_t k = begin; k < end; ++k) {
        const Node& node = frontier[k].node;
        for (int t = 0; t < tpn; ++t) {
          if (transition_is_crash(t, n) && !options.allow_crashes) continue;
          const std::uint64_t slot =
              static_cast<std::uint64_t>(k) *
                  static_cast<std::uint64_t>(tpn) +
              static_cast<std::uint64_t>(t);
          const int pid = transition_pid(t);
          Node next = node;
          exec::DecisionLog log(n);
          if (transition_is_step(t, n)) {
            const exec::EventOutcome out = exec::apply_event(
                protocol, next.config, exec::Event::step(pid), log);
            if (out.decision.has_value()) next.mask |= 1u << *out.decision;
          } else {
            exec::apply_event(protocol, next.config, exec::Event::crash(pid),
                              log);
          }
          reducer.canonicalize(&next.config);
          if (discovered.insert_min(next, DiscoveryKey{level + 1, slot})) {
            candidates.push_back(Candidate{std::move(next), slot});
          }
        }
      }
    });

    // ---- Deterministic reduction ----
    std::vector<Stored> winners =
        confirm_winners(chunk_candidates, discovered, level + 1, tpn);

    std::size_t wi = 0;
    std::size_t pi = 0;
    for (std::size_t k = 0; k < frontier.size(); ++k) {
      while (wi < winners.size() &&
             slot_of(winners[wi], tpn) <
                 static_cast<std::uint64_t>(k) *
                     static_cast<std::uint64_t>(tpn)) {
        ++wi;
      }
      if (stored_count + wi > options.max_states) {
        result.explored_fully = false;
        return result;
      }
      if (pi < probe_nodes.size() && probe_nodes[pi] == k) {
        probed_configs.insert(frontier[k].node.config.hash());
        result.configs_probed += 1;
        if (probe_stuck[pi] >= 0) {
          result.wait_free = false;
          if (reducer.active()) {
            auto fixed = reduction::derandomize_schedule(
                protocol, inputs, reducer, path_segments(levels, level, k, n));
            result.stuck_pid = fixed.real_pid(probe_stuck[pi]);
            result.reaching_schedule = std::move(fixed.schedule);
          } else {
            result.stuck_pid = probe_stuck[pi];
            result.reaching_schedule = path_to(levels, level, k, n);
          }
          return result;
        }
        ++pi;
      }
    }
    stored_count += winners.size();
    levels.push_back(std::move(winners));
  }

  result.explored_fully = true;
  scan.states = stored_count;
  return result;
}

}  // namespace

SafetyResult check_safety_parallel(const exec::Protocol& protocol,
                                   const std::vector<int>& inputs,
                                   const SafetyOptions& options) {
  util::ThreadPool pool(options.threads);
  return safety_impl(protocol, inputs, options, pool);
}

SafetyResult check_safety_all_inputs_parallel(const exec::Protocol& protocol,
                                              const SafetyOptions& options) {
  // Inputs are checked sequentially, each with the full pool applied to
  // its frontier: the merge (including the early exit on the first
  // violating input) is then exactly the serial driver's, with no work
  // wasted past a violation.
  util::ThreadPool pool(options.threads);
  SafetyResult merged;
  merged.explored_fully = true;
  for (const auto& inputs :
       driver_input_vectors(protocol, options.reduce_symmetry)) {
    SafetyResult r = safety_impl(protocol, inputs, options, pool);
    merged.states_visited += r.states_visited;
    merged.configs_visited += r.configs_visited;
    merged.explored_fully = merged.explored_fully && r.explored_fully;
    if (!r.ok()) {
      merged.agreement_ok = r.agreement_ok;
      merged.validity_ok = r.validity_ok;
      merged.counterexample = std::move(r.counterexample);
      merged.violation = std::move(r.violation);
      return merged;
    }
  }
  return merged;
}

LivenessResult check_liveness_parallel(const exec::Protocol& protocol,
                                       const std::vector<int>& inputs,
                                       const LivenessOptions& options) {
  util::ThreadPool pool(options.threads);
  return liveness_impl(protocol, inputs, options, pool);
}

}  // namespace rcons::valency::detail
