#include "valency/theorem13.hpp"

#include <sstream>

#include "exec/execute.hpp"
#include "util/assert.hpp"

namespace rcons::valency {

Theorem13Chain run_theorem13_chain(const exec::Protocol& protocol,
                                   const std::vector<int>& inputs,
                                   const CriticalSearchOptions& options) {
  const int n = protocol.process_count();
  Theorem13Chain chain;

  exec::Config config = exec::Config::initial(protocol, inputs);
  CriticalSearchOptions stage_options = options;
  exec::Schedule bridge;  // events from the previous D_i' to this D_i

  // Stage index i: at stage i > 0 only processes n-i..n-1 act (the paper's
  // property (f)); i is bounded by n-1 because each hiding stage crashes
  // one more prefix of processes.
  for (int i = 0; i < n; ++i) {
    const auto report =
        find_critical_execution_from(protocol, config, stage_options);
    if (!report.has_value()) {
      chain.failure = "stage " + std::to_string(i) +
                      ": no critical execution (D_i not bivalent or the "
                      "restricted walk stalled)";
      return chain;
    }
    chain.stages.push_back(ChainStage{bridge, *report});
    const CriticalReport& r = chain.stages.back().report;

    if (!r.same_object) {
      chain.failure = "stage " + std::to_string(i) +
                      ": processes poised on different objects (Lemma 9 "
                      "violated — not a correct recoverable algorithm?)";
      return chain;
    }
    if (r.config_class.recording) {
      chain.reached_recording = true;
      return chain;
    }

    // Build the next stage's D_{i+1}.
    exec::DecisionLog log(n);
    bridge.clear();
    config = r.end_state.config;
    if (r.config_class.hiding_v.has_value()) {
      // v-hiding: crash the suffix processes lambda_{n-(i+1)} and restrict
      // the next critical walk to them.
      const int first = n - (i + 1);
      if (first < 1) {
        chain.failure = "stage " + std::to_string(i) +
                        ": hiding chain exhausted all processes";
        return chain;
      }
      for (const exec::Event& e : exec::lambda_schedule(first, n)) {
        bridge.push_back(e);
        exec::apply_event(protocol, config, e, log);
      }
      stage_options.allowed_pids.clear();
      for (int pid = first; pid < n; ++pid) {
        stage_options.allowed_pids.push_back(pid);
      }
    } else {
      // "Neither" case (only arises at D_0' in the paper): step p_{n-1},
      // crash it, and continue with p_{n-1} alone.
      if (i != 0) {
        chain.failure = "stage " + std::to_string(i) +
                        ": 'neither' classification after stage 0 "
                        "(unexpected per Observation 11 + Lemma 12)";
        return chain;
      }
      for (const exec::Event& e :
           {exec::Event::step(n - 1), exec::Event::crash(n - 1)}) {
        bridge.push_back(e);
        exec::apply_event(protocol, config, e, log);
      }
      stage_options.allowed_pids = {n - 1};
    }
  }
  chain.failure = "chain did not terminate within n stages";
  return chain;
}

std::string Theorem13Chain::render(const exec::Protocol& protocol) const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (!stages[i].bridge.empty()) {
      oss << "bridge to D_" << i << ": "
          << exec::schedule_to_string(stages[i].bridge) << "\n";
    }
    oss << "--- stage " << i << " (D_" << i << " -> D_" << i << "') ---\n"
        << stages[i].report.render(protocol);
  }
  if (reached_recording) {
    oss << "chain reached an n-RECORDING configuration after "
        << stages.size() << " stage(s): the poised object's type is "
        << "n-recording (Theorem 13).\n";
  } else {
    oss << "chain FAILED: " << failure << "\n";
  }
  return oss.str();
}

}  // namespace rcons::valency
