#include "trace/counterexample.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace rcons::trace {

namespace {

/// Schedules, inputs, and notes are embedded one per line; a newline in a
/// free-text field would corrupt the framing, so it is flattened.
std::string one_line(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

bool parse_int(const std::string& s, int* out) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  long long value = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    value = value * 10 + (s[i] - '0');
    if (value > 1'000'000'000) return false;
  }
  *out = static_cast<int>(s[0] == '-' ? -value : value);
  return true;
}

bool parse_schedule(const std::string& s, exec::Schedule* out) {
  out->clear();
  if (s == "<>") return true;
  std::istringstream iss(s);
  std::string token;
  while (iss >> token) {
    if (token.size() < 2 || (token[0] != 'p' && token[0] != 'c')) {
      return false;
    }
    int pid = -1;
    if (!parse_int(token.substr(1), &pid) || pid < 0) return false;
    out->push_back(token[0] == 'p' ? exec::Event::step(pid)
                                   : exec::Event::crash(pid));
  }
  return true;
}

}  // namespace

const char* counterexample_kind_name(CounterexampleKind k) {
  switch (k) {
    case CounterexampleKind::kSafety: return "safety";
    case CounterexampleKind::kLiveness: return "liveness";
    case CounterexampleKind::kRcAudit: return "rc";
  }
  return "?";
}

std::string serialize_counterexample(const Counterexample& c) {
  std::string out = "rcons-trace v1\n";
  out += "kind: ";
  out += counterexample_kind_name(c.kind);
  out += "\n";
  if (!c.protocol_spec.empty()) {
    out += "protocol: " + one_line(c.protocol_spec) + "\n";
  }
  if (!c.inputs.empty()) {
    out += "inputs:";
    for (int v : c.inputs) out += " " + std::to_string(v);
    out += "\n";
  }
  if (c.pid >= 0) out += "pid: " + std::to_string(c.pid) + "\n";
  if (c.input >= 0) out += "input: " + std::to_string(c.input) + "\n";
  if (c.kind == CounterexampleKind::kLiveness) {
    out += "solo_bound: " + std::to_string(c.solo_bound) + "\n";
  }
  if (!c.rule.empty()) out += "rule: " + one_line(c.rule) + "\n";
  if (!c.note.empty()) out += "note: " + one_line(c.note) + "\n";
  out += "schedule: " + exec::schedule_to_string(c.schedule) + "\n";
  out += "verdict: " + one_line(c.verdict) + "\n";
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016" PRIx64, c.state_hash);
  out += "state_hash: ";
  out += hash;
  out += "\n";
  return out;
}

TraceParseResult parse_counterexample(const std::string& text) {
  TraceParseResult result;
  Counterexample c;
  bool saw_kind = false, saw_schedule = false, saw_verdict = false,
       saw_hash = false;

  std::istringstream iss(text);
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& what) {
    result.error = what;
    result.error_line = line_no;
    return result;
  };

  bool saw_header = false;
  while (std::getline(iss, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!saw_header) {
      if (line != "rcons-trace v1") {
        return fail("expected header 'rcons-trace v1'");
      }
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;
    const std::size_t colon = line.find(": ");
    if (colon == std::string::npos) return fail("expected 'key: value'");
    const std::string key = line.substr(0, colon);
    const std::string value = line.substr(colon + 2);

    if (key == "kind") {
      saw_kind = true;
      if (value == "safety") {
        c.kind = CounterexampleKind::kSafety;
      } else if (value == "liveness") {
        c.kind = CounterexampleKind::kLiveness;
      } else if (value == "rc") {
        c.kind = CounterexampleKind::kRcAudit;
      } else {
        return fail("unknown kind '" + value + "'");
      }
    } else if (key == "protocol") {
      c.protocol_spec = value;
    } else if (key == "inputs") {
      std::istringstream vs(value);
      std::string token;
      while (vs >> token) {
        int v = -1;
        if (!parse_int(token, &v)) return fail("bad input '" + token + "'");
        c.inputs.push_back(v);
      }
    } else if (key == "pid") {
      if (!parse_int(value, &c.pid)) return fail("bad pid");
    } else if (key == "input") {
      if (!parse_int(value, &c.input)) return fail("bad input");
    } else if (key == "solo_bound") {
      if (!parse_int(value, &c.solo_bound)) return fail("bad solo_bound");
    } else if (key == "rule") {
      c.rule = value;
    } else if (key == "note") {
      c.note = value;
    } else if (key == "schedule") {
      saw_schedule = true;
      if (!parse_schedule(value, &c.schedule)) {
        return fail("bad schedule '" + value + "'");
      }
    } else if (key == "verdict") {
      saw_verdict = true;
      c.verdict = value;
    } else if (key == "state_hash") {
      saw_hash = true;
      if (value.size() != 16) return fail("state_hash wants 16 hex digits");
      std::uint64_t h = 0;
      for (char ch : value) {
        int digit;
        if (ch >= '0' && ch <= '9') {
          digit = ch - '0';
        } else if (ch >= 'a' && ch <= 'f') {
          digit = ch - 'a' + 10;
        } else {
          return fail("state_hash wants lowercase hex");
        }
        h = (h << 4) | static_cast<std::uint64_t>(digit);
      }
      c.state_hash = h;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (line_no == 0) {
    line_no = 1;
    return fail("empty trace file");
  }
  if (!saw_kind) return fail("missing 'kind'");
  if (!saw_schedule) return fail("missing 'schedule'");
  if (!saw_verdict) return fail("missing 'verdict'");
  if (!saw_hash) return fail("missing 'state_hash'");
  result.trace = std::move(c);
  return result;
}

}  // namespace rcons::trace
