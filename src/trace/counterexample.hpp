// Counterexample capture and the `.trace` interchange format (DESIGN.md
// §9).
//
// When a safety scan, a liveness scan, or the RC recovery audit finds a
// violation, the exact witness schedule is packaged as a Counterexample
// and written as a `.trace` file; `rcons_cli replay <file>` re-executes it
// deterministically and checks the ROUND-TRIP GUARANTEE: the replay must
// reproduce the identical verdict string and final state hash recorded at
// capture time. Capture itself computes both fields by running the very
// same replay routine (replay.hpp), so the guarantee is structural: a
// mismatch on replay means the protocol, the file, or the engine changed.
//
// The format is deliberately line-oriented text — diffable, greppable,
// byte-deterministic:
//
//   rcons-trace v1
//   kind: safety | liveness | rc
//   protocol: naive 2            # CLI spec tokens (omitted when unknown)
//   inputs: 0 1                  # safety / liveness
//   pid: 1                       # liveness stuck process / rc solo process
//   input: 0                     # rc unit's input bit
//   solo_bound: 1000             # liveness solo probe bound
//   rule: RC004                  # rc: the rule that fired (informational)
//   note: ...                    # free text (informational)
//   schedule: p0 p1 c1 p0        # the witness schedule ("<>" = empty)
//   verdict: VIOLATION agreement: distinct values 0 and 1 were output
//   state_hash: 0123456789abcdef
//
// `verdict` and `state_hash` are the round-trip-checked fields; `rule` and
// `note` are carried for humans and never re-verified.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/event.hpp"

namespace rcons::trace {

enum class CounterexampleKind { kSafety, kLiveness, kRcAudit };

const char* counterexample_kind_name(CounterexampleKind k);

struct Counterexample {
  CounterexampleKind kind = CounterexampleKind::kSafety;
  /// CLI protocol spec tokens ("recording cas3 2"); empty when captured
  /// in-process (unit tests). Required for `rcons_cli replay`.
  std::string protocol_spec;
  std::vector<int> inputs;       // safety / liveness
  exec::Schedule schedule;
  int pid = -1;                  // liveness: stuck pid; rc: solo pid
  int input = -1;                // rc: the unit's input bit
  int solo_bound = 1000;         // liveness: solo probe step bound
  std::string rule;              // rc: "RC002" ... (informational)
  std::string note;              // human context (informational)

  /// Round-trip-checked fields, filled at capture time by replaying.
  std::string verdict;
  std::uint64_t state_hash = 0;
};

/// Renders the `.trace` file contents (byte-deterministic).
std::string serialize_counterexample(const Counterexample& c);

struct TraceParseResult {
  std::optional<Counterexample> trace;
  std::string error;
  int error_line = 0;

  bool ok() const { return trace.has_value(); }
};

/// Parses `.trace` file contents; rejects unknown versions, unknown keys,
/// malformed schedules, and missing round-trip fields.
TraceParseResult parse_counterexample(const std::string& text);

}  // namespace rcons::trace
