// rcons-trace: the metrics registry (DESIGN.md §9).
//
// Counters, gauges, and histograms that every engine reports into —
// states visited, frontier depth, persist gaps, per-phase wall time — plus
// phase spans that serialize to a chrome://tracing-compatible JSON array.
// Unlike the event stream (trace.hpp) the registry IS allowed to carry
// wall-clock data: metrics are observability, not part of the bit-identical
// replay contract, and the JSON output documents that split.
//
// The registry is mutex-guarded; engines keep per-run tallies in locals
// and report aggregates at phase boundaries, so the lock is never on a hot
// path. Keys are flat dotted names ("safety.states_visited"); to_json()
// renders them sorted, so two runs with the same aggregate values produce
// identical documents modulo the timing fields.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rcons::trace {

/// Aggregate of observed values; buckets are powers of two (bucket i
/// counts observations in [2^i, 2^(i+1)), bucket 0 counts 0 and 1).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::uint64_t> buckets;
};

/// One completed phase span (chrome://tracing "X" event).
struct Span {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  int tid = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Adds `delta` to the named monotone counter.
  void add(const std::string& name, std::int64_t delta);

  /// Sets the named gauge to `value` (last write wins).
  void set_gauge(const std::string& name, std::int64_t value);

  /// Raises the named gauge to `value` if larger (peak tracking).
  void max_gauge(const std::string& name, std::int64_t value);

  /// Records one observation into the named histogram.
  void observe(const std::string& name, std::int64_t value);

  /// Records a completed span (start is microseconds since the registry
  /// was constructed or last reset).
  void record_span(const std::string& name, std::int64_t start_us,
                   std::int64_t duration_us, int tid);

  /// Microseconds since construction / reset, for span bookkeeping.
  std::int64_t now_us() const;

  std::int64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
  HistogramSnapshot histogram(const std::string& name) const;
  std::vector<Span> spans() const;

  /// One JSON document:
  ///   {"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
  ///    "sum":..,"min":..,"max":..,"buckets":[..]}},"spans":N}
  std::string to_json() const;

  /// chrome://tracing "trace event format": a JSON array of complete
  /// ("ph":"X") events. Load via chrome://tracing or Perfetto.
  std::string spans_to_chrome_json() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
  std::vector<Span> spans_;
  std::int64_t epoch_us_ = 0;  // steady-clock origin
};

/// The process-wide registry every engine reports into.
MetricsRegistry& metrics();

/// RAII phase timer: records a span (and a "<name>.wall_us" counter) on
/// destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, int tid = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  std::int64_t start_us_;
  int tid_;
};

}  // namespace rcons::trace
