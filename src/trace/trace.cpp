#include "trace/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace rcons::trace {

namespace {
thread_local TraceBuffer* t_sink = nullptr;
}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kStep: return "step";
    case Kind::kCrash: return "crash";
    case Kind::kRecover: return "recover";
    case Kind::kPersist: return "persist";
    case Kind::kDrop: return "drop";
    case Kind::kDecide: return "decide";
  }
  return "?";
}

TraceBuffer* thread_sink() { return t_sink; }

void set_thread_sink(TraceBuffer* sink) { t_sink = sink; }

std::string TraceBuffer::serialize() const {
  std::string out;
  out.reserve(events_.size() * 48);
  char line[160];
  for (std::size_t seq = 0; seq < events_.size(); ++seq) {
    const TraceEvent& e = events_[seq];
    int n = std::snprintf(line, sizeof(line), "%zu %s p%d", seq,
                          kind_name(e.kind), e.pid);
    if (e.object >= 0) {
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         " obj=%d op=%d resp=%d", e.object, e.op, e.response);
    }
    if (e.decision >= 0) {
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         " decision=%d", e.decision);
    }
    n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                       " hash=%016" PRIx64, e.state_hash);
    if (e.crash_budget >= 0) {
      n += std::snprintf(line + n, sizeof(line) - static_cast<std::size_t>(n),
                         " budget=%" PRId64, e.crash_budget);
    }
    out.append(line, static_cast<std::size_t>(n));
    out.push_back('\n');
  }
  return out;
}

}  // namespace rcons::trace
