// Deterministic counterexample replay (DESIGN.md §9).
//
// replay() re-executes a Counterexample's schedule against a protocol and
// recomputes the two round-trip-checked fields — the verdict string and
// the final state hash — plus the full structured event timeline:
//
//   * safety:   runs the schedule through exec::run_schedule semantics,
//     accumulating the outputs-so-far mask exactly as the model checkers
//     do; the verdict re-derives the violation message through the same
//     shared builders (valency/explore.hpp), so engine and replay can
//     never drift apart textually. Hash = Config::hash() after the
//     schedule.
//   * liveness: runs the reaching schedule, then probes the stuck process
//     solo for `solo_bound` steps. Hash = Config::hash() of the reached
//     configuration (the probe, a pure function of it, is not hashed).
//   * rc:       replays the solo schedule under the recovery audit's
//     shadow-persistency semantics (volatile front + persisted shadow per
//     object, crash reverts to the shadow); the verdict is the canonical
//     decision sequence across crash epochs. Hash = shadow-state hash
//     (vol, shadow, local) after the schedule.
//
// Capture helpers build a Counterexample from an engine result and
// immediately finalize it with this replay, which is what makes the
// round-trip guarantee structural rather than aspirational.
#pragma once

#include <optional>
#include <string>

#include "exec/protocol.hpp"
#include "trace/counterexample.hpp"
#include "trace/trace.hpp"
#include "valency/model_checker.hpp"

namespace rcons::trace {

struct ReplayResult {
  /// Recomputed round-trip fields (compare against the Counterexample's).
  std::string verdict;
  std::uint64_t state_hash = 0;
  /// The structured event stream of the replayed execution.
  TraceBuffer timeline;

  bool matches(const Counterexample& c) const {
    return verdict == c.verdict && state_hash == c.state_hash;
  }
};

/// Re-executes `c.schedule` against `protocol`. The protocol must be the
/// one the counterexample was captured from (replay is deterministic, so
/// any drift shows up as a verdict/hash mismatch, never UB).
ReplayResult replay(const exec::Protocol& protocol, const Counterexample& c);

/// Pretty-prints a replay timeline with op/response names resolved.
std::string render_timeline(const exec::Protocol& protocol,
                            const TraceBuffer& timeline);

/// Builds + finalizes a Counterexample from a safety violation. Returns
/// nullopt when `result` holds no counterexample schedule.
std::optional<Counterexample> capture_safety(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const valency::SafetyResult& result);

/// Builds + finalizes a Counterexample from a liveness violation.
std::optional<Counterexample> capture_liveness(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const valency::LivenessResult& result, int solo_bound);

/// Builds + finalizes an RC-audit Counterexample from a solo schedule
/// (steps and crashes of `pid` only) under shadow persistency.
Counterexample capture_rc(const exec::Protocol& protocol, int pid, int input,
                          exec::Schedule schedule, std::string rule,
                          std::string note);

}  // namespace rcons::trace
