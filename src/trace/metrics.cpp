#include "trace/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace rcons::trace {

namespace {

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int bucket_of(std::int64_t value) {
  if (value <= 1) return 0;
  int b = 0;
  std::uint64_t v = static_cast<std::uint64_t>(value);
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// JSON string escaping for metric names (flat dotted identifiers in
/// practice, but stay correct for arbitrary keys).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : epoch_us_(steady_us()) {}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::max_gauge(const std::string& name, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted && it->second < value) it->second = value;
}

void MetricsRegistry::observe(const std::string& name, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot& h = histograms_[name];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  h.count += 1;
  h.sum += value;
  const int b = bucket_of(value);
  if (h.buckets.size() <= static_cast<std::size_t>(b)) {
    h.buckets.resize(static_cast<std::size_t>(b) + 1, 0);
  }
  h.buckets[static_cast<std::size_t>(b)] += 1;
}

void MetricsRegistry::record_span(const std::string& name,
                                  std::int64_t start_us,
                                  std::int64_t duration_us, int tid) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(Span{name, start_us, duration_us, tid});
}

std::int64_t MetricsRegistry::now_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steady_us() - epoch_us_;
}

std::int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second;
}

std::vector<Span> MetricsRegistry::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[64];
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += "\"" + escape(name) + "\":" + buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += "\"" + escape(name) + "\":" + buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + escape(name) + "\":{";
    std::snprintf(buf, sizeof(buf), "\"count\":%" PRIu64, h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"sum\":%" PRId64, h.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"min\":%" PRId64, h.min);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"max\":%" PRId64, h.max);
    out += buf;
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) out += ",";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, h.buckets[i]);
      out += buf;
    }
    out += "]}";
  }
  out += "},\"spans\":";
  std::snprintf(buf, sizeof(buf), "%zu", spans_.size());
  out += buf;
  out += "}";
  return out;
}

std::string MetricsRegistry::spans_to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "[";
  char buf[160];
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (i != 0) out += ",";
    out += "\n{\"name\":\"" + escape(s.name) + "\",";
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%" PRId64
                  ",\"dur\":%" PRId64 "}",
                  s.tid, s.start_us, s.duration_us);
    out += buf;
  }
  out += "\n]";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  spans_.clear();
  epoch_us_ = steady_us();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* kRegistry = new MetricsRegistry();
  return *kRegistry;
}

ScopedSpan::ScopedSpan(std::string name, int tid)
    : name_(std::move(name)), start_us_(metrics().now_us()), tid_(tid) {}

ScopedSpan::~ScopedSpan() {
  const std::int64_t duration = metrics().now_us() - start_us_;
  metrics().record_span(name_, start_us_, duration, tid_);
  metrics().add(name_ + ".wall_us", duration);
}

}  // namespace rcons::trace
