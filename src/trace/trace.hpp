// rcons-trace: the structured event stream (DESIGN.md §9).
//
// Every engine that executes protocol events — exec::apply_event,
// sched::drive, the valency model checkers' counterexample replays, the
// threaded runtime — can emit TraceEvents describing what happened at the
// model's granularity: step / crash / recover / persist / drop / decide.
// Emission goes through a THREAD-LOCAL sink pointer: when no sink is
// installed (the default, and always the case inside the exhaustive
// exploration loops), the RCONS_TRACE macro costs one thread-local load
// and a predictable branch; when the build is configured with
// -DRCONS_TRACE=OFF the macro compiles to nothing at all.
//
// Determinism contract: a TraceBuffer carries no wall-clock timestamps,
// only a monotone per-buffer sequence number, so two runs that perform the
// same events serialize to byte-identical text. Multi-threaded producers
// (the live runtime, the unit-parallel recovery audit) write into
// per-worker buffers that are merged in unit order — the same
// deterministic-reduction discipline as the PR-2/PR-3 engines — so the
// merged stream is bit-identical for every thread count. Wall-clock
// observability lives in the metrics registry (metrics.hpp), never here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcons::trace {

/// What one event records. The first five kinds mirror the model exactly;
/// kPersist/kDrop exist only under the shadow-persistency semantics
/// (strict mode), and kRecover is the post-crash reset made explicit (the
/// model folds crash and recovery into one transition; traces keep both so
/// a reader can see the reset state hash without replaying).
enum class Kind : std::uint8_t {
  kStep = 0,     // a process applied its poised operation (or no-op'd)
  kCrash = 1,    // volatile local state erased
  kRecover = 2,  // ... and reset to the initial state (hash = post-reset)
  kPersist = 3,  // strict mode: a durable step flushed an object's shadow
  kDrop = 4,     // strict mode: a crash reverted an unpersisted store
  kDecide = 5,   // the step moved the process into an output state
};

const char* kind_name(Kind k);

/// One structured event. Fields that do not apply to a kind stay at their
/// -1 / 0 defaults and serialize as absent.
struct TraceEvent {
  Kind kind = Kind::kStep;
  std::int32_t pid = -1;
  std::int32_t object = -1;    // invoke steps, persists, drops
  std::int32_t op = -1;        // invoke steps
  std::int32_t response = -1;  // invoke steps
  std::int32_t decision = -1;  // kDecide
  /// Configuration (or shadow-state) hash AFTER the event applied.
  std::uint64_t state_hash = 0;
  /// Remaining crash budget of `pid` when an accountant is in scope
  /// (sched::drive under CrashRegime::kBudgeted); -1 = no budget tracked.
  std::int64_t crash_budget = -1;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// An append-only event buffer. Not thread-safe: one buffer per producing
/// thread; merge in deterministic (unit) order afterwards.
class TraceBuffer {
 public:
  void append(const TraceEvent& event) { events_.push_back(event); }

  /// Patches the most recent kCrash event's budget annotation (the
  /// accountant lives above the exec layer that emits the event, and the
  /// crash is followed by its kRecover, so this scans back for it).
  void annotate_last_crash_budget(std::int64_t remaining) {
    for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
      if (it->kind == Kind::kCrash) {
        it->crash_budget = remaining;
        return;
      }
    }
  }

  /// Appends all of `other`'s events (deterministic merge step).
  void merge_from(const TraceBuffer& other) {
    events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// One line per event, deterministic:
  ///   <seq> <kind> p<pid> [obj=N op=N resp=N] [decision=N]
  ///   hash=<16 hex> [budget=N]
  std::string serialize() const;

 private:
  std::vector<TraceEvent> events_;
};

/// The calling thread's active sink, or nullptr (emission disabled).
TraceBuffer* thread_sink();
void set_thread_sink(TraceBuffer* sink);

/// RAII sink installer for a scope; restores the previous sink on exit, so
/// nested tracing scopes compose.
class ScopedSink {
 public:
  explicit ScopedSink(TraceBuffer* sink)
      : previous_(thread_sink()) {
    set_thread_sink(sink);
  }
  ~ScopedSink() { set_thread_sink(previous_); }

  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  TraceBuffer* previous_;
};

}  // namespace rcons::trace

// The emission macro. Arguments are evaluated ONLY when a sink is
// installed, so expensive fields (Config::hash()) cost nothing on the
// exhaustive checkers' hot paths. -DRCONS_TRACE=OFF removes the code
// entirely (used by the bench baseline to prove zero overhead).
#ifdef RCONS_TRACE_DISABLED
// sizeof keeps trace-only locals "used" without evaluating anything, so
// call sites stay -Werror-clean in both configurations.
#define RCONS_TRACE(...)           \
  do {                             \
    (void)sizeof((__VA_ARGS__));   \
  } while (false)
#define RCONS_TRACE_ANNOTATE_BUDGET(...) \
  do {                                   \
    (void)sizeof((__VA_ARGS__));         \
  } while (false)
#else
#define RCONS_TRACE(...)                                         \
  do {                                                           \
    if (::rcons::trace::TraceBuffer* rcons_trace_sink_ =         \
            ::rcons::trace::thread_sink()) {                     \
      rcons_trace_sink_->append(__VA_ARGS__);                    \
    }                                                            \
  } while (false)
#define RCONS_TRACE_ANNOTATE_BUDGET(...)                              \
  do {                                                                \
    if (::rcons::trace::TraceBuffer* rcons_trace_sink_ =              \
            ::rcons::trace::thread_sink()) {                          \
      rcons_trace_sink_->annotate_last_crash_budget(__VA_ARGS__);     \
    }                                                                 \
  } while (false)
#endif
