#include "trace/replay.hpp"

#include <bit>
#include <cstdio>

#include "exec/config.hpp"
#include "exec/execute.hpp"
#include "util/hashing.hpp"
// Shared violation-message builders: replay re-derives verdict strings
// through the exact formatting the serial and parallel engines use, so
// the three can never drift apart textually.
#include "valency/explore.hpp"

namespace rcons::trace {

namespace {

/// Stable hash over an RC shadow configuration (volatile front values,
/// persisted shadows, local state), mirroring the recovery audit's state
/// key shape.
std::uint64_t shadow_hash(const std::vector<spec::ValueId>& vol,
                          const std::vector<spec::ValueId>& shadow,
                          const exec::LocalState& local) {
  std::uint64_t seed = 0;
  for (spec::ValueId v : vol) hash_combine(seed, static_cast<std::uint64_t>(v));
  hash_combine(seed, 0x5eed5eedULL);
  for (spec::ValueId v : shadow) {
    hash_combine(seed, static_cast<std::uint64_t>(v));
  }
  hash_combine(seed, 0x5eed5eedULL);
  for (std::int64_t w : local.words) {
    hash_combine(seed, static_cast<std::uint64_t>(w));
  }
  return seed;
}

ReplayResult replay_safety(const exec::Protocol& protocol,
                           const Counterexample& c) {
  ReplayResult result;
  if (static_cast<int>(c.inputs.size()) != protocol.process_count()) {
    result.verdict = "INVALID: inputs do not match the protocol";
    return result;
  }
  unsigned valid_mask = 0;
  for (int v : c.inputs) valid_mask |= 1u << v;

  exec::Config config = exec::Config::initial(protocol, c.inputs);
  exec::DecisionLog log(protocol.process_count());
  unsigned mask = 0;
  {
    ScopedSink sink(&result.timeline);
    for (const exec::Event& event : c.schedule) {
      if (event.pid < 0 || event.pid >= protocol.process_count()) {
        result.verdict = "INVALID: schedule names an unknown process";
        return result;
      }
      const exec::EventOutcome out =
          exec::apply_event(protocol, config, event, log);
      if (out.decision.has_value() && result.verdict.empty()) {
        const int v = *out.decision;
        // The engines check validity before agreement; replay mirrors that
        // order so the first violation (and thus the verdict) matches.
        if (((valid_mask >> v) & 1u) == 0) {
          result.verdict =
              "VIOLATION " + valency::detail::validity_message(event.pid, v);
        } else {
          mask |= 1u << v;
          if (std::popcount(mask) >= 2) {
            result.verdict =
                "VIOLATION " + valency::detail::agreement_message(mask);
          }
        }
      } else if (out.decision.has_value()) {
        mask |= 1u << *out.decision;
      }
    }
  }
  if (result.verdict.empty()) result.verdict = "NO-VIOLATION";
  result.state_hash = config.hash();
  return result;
}

ReplayResult replay_liveness(const exec::Protocol& protocol,
                             const Counterexample& c) {
  ReplayResult result;
  if (static_cast<int>(c.inputs.size()) != protocol.process_count() ||
      c.pid < 0 || c.pid >= protocol.process_count()) {
    result.verdict = "INVALID: inputs/pid do not match the protocol";
    return result;
  }
  exec::Config config = exec::Config::initial(protocol, c.inputs);
  exec::DecisionLog log(protocol.process_count());
  {
    ScopedSink sink(&result.timeline);
    for (const exec::Event& event : c.schedule) {
      if (event.pid < 0 || event.pid >= protocol.process_count()) {
        result.verdict = "INVALID: schedule names an unknown process";
        return result;
      }
      exec::apply_event(protocol, config, event, log);
    }
  }
  result.state_hash = config.hash();
  // The probe is a pure function of the reached configuration; it is not
  // part of the hashed state and (deliberately) not traced — a stuck
  // process would otherwise flood the timeline with its loop.
  const std::optional<int> decided = exec::solo_terminating_decision(
      protocol, config, c.pid, c.solo_bound);
  if (decided.has_value()) {
    result.verdict = "WAIT-FREE p" + std::to_string(c.pid) + " decides " +
                     std::to_string(*decided);
  } else {
    result.verdict = "NOT-WAIT-FREE p" + std::to_string(c.pid);
  }
  return result;
}

ReplayResult replay_rc(const exec::Protocol& protocol,
                       const Counterexample& c) {
  ReplayResult result;
  const int pid = c.pid;
  if (pid < 0 || pid >= protocol.process_count() || c.input < 0) {
    result.verdict = "INVALID: pid/input do not match the protocol";
    return result;
  }
  const int object_count = protocol.object_count();
  std::vector<spec::ValueId> vol;
  vol.reserve(static_cast<std::size_t>(object_count));
  for (exec::ObjectId obj = 0; obj < object_count; ++obj) {
    vol.push_back(protocol.initial_value(obj));
  }
  std::vector<spec::ValueId> shadow = vol;
  exec::LocalState local = protocol.initial_state(pid, c.input);

  std::vector<int> decisions;
  ScopedSink sink(&result.timeline);
  for (const exec::Event& event : c.schedule) {
    if (event.pid != pid) {
      result.verdict = "INVALID: rc schedules are solo (p" +
                       std::to_string(pid) + " only)";
      return result;
    }
    if (event.is_crash()) {
      std::vector<exec::ObjectId> dropped;
      for (exec::ObjectId obj = 0; obj < object_count; ++obj) {
        if (vol[static_cast<std::size_t>(obj)] !=
            shadow[static_cast<std::size_t>(obj)]) {
          dropped.push_back(obj);
        }
      }
      vol = shadow;
      local = protocol.initial_state(pid, c.input);
      const std::uint64_t h = shadow_hash(vol, shadow, local);
      RCONS_TRACE(TraceEvent{Kind::kCrash, pid, -1, -1, -1, -1, h, -1});
      for (exec::ObjectId obj : dropped) {
        RCONS_TRACE(TraceEvent{Kind::kDrop, pid, obj, -1, -1, -1, h, -1});
      }
      RCONS_TRACE(TraceEvent{Kind::kRecover, pid, -1, -1, -1, -1, h, -1});
      continue;
    }
    const exec::Action action = protocol.poised(pid, local);
    if (action.kind == exec::Action::Kind::kDecided) {
      // Steps in output states are no-ops, as in the model.
      RCONS_TRACE(TraceEvent{Kind::kStep, pid, -1, -1, -1, -1,
                             shadow_hash(vol, shadow, local), -1});
      continue;
    }
    if (action.object < 0 || action.object >= object_count ||
        action.op < 0 ||
        action.op >= protocol.object_type(action.object).op_count()) {
      result.verdict = "INVALID: protocol action out of range";
      return result;
    }
    const std::size_t obj = static_cast<std::size_t>(action.object);
    const spec::Effect& effect =
        protocol.object_type(action.object).apply(vol[obj], action.op);
    vol[obj] = effect.next_value;
    if (action.durable) shadow[obj] = effect.next_value;
    local = protocol.advance(pid, local, effect.response);
    const std::uint64_t h = shadow_hash(vol, shadow, local);
    RCONS_TRACE(TraceEvent{Kind::kStep, pid, action.object, action.op,
                           effect.response, -1, h, -1});
    if (action.durable) {
      RCONS_TRACE(TraceEvent{Kind::kPersist, pid, action.object, -1, -1, -1,
                             h, -1});
    }
    const exec::Action after = protocol.poised(pid, local);
    if (after.kind == exec::Action::Kind::kDecided) {
      decisions.push_back(after.decision);
      RCONS_TRACE(TraceEvent{Kind::kDecide, pid, -1, -1, -1, after.decision,
                             h, -1});
    }
  }
  result.verdict = "RC decisions=";
  if (decisions.empty()) {
    result.verdict += "none";
  } else {
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      if (i != 0) result.verdict += ",";
      result.verdict += std::to_string(decisions[i]);
    }
  }
  result.state_hash = shadow_hash(vol, shadow, local);
  return result;
}

}  // namespace

ReplayResult replay(const exec::Protocol& protocol, const Counterexample& c) {
  switch (c.kind) {
    case CounterexampleKind::kSafety: return replay_safety(protocol, c);
    case CounterexampleKind::kLiveness: return replay_liveness(protocol, c);
    case CounterexampleKind::kRcAudit: return replay_rc(protocol, c);
  }
  ReplayResult invalid;
  invalid.verdict = "INVALID: unknown kind";
  return invalid;
}

std::string render_timeline(const exec::Protocol& protocol,
                            const TraceBuffer& timeline) {
  std::string out;
  char head[48];
  for (std::size_t seq = 0; seq < timeline.events().size(); ++seq) {
    const TraceEvent& e = timeline.events()[seq];
    std::snprintf(head, sizeof(head), "%5zu  ", seq);
    out += head;
    switch (e.kind) {
      case Kind::kStep:
        if (e.object >= 0) {
          const spec::ObjectType& type = protocol.object_type(e.object);
          out += "p" + std::to_string(e.pid) + " applies " +
                 type.op_name(e.op) + " on O" + std::to_string(e.object) +
                 " -> " + type.response_name(e.response);
        } else {
          out += "p" + std::to_string(e.pid) +
                 " steps (no-op: already in an output state)";
        }
        break;
      case Kind::kCrash:
        out += "c" + std::to_string(e.pid) + " (volatile state erased)";
        break;
      case Kind::kRecover:
        out += "p" + std::to_string(e.pid) + " recovers to its initial state";
        break;
      case Kind::kPersist:
        out += "p" + std::to_string(e.pid) + " persists O" +
               std::to_string(e.object);
        break;
      case Kind::kDrop:
        out += "p" + std::to_string(e.pid) + " loses unpersisted store to O" +
               std::to_string(e.object);
        break;
      case Kind::kDecide:
        out += "p" + std::to_string(e.pid) + " decides " +
               std::to_string(e.decision);
        break;
    }
    char hash[32];
    std::snprintf(hash, sizeof(hash), "  hash=%016llx",
                  static_cast<unsigned long long>(e.state_hash));
    out += hash;
    if (e.crash_budget >= 0) {
      out += "  budget=" + std::to_string(e.crash_budget);
    }
    out += "\n";
  }
  return out;
}

std::optional<Counterexample> capture_safety(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const valency::SafetyResult& result) {
  if (!result.counterexample.has_value()) return std::nullopt;
  Counterexample c;
  c.kind = CounterexampleKind::kSafety;
  c.inputs = inputs;
  c.schedule = *result.counterexample;
  c.note = result.violation;
  const ReplayResult r = replay(protocol, c);
  c.verdict = r.verdict;
  c.state_hash = r.state_hash;
  return c;
}

std::optional<Counterexample> capture_liveness(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const valency::LivenessResult& result, int solo_bound) {
  if (result.wait_free || !result.reaching_schedule.has_value()) {
    return std::nullopt;
  }
  Counterexample c;
  c.kind = CounterexampleKind::kLiveness;
  c.inputs = inputs;
  c.schedule = *result.reaching_schedule;
  c.pid = result.stuck_pid;
  c.solo_bound = solo_bound;
  c.note = "p" + std::to_string(result.stuck_pid) +
           " cannot decide solo from the reached configuration";
  const ReplayResult r = replay(protocol, c);
  c.verdict = r.verdict;
  c.state_hash = r.state_hash;
  return c;
}

Counterexample capture_rc(const exec::Protocol& protocol, int pid, int input,
                          exec::Schedule schedule, std::string rule,
                          std::string note) {
  Counterexample c;
  c.kind = CounterexampleKind::kRcAudit;
  c.pid = pid;
  c.input = input;
  c.schedule = std::move(schedule);
  c.rule = std::move(rule);
  c.note = std::move(note);
  const ReplayResult r = replay(protocol, c);
  c.verdict = r.verdict;
  c.state_hash = r.state_hash;
  return c;
}

}  // namespace rcons::trace
