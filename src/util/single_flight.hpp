// Single-flight execution: coalesces concurrent calls with the same key
// into one execution of the underlying function (cache-stampede
// protection, after Go's golang.org/x/sync/singleflight).
//
// The first caller for a key becomes the LEADER and runs the function;
// callers that arrive while the leader is in flight block and receive a
// copy of the leader's result. The flight is forgotten as soon as the
// leader finishes, so single-flight is NOT a cache: a call that arrives
// after completion starts a fresh flight. Layer a real cache (e.g. the
// serve tier's MemoryTierCache) above or below it for memoization.
//
// Determinism note: which caller leads is a race by design, but every
// result a waiter observes was produced by one complete execution, so
// callers that only depend on the function's value (not on having run it
// themselves) see no nondeterminism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace rcons::util {

template <typename Result>
class SingleFlight {
 public:
  struct Outcome {
    Result value{};
    /// True when this call ran the function itself.
    bool leader = false;
    /// Waiters this leader's execution served (leader only; 0 for joiners).
    std::size_t joined = 0;
  };

  /// Runs `fn` once per concurrent group of callers sharing `key`. `fn`
  /// must not re-enter run() with the same key (self-deadlock) and must
  /// not throw (the checkers abort via RCONS_CHECK instead).
  Outcome run(const std::string& key, const std::function<Result()>& fn) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto [it, inserted] = flights_.try_emplace(key, nullptr);
      if (inserted) {
        it->second = std::make_shared<Flight>();
        flight = it->second;
      } else {
        flight = it->second;
        ++flight->waiters;
        flight->cv.wait(lock, [&] { return flight->done; });
        return Outcome{flight->value, false, 0};
      }
    }
    Result value = fn();
    std::size_t joined = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      flight->value = value;
      flight->done = true;
      joined = flight->waiters;
      flights_.erase(key);
    }
    flight->cv.notify_all();
    return Outcome{std::move(value), true, joined};
  }

  /// Callers currently blocked on `key`'s in-flight execution. Racy by
  /// nature; meant for tests that synchronize a leader against a known
  /// number of joiners, and for gauge-style observability.
  std::size_t waiters(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = flights_.find(key);
    return it == flights_.end() ? 0 : it->second->waiters;
  }

  /// Keys with an execution currently in flight.
  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return flights_.size();
  }

 private:
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    std::size_t waiters = 0;
    Result value{};
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace rcons::util
