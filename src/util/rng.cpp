#include "util/rng.hpp"

#include "util/assert.hpp"

namespace rcons {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) { expand(seed); }

void Xoshiro256::expand(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) {
    w = sm.next();
  }
  // All-zero state is invalid for xoshiro; the splitmix expansion of any
  // seed is astronomically unlikely to produce it, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

void Xoshiro256::reseed(std::uint64_t seed) {
  RCONS_CHECK(fresh_ && "Xoshiro256::reseed after draws breaks single-seed "
                        "reproducibility; construct a fresh generator");
  expand(seed);
}

std::uint64_t Xoshiro256::next() {
  fresh_ = false;
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  RCONS_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) {
  RCONS_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range: any draw is in range.
  if (span == 0) {
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

bool Xoshiro256::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Xoshiro256::uniform01() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace rcons
