// Small string helpers shared by the pretty printers and the report
// generators. Nothing here allocates more than it must; inputs are taken by
// string_view wherever the result does not outlive them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rcons {

/// Joins the items with the given separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Joins integral items with the given separator.
std::string join_ints(const std::vector<int>& items, std::string_view sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Left-pads (or truncates) to exactly `width` display columns.
std::string pad_left(std::string_view text, std::size_t width);

/// Right-pads (or truncates) to exactly `width` display columns.
std::string pad_right(std::string_view text, std::size_t width);

/// Repeats a string `count` times.
std::string repeat(std::string_view text, std::size_t count);

/// Escapes a string for embedding in a JSON string literal: quote,
/// backslash, and control characters (newline and tab as their two-char
/// escapes, the rest as \u00xx).
std::string json_escape(std::string_view text);

}  // namespace rcons
