// Deterministic, seedable random number generation.
//
// All randomized components of rcons (random adversaries, crash injectors,
// property-test sweeps) draw from these generators so that every run is
// reproducible from a single 64-bit seed. We deliberately avoid
// std::mt19937 for cross-platform byte-for-byte determinism of the *seeding*
// path and for speed; xoshiro256** is the workhorse, split-mixed from the
// seed.
#pragma once

#include <array>
#include <cstdint>

namespace rcons {

/// SplitMix64: used to expand a 64-bit seed into generator state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Re-expands the generator from `seed`, ONLY while the generator is
  /// still fresh (no draw taken). Reseeding mid-run silently breaks
  /// single-seed reproducibility — every consumer logs one seed per run,
  /// and a mid-run reseed makes that log a lie — so it is a checked error.
  void reseed(std::uint64_t seed);

  /// True until the first draw; reseed() is only legal while fresh.
  bool fresh() const { return fresh_; }

  /// The expanded internal state (test hook: seed-expansion guarantees,
  /// e.g. that seed 0 must not yield the invalid all-zero state).
  const std::array<std::uint64_t, 4>& state() const { return s_; }

  /// Uniform draw from [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform draw from [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform01();

 private:
  void expand(std::uint64_t seed);

  std::array<std::uint64_t, 4> s_;
  bool fresh_ = true;
};

}  // namespace rcons
