#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace rcons {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    if (row.cells.size() > widths.size()) {
      widths.resize(row.cells.size(), 0);
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line += repeat("-", w + 2);
      line += "+";
    }
    line += "\n";
    return line;
  }();

  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string_view cell =
          c < cells.size() ? std::string_view(cells[c]) : std::string_view("");
      line += " " + pad_right(cell, widths[c]) + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule;
  out += render_cells(headers_);
  out += rule;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].separator) {
      // A trailing separator would duplicate the closing rule.
      if (i + 1 < rows_.size()) out += rule;
    } else {
      out += render_cells(rows_[i].cells);
    }
  }
  out += rule;
  return out;
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace rcons
