// Strict numeric parsing for command-line arguments.
//
// The CLI tools used to funnel argv numbers through std::atoi, which
// silently turns garbage into 0 ("--threads=banana"), accepts trailing
// junk ("--max-n=3x" reads as 3), and wraps on overflow. Every numeric
// flag now goes through these helpers instead: the whole token must be a
// decimal number (an optional leading '-' only; no '+', no whitespace, no
// trailing characters), it must fit the target type, and it must land in
// the caller's [min, max] contract — anything else is a usage error the
// tools report with exit code 2.
#pragma once

#include <charconv>
#include <cstdint>
#include <string_view>

namespace rcons::util {

/// Parses `text` as a decimal int64 in [min_value, max_value]. Returns
/// false (leaving *out untouched) on empty input, non-digit characters,
/// trailing garbage, overflow, or an out-of-range value.
inline bool parse_int64_arg(std::string_view text, std::int64_t min_value,
                            std::int64_t max_value, std::int64_t* out) {
  if (text.empty()) return false;
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc() || result.ptr != last) return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

/// As parse_int64_arg, for int-typed flags.
inline bool parse_int_arg(std::string_view text, int min_value, int max_value,
                          int* out) {
  std::int64_t value = 0;
  if (!parse_int64_arg(text, min_value, max_value, &value)) return false;
  *out = static_cast<int>(value);
  return true;
}

/// As parse_int64_arg, for size_t-typed flags (no negative values).
inline bool parse_size_arg(std::string_view text, std::size_t min_value,
                           std::size_t max_value, std::size_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc() || result.ptr != last) return false;
  if (value < min_value || value > max_value) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

/// Strict lowercase-hex uint64 (no "0x" prefix, no uppercase, no
/// trailing garbage). Used by the campaign checkpoint loader, where a
/// half-written hash field must read as corruption, not as a number.
inline bool parse_hex64_arg(std::string_view text, std::uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

/// As parse_int64_arg, for uint64-typed flags (seeds).
inline bool parse_uint64_arg(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto result = std::from_chars(first, last, value);
  if (result.ec != std::errc() || result.ptr != last) return false;
  *out = value;
  return true;
}

}  // namespace rcons::util
