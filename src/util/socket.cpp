#include "util/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace rcons::util {
namespace {

ListenResult listen_error(int fd, const std::string& what) {
  if (fd >= 0) ::close(fd);
  ListenResult r;
  r.error = what + ": " + std::strerror(errno);
  return r;
}

}  // namespace

ListenResult listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ListenResult r;
    r.error = "socket path too long: " + path;
    return r;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return listen_error(fd, "socket");
  // A previous daemon's stale socket file would make bind fail; remove it.
  // A *live* daemon still accepting on the path loses its file too, but
  // the old process keeps serving existing connections — same contract as
  // every daemon that owns a well-known socket path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return listen_error(fd, "bind " + path);
  }
  if (::listen(fd, backlog) != 0) return listen_error(fd, "listen " + path);
  ListenResult r;
  r.fd = fd;
  return r;
}

ListenResult listen_tcp(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return listen_error(fd, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return listen_error(fd, "bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return listen_error(fd, "listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return listen_error(fd, "getsockname");
  }
  ListenResult r;
  r.fd = fd;
  r.port = ntohs(bound.sin_port);
  return r;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_connection(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const std::string& data) {
  return write_all(fd, data.data(), data.size());
}

void shutdown_and_close(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

LineReader::Status LineReader::read_line(std::string* line) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::kLine;
    }
    if (buffer_.size() > max_line_bytes_) return Status::kOverflow;
    if (eof_) {
      if (buffer_.empty()) return Status::kEof;
      *line = std::move(buffer_);
      buffer_.clear();
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::kLine;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace rcons::util
