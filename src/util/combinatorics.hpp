// Combinatorial enumeration primitives used by the hierarchy checkers.
//
// The n-discerning / n-recording definitions quantify over:
//   * schedules in S(P): sequences of *distinct* processes (every nonempty
//     ordered subset of P),
//   * partitions of P into two nonempty teams,
//   * operation assignments (one operation per process).
// These helpers enumerate those spaces, plus the multiset reductions used
// by the symmetry-aware fast path.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rcons {

/// n! as unsigned 64-bit; checked against overflow (n <= 20).
std::uint64_t factorial(unsigned n);

/// C(n, k) with overflow checks suitable for the small n used here.
std::uint64_t binomial(unsigned n, unsigned k);

/// |S(P)| for |P| = n: the number of sequences of distinct processes,
/// including the empty sequence:  sum_{k=0}^{n} C(n,k) * k!.
std::uint64_t ordered_subset_count(unsigned n);

/// Invokes `visit` with every ordered sequence of distinct elements drawn
/// from {0, .., n-1} (all "arrangements"), including the empty sequence.
/// The vector passed to `visit` is reused between calls; copy if retained.
void for_each_ordered_subset(unsigned n,
                             const std::function<void(const std::vector<int>&)>& visit);

/// Invokes `visit` with every subset of {0, .., n-1} encoded as a sorted
/// vector, including the empty set.
void for_each_subset(unsigned n,
                     const std::function<void(const std::vector<int>&)>& visit);

/// Invokes `visit` with every permutation of the given items.
void for_each_permutation(std::vector<int> items,
                          const std::function<void(const std::vector<int>&)>& visit);

/// Invokes `visit` with every multiset of size k drawn from {0, .., m-1},
/// encoded as a non-decreasing vector of length k.
void for_each_multiset(unsigned m, unsigned k,
                       const std::function<void(const std::vector<int>&)>& visit);

/// Invokes `visit` with every function {0,..,k-1} -> {0,..,m-1}, encoded as
/// a vector of length k with entries in [0, m). (Cartesian power.)
void for_each_assignment(unsigned m, unsigned k,
                         const std::function<void(const std::vector<int>&)>& visit);

/// Invokes `visit(team_of)` for every partition of {0,..,n-1} into two
/// nonempty teams, where team_of[i] in {0,1}. Partitions are enumerated up
/// to the constraint that process 0 is always on team 0 *unless*
/// `ordered` is true, in which case both orientations are produced.
/// (The discerning/recording definitions name the teams T_0 and T_1 but are
/// symmetric in most uses; the checkers need the ordered version because the
/// hiding condition `u in U_x  =>  |T_xbar| = 1` is *not* symmetric.)
void for_each_bipartition(unsigned n, bool ordered,
                          const std::function<void(const std::vector<int>&)>& visit);

}  // namespace rcons
