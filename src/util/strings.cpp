#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace rcons {

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string join_ints(const std::vector<int>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += std::to_string(items[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  return std::string(text) + std::string(width - text.size(), ' ');
}

std::string repeat(std::string_view text, std::size_t count) {
  std::string out;
  out.reserve(text.size() * count);
  for (std::size_t i = 0; i < count; ++i) out += text;
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace rcons
