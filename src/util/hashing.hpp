// Hash utilities for the model checker's state sets and the checkers'
// memo tables. We hash small integer vectors constantly, so the combiners
// here are tuned for that shape (FNV-ish mixing with a strong finalizer).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rcons {

/// 64-bit avalanche mixer (the splitmix64 finalizer).
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Combine a new value into a running hash seed.
inline void hash_combine(std::uint64_t& seed, std::uint64_t value) {
  seed ^= mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hash a contiguous range of integral values.
template <typename It>
std::uint64_t hash_range(It first, It last, std::uint64_t seed = 0) {
  for (; first != last; ++first) {
    hash_combine(seed, static_cast<std::uint64_t>(*first));
  }
  return seed;
}

template <typename T>
std::uint64_t hash_vector(const std::vector<T>& v, std::uint64_t seed = 0) {
  hash_combine(seed, v.size());
  return hash_range(v.begin(), v.end(), seed);
}

/// std::hash adapter for vector<int>-like keys in unordered containers.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return static_cast<std::size_t>(hash_vector(v));
  }
};

/// std::hash adapter for pair keys.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::uint64_t seed = 0;
    hash_combine(seed, static_cast<std::uint64_t>(std::hash<A>{}(p.first)));
    hash_combine(seed, static_cast<std::uint64_t>(std::hash<B>{}(p.second)));
    return static_cast<std::size_t>(seed);
  }
};

}  // namespace rcons
