#include "util/parallel.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcons::util {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = hardware_threads();
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      worker_loop(static_cast<std::size_t>(i));
    });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  RCONS_CHECK(task != nullptr);
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    // Publish under wake_mutex_ so sleeping threads cannot miss the update
    // between their predicate check and their wait.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();
  done_cv_.notify_all();  // wait_idle may want to help with this task
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  // Own deque first (front = oldest, keeps FIFO fairness for own work)...
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
    }
  }
  // ...then steal from siblings, newest first.
  if (task == nullptr) {
    for (std::size_t i = 1; i < queues_.size() && task == nullptr; ++i) {
      const std::size_t victim = (self + i) % queues_.size();
      std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.back());
        queues_[victim]->tasks.pop_back();
      }
    }
  }
  if (task == nullptr) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  while (true) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::wait_idle() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (try_run_one(0)) continue;
    // Nothing queued but tasks still running in workers: sleep until they
    // finish or one of them submits more work we could help with.
    std::unique_lock<std::mutex> lock(wake_mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
  }
}

std::size_t ThreadPool::chunk_size(std::size_t count,
                                   std::size_t min_grain) const {
  if (count == 0) return 1;
  min_grain = std::max<std::size_t>(1, min_grain);
  // ~4 chunks per thread: enough slack for dynamic load balancing without
  // drowning in per-chunk overhead.
  const std::size_t target =
      static_cast<std::size_t>(thread_count()) * 4;
  return std::max(min_grain, (count + target - 1) / target);
}

std::size_t ThreadPool::chunk_count(std::size_t count,
                                    std::size_t min_grain) const {
  if (count == 0) return 0;
  const std::size_t size = chunk_size(count, min_grain);
  return (count + size - 1) / size;
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t min_grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t size = chunk_size(count, min_grain);
  const std::size_t chunks = (count + size - 1) / size;
  if (chunks == 1 || thread_count() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c, c * size, std::min(count, (c + 1) * size));
    }
    return;
  }

  // Shared by the caller and the helper tasks; shared_ptr-owned so a helper
  // that is only dequeued after the call returns (it will find no chunks
  // left) never touches freed state.
  struct State {
    std::function<void(std::size_t, std::size_t, std::size_t)> body;
    std::size_t count = 0;
    std::size_t size = 0;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<State>();
  state->body = body;
  state->count = count;
  state->size = size;
  state->chunks = chunks;

  const auto drain = [](State& s) {
    while (true) {
      const std::size_t c = s.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s.chunks) return;
      s.body(c, c * s.size, std::min(s.count, (c + 1) * s.size));
      if (s.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          s.chunks) {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.all_done.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(thread_count()) - 1,
                            chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state, drain] { drain(*state); });
  }
  drain(*state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->finished.load(std::memory_order_acquire) == state->chunks;
  });
}

}  // namespace rcons::util
