// Lightweight runtime checks used across the rcons libraries.
//
// RCONS_CHECK is an always-on invariant check (unlike <cassert>, it is not
// compiled out in release builds): the exhaustive checkers and the model
// checker rely on these invariants for the *meaning* of their results, so
// disabling them in optimized benchmark builds would silently change what a
// "verified" result means.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace rcons {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "RCONS_CHECK failed: %s\n  at %s:%d\n", expr, file,
               line);
  if (!msg.empty()) {
    std::fprintf(stderr, "  %s\n", msg.c_str());
  }
  std::abort();
}

namespace detail {
// Builds the optional message lazily; only invoked on failure.
template <typename... Args>
std::string format_check_message(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

}  // namespace rcons

#define RCONS_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::rcons::check_failed(#expr, __FILE__, __LINE__, std::string{}); \
    }                                                                  \
  } while (false)

#define RCONS_CHECK_MSG(expr, ...)                                  \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::rcons::check_failed(                                         \
          #expr, __FILE__, __LINE__,                                 \
          ::rcons::detail::format_check_message(__VA_ARGS__));       \
    }                                                                \
  } while (false)
