// ASCII table renderer used by the benchmark harnesses and examples to
// print paper-style result tables (experiment E1's claims table, scaling
// tables, etc.).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rcons {

/// A simple column-aligned table. Rows may be added with heterogeneous cell
/// counts; missing cells render empty. Rendering pads every column to its
/// widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a data row.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table (with a header rule) to a string.
  std::string render() const;

  /// Convenience: renders straight to a stream.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace rcons
