// A small work-stealing thread pool for the exhaustive checkers.
//
// Design constraints (see DESIGN.md §7):
//   * Determinism lives in the CALLERS, never here: every parallel engine
//     built on this pool merges its results with a deterministic reduction
//     keyed by item index, so verdicts are bit-identical for every thread
//     count. The pool itself makes no ordering promises.
//   * Bounded fan-out: parallel_for enqueues at most thread_count() - 1
//     helper tasks per call regardless of the item count; chunks are
//     claimed from a shared atomic cursor, which doubles as dynamic load
//     balancing for irregular per-item costs.
//   * The submitting thread always participates (a pool constructed with
//     threads == 1 spawns no OS threads and degenerates to a plain loop),
//     so nested parallel_for calls cannot deadlock: the nested caller
//     drains its own chunks even if every worker is busy.
//   * No exceptions may escape a task; the checkers abort via RCONS_CHECK.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rcons::util {

/// std::thread::hardware_concurrency with a floor of 1.
int hardware_threads();

class ThreadPool {
 public:
  /// Spawns `threads - 1` worker threads (the caller is the remaining
  /// thread). threads <= 0 means hardware_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues one task onto a worker deque (round-robin). Idle workers
  /// steal from their siblings' deques.
  void submit(std::function<void()> task);

  /// Runs queued tasks on the calling thread until every submitted task
  /// has finished.
  void wait_idle();

  /// Runs body(chunk, begin, end) over a fixed chunking of [0, count);
  /// blocks until every chunk has run. The chunking (see chunk_count) is a
  /// pure function of (count, min_grain, thread_count()), never of timing,
  /// so per-chunk result buffers can be merged deterministically.
  void parallel_for(
      std::size_t count, std::size_t min_grain,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& body);

  /// The chunk geometry parallel_for will use for these parameters.
  std::size_t chunk_size(std::size_t count, std::size_t min_grain) const;
  std::size_t chunk_count(std::size_t count, std::size_t min_grain) const;

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops one task (own deque front, else steal a sibling's back) and runs
  /// it. `self` indexes queues_; the caller thread uses queue 0.
  bool try_run_one(std::size_t self);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;  // [0] = caller's, [i>0] = worker i-1
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;   // workers sleep here
  std::condition_variable done_cv_;   // wait_idle sleeps here
  std::atomic<std::size_t> queued_{0};   // tasks sitting in deques
  std::atomic<std::size_t> pending_{0};  // submitted, not yet finished
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace rcons::util
