// A sharded concurrent hash map specialized for "first discovery wins"
// frontier deduplication.
//
// The parallel explorers (DESIGN.md §7) key every reachable search node by
// its hash and store the node's DISCOVERY KEY — the (level, slot) position
// at which the serial engine would first have created it. Concurrent
// expansion threads race to insert, and insert_min keeps the minimum key,
// so after a level barrier the map holds exactly the assignment the serial
// engine would have produced, independent of thread interleaving. Shard
// granularity bounds contention; each shard is a mutex-protected
// unordered_map (deliberately boring: the determinism story must not rest
// on a clever lock-free structure).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace rcons::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Less = std::less<Value>>
class ShardedMinMap {
 public:
  /// `parallelism_hint` is the expected number of concurrent writers;
  /// shard count is a power of two comfortably above it.
  explicit ShardedMinMap(int parallelism_hint) {
    std::size_t shards = 1;
    const std::size_t want =
        8 * static_cast<std::size_t>(parallelism_hint < 1 ? 1
                                                          : parallelism_hint);
    while (shards < want && shards < 1024) shards <<= 1;
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    mask_ = shards - 1;
  }

  /// Inserts (key, value), or lowers the stored value if `value` is
  /// smaller. Returns true iff `value` is the stored value afterwards,
  /// i.e. this call (currently) holds the discovery. A later insert_min
  /// with a smaller value can still displace it, so winners must be
  /// re-confirmed with lookup() after all writers have quiesced.
  bool insert_min(const Key& key, const Value& value) {
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto [it, inserted] = s.map.try_emplace(key, value);
    if (inserted) return true;
    if (Less{}(value, it->second)) {
      it->second = value;
      return true;
    }
    return false;
  }

  std::optional<Value> lookup(const Key& key) const {
    const Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  /// Total entries across shards. Only meaningful when no writer is active.
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->map.size();
    }
    return total;
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };

  Shard& shard_for(const Key& key) {
    return *shards_[index_of(key)];
  }
  const Shard& shard_for(const Key& key) const {
    return *shards_[index_of(key)];
  }
  std::size_t index_of(const Key& key) const {
    // Shard on the high bits (Fibonacci-scrambled) so the shard index and
    // the in-shard bucket index use decorrelated bits of the same hash.
    const std::uint64_t h =
        static_cast<std::uint64_t>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 32) & mask_;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t mask_ = 0;
};

}  // namespace rcons::util
