// Thin POSIX socket wrappers for the verdict service (DESIGN.md §12).
//
// Everything here is EINTR-safe and returns errors as values — the daemon
// must never abort because a client misbehaved. Two transports:
//
//   * Unix-domain stream sockets (the default for local deployments and
//     the test harness): listen_unix unlinks a stale socket file first,
//     so a crashed daemon's leftover path does not block a restart.
//   * TCP on 127.0.0.1 (never a wildcard bind: the service speaks an
//     unauthenticated protocol, so it must not listen on public
//     interfaces). Port 0 binds an ephemeral port; the chosen port is
//     reported back for tests and scripts.
//
// LineReader frames newline-delimited protocols with a hard per-line byte
// cap: an overlong line is reported as kOverflow instead of growing the
// buffer without bound (the wire-protocol DoS guard).
#pragma once

#include <cstddef>
#include <string>

namespace rcons::util {

/// A listening socket, or an error. `fd` is -1 on failure.
struct ListenResult {
  int fd = -1;
  int port = 0;  // actual bound port (TCP only)
  std::string error;

  bool ok() const { return fd >= 0; }
};

/// Listens on a Unix-domain stream socket at `path` (unlinking any stale
/// socket file first).
ListenResult listen_unix(const std::string& path, int backlog = 64);

/// Listens on 127.0.0.1:`port` (0 = ephemeral; see ListenResult::port).
ListenResult listen_tcp(int port, int backlog = 64);

/// Connects to a Unix-domain socket; -1 on failure.
int connect_unix(const std::string& path);

/// Connects to 127.0.0.1:`port`; -1 on failure.
int connect_tcp(int port);

/// accept() with EINTR retry; -1 on error or listener shutdown.
int accept_connection(int listen_fd);

/// Writes the whole buffer (EINTR-safe, SIGPIPE-suppressed). Returns
/// false on any unrecoverable error (e.g. the peer vanished).
bool write_all(int fd, const char* data, std::size_t size);
bool write_all(int fd, const std::string& data);

/// Unblocks any thread inside read()/accept() on `fd`, then closes it.
void shutdown_and_close(int fd);

/// Buffered newline framing over a socket with a per-line size cap.
class LineReader {
 public:
  enum class Status {
    kLine,      // one complete line delivered (without the '\n')
    kEof,       // orderly shutdown with no buffered partial line
    kOverflow,  // line exceeded max_line_bytes; connection unusable
    kError,     // read error; connection unusable
  };

  LineReader(int fd, std::size_t max_line_bytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// Blocks until a full line, EOF, overflow, or error. A trailing '\r'
  /// (CRLF clients) is stripped. A final unterminated line at EOF is
  /// delivered as a line.
  Status read_line(std::string* line);

 private:
  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace rcons::util
