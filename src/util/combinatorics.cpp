#include "util/combinatorics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rcons {

std::uint64_t factorial(unsigned n) {
  RCONS_CHECK_MSG(n <= 20, "factorial(", n, ") overflows uint64");
  std::uint64_t r = 1;
  for (unsigned i = 2; i <= n; ++i) r *= i;
  return r;
}

std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t r = 1;
  for (unsigned i = 1; i <= k; ++i) {
    // Multiply before divide stays exact because r always holds C(n', i')
    // for intermediate n', i'. Guard against overflow for large inputs.
    RCONS_CHECK_MSG(r <= ~std::uint64_t{0} / (n - k + i), "binomial overflow");
    r = r * (n - k + i) / i;
  }
  return r;
}

std::uint64_t ordered_subset_count(unsigned n) {
  std::uint64_t total = 0;
  for (unsigned k = 0; k <= n; ++k) {
    total += binomial(n, k) * factorial(k);
  }
  return total;
}

namespace {

void ordered_subset_rec(unsigned n, std::vector<int>& current,
                        std::vector<bool>& used,
                        const std::function<void(const std::vector<int>&)>& visit) {
  visit(current);
  for (unsigned i = 0; i < n; ++i) {
    if (used[i]) continue;
    used[i] = true;
    current.push_back(static_cast<int>(i));
    ordered_subset_rec(n, current, used, visit);
    current.pop_back();
    used[i] = false;
  }
}

}  // namespace

void for_each_ordered_subset(
    unsigned n, const std::function<void(const std::vector<int>&)>& visit) {
  std::vector<int> current;
  std::vector<bool> used(n, false);
  ordered_subset_rec(n, current, used, visit);
}

void for_each_subset(unsigned n,
                     const std::function<void(const std::vector<int>&)>& visit) {
  RCONS_CHECK_MSG(n < 31, "subset enumeration limited to n < 31");
  std::vector<int> members;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    members.clear();
    for (unsigned i = 0; i < n; ++i) {
      if (mask & (1u << i)) members.push_back(static_cast<int>(i));
    }
    visit(members);
  }
}

void for_each_permutation(
    std::vector<int> items,
    const std::function<void(const std::vector<int>&)>& visit) {
  std::sort(items.begin(), items.end());
  do {
    visit(items);
  } while (std::next_permutation(items.begin(), items.end()));
}

void for_each_multiset(unsigned m, unsigned k,
                       const std::function<void(const std::vector<int>&)>& visit) {
  if (m == 0) {
    if (k == 0) {
      std::vector<int> empty;
      visit(empty);
    }
    return;
  }
  std::vector<int> current(k, 0);
  // Enumerate non-decreasing vectors lexicographically.
  std::function<void(unsigned, int)> rec = [&](unsigned pos, int low) {
    if (pos == k) {
      visit(current);
      return;
    }
    for (int v = low; v < static_cast<int>(m); ++v) {
      current[pos] = v;
      rec(pos + 1, v);
    }
  };
  rec(0, 0);
}

void for_each_assignment(unsigned m, unsigned k,
                         const std::function<void(const std::vector<int>&)>& visit) {
  if (m == 0) {
    if (k == 0) {
      std::vector<int> empty;
      visit(empty);
    }
    return;
  }
  std::vector<int> current(k, 0);
  std::function<void(unsigned)> rec = [&](unsigned pos) {
    if (pos == k) {
      visit(current);
      return;
    }
    for (int v = 0; v < static_cast<int>(m); ++v) {
      current[pos] = v;
      rec(pos + 1);
    }
  };
  rec(0);
}

void for_each_bipartition(
    unsigned n, bool ordered,
    const std::function<void(const std::vector<int>&)>& visit) {
  RCONS_CHECK(n >= 2);
  RCONS_CHECK_MSG(n < 31, "bipartition enumeration limited to n < 31");
  std::vector<int> team_of(n, 0);
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 1; mask + 1 < limit; ++mask) {
    // mask bit i set  =>  process i on team 1. Skip empty/full teams
    // (loop bounds already exclude mask == 0 and mask == 2^n - 1).
    if (!ordered && (mask & 1u)) {
      continue;  // canonical orientation: process 0 on team 0
    }
    for (unsigned i = 0; i < n; ++i) {
      team_of[i] = (mask >> i) & 1u ? 1 : 0;
    }
    visit(team_of);
  }
}

}  // namespace rcons
