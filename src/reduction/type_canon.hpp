// Canonical forms of object types under relabeling.
//
// Two types that differ only in how their values, operations, and responses
// are numbered (and named) implement the same sequential specification, so
// every verdict this repo computes — n-discerning, n-recording, safety and
// liveness of protocols parameterized by the type — is invariant under such
// relabelings. This module computes a canonical representative of a type's
// relabeling orbit:
//
//   * canonicalize_type() returns a complete structural encoding (the "key")
//     of the type under a canonical labeling, plus a 64-bit hash of that
//     key. Isomorphic types get identical keys; the hash is what the
//     persistent verdict cache uses for file names, and the key itself is
//     stored in cache entries so a hash collision can never produce a wrong
//     verdict (it only costs a cache miss).
//
//   * type_automorphisms() returns the relabelings that map the type to
//     itself. The hierarchy scans use them to skip operation assignments
//     that are images of already-checked ones.
//
// The algorithm is partition refinement (values, ops, and responses are
// colored by their structural signatures until stable) followed by a
// backtracking-free enumeration of labelings within color classes, capped
// by a candidate budget. If the budget is exceeded the refinement coloring
// alone picks the labeling; the result is then marked incomplete — still a
// valid encoding of the type (sound for caching, because cache lookups
// compare full keys), just no longer guaranteed equal across every
// relabeling of the orbit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::reduction {

/// A relabeling of a type's ids: `value_perm[old] = new`, and likewise for
/// operations and responses.
struct TypeRelabeling {
  std::vector<int> value_perm;
  std::vector<int> op_perm;
  std::vector<int> response_perm;

  friend bool operator==(const TypeRelabeling&, const TypeRelabeling&) =
      default;
};

/// The identity relabeling for `type`'s dimensions.
TypeRelabeling identity_relabeling(const spec::ObjectType& type);

bool is_identity(const TypeRelabeling& relabeling);

/// Rebuilds `type` with every id permuted per `relabeling`. Names follow
/// their ids, so the result is isomorphic to the input by construction.
/// `new_name` overrides the type name when non-empty (the name never
/// participates in canonicalization).
spec::ObjectType relabel_type(const spec::ObjectType& type,
                              const TypeRelabeling& relabeling,
                              const std::string& new_name = "");

struct CanonicalForm {
  /// Complete encoding of the delta table under the canonical labeling.
  std::string key;
  /// 64-bit hash of `key` (stable across platforms and runs).
  std::uint64_t hash = 0;
  /// The labeling that produced `key`.
  TypeRelabeling labeling;
  /// False when the candidate budget was hit and only the refinement
  /// coloring picked the labeling (see file comment).
  bool complete = true;
};

inline constexpr std::size_t kDefaultCanonBudget = 20000;

CanonicalForm canonicalize_type(const spec::ObjectType& type,
                                std::size_t max_candidates =
                                    kDefaultCanonBudget);

/// Shorthand for canonicalize_type(type).hash.
std::uint64_t canonical_type_hash(const spec::ObjectType& type);

/// All relabelings that fix the type's delta table (always includes the
/// identity). Returns just {identity} when the candidate budget is hit.
std::vector<TypeRelabeling> type_automorphisms(const spec::ObjectType& type,
                                               std::size_t max_candidates =
                                                   kDefaultCanonBudget);

}  // namespace rcons::reduction
