#include "reduction/verdict_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "trace/metrics.hpp"
#include "util/hashing.hpp"

namespace rcons::reduction {
namespace {

constexpr const char* kMagic = "rcons-cache v1";

std::uint64_t key_hash(const std::string& salted_key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : salted_key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

std::string hex64(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

void warn(const std::string& path, const char* what) {
  std::fprintf(stderr, "rcons: cache: skipping %s (%s); will recompute\n",
               path.c_str(), what);
}

// Strips "name: " and returns the rest, or nullopt if the prefix is absent.
std::optional<std::string> field(const std::string& line, const char* name) {
  const std::string prefix = std::string(name) + ": ";
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  return line.substr(prefix.size());
}

}  // namespace

VerdictCache::VerdictCache(std::string directory)
    : directory_(std::move(directory)) {}

std::string VerdictCache::default_directory() {
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && xdg[0] != '\0') {
    return std::string(xdg) + "/rcons";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && home[0] != '\0') {
    return std::string(home) + "/.cache/rcons";
  }
  return {};
}

std::string VerdictCache::entry_path(const std::string& key) const {
  const std::string salted = std::string(kEngineVersionSalt) + "|" + key;
  return directory_ + "/" + hex64(key_hash(salted)) + ".vc";
}

std::optional<std::string> VerdictCache::lookup(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  auto& m = trace::metrics();
  const std::string path = entry_path(key);
  std::ifstream in(path);
  if (!in) {
    m.add("cache.misses", 1);
    return std::nullopt;
  }
  std::string magic, salt_line, key_line, payload_line, end_line;
  if (!std::getline(in, magic) || !std::getline(in, salt_line) ||
      !std::getline(in, key_line) || !std::getline(in, payload_line) ||
      !std::getline(in, end_line)) {
    warn(path, "truncated entry");
    m.add("cache.skipped_corrupt", 1);
    m.add("cache.misses", 1);
    return std::nullopt;
  }
  const auto salt = field(salt_line, "salt");
  const auto stored_key = field(key_line, "key");
  const auto payload = field(payload_line, "payload");
  if (magic != kMagic || !salt || !stored_key || !payload ||
      end_line != "end") {
    warn(path, "malformed entry");
    m.add("cache.skipped_corrupt", 1);
    m.add("cache.misses", 1);
    return std::nullopt;
  }
  if (*salt != kEngineVersionSalt) {
    warn(path, "stale engine salt");
    m.add("cache.skipped_stale", 1);
    m.add("cache.misses", 1);
    return std::nullopt;
  }
  if (*stored_key != key) {
    // Hash collision or foreign entry: a miss, not an error.
    m.add("cache.misses", 1);
    return std::nullopt;
  }
  m.add("cache.hits", 1);
  return payload;
}

void VerdictCache::store(const std::string& key,
                         const std::string& payload) const {
  if (!enabled()) return;
  auto& m = trace::metrics();
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    m.add("cache.write_errors", 1);
    return;
  }
  // Unique temp name per writer so concurrent stores never share a file;
  // the final rename is atomic, so readers see old-or-new, never partial.
  static std::atomic<std::uint64_t> counter{0};
  const std::string path = entry_path(key);
  const std::string tmp =
      path + ".tmp." + hex64(key_hash(std::to_string(::getpid()))) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      m.add("cache.write_errors", 1);
      return;
    }
    out << kMagic << "\n"
        << "salt: " << kEngineVersionSalt << "\n"
        << "key: " << key << "\n"
        << "payload: " << payload << "\n"
        << "end\n";
    out.flush();
    if (!out) {
      m.add("cache.write_errors", 1);
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    m.add("cache.write_errors", 1);
    fs::remove(tmp, ec);
    return;
  }
  m.add("cache.stores", 1);
}

}  // namespace rcons::reduction
