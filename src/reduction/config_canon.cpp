#include "reduction/config_canon.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <unordered_set>

#include "exec/execute.hpp"
#include "util/assert.hpp"

namespace rcons::reduction {
namespace {

bool local_less(const exec::LocalState& a, const exec::LocalState& b) {
  return std::lexicographical_compare(a.words.begin(), a.words.end(),
                                      b.words.begin(), b.words.end());
}

// s := tau applied to c, i.e. s.local(tau[i]) = c.local(i).
exec::Config permute_config(const exec::Config& c, const PidPermutation& tau) {
  exec::Config s = c;
  for (int i = 0; i < c.process_count(); ++i) {
    s.set_local(tau[static_cast<std::size_t>(i)], c.local(i));
  }
  return s;
}

}  // namespace

ProcessSymmetryReducer::ProcessSymmetryReducer(const exec::Protocol& protocol,
                                               const std::vector<int>& inputs,
                                               bool enable)
    : process_count_(protocol.process_count()) {
  if (!enable) return;
  RCONS_CHECK(static_cast<int>(inputs.size()) == process_count_);
  std::map<int, std::vector<int>> by_input;
  for (int pid = 0; pid < process_count_; ++pid) {
    by_input[inputs[static_cast<std::size_t>(pid)]].push_back(pid);
  }
  for (auto& [input, pids] : by_input) {
    if (pids.size() >= 2) groups_.push_back(std::move(pids));
  }
  active_ = !groups_.empty();
}

void ProcessSymmetryReducer::canonicalize(exec::Config* config) const {
  if (!active_) return;
  for (const auto& group : groups_) {
    std::vector<exec::LocalState> locals;
    locals.reserve(group.size());
    for (int pid : group) locals.push_back(config->local(pid));
    std::stable_sort(locals.begin(), locals.end(), local_less);
    for (std::size_t j = 0; j < group.size(); ++j) {
      config->set_local(group[j], std::move(locals[j]));
    }
  }
}

PidPermutation ProcessSymmetryReducer::canonicalize_with_permutation(
    exec::Config* config) const {
  PidPermutation perm(static_cast<std::size_t>(process_count_));
  std::iota(perm.begin(), perm.end(), 0);
  if (!active_) return perm;
  for (const auto& group : groups_) {
    std::vector<std::size_t> order(group.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return local_less(config->local(group[a]),
                                         config->local(group[b]));
                     });
    std::vector<exec::LocalState> locals;
    locals.reserve(group.size());
    for (std::size_t j = 0; j < group.size(); ++j) {
      locals.push_back(config->local(group[order[j]]));
    }
    for (std::size_t j = 0; j < group.size(); ++j) {
      config->set_local(group[j], std::move(locals[j]));
      perm[static_cast<std::size_t>(group[order[j]])] = group[j];
    }
  }
  return perm;
}

int DerandomizedSchedule::real_pid(int canonical_pid) const {
  for (std::size_t i = 0; i < final_perm.size(); ++i) {
    if (final_perm[i] == canonical_pid) return static_cast<int>(i);
  }
  return canonical_pid;
}

DerandomizedSchedule derandomize_schedule(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const ProcessSymmetryReducer& reducer,
    const std::vector<exec::Schedule>& canonical_segments) {
  const int n = protocol.process_count();
  DerandomizedSchedule out;
  out.final_perm.resize(static_cast<std::size_t>(n));
  std::iota(out.final_perm.begin(), out.final_perm.end(), 0);
  if (!reducer.active()) {
    for (const exec::Schedule& seg : canonical_segments) {
      out.schedule.insert(out.schedule.end(), seg.begin(), seg.end());
    }
    return out;
  }

  // Invariant at every segment boundary: tau maps the true configuration c
  // to the canonical frame the engine stored (canonical.local(tau[i]) ==
  // c.local(i)). The root is its own representative — equal-input
  // processes start in identical local states — so tau begins as the
  // identity. Within a segment tau is FIXED: all of a segment's events are
  // expressed in its source frame.
  exec::Config c = exec::Config::initial(protocol, inputs);
  PidPermutation tau = out.final_perm;
  std::vector<int> inv_tau = tau;
  exec::DecisionLog log(n);

  for (const exec::Schedule& seg : canonical_segments) {
    for (const exec::Event& e : seg) {
      const int real = inv_tau[static_cast<std::size_t>(e.pid)];
      const exec::Event real_event{e.kind, real};
      out.schedule.push_back(real_event);
      exec::apply_event(protocol, c, real_event, log);
    }
    exec::Config s = permute_config(c, tau);
    const PidPermutation pi = reducer.canonicalize_with_permutation(&s);
    for (int i = 0; i < n; ++i) {
      tau[static_cast<std::size_t>(i)] =
          pi[static_cast<std::size_t>(tau[static_cast<std::size_t>(i)])];
    }
    for (int i = 0; i < n; ++i) {
      inv_tau[static_cast<std::size_t>(tau[static_cast<std::size_t>(i)])] = i;
    }
  }
  out.final_perm = tau;
  return out;
}

DerandomizedSchedule derandomize_schedule(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const ProcessSymmetryReducer& reducer,
    const exec::Schedule& canonical_schedule) {
  std::vector<exec::Schedule> segments;
  segments.reserve(canonical_schedule.size());
  for (const exec::Event& e : canonical_schedule) {
    segments.push_back(exec::Schedule{e});
  }
  return derandomize_schedule(protocol, inputs, reducer, segments);
}

bool verify_process_symmetry(const exec::Protocol& protocol,
                             const std::vector<int>& inputs,
                             std::size_t max_configs) {
  const int n = protocol.process_count();
  RCONS_CHECK(static_cast<int>(inputs.size()) == n);

  // Pairs of distinct processes with equal inputs; their transposition must
  // commute with every event.
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (inputs[static_cast<std::size_t>(i)] ==
          inputs[static_cast<std::size_t>(j)]) {
        pairs.emplace_back(i, j);
      }
    }
  }
  if (pairs.empty()) return true;

  for (auto [i, j] : pairs) {
    if (!(protocol.initial_state(i, inputs[static_cast<std::size_t>(i)]) ==
          protocol.initial_state(j, inputs[static_cast<std::size_t>(j)]))) {
      return false;
    }
  }

  auto swap_locals = [](exec::Config config, int i, int j) {
    exec::LocalState tmp = config.local(i);
    config.set_local(i, config.local(j));
    config.set_local(j, tmp);
    return config;
  };

  std::unordered_set<exec::Config, exec::ConfigHash> visited;
  std::deque<exec::Config> frontier;
  frontier.push_back(exec::Config::initial(protocol, inputs));
  visited.insert(frontier.back());

  while (!frontier.empty() && visited.size() <= max_configs) {
    exec::Config c = std::move(frontier.front());
    frontier.pop_front();

    for (auto [i, j] : pairs) {
      const exec::Config swapped = swap_locals(c, i, j);
      for (exec::Event::Kind kind :
           {exec::Event::Kind::kStep, exec::Event::Kind::kCrash}) {
        exec::Config a = c;
        exec::DecisionLog la(n);
        const exec::EventOutcome oa =
            exec::apply_event(protocol, a, exec::Event{kind, i}, la);
        exec::Config b = swapped;
        exec::DecisionLog lb(n);
        const exec::EventOutcome ob =
            exec::apply_event(protocol, b, exec::Event{kind, j}, lb);
        if (!(swap_locals(a, i, j) == b)) return false;
        if (oa.decision != ob.decision) return false;
      }
    }

    for (int pid = 0; pid < n; ++pid) {
      for (exec::Event::Kind kind :
           {exec::Event::Kind::kStep, exec::Event::Kind::kCrash}) {
        exec::Config next = c;
        exec::DecisionLog log(n);
        exec::apply_event(protocol, next, exec::Event{kind, pid}, log);
        if (visited.insert(next).second) frontier.push_back(std::move(next));
      }
    }
  }
  return true;
}

bool inputs_canonical(const std::vector<int>& inputs) {
  return std::is_sorted(inputs.begin(), inputs.end());
}

}  // namespace rcons::reduction
