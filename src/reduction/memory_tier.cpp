#include "reduction/memory_tier.hpp"

#include "trace/metrics.hpp"

namespace rcons::reduction {
namespace {

const VerdictCache& disabled_cache() {
  static const VerdictCache* kDisabled = new VerdictCache();
  return *kDisabled;
}

}  // namespace

MemoryTierCache::MemoryTierCache(const VerdictCache* backing,
                                 std::size_t max_bytes)
    : backing_(backing != nullptr ? backing : &disabled_cache()),
      max_bytes_(max_bytes) {}

std::optional<std::string> MemoryTierCache::lookup(
    const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      trace::metrics().add("cache.mem_hits", 1);
      return it->second;
    }
  }
  trace::metrics().add("cache.mem_misses", 1);
  if (std::optional<std::string> payload = backing_->lookup(key)) {
    remember(key, *payload);
    return payload;
  }
  return std::nullopt;
}

void MemoryTierCache::store(const std::string& key,
                            const std::string& payload) const {
  remember(key, payload);
  backing_->store(key, payload);
}

std::size_t MemoryTierCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void MemoryTierCache::remember(const std::string& key,
                               const std::string& payload) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) return;  // first write wins; verdicts are pure
  const std::size_t cost = key.size() + payload.size();
  if (bytes_ + cost > max_bytes_) {
    trace::metrics().add("cache.mem_dropped", 1);
    return;
  }
  entries_.emplace(key, payload);
  bytes_ += cost;
  trace::metrics().add("cache.mem_stores", 1);
}

}  // namespace rcons::reduction
