#include "reduction/type_canon.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>

#include "spec/builder.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace rcons::reduction {
namespace {

// A structural signature: a flat integer vector, comparable. Signatures are
// built from colors only (never raw ids), so they are relabeling-invariant.
using Sig = std::vector<int>;

// Dense ranks of `sigs` in sorted order: equal signatures share a rank.
std::vector<int> rank_signatures(const std::vector<Sig>& sigs) {
  std::map<Sig, int> rank;
  for (const Sig& s : sigs) rank.emplace(s, 0);
  int next = 0;
  for (auto& [sig, r] : rank) r = next++;
  std::vector<int> out;
  out.reserve(sigs.size());
  for (const Sig& s : sigs) out.push_back(rank.at(s));
  return out;
}

struct Colors {
  std::vector<int> value;
  std::vector<int> op;
  std::vector<int> response;

  friend bool operator==(const Colors&, const Colors&) = default;
};

// Mutual partition refinement: each kind's color is refined by the colored
// shape of the delta table until a fixed point. Terminates in at most
// V + O + R rounds (color counts are monotone non-decreasing).
Colors refine(const spec::ObjectType& t) {
  const int V = t.value_count();
  const int O = t.op_count();
  const int R = t.response_count();
  Colors c;
  c.value.assign(static_cast<std::size_t>(V), 0);
  c.op.assign(static_cast<std::size_t>(O), 0);
  c.response.assign(static_cast<std::size_t>(R), 0);

  for (int round = 0; round < V + O + R + 1; ++round) {
    Colors next = c;

    std::vector<Sig> vsigs(static_cast<std::size_t>(V));
    for (int v = 0; v < V; ++v) {
      Sig rows;
      for (int op = 0; op < O; ++op) {
        const spec::Effect& e = t.apply(v, op);
        rows.push_back(c.op[static_cast<std::size_t>(op)]);
        rows.push_back(c.response[static_cast<std::size_t>(e.response)]);
        rows.push_back(c.value[static_cast<std::size_t>(e.next_value)]);
      }
      // Rows are already produced in op order; ops of equal color are
      // interchangeable, so sort the per-op triples to get a multiset.
      Sig sig{c.value[static_cast<std::size_t>(v)]};
      std::vector<Sig> triples;
      for (std::size_t i = 0; i < rows.size(); i += 3) {
        triples.push_back({rows[i], rows[i + 1], rows[i + 2]});
      }
      std::sort(triples.begin(), triples.end());
      for (const Sig& tr : triples) {
        sig.insert(sig.end(), tr.begin(), tr.end());
      }
      vsigs[static_cast<std::size_t>(v)] = std::move(sig);
    }
    next.value = rank_signatures(vsigs);

    std::vector<Sig> osigs(static_cast<std::size_t>(O));
    for (int op = 0; op < O; ++op) {
      std::vector<Sig> triples;
      for (int v = 0; v < V; ++v) {
        const spec::Effect& e = t.apply(v, op);
        triples.push_back({c.value[static_cast<std::size_t>(v)],
                           c.response[static_cast<std::size_t>(e.response)],
                           c.value[static_cast<std::size_t>(e.next_value)]});
      }
      std::sort(triples.begin(), triples.end());
      Sig sig{c.op[static_cast<std::size_t>(op)]};
      for (const Sig& tr : triples) {
        sig.insert(sig.end(), tr.begin(), tr.end());
      }
      osigs[static_cast<std::size_t>(op)] = std::move(sig);
    }
    next.op = rank_signatures(osigs);

    std::vector<Sig> rsigs(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      rsigs[static_cast<std::size_t>(r)] = {
          c.response[static_cast<std::size_t>(r)]};
    }
    for (int v = 0; v < V; ++v) {
      for (int op = 0; op < O; ++op) {
        const spec::Effect& e = t.apply(v, op);
        Sig& sig = rsigs[static_cast<std::size_t>(e.response)];
        sig.push_back(c.value[static_cast<std::size_t>(v)]);
        sig.push_back(c.op[static_cast<std::size_t>(op)]);
        sig.push_back(c.value[static_cast<std::size_t>(e.next_value)]);
      }
    }
    // The (value, op) occurrences of a response form a multiset: sort the
    // appended triples (keeping the leading own-color entry in place).
    for (Sig& sig : rsigs) {
      std::vector<Sig> triples;
      for (std::size_t i = 1; i < sig.size(); i += 3) {
        triples.push_back({sig[i], sig[i + 1], sig[i + 2]});
      }
      std::sort(triples.begin(), triples.end());
      sig.resize(1);
      for (const Sig& tr : triples) {
        sig.insert(sig.end(), tr.begin(), tr.end());
      }
    }
    next.response = rank_signatures(rsigs);

    if (next == c) return c;
    c = std::move(next);
  }
  return c;
}

// Ids grouped by color, classes in color order, members ascending.
std::vector<std::vector<int>> color_classes(const std::vector<int>& colors) {
  int max_color = -1;
  for (int c : colors) max_color = std::max(max_color, c);
  std::vector<std::vector<int>> classes(
      static_cast<std::size_t>(max_color + 1));
  for (std::size_t id = 0; id < colors.size(); ++id) {
    classes[static_cast<std::size_t>(colors[id])].push_back(
        static_cast<int>(id));
  }
  return classes;
}

// Number of class-respecting labelings (product of class factorials),
// saturating at `cap + 1`.
std::size_t count_labelings(const std::vector<std::vector<int>>& classes,
                            std::size_t cap) {
  std::size_t total = 1;
  for (const auto& cls : classes) {
    for (std::size_t k = 2; k <= cls.size(); ++k) {
      total *= k;
      if (total > cap) return cap + 1;
    }
  }
  return total;
}

// All orders (old ids listed in new-id sequence) that respect the classes:
// the concatenation, class by class, of every permutation of each class.
std::vector<std::vector<int>> all_orders(
    const std::vector<std::vector<int>>& classes) {
  std::vector<std::vector<int>> orders{{}};
  for (const auto& cls : classes) {
    std::vector<int> perm = cls;  // ascending = first permutation
    std::vector<std::vector<int>> grown;
    do {
      for (const auto& prefix : orders) {
        std::vector<int> next = prefix;
        next.insert(next.end(), perm.begin(), perm.end());
        grown.push_back(std::move(next));
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    orders = std::move(grown);
  }
  return orders;
}

// All permutations that map every class ONTO ITSELF (perm[old] = new).
// Unlike all_orders — whose candidates send classes to normalized id
// blocks — these fix the original id positions of each class, which is
// what an automorphism must do (colors are structural invariants).
std::vector<std::vector<int>> class_preserving_perms(
    const std::vector<std::vector<int>>& classes, std::size_t n) {
  std::vector<int> identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<std::vector<int>> perms{identity};
  for (const auto& cls : classes) {
    if (cls.size() < 2) continue;
    std::vector<int> target = cls;  // ascending = first permutation
    std::vector<std::vector<int>> grown;
    do {
      for (const auto& base : perms) {
        std::vector<int> next = base;
        for (std::size_t j = 0; j < cls.size(); ++j) {
          next[static_cast<std::size_t>(cls[j])] = target[j];
        }
        grown.push_back(std::move(next));
      }
    } while (std::next_permutation(target.begin(), target.end()));
    perms = std::move(grown);
  }
  return perms;
}

std::vector<int> order_to_perm(const std::vector<int>& order) {
  std::vector<int> perm(order.size());
  for (std::size_t new_id = 0; new_id < order.size(); ++new_id) {
    perm[static_cast<std::size_t>(order[new_id])] = static_cast<int>(new_id);
  }
  return perm;
}

// The refinement-only labeling: ids sorted by (color, id). Deterministic,
// but not invariant beyond the coloring — used only past the budget.
std::vector<int> fallback_perm(const std::vector<int>& colors) {
  std::vector<int> order(colors.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return colors[static_cast<std::size_t>(a)] <
           colors[static_cast<std::size_t>(b)];
  });
  return order_to_perm(order);
}

void append_int(std::string& out, int x) { out += std::to_string(x); }

// Encodes the delta table under (value_perm, op_perm), choosing the
// response labeling greedily: response classes occupy fixed id blocks (by
// color rank), and within a block ids are handed out in order of first
// appearance in the scan — the lexicographically minimal choice for this
// (value_perm, op_perm). Fills `response_perm`.
std::string encode(const spec::ObjectType& t, const Colors& colors,
                   const std::vector<std::vector<int>>& rclasses,
                   const std::vector<int>& value_perm,
                   const std::vector<int>& op_perm,
                   std::vector<int>& response_perm) {
  const int V = t.value_count();
  const int O = t.op_count();
  const int R = t.response_count();

  std::vector<int> vinv(static_cast<std::size_t>(V));
  for (int v = 0; v < V; ++v) {
    vinv[static_cast<std::size_t>(value_perm[static_cast<std::size_t>(v)])] =
        v;
  }
  std::vector<int> oinv(static_cast<std::size_t>(O));
  for (int op = 0; op < O; ++op) {
    oinv[static_cast<std::size_t>(op_perm[static_cast<std::size_t>(op)])] = op;
  }

  std::vector<int> block_start(rclasses.size());
  {
    int start = 0;
    for (std::size_t c = 0; c < rclasses.size(); ++c) {
      block_start[c] = start;
      start += static_cast<int>(rclasses[c].size());
    }
  }
  std::vector<int> used(rclasses.size(), 0);
  response_perm.assign(static_cast<std::size_t>(R), -1);

  std::string out;
  out.reserve(static_cast<std::size_t>(V * O) * 6 + 16);
  out += 'v';
  append_int(out, V);
  out += 'o';
  append_int(out, O);
  out += 'r';
  append_int(out, R);
  out += ':';
  for (int nv = 0; nv < V; ++nv) {
    const int v = vinv[static_cast<std::size_t>(nv)];
    for (int nop = 0; nop < O; ++nop) {
      const int op = oinv[static_cast<std::size_t>(nop)];
      const spec::Effect& e = t.apply(v, op);
      int& nr = response_perm[static_cast<std::size_t>(e.response)];
      if (nr < 0) {
        const std::size_t cls = static_cast<std::size_t>(
            colors.response[static_cast<std::size_t>(e.response)]);
        nr = block_start[cls] + used[cls]++;
      }
      append_int(out, nr);
      out += '.';
      append_int(out, value_perm[static_cast<std::size_t>(e.next_value)]);
      out += (nop + 1 == O) ? ';' : ',';
    }
  }
  // Responses that never occur in the delta table get the leftover slots of
  // their class, in ascending old-id order.
  for (int r = 0; r < R; ++r) {
    int& nr = response_perm[static_cast<std::size_t>(r)];
    if (nr < 0) {
      const std::size_t cls = static_cast<std::size_t>(
          colors.response[static_cast<std::size_t>(r)]);
      nr = block_start[cls] + used[cls]++;
    }
  }
  return out;
}

// Stable 64-bit hash of the key bytes (FNV-1a + avalanche finalizer).
std::uint64_t hash_key(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace

TypeRelabeling identity_relabeling(const spec::ObjectType& type) {
  TypeRelabeling id;
  id.value_perm.resize(static_cast<std::size_t>(type.value_count()));
  std::iota(id.value_perm.begin(), id.value_perm.end(), 0);
  id.op_perm.resize(static_cast<std::size_t>(type.op_count()));
  std::iota(id.op_perm.begin(), id.op_perm.end(), 0);
  id.response_perm.resize(static_cast<std::size_t>(type.response_count()));
  std::iota(id.response_perm.begin(), id.response_perm.end(), 0);
  return id;
}

bool is_identity(const TypeRelabeling& relabeling) {
  auto check = [](const std::vector<int>& perm) {
    for (std::size_t i = 0; i < perm.size(); ++i) {
      if (perm[i] != static_cast<int>(i)) return false;
    }
    return true;
  };
  return check(relabeling.value_perm) && check(relabeling.op_perm) &&
         check(relabeling.response_perm);
}

spec::ObjectType relabel_type(const spec::ObjectType& type,
                              const TypeRelabeling& relabeling,
                              const std::string& new_name) {
  RCONS_CHECK(static_cast<int>(relabeling.value_perm.size()) ==
              type.value_count());
  RCONS_CHECK(static_cast<int>(relabeling.op_perm.size()) == type.op_count());
  RCONS_CHECK(static_cast<int>(relabeling.response_perm.size()) ==
              type.response_count());
  spec::TypeBuilder b(new_name.empty() ? type.name() : new_name);
  // Declare in new-id order so the permuted ids land where they should;
  // names travel with their ids.
  std::vector<int> vinv(relabeling.value_perm.size());
  for (std::size_t v = 0; v < vinv.size(); ++v) {
    vinv[static_cast<std::size_t>(relabeling.value_perm[v])] =
        static_cast<int>(v);
  }
  std::vector<int> oinv(relabeling.op_perm.size());
  for (std::size_t op = 0; op < oinv.size(); ++op) {
    oinv[static_cast<std::size_t>(relabeling.op_perm[op])] =
        static_cast<int>(op);
  }
  std::vector<int> rinv(relabeling.response_perm.size());
  for (std::size_t r = 0; r < rinv.size(); ++r) {
    rinv[static_cast<std::size_t>(relabeling.response_perm[r])] =
        static_cast<int>(r);
  }
  for (std::size_t nv = 0; nv < vinv.size(); ++nv) {
    b.value(type.value_name(vinv[nv]));
  }
  for (std::size_t nop = 0; nop < oinv.size(); ++nop) {
    b.op(type.op_name(oinv[nop]));
  }
  for (std::size_t nr = 0; nr < rinv.size(); ++nr) {
    b.response(type.response_name(rinv[nr]));
  }
  for (int v = 0; v < type.value_count(); ++v) {
    for (int op = 0; op < type.op_count(); ++op) {
      const spec::Effect& e = type.apply(v, op);
      b.on(type.value_name(v), type.op_name(op))
          .then(type.value_name(e.next_value))
          .returns(type.response_name(e.response));
    }
  }
  return b.build();
}

CanonicalForm canonicalize_type(const spec::ObjectType& type,
                                std::size_t max_candidates) {
  const Colors colors = refine(type);
  const auto vclasses = color_classes(colors.value);
  const auto oclasses = color_classes(colors.op);
  const auto rclasses = color_classes(colors.response);

  CanonicalForm best;
  const std::size_t vcount = count_labelings(vclasses, max_candidates);
  const std::size_t ocount = count_labelings(oclasses, max_candidates);
  if (vcount > max_candidates || ocount > max_candidates ||
      vcount * ocount > max_candidates) {
    best.complete = false;
    best.labeling.value_perm = fallback_perm(colors.value);
    best.labeling.op_perm = fallback_perm(colors.op);
    best.key = encode(type, colors, rclasses, best.labeling.value_perm,
                      best.labeling.op_perm, best.labeling.response_perm);
    best.hash = hash_key(best.key);
    return best;
  }

  const auto vorders = all_orders(vclasses);
  const auto oorders = all_orders(oclasses);
  for (const auto& vorder : vorders) {
    const std::vector<int> vperm = order_to_perm(vorder);
    for (const auto& oorder : oorders) {
      const std::vector<int> operm = order_to_perm(oorder);
      std::vector<int> rperm;
      std::string key = encode(type, colors, rclasses, vperm, operm, rperm);
      if (best.key.empty() || key < best.key) {
        best.key = std::move(key);
        best.labeling.value_perm = vperm;
        best.labeling.op_perm = operm;
        best.labeling.response_perm = std::move(rperm);
      }
    }
  }
  best.hash = hash_key(best.key);
  best.complete = true;
  return best;
}

std::uint64_t canonical_type_hash(const spec::ObjectType& type) {
  return canonicalize_type(type).hash;
}

std::vector<TypeRelabeling> type_automorphisms(const spec::ObjectType& type,
                                               std::size_t max_candidates) {
  const Colors colors = refine(type);
  const auto vclasses = color_classes(colors.value);
  const auto oclasses = color_classes(colors.op);

  std::vector<TypeRelabeling> autos;
  const std::size_t vcount = count_labelings(vclasses, max_candidates);
  const std::size_t ocount = count_labelings(oclasses, max_candidates);
  if (vcount > max_candidates || ocount > max_candidates ||
      vcount * ocount > max_candidates) {
    autos.push_back(identity_relabeling(type));
    return autos;
  }

  const int V = type.value_count();
  const int O = type.op_count();
  const int R = type.response_count();
  const auto vperms =
      class_preserving_perms(vclasses, static_cast<std::size_t>(V));
  const auto operms =
      class_preserving_perms(oclasses, static_cast<std::size_t>(O));
  for (const auto& vperm : vperms) {
    for (const auto& operm : operms) {
      // phi = (vperm, operm) is an automorphism iff a response bijection
      // making delta commute exists; that bijection is forced pointwise.
      std::vector<int> rperm(static_cast<std::size_t>(R), -1);
      bool ok = true;
      for (int v = 0; v < V && ok; ++v) {
        for (int op = 0; op < O && ok; ++op) {
          const spec::Effect& e = type.apply(v, op);
          const spec::Effect& img =
              type.apply(vperm[static_cast<std::size_t>(v)],
                         operm[static_cast<std::size_t>(op)]);
          if (img.next_value !=
              vperm[static_cast<std::size_t>(e.next_value)]) {
            ok = false;
            break;
          }
          int& mapped = rperm[static_cast<std::size_t>(e.response)];
          if (mapped < 0) {
            mapped = img.response;
          } else if (mapped != img.response) {
            ok = false;
          }
        }
      }
      if (!ok) continue;
      // The forced part must be injective; unused responses fill the
      // remaining slots in ascending order.
      std::vector<bool> taken(static_cast<std::size_t>(R), false);
      for (int r = 0; r < R && ok; ++r) {
        const int m = rperm[static_cast<std::size_t>(r)];
        if (m < 0) continue;
        if (taken[static_cast<std::size_t>(m)]) ok = false;
        taken[static_cast<std::size_t>(m)] = true;
      }
      if (!ok) continue;
      int next_free = 0;
      for (int r = 0; r < R; ++r) {
        if (rperm[static_cast<std::size_t>(r)] >= 0) continue;
        while (taken[static_cast<std::size_t>(next_free)]) ++next_free;
        rperm[static_cast<std::size_t>(r)] = next_free;
        taken[static_cast<std::size_t>(next_free)] = true;
      }
      autos.push_back(TypeRelabeling{vperm, operm, std::move(rperm)});
    }
  }
  return autos;
}

}  // namespace rcons::reduction
