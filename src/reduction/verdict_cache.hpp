// Persistent on-disk verdict cache.
//
// Hierarchy verdicts (is this type n-discerning? n-recording?) are pure
// functions of the canonical type and the parameters, so they can be
// remembered across runs. Entries are keyed by a semantic key string
// assembled by the caller:
//
//   <kind> "|n=" <n> "|z=" <crash budget> "|spec=" <canonical type key>
//
// and the engine-version salt is prepended by the cache itself, so any
// change to checker semantics (bump kEngineVersionSalt) invalidates every
// old entry. The file name is a 64-bit hash of the salted key; the full
// key is stored inside the entry and compared on load, so hash collisions
// and incomplete type canonicalization can only cause misses, never wrong
// verdicts.
//
// Robustness: writes go to a unique temp file in the cache directory and
// are renamed into place (atomic on POSIX), so readers only ever see
// complete entries. Loads tolerate truncated, garbage, or stale-salt files
// by warning (once per file, to stderr) and reporting a miss; every
// failure mode degrades to recomputation. Hit/miss/store counters are
// exported through trace::MetricsRegistry as cache.hits, cache.misses,
// cache.stores, cache.skipped_corrupt, cache.skipped_stale, and
// cache.write_errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace rcons::reduction {

/// Bump when any change alters what a cached verdict means (checker
/// semantics, key scheme, payload format).
inline constexpr const char* kEngineVersionSalt = "rcons-verdict-v1";

/// The on-disk tier. lookup/store/enabled are virtual so a faster tier
/// (the serve daemon's MemoryTierCache) can layer above this one behind
/// the same `const VerdictCache*` the profile scans already take.
class VerdictCache {
 public:
  /// A disabled cache: lookups miss silently, stores are dropped.
  VerdictCache() = default;

  /// Caches under `directory` (created on first store if missing). An
  /// empty directory string disables the cache.
  explicit VerdictCache(std::string directory);

  virtual ~VerdictCache() = default;
  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  /// `$XDG_CACHE_HOME/rcons` or `$HOME/.cache/rcons`; empty (disabled)
  /// when neither variable is set.
  static std::string default_directory();

  virtual bool enabled() const { return !directory_.empty(); }
  const std::string& directory() const { return directory_; }

  /// The stored payload for `key`, or nullopt on any kind of miss.
  virtual std::optional<std::string> lookup(const std::string& key) const;

  /// Persists `payload` (single line, no '\n') under `key`. Failures are
  /// counted and swallowed — caching is best-effort by design.
  virtual void store(const std::string& key,
                     const std::string& payload) const;

 private:
  std::string entry_path(const std::string& key) const;

  std::string directory_;
};

}  // namespace rcons::reduction
