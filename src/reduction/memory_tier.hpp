// In-memory verdict tier above the persistent VerdictCache.
//
// The serve daemon (DESIGN.md §12) answers thousands of profile requests
// per process lifetime, and the persistent cache pays a file open per
// per-n lookup. This tier keeps every verdict it has seen in a
// mutex-guarded map:
//
//   lookup: memory map first (cache.mem_hits / cache.mem_misses); on a
//           memory miss, fall through to the backing tier and promote any
//           hit into the map, so a verdict is read from disk at most once
//           per process.
//   store:  write the map AND the backing tier (write-through, so the
//           persistent tier stays warm for the next process).
//
// Keys are the same salted semantic keys the persistent cache uses —
// canonical type form included — so isomorphic types share entries across
// BOTH tiers. The map is unbounded by entry count but bounded by
// max_bytes of payload+key data (default 256 MiB); at the cap, new
// entries are dropped (never evicted: dropping is cheaper than LRU and a
// full tier still write-throughs to disk, so nothing is lost but speed).
// cache.mem_dropped counts the drops.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "reduction/verdict_cache.hpp"

namespace rcons::reduction {

class MemoryTierCache : public VerdictCache {
 public:
  /// Layers above `backing` (not owned; may be a disabled cache, in which
  /// case this tier is purely in-memory). `max_bytes` caps the summed
  /// key+payload size held in memory.
  explicit MemoryTierCache(const VerdictCache* backing,
                           std::size_t max_bytes = 256u << 20);

  /// The memory tier is always usable, even over a disabled backing.
  bool enabled() const override { return true; }

  std::optional<std::string> lookup(const std::string& key) const override;
  void store(const std::string& key,
             const std::string& payload) const override;

  /// Entries currently held in memory.
  std::size_t entry_count() const;

 private:
  const VerdictCache* backing_;  // never null (points at a disabled cache
                                 // instead)
  std::size_t max_bytes_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, std::string> entries_;
  mutable std::size_t bytes_ = 0;

  /// Inserts under the byte cap; counts cache.mem_dropped past it.
  void remember(const std::string& key, const std::string& payload) const;
};

}  // namespace rcons::reduction
