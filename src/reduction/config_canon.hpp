// Quotienting explored configurations by process symmetry.
//
// For a protocol that treats processes interchangeably (see
// exec::Protocol::process_symmetric), any permutation pi of the process ids
// that fixes the input vector maps executions to executions: permuting the
// local states of a configuration (object values untouched) commutes with
// steps and crashes, and preserves which values have been decided. Every
// verdict the valency engines compute over E_z(C) is therefore invariant
// under the stabilizer of the input vector — the Young subgroup of
// permutations acting within groups of processes that share an input.
//
// ProcessSymmetryReducer maps each configuration to the canonical
// representative of its orbit: within every equal-input group, local states
// are stably sorted. Exploring only representatives shrinks the reachable
// state space while preserving verdicts exactly.
//
// Counterexamples found in the quotient are schedules over canonical
// frames; derandomize_schedule() rewrites one into a genuine schedule of
// the original protocol by tracking the accumulated permutation event by
// event (see DESIGN.md §10 for the algebra).
#pragma once

#include <vector>

#include "exec/config.hpp"
#include "exec/event.hpp"
#include "exec/protocol.hpp"

namespace rcons::reduction {

/// A permutation of process ids: `perm[old_pid] = new_pid`.
using PidPermutation = std::vector<int>;

class ProcessSymmetryReducer {
 public:
  /// Inactive reducer: canonicalize() is the identity.
  ProcessSymmetryReducer() = default;

  /// Reduces modulo the stabilizer of `inputs` when `enable` is true (the
  /// caller has checked protocol.process_symmetric()).
  ProcessSymmetryReducer(const exec::Protocol& protocol,
                         const std::vector<int>& inputs, bool enable);

  bool active() const { return active_; }

  /// Rewrites `config` in place to its orbit representative: the local
  /// states of each equal-input group in stable-sorted order.
  void canonicalize(exec::Config* config) const;

  /// As canonicalize(), also reporting the permutation applied: afterwards
  /// canonical.local(perm[i]) == original.local(i) for every i.
  PidPermutation canonicalize_with_permutation(exec::Config* config) const;

 private:
  // Equal-input pid groups (each ascending); singleton groups are dropped
  // since they cannot move.
  std::vector<std::vector<int>> groups_;
  int process_count_ = 0;
  bool active_ = false;
};

/// A canonical-frame schedule rewritten against the real protocol.
struct DerandomizedSchedule {
  exec::Schedule schedule;
  /// Final frame map: canonical pid = final_perm[real pid].
  PidPermutation final_perm;

  /// The real pid behind `canonical_pid` in the final configuration.
  int real_pid(int canonical_pid) const;
};

/// Replays a canonical-frame schedule (recorded over canonical
/// representatives) against the real protocol, yielding a schedule whose
/// execution from Config::initial(protocol, inputs) visits, frame by
/// frame, the true configurations whose canonical forms the engine
/// explored. Verdict evidence (violating pid, stuck pid) transfers through
/// final_perm.
///
/// The schedule arrives as the engine's edge SEGMENTS: every event of one
/// segment is expressed in the frame of the segment's source node (the
/// engines canonicalize only between edges, so a multi-event segment — the
/// simultaneous crash — must be translated under one fixed frame).
DerandomizedSchedule derandomize_schedule(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const ProcessSymmetryReducer& reducer,
    const std::vector<exec::Schedule>& canonical_segments);

/// Convenience overload for schedules whose every event is its own edge
/// (steps and individual crashes only).
DerandomizedSchedule derandomize_schedule(
    const exec::Protocol& protocol, const std::vector<int>& inputs,
    const ProcessSymmetryReducer& reducer,
    const exec::Schedule& canonical_schedule);

/// Bounded semantic audit of a process_symmetric() declaration: explores up
/// to `max_configs` configurations breadth-first and checks that swapping
/// any two equal-input processes commutes with every event. Returns false
/// (with the offending pair ignored) on the first asymmetry.
bool verify_process_symmetry(const exec::Protocol& protocol,
                             const std::vector<int>& inputs,
                             std::size_t max_configs = 4096);

/// True if `inputs` is the canonical representative of its orbit under
/// full process permutation (non-decreasing). For process-symmetric
/// protocols the all-inputs drivers only need canonical vectors.
bool inputs_canonical(const std::vector<int>& inputs);

}  // namespace rcons::reduction
