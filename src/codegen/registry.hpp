// Registry of ahead-of-time compiled type steppers (DESIGN.md §14).
//
// rcons_codegen emits every .type spec under data/ (plus the built-in
// catalog shapes) as constant packed delta tables, checked in under
// src/codegen/generated/ and compiled into the library. At runtime the
// registry matches an ObjectType back to its compiled table by structural
// fingerprint (names do not matter — a relabeled isomorphic SPELLING of
// the same machine, i.e. identical delta entries under different names,
// still hits) and VERIFIES the match entry-for-entry before serving it:
// a stale or corrupted generated file can therefore cause a registry miss
// (the caller rebuilds the table at runtime, codegen.aot_misses) but
// never a wrong step. That verification is the soundness argument for the
// whole AOT backend — the engines only ever see tables proven equal to
// ObjectType::apply.
#pragma once

#include <cstdint>
#include <memory>

#include "spec/packed_delta.hpp"

namespace rcons::codegen {

/// One compiled stepper, as emitted by rcons_codegen into
/// generated/steppers_gen.cpp. Plain pointers/constants so the generated
/// translation unit is pure data with no static constructors.
struct GeneratedStepper {
  const char* name;  // the spelling it was generated from (docs only)
  std::uint64_t fingerprint;
  int value_count;
  int op_count;
  int response_count;
  int op_bits;
  int value_bits;
  const std::uint32_t* table;
  std::size_t table_len;
};

/// The compiled stepper for `type`, or nullptr when no generated table
/// matches (fingerprint filter + entry-for-entry verification). The
/// returned PackedDelta lives in a process-lifetime cache; safe to call
/// concurrently.
const spec::PackedDelta* find_compiled(const spec::ObjectType& type);

/// Number of steppers compiled into this binary.
std::size_t compiled_count();

/// The packed table for `type`: the compiled stepper when one matches
/// (codegen.aot_hits), else a runtime re-encoding stored into *storage
/// (codegen.aot_misses). Never fails; the result always satisfies
/// spec::packed_matches_type.
const spec::PackedDelta* packed_for(const spec::ObjectType& type,
                                    std::unique_ptr<spec::PackedDelta>* storage);

}  // namespace rcons::codegen

namespace rcons::codegen::generated {

/// Defined in generated/steppers_gen.cpp (emitted by rcons_codegen).
const GeneratedStepper* steppers(std::size_t* count);

}  // namespace rcons::codegen::generated
