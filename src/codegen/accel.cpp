#include "codegen/accel.hpp"

#include "codegen/registry.hpp"

namespace rcons::codegen {

AcceleratedProtocol::AcceleratedProtocol(const exec::Protocol& inner)
    : inner_(inner) {
  const int objects = inner_.object_count();
  storage_.resize(static_cast<std::size_t>(objects));
  tables_.resize(static_cast<std::size_t>(objects));
  for (int obj = 0; obj < objects; ++obj) {
    const auto i = static_cast<std::size_t>(obj);
    tables_[i] = packed_for(inner_.object_type(obj), &storage_[i]);
  }
}

}  // namespace rcons::codegen
