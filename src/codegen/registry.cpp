#include "codegen/registry.hpp"

#include <mutex>
#include <unordered_map>

#include "trace/metrics.hpp"
#include "util/assert.hpp"

namespace rcons::codegen {

namespace {

/// Wraps one generated stepper as a PackedDelta (copies the constant table
/// into the vector the engines expect). Cached per generated index behind
/// a mutex; the tables are tiny, so the one-time copy is noise.
const spec::PackedDelta* cached_packed(std::size_t index,
                                       const GeneratedStepper& stepper) {
  static std::mutex mutex;
  static std::unordered_map<std::size_t,
                            std::unique_ptr<spec::PackedDelta>>* cache =
      new std::unordered_map<std::size_t,
                             std::unique_ptr<spec::PackedDelta>>();
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache->find(index);
  if (it == cache->end()) {
    auto packed = std::make_unique<spec::PackedDelta>();
    packed->value_count = stepper.value_count;
    packed->op_count = stepper.op_count;
    packed->response_count = stepper.response_count;
    packed->op_bits = stepper.op_bits;
    packed->value_bits = stepper.value_bits;
    packed->table.assign(stepper.table, stepper.table + stepper.table_len);
    it = cache->emplace(index, std::move(packed)).first;
  }
  return it->second.get();
}

}  // namespace

std::size_t compiled_count() {
  std::size_t count = 0;
  generated::steppers(&count);
  return count;
}

const spec::PackedDelta* find_compiled(const spec::ObjectType& type) {
  std::size_t count = 0;
  const GeneratedStepper* steppers = generated::steppers(&count);
  const std::uint64_t fingerprint = spec::delta_fingerprint(type);
  for (std::size_t i = 0; i < count; ++i) {
    const GeneratedStepper& s = steppers[i];
    if (s.fingerprint != fingerprint || s.value_count != type.value_count() ||
        s.op_count != type.op_count() ||
        s.response_count != type.response_count()) {
      continue;
    }
    const spec::PackedDelta* packed = cached_packed(i, s);
    // Entry-for-entry verification: equality here is what the engines'
    // soundness rests on, so a drifted generated file must read as a
    // miss, never as a near-match.
    if (spec::packed_matches_type(*packed, type)) return packed;
  }
  return nullptr;
}

const spec::PackedDelta* packed_for(
    const spec::ObjectType& type,
    std::unique_ptr<spec::PackedDelta>* storage) {
  if (const spec::PackedDelta* compiled = find_compiled(type)) {
    trace::metrics().add("codegen.aot_hits", 1);
    return compiled;
  }
  trace::metrics().add("codegen.aot_misses", 1);
  *storage = std::make_unique<spec::PackedDelta>(build_packed_delta(type));
  RCONS_CHECK(spec::packed_matches_type(**storage, type));
  return storage->get();
}

}  // namespace rcons::codegen
