// The rcons_codegen emitter: .type specs -> compiled-in stepper tables.
//
// Emission is gated on the TS001-TS008 type lint: a FILE-BACKED spec the
// linter rejects at error severity produces a structured EmitResult error
// (the findings, in canonical order) and NO generated code — never
// generated-but-wrong output. Built-in catalog shapes surface their
// findings without gating: the catalog deliberately ships
// regime-demonstrating machines (peek_queue2 fails TS003 by design), and
// stepper soundness rests on packed_matches_type, not readability.
// Accepted inputs are deduplicated by structural fingerprint
// (data/cas3.type and the catalog's cas3 are the same machine) and
// emitted in name order, so the output is a deterministic function of the
// input set; the codegen tests pin the checked-in generated files
// byte-for-byte against a fresh emission, which is the CI drift gate.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "spec/object_type.hpp"

namespace rcons::codegen {

struct EmitInput {
  /// The spelling the stepper is generated from (catalog name or file
  /// path stem); becomes the GeneratedStepper::name.
  std::string name;
  spec::ObjectType type;
  /// The raw .type text when the input came from a file; lets the lint
  /// gate see text-level facts (duplicate rows, the initial directive).
  /// Empty for built-in catalog inputs, which lint structurally.
  std::string text;
};

struct EmitResult {
  bool ok = false;
  /// One-line summary when !ok ("lint rejected 'x': 2 error(s)").
  std::string error;
  /// Every lint finding across the inputs, canonicalized. On rejection
  /// this is the structured evidence; on success it carries only
  /// warnings/notes.
  analysis::Report findings;
  /// Generated file contents (steppers_gen.hpp / steppers_gen.cpp).
  std::string header;
  std::string source;
  /// Names emitted, in output order (post-dedupe).
  std::vector<std::string> emitted;
};

/// Lints one input through the TS rules (text-level when `text` is
/// present, structural otherwise).
analysis::Report lint_input(const EmitInput& input);

/// Gates, dedupes, and emits the stepper translation unit for `inputs`.
EmitResult emit_steppers(const std::vector<EmitInput>& inputs);

}  // namespace rcons::codegen
