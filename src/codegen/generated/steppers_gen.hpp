// GENERATED FILE — emitted by rcons_codegen; do not edit.
//
// Regenerate (from the repository root):
//   rcons_codegen --out=src/codegen/generated --builtin data
// The codegen tests pin these files byte-for-byte against a fresh
// emission, so hand edits and stale regenerations both fail CI.
#pragma once

#include "codegen/registry.hpp"
