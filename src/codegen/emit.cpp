#include "codegen/emit.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>

#include "analysis/type_lint.hpp"
#include "spec/packed_delta.hpp"

namespace rcons::codegen {

namespace {

// The fingerprint suffix keeps identifiers unique when one name covers
// two distinct spellings of a machine (data/cas3.type and the catalog's
// cas3 permute ids, so both tables are emitted under the name "cas3").
std::string table_identifier(const std::string& name,
                             std::uint64_t fingerprint) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), 't');
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "_%016llx",
                static_cast<unsigned long long>(fingerprint));
  return out + buf;
}

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

constexpr char kBanner[] =
    "// GENERATED FILE — emitted by rcons_codegen; do not edit.\n"
    "//\n"
    "// Regenerate (from the repository root):\n"
    "//   rcons_codegen --out=src/codegen/generated --builtin data\n"
    "// The codegen tests pin these files byte-for-byte against a fresh\n"
    "// emission, so hand edits and stale regenerations both fail CI.\n";

}  // namespace

analysis::Report lint_input(const EmitInput& input) {
  if (!input.text.empty()) {
    return analysis::lint_type_text(input.text, input.name);
  }
  return analysis::lint_type(input.type, analysis::TypeLintOptions{});
}

EmitResult emit_steppers(const std::vector<EmitInput>& inputs) {
  EmitResult result;

  // Gate every file-backed input before emitting anything: a partial
  // emission that silently dropped a rejected spec would read as coverage
  // it does not have. Built-in catalog shapes surface their findings but
  // never gate — the catalog deliberately ships regime-demonstrating
  // machines (peek_queue2 fails TS003 by design), and table soundness is
  // established by packed_matches_type, not by readability.
  std::vector<std::string> rejected;
  for (const EmitInput& input : inputs) {
    analysis::Report report = lint_input(input);
    if (report.error_count() > 0 && !input.text.empty()) {
      rejected.push_back(input.name);
    }
    result.findings.merge(report);
  }
  result.findings.canonicalize();
  if (!rejected.empty()) {
    result.error = "lint rejected ";
    for (std::size_t i = 0; i < rejected.size(); ++i) {
      if (i != 0) result.error += ", ";
      result.error += "'" + rejected[i] + "'";
    }
    result.error += ": " + std::to_string(result.findings.error_count()) +
                    " error(s); no code emitted";
    return result;
  }

  // Dedupe by structural identity, keep name order deterministic.
  std::vector<const EmitInput*> ordered;
  ordered.reserve(inputs.size());
  for (const EmitInput& input : inputs) ordered.push_back(&input);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const EmitInput* a, const EmitInput* b) {
                     return a->name < b->name;
                   });
  std::set<std::pair<std::uint64_t, std::string>> seen;
  std::vector<std::pair<const EmitInput*, spec::PackedDelta>> emitted;
  for (const EmitInput* input : ordered) {
    const std::uint64_t fingerprint = spec::delta_fingerprint(input->type);
    const std::string shape = std::to_string(input->type.value_count()) + "/" +
                              std::to_string(input->type.op_count()) + "/" +
                              std::to_string(input->type.response_count());
    if (!seen.emplace(fingerprint, shape).second) continue;
    emitted.emplace_back(input, spec::build_packed_delta(input->type));
    result.emitted.push_back(input->name);
  }

  result.header = std::string(kBanner) +
                  "#pragma once\n"
                  "\n"
                  "#include \"codegen/registry.hpp\"\n";

  std::string& src = result.source;
  src = std::string(kBanner) +
        "#include \"codegen/generated/steppers_gen.hpp\"\n"
        "\n"
        "namespace rcons::codegen::generated {\n";
  if (!emitted.empty()) {
    src += "namespace {\n";
    for (const auto& [input, packed] : emitted) {
      const std::string ident =
          table_identifier(input->name, spec::delta_fingerprint(input->type));
      src += "\n// " + input->name + ": " +
             std::to_string(packed.value_count) + " values, " +
             std::to_string(packed.op_count) + " ops, " +
             std::to_string(packed.response_count) +
             " responses (fingerprint " +
             hex64(spec::delta_fingerprint(input->type)) + ")\n";
      src += "constexpr std::uint32_t kTable_" + ident + "[] = {\n";
      for (std::size_t i = 0; i < packed.table.size(); ++i) {
        if (i % 8 == 0) src += "    ";
        src += hex32(packed.table[i]) + "u,";
        src += (i % 8 == 7 || i + 1 == packed.table.size()) ? "\n" : " ";
      }
      src += "};\n";
    }
    src += "\nconstexpr GeneratedStepper kSteppers[] = {\n";
    for (const auto& [input, packed] : emitted) {
      const std::string ident =
          table_identifier(input->name, spec::delta_fingerprint(input->type));
      src += "    {\"" + input->name + "\", " +
             hex64(spec::delta_fingerprint(input->type)) + "ULL, " +
             std::to_string(packed.value_count) + ", " +
             std::to_string(packed.op_count) + ", " +
             std::to_string(packed.response_count) + ", " +
             std::to_string(packed.op_bits) + ", " +
             std::to_string(packed.value_bits) + ", kTable_" + ident + ", " +
             std::to_string(packed.table.size()) + "},\n";
    }
    src += "};\n\n}  // namespace\n\n";
    src +=
        "const GeneratedStepper* steppers(std::size_t* count) {\n"
        "  *count = sizeof(kSteppers) / sizeof(kSteppers[0]);\n"
        "  return kSteppers;\n"
        "}\n";
  } else {
    src +=
        "\nconst GeneratedStepper* steppers(std::size_t* count) {\n"
        "  *count = 0;\n"
        "  return nullptr;\n"
        "}\n";
  }
  src += "\n}  // namespace rcons::codegen::generated\n";

  result.ok = true;
  return result;
}

}  // namespace rcons::codegen
