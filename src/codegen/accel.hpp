// AcceleratedProtocol: the AOT backend's protocol adapter (DESIGN.md §14).
//
// Wraps any Protocol and overrides only packed_delta(), serving each
// object a verified packed table (compiled-in when the registry hits,
// rebuilt at runtime otherwise). Everything else forwards unchanged —
// local-state representation, advance semantics, symmetry declaration —
// so every engine that runs the wrapper produces bit-identical results
// to running the inner protocol on the interpreter path; the only
// difference is how an object's (value, op) pair is stepped.
#pragma once

#include <memory>
#include <vector>

#include "exec/protocol.hpp"

namespace rcons::codegen {

class AcceleratedProtocol final : public exec::Protocol {
 public:
  /// `inner` must outlive the wrapper. Builds (or finds compiled) packed
  /// tables for every object up front, so packed_delta() is a plain
  /// vector load on the hot path.
  explicit AcceleratedProtocol(const exec::Protocol& inner);

  std::string name() const override { return inner_.name(); }
  int process_count() const override { return inner_.process_count(); }
  int object_count() const override { return inner_.object_count(); }
  const spec::ObjectType& object_type(exec::ObjectId obj) const override {
    return inner_.object_type(obj);
  }
  spec::ValueId initial_value(exec::ObjectId obj) const override {
    return inner_.initial_value(obj);
  }
  exec::LocalState initial_state(exec::ProcessId pid, int input) const override {
    return inner_.initial_state(pid, input);
  }
  exec::Action poised(exec::ProcessId pid,
                      const exec::LocalState& state) const override {
    return inner_.poised(pid, state);
  }
  exec::LocalState advance(exec::ProcessId pid, const exec::LocalState& state,
                           spec::ResponseId response) const override {
    return inner_.advance(pid, state, response);
  }
  std::string describe_state(exec::ProcessId pid,
                             const exec::LocalState& state) const override {
    return inner_.describe_state(pid, state);
  }
  bool process_symmetric() const override { return inner_.process_symmetric(); }
  int declared_crash_budget() const override {
    return inner_.declared_crash_budget();
  }

  const spec::PackedDelta* packed_delta(exec::ObjectId obj) const override {
    return tables_[static_cast<std::size_t>(obj)];
  }

  const exec::Protocol& inner() const { return inner_; }

 private:
  const exec::Protocol& inner_;
  /// Owned storage for tables built at runtime (registry misses);
  /// registry hits point into the process-lifetime compiled cache.
  std::vector<std::unique_ptr<spec::PackedDelta>> storage_;
  std::vector<const spec::PackedDelta*> tables_;
};

}  // namespace rcons::codegen
