// Deterministic enumeration of small readable-type space (rcons-hunt).
//
// The campaign's candidate universe is the same genome space the X_4
// search draws from (hierarchy/search): deterministic machines over V
// values and O team operations with R possible responses, plus an
// appended Read — readable by construction. Unlike the randomized
// search, the campaign walks the space EXHAUSTIVELY: a parameter box
// (values <= maxV, ops <= maxO, responses <= maxR) splits into cells,
// one per exact (V, O, R) triple, and the (R*V)^(V*O) delta tables of a
// cell are indexed by a mixed-radix integer. The walk order — cells
// lexicographic by (V, O, R), genomes by index — is part of the
// checkpoint contract: a cursor is a position in this walk, so the walk
// may never be reordered without bumping the campaign salt.
//
// Sharding is BY CANONICAL FORM, not by position: a candidate belongs to
// shard canonical_hash % shards. Isomorphic genomes (including the same
// structure surfacing again in a later cell with more declared responses)
// therefore always land in the same shard, which makes per-shard
// deduplication globally exhaustive: every canonical form is profiled by
// exactly one shard, exactly once. The exhaustiveness differential in
// tests/campaign_test.cpp pins the union over shards against a
// brute-force generator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "reduction/type_canon.hpp"
#include "spec/object_type.hpp"

namespace rcons::campaign {

/// One candidate machine, named by its cell and mixed-radix index.
struct GenomeId {
  int values = 1;
  int ops = 1;
  int responses = 1;
  std::uint64_t index = 0;

  friend bool operator==(const GenomeId&, const GenomeId&) = default;
};

/// The enumeration box: every cell (V, O, R) with 1 <= V <= max_values,
/// 1 <= O <= max_ops, 1 <= R <= max_responses.
struct Box {
  int max_values = 2;
  int max_ops = 2;
  int max_responses = 2;

  friend bool operator==(const Box&, const Box&) = default;
};

/// (R*V)^(V*O): the number of genomes in one cell. Returns 0 when the
/// count would overflow 64 bits (the caller must reject such boxes; the
/// CLI caps the box well below this).
std::uint64_t cell_size(int values, int ops, int responses);

/// Total genomes in the box (sum of cell sizes); 0 on overflow.
std::uint64_t box_size(const Box& box);

/// Decodes the genome and builds its ObjectType: values v0..v(V-1), team
/// ops o0..o(O-1), responses drawn from x0..x(R-1), plus a Read op
/// "read". Digit s of `index` (least significant first, one digit per
/// (value, op) slot in value-major order) encodes the slot's transition
/// as digit = next * R + response. The type is named
/// "hunt_v<V>o<O>r<R>_i<index>".
spec::ObjectType instantiate_genome(const GenomeId& id);

/// The shard a canonical form belongs to (stable across platforms: the
/// canonical hash is fixed-width integer arithmetic all the way down).
int shard_of(std::uint64_t canonical_hash, int shards);

/// One visited candidate, in walk order.
struct Candidate {
  GenomeId id;
  /// 0-based position in the box walk (the checkpoint cursor space).
  std::uint64_t position = 0;
  spec::ObjectType type;
  reduction::CanonicalForm canon;
};

/// Walks every genome in the box from `from_position` onward in the
/// canonical order described above, instantiating and canonicalizing
/// each, and calls `fn`; `fn` returns false to stop early. Positions
/// before `from_position` are skipped arithmetically (no instantiation),
/// which is what makes checkpoint resume O(resume point) cheap.
void walk_box(const Box& box, std::uint64_t from_position,
              const std::function<bool(const Candidate&)>& fn);

}  // namespace rcons::campaign
