// Checkpoint files for the rcons-hunt campaign (DESIGN.md §15).
//
// A shard's entire state — walk cursor, accumulated profile records, and
// completion status — lives in ONE file, rewritten as a whole through a
// unique temp file and an atomic rename (the VerdictCache discipline), so
// a kill -9 at any instant leaves either the previous snapshot or the new
// one on disk, never a torn mixture. Resume therefore re-processes at
// most checkpoint_interval - 1 candidates, and because every record is a
// pure function of the genome (profiles are deterministic), the final
// database is byte-identical to an uninterrupted run — the property the
// crash/resume battery in tests/campaign_test.cpp SIGKILLs its way
// through 50+ seeds to prove.
//
// Loads are STRICT where the verdict cache's are tolerant: a verdict
// cache entry can shrug off corruption as a miss, but silently dropping a
// checkpoint record would resurface its candidate in another run with no
// record of the first — so the whole file carries an FNV checksum, and
// any defect (truncation, bit flips, a stale engine salt, a header that
// disagrees with the campaign's configuration) rejects the WHOLE file
// with a reason. The campaign then re-explores from scratch: corrupt
// state is never trusted, only discarded loudly (campaign.checkpoint_
// rejected counts it, CampaignResult::resume_note says why).
//
// Format (line-oriented, one record per line):
//
//   rcons-hunt v1
//   salt: rcons-hunt-v1|<engine salt>
//   box: values=3 ops=1 responses=2
//   max_n: 2
//   shards: 4
//   shard: 2
//   status: running | complete
//   cursor: 123
//   records: 2
//   r 2 1 2 5 a1b2c3d4e5f60718 2.1 1.1 1 v2o2r3:...
//   ...                      (V O R index hash disc.exact rec.exact
//                             readable canonical-key)
//   checksum: <hex64 over every preceding byte>
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/enumerate.hpp"
#include "hierarchy/consensus_number.hpp"

namespace rcons::campaign {

/// Bump when the walk order, record format, or profile semantics change;
/// the engine salt from the verdict cache is appended automatically, so
/// checker-semantics bumps invalidate checkpoints too.
inline constexpr const char* kCampaignSalt = "rcons-hunt-v1";

/// One profiled candidate: the globally-first genome spelling of its
/// canonical form, plus the computed profile. Because every shard walks
/// the full box and a canonical form belongs to exactly one shard, the
/// recorded GenomeId is layout-invariant — the same no matter how many
/// shards the campaign was split into.
struct ProfileRecord {
  GenomeId id;
  std::uint64_t canonical_hash = 0;
  std::string canonical_key;
  bool readable = false;
  hierarchy::Level discerning;
  hierarchy::Level recording;

  friend bool operator==(const ProfileRecord&, const ProfileRecord&) =
      default;
};

/// Everything a checkpoint file carries.
struct ShardCheckpoint {
  Box box;
  int max_n = 0;
  int shards = 1;
  int shard_index = 0;
  bool complete = false;
  /// Next walk position to process (everything before it is done).
  std::uint64_t cursor = 0;
  std::vector<ProfileRecord> records;
};

/// The checkpoint path for one shard: <dir>/shard-<I>-of-<K>.hunt.
std::string checkpoint_path(const std::string& directory, int shard_index,
                            int shards);

/// Serializes the checkpoint in the format above (including checksum).
std::string serialize_checkpoint(const ShardCheckpoint& checkpoint);

/// Atomically replaces `path` with the serialized checkpoint (unique temp
/// file + rename). Returns false (with *error set) on I/O failure.
bool write_checkpoint(const std::string& path,
                      const ShardCheckpoint& checkpoint, std::string* error);

struct CheckpointLoad {
  bool ok = false;
  /// Why the file was rejected (missing, truncated, checksum mismatch,
  /// stale salt, configuration mismatch, ...); empty when ok.
  std::string reason;
  ShardCheckpoint checkpoint;
};

/// Parses and integrity-checks one checkpoint file (checksum, salt,
/// grammar) without matching it against a campaign configuration. The
/// merge tool uses this form: it folds shards from ANY partitioning, so
/// the shard header is data there, not a contract.
CheckpointLoad read_checkpoint(const std::string& path);

/// As read_checkpoint, then validates against the campaign's own
/// configuration: a header that disagrees on box, max_n, shards, or
/// shard index is a rejection (resuming a shard under a different
/// partitioning would silently skip or duplicate candidates).
CheckpointLoad load_checkpoint(const std::string& path,
                               const ShardCheckpoint& expected);

/// Parses one serialized record line body (after the "r " tag); exposed
/// for the merge tool, which shares the record grammar.
bool parse_record(const std::string& line, ProfileRecord* out);

/// The record line for one profile (no trailing newline).
std::string render_record(const ProfileRecord& record);

}  // namespace rcons::campaign
