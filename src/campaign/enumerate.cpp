#include "campaign/enumerate.hpp"

#include "spec/builder.hpp"
#include "util/assert.hpp"

namespace rcons::campaign {

std::uint64_t cell_size(int values, int ops, int responses) {
  RCONS_CHECK(values >= 1 && ops >= 1 && responses >= 1);
  const std::uint64_t radix = static_cast<std::uint64_t>(responses) *
                              static_cast<std::uint64_t>(values);
  const int slots = values * ops;
  std::uint64_t size = 1;
  for (int s = 0; s < slots; ++s) {
    if (size > UINT64_MAX / radix) return 0;  // overflow: box too large
    size *= radix;
  }
  return size;
}

std::uint64_t box_size(const Box& box) {
  std::uint64_t total = 0;
  for (int v = 1; v <= box.max_values; ++v) {
    for (int o = 1; o <= box.max_ops; ++o) {
      for (int r = 1; r <= box.max_responses; ++r) {
        const std::uint64_t cell = cell_size(v, o, r);
        if (cell == 0 || total > UINT64_MAX - cell) return 0;
        total += cell;
      }
    }
  }
  return total;
}

spec::ObjectType instantiate_genome(const GenomeId& id) {
  RCONS_CHECK(id.index < cell_size(id.values, id.ops, id.responses) ||
              cell_size(id.values, id.ops, id.responses) == 0);
  spec::TypeBuilder b("hunt_v" + std::to_string(id.values) + "o" +
                      std::to_string(id.ops) + "r" +
                      std::to_string(id.responses) + "_i" +
                      std::to_string(id.index));
  for (int v = 0; v < id.values; ++v) b.value("v" + std::to_string(v));
  for (int o = 0; o < id.ops; ++o) b.op("o" + std::to_string(o));
  const std::uint64_t radix = static_cast<std::uint64_t>(id.responses) *
                              static_cast<std::uint64_t>(id.values);
  std::uint64_t rest = id.index;
  // Slot order is value-major ((v, o) with o fastest), digit 0 first, so
  // the cursor space is stable; this layout is part of the checkpoint
  // contract (see the header comment).
  for (int v = 0; v < id.values; ++v) {
    for (int o = 0; o < id.ops; ++o) {
      const std::uint64_t digit = rest % radix;
      rest /= radix;
      const int resp = static_cast<int>(digit %
                                        static_cast<std::uint64_t>(id.responses));
      const int next = static_cast<int>(digit /
                                        static_cast<std::uint64_t>(id.responses));
      b.on("v" + std::to_string(v), "o" + std::to_string(o))
          .then("v" + std::to_string(next))
          .returns("x" + std::to_string(resp));
    }
  }
  b.make_read_op("read");
  return b.build();
}

int shard_of(std::uint64_t canonical_hash, int shards) {
  RCONS_CHECK(shards >= 1);
  return static_cast<int>(canonical_hash %
                          static_cast<std::uint64_t>(shards));
}

void walk_box(const Box& box, std::uint64_t from_position,
              const std::function<bool(const Candidate&)>& fn) {
  RCONS_CHECK(box_size(box) != 0);
  std::uint64_t position = 0;
  for (int v = 1; v <= box.max_values; ++v) {
    for (int o = 1; o <= box.max_ops; ++o) {
      for (int r = 1; r <= box.max_responses; ++r) {
        const std::uint64_t cell = cell_size(v, o, r);
        if (position + cell <= from_position) {
          position += cell;  // whole cell behind the cursor
          continue;
        }
        std::uint64_t index = 0;
        if (from_position > position) {
          index = from_position - position;
          position = from_position;
        }
        for (; index < cell; ++index, ++position) {
          Candidate c;
          c.id = GenomeId{v, o, r, index};
          c.position = position;
          c.type = instantiate_genome(c.id);
          c.canon = reduction::canonicalize_type(c.type);
          if (!fn(c)) return;
        }
      }
    }
  }
}

}  // namespace rcons::campaign
