// Folding shard databases into one landscape table (tools/rcons_hunt_merge).
//
// Inputs are checkpoint files from any partitioning of the SAME campaign
// (identical box, max_n, and salt — a table of profiles is meaningless
// across different checker semantics or candidate spaces). Records
// deduplicate by canonical key; because the recorded genome id is the
// globally-first spelling of its form (see checkpoint.hpp), agreeing
// duplicates are bit-identical and merging the same shard twice is a
// no-op. DISAGREEING duplicates are a hard failure that prints both
// provenances (file + record): a conflict means two runs computed
// different verdicts for the same machine, and picking a winner silently
// would launder exactly the kind of bug this campaign exists to surface.
//
// The merged table is sorted by canonical key, so any partitioning of
// the same box merges to byte-identical output — the equality the
// campaign-resume CI job gates on.
#pragma once

#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"

namespace rcons::campaign {

struct MergeOutcome {
  /// False on unreadable/corrupt inputs, configuration mismatches, or
  /// verdict conflicts; `error` carries the reason (with both
  /// provenances, for conflicts).
  bool ok = false;
  std::string error;
  Box box;
  int max_n = 0;
  /// True only when every input shard had walked its whole box.
  bool all_complete = false;
  std::size_t inputs = 0;
  std::size_t input_records = 0;
  /// Deduplicated, sorted by canonical key.
  std::vector<ProfileRecord> records;
};

/// Loads and folds the given shard databases.
MergeOutcome merge_databases(const std::vector<std::string>& paths);

/// The merged database in checkpoint-record format (magic
/// "rcons-hunt-merged v1"; no cursor/shard lines — a merged table is not
/// resumable). Byte-identical across partitionings of the same campaign.
std::string serialize_merged(const MergeOutcome& merged);

/// Human summary: the (cons, rcons) histogram, gap census, and frontier
/// notes EXPERIMENTS.md E12 quotes.
std::string render_merged_text(const MergeOutcome& merged);

/// One JSON document with the same content plus the full record table.
std::string render_merged_json(const MergeOutcome& merged);

}  // namespace rcons::campaign
