#include "campaign/campaign.hpp"

#include <cstdio>
#include <unordered_set>

#include "analysis/static_bounds/static_bounds.hpp"
#include "trace/metrics.hpp"

namespace rcons::campaign {
namespace {

CampaignResult config_error(std::string message) {
  CampaignResult result;
  result.error = std::move(message);
  return result;
}

ProfileRecord profile_candidate(const Candidate& c,
                                const CampaignOptions& options) {
  hierarchy::ProfileOptions profile_options;
  profile_options.threads = options.threads;
  profile_options.mode = options.reduce
                             ? hierarchy::SymmetryMode::kAutomorphism
                             : hierarchy::SymmetryMode::kCanonical;
  profile_options.cache = options.cache;
  profile_options.backend = options.backend;
  analysis::BoundsReport bounds;
  if (options.use_bounds) {
    bounds = analysis::analyze_static_bounds(c.type);
    profile_options.bounds = &bounds;
  }
  const hierarchy::TypeProfile profile =
      hierarchy::compute_profile(c.type, options.max_n, profile_options);
  ProfileRecord record;
  record.id = c.id;
  record.canonical_hash = c.canon.hash;
  record.canonical_key = c.canon.key;
  record.readable = profile.readable;
  record.discerning = profile.discerning;
  record.recording = profile.recording;
  return record;
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  if (options.checkpoint_dir.empty()) {
    return config_error("hunt wants a checkpoint directory");
  }
  if (options.shards < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shards) {
    return config_error("hunt wants 0 <= shard < shards");
  }
  if (options.box.max_values < 1 || options.box.max_ops < 1 ||
      options.box.max_responses < 1) {
    return config_error("hunt wants a box with values/ops/responses >= 1");
  }
  if (options.max_n < 1) return config_error("hunt wants max_n >= 1");
  if (options.checkpoint_interval < 1) {
    return config_error("hunt wants a checkpoint interval >= 1");
  }
  const std::uint64_t total = box_size(options.box);
  if (total == 0) {
    return config_error("parameter box is too large to enumerate (cell "
                        "size overflows)");
  }

  auto& m = trace::metrics();
  trace::ScopedSpan span("campaign.hunt", options.shard_index);

  CampaignResult result;
  result.ok = true;
  result.db_path = checkpoint_path(options.checkpoint_dir,
                                   options.shard_index, options.shards);
  ShardCheckpoint& state = result.checkpoint;
  state.box = options.box;
  state.max_n = options.max_n;
  state.shards = options.shards;
  state.shard_index = options.shard_index;

  if (options.resume) {
    const CheckpointLoad load = load_checkpoint(result.db_path, state);
    if (load.ok) {
      state = load.checkpoint;
      result.resumed = true;
      m.add("campaign.resumed", 1);
    } else {
      // Never trust a defective snapshot: say why, count it, and
      // re-explore from scratch (the VerdictCache discipline, except the
      // whole file is the unit of rejection).
      result.resume_note = load.reason;
      m.add("campaign.checkpoint_rejected", 1);
      std::fprintf(stderr,
                   "rcons: hunt: discarding checkpoint %s (%s); "
                   "re-exploring shard %d from scratch\n",
                   result.db_path.c_str(), load.reason.c_str(),
                   options.shard_index);
    }
  }
  if (state.complete) {
    result.complete = true;
    return result;
  }

  // The dedupe set is exactly the canonical forms already recorded — a
  // candidate is profiled iff its form is new to this shard, so the set
  // rebuilds losslessly from the records on every resume.
  std::unordered_set<std::string> seen;
  seen.reserve(state.records.size() * 2 + 16);
  for (const ProfileRecord& r : state.records) seen.insert(r.canonical_key);

  std::string io_error;
  bool io_failed = false;
  bool budget_stopped = false;
  walk_box(options.box, state.cursor, [&](const Candidate& c) {
    result.visited += 1;
    m.add("campaign.visited", 1);
    if (shard_of(c.canon.hash, options.shards) != options.shard_index) {
      result.shard_skipped += 1;
      m.add("campaign.shard_skipped", 1);
    } else if (seen.count(c.canon.key) != 0) {
      result.isomorph_skipped += 1;
      m.add("campaign.isomorph_skipped", 1);
    } else {
      state.records.push_back(profile_candidate(c, options));
      seen.insert(c.canon.key);
      result.profiled += 1;
      m.add("campaign.profiled", 1);
    }
    state.cursor = c.position + 1;
    state.complete = state.cursor == total;

    const bool budget_hit =
        options.budget != 0 && result.profiled >= options.budget;
    const bool snapshot_due =
        result.visited % options.checkpoint_interval == 0;
    if (state.complete || budget_hit || snapshot_due) {
      if (!write_checkpoint(result.db_path, state, &io_error)) {
        io_failed = true;
        return false;
      }
      m.add("campaign.checkpoints", 1);
    }
    // The crash battery's kill hook runs AFTER the snapshot decision, so
    // a kill at candidate k observes exactly the snapshots a real crash
    // at that point would leave behind.
    if (options.after_candidate) options.after_candidate(result.visited);
    if (budget_hit && !state.complete) {
      budget_stopped = true;
      m.add("campaign.budget_stops", 1);
      return false;
    }
    return true;
  });
  if (io_failed) {
    result.ok = false;
    result.error = "checkpoint write failed: " + io_error;
    return result;
  }
  if (!state.complete && !budget_stopped) {
    // The walk ran to the end of the box without the cursor reaching
    // `total` — impossible by construction; guard anyway so a future
    // walk-order bug surfaces as a loud error, not a silent short DB.
    state.complete = state.cursor == total;
  }
  // A final snapshot always lands, even when the interval did not line
  // up (and for the degenerate "already past the end" resume).
  if (!write_checkpoint(result.db_path, state, &io_error)) {
    result.ok = false;
    result.error = "checkpoint write failed: " + io_error;
    return result;
  }
  m.add("campaign.checkpoints", 1);
  result.complete = state.complete;
  return result;
}

}  // namespace rcons::campaign
