// rcons-hunt: the checkpointable, sharded landscape campaign
// (DESIGN.md §15, EXPERIMENTS.md E12).
//
// ROADMAP: generalize the one-off X_4 hunt into a campaign that maps the
// (discerning, recording) landscape of small readable types. One
// invocation runs ONE shard of the box walk (enumerate.hpp): candidates
// whose canonical form hashes into the shard are deduplicated against
// the shard's already-profiled canonical forms and driven through the
// standard profile path — static bounds pre-verdict, verdict cache,
// symmetry reduction, interp or AOT backend — exactly the stack the CLI
// `profile` command runs, so every record is reproducible one-off.
// Progress persists as an atomic-rename checkpoint (checkpoint.hpp)
// every checkpoint_interval candidates, which a kill -9 can interrupt at
// any instant; --resume picks up from the snapshot and the final shard
// database comes out byte-identical to an uninterrupted run's.
//
// The shard databases from any partitioning fold into one deduplicated
// landscape table with tools/rcons_hunt_merge (merge.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/enumerate.hpp"
#include "exec/backend.hpp"
#include "reduction/verdict_cache.hpp"

namespace rcons::campaign {

struct CampaignOptions {
  Box box;
  int max_n = 3;
  int shards = 1;
  int shard_index = 0;
  /// Where the shard checkpoint/database lives. Required.
  std::string checkpoint_dir;
  /// Load the shard's checkpoint and continue from its cursor. Without
  /// this the campaign starts from position 0 (and overwrites any
  /// existing checkpoint at the first snapshot).
  bool resume = false;
  /// Stop (status "running", exit-3 semantics) after profiling this many
  /// candidates in THIS invocation; 0 = run the shard to completion.
  /// Lets long campaigns run in bounded slices.
  std::uint64_t budget = 0;
  /// Candidates visited between checkpoint snapshots. A final snapshot is
  /// always written, so a smaller interval only bounds re-done work after
  /// a crash, never correctness.
  std::uint64_t checkpoint_interval = 64;
  /// Engine knobs, with the same semantics as the CLI profile path.
  int threads = 1;
  bool reduce = true;
  bool use_bounds = true;
  exec::Backend backend = exec::Backend::kInterp;
  const reduction::VerdictCache* cache = nullptr;
  /// Test seam: called after every visited candidate with the number of
  /// candidates visited so far in this invocation (1-based). The crash
  /// battery's SIGKILL injection hangs off this hook.
  std::function<void(std::uint64_t visited)> after_candidate;
};

struct CampaignResult {
  /// False on a configuration error (error says why; nothing ran).
  bool ok = false;
  std::string error;
  /// True when the shard's walk reached the end of the box.
  bool complete = false;
  /// True when this invocation loaded a checkpoint and continued it.
  bool resumed = false;
  /// Why a checkpoint was NOT resumed (missing, corrupt, stale,
  /// mismatched); the campaign re-explored from scratch. Empty when the
  /// resume succeeded or was not requested.
  std::string resume_note;
  /// This invocation's walk counters (not lifetime totals).
  std::uint64_t visited = 0;
  std::uint64_t profiled = 0;
  std::uint64_t shard_skipped = 0;
  std::uint64_t isomorph_skipped = 0;
  /// The shard checkpoint file (also the shard database).
  std::string db_path;
  /// Final state, records in first-enumeration order.
  ShardCheckpoint checkpoint;
};

/// Runs one shard of the campaign. Deterministic: for a fixed
/// configuration the final checkpoint bytes are identical whatever the
/// interruption history, thread count, cache state, or backend.
CampaignResult run_campaign(const CampaignOptions& options);

}  // namespace rcons::campaign
