#include "campaign/checkpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "reduction/verdict_cache.hpp"
#include "util/hashing.hpp"
#include "util/numeric.hpp"
#include "util/strings.hpp"

namespace rcons::campaign {
namespace {

constexpr const char* kMagic = "rcons-hunt v1";

std::string salt_line() {
  return std::string(kCampaignSalt) + "|" + reduction::kEngineVersionSalt;
}

std::string hex64(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// FNV-1a over the serialized body, finalized with mix64 — the same
/// construction the verdict cache uses for file names. Not cryptographic:
/// the threat model is torn writes and media rot, not an adversary.
std::uint64_t body_checksum(const std::string& body) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : body) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

/// Strips "name: " and returns the rest, or nullopt on a prefix mismatch.
std::optional<std::string> field(const std::string& line, const char* name) {
  const std::string prefix = std::string(name) + ": ";
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  return line.substr(prefix.size());
}

std::string level_token(const hierarchy::Level& level) {
  return std::to_string(level.value) + "." + (level.exact ? "1" : "0");
}

bool parse_level_token(const std::string& token, hierarchy::Level* out) {
  const auto dot = token.find('.');
  if (dot == std::string::npos) return false;
  int value = 0;
  if (!util::parse_int_arg(token.substr(0, dot), 1, 1 << 20, &value)) {
    return false;
  }
  const std::string exact = token.substr(dot + 1);
  if (exact != "0" && exact != "1") return false;
  out->value = value;
  out->exact = exact == "1";
  return true;
}

}  // namespace

std::string checkpoint_path(const std::string& directory, int shard_index,
                            int shards) {
  return directory + "/shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shards) + ".hunt";
}

std::string render_record(const ProfileRecord& r) {
  return "r " + std::to_string(r.id.values) + " " +
         std::to_string(r.id.ops) + " " + std::to_string(r.id.responses) +
         " " + std::to_string(r.id.index) + " " + hex64(r.canonical_hash) +
         " " + level_token(r.discerning) + " " + level_token(r.recording) +
         " " + (r.readable ? "1" : "0") + " " + r.canonical_key;
}

bool parse_record(const std::string& line, ProfileRecord* out) {
  std::istringstream stream(line);
  std::string tag, hash_token, disc_token, rec_token, readable_token;
  long long values = 0, ops = 0, responses = 0;
  unsigned long long index = 0;
  if (!(stream >> tag >> values >> ops >> responses >> index >>
        hash_token >> disc_token >> rec_token >> readable_token)) {
    return false;
  }
  if (tag != "r" || values < 1 || ops < 1 || responses < 1) return false;
  std::string key;
  if (!(stream >> key) || key.empty()) return false;
  std::string extra;
  if (stream >> extra) return false;  // trailing junk is corruption
  std::uint64_t hash = 0;
  if (hash_token.size() != 16 ||
      !util::parse_hex64_arg(hash_token, &hash)) {
    return false;
  }
  out->id.values = static_cast<int>(values);
  out->id.ops = static_cast<int>(ops);
  out->id.responses = static_cast<int>(responses);
  out->id.index = index;
  out->canonical_hash = hash;
  out->canonical_key = key;
  if (!parse_level_token(disc_token, &out->discerning)) return false;
  if (!parse_level_token(rec_token, &out->recording)) return false;
  if (readable_token != "0" && readable_token != "1") return false;
  out->readable = readable_token == "1";
  return true;
}

std::string serialize_checkpoint(const ShardCheckpoint& c) {
  std::string body;
  body.reserve(128 + c.records.size() * 96);
  body += kMagic;
  body += "\nsalt: " + salt_line();
  body += "\nbox: values=" + std::to_string(c.box.max_values) +
          " ops=" + std::to_string(c.box.max_ops) +
          " responses=" + std::to_string(c.box.max_responses);
  body += "\nmax_n: " + std::to_string(c.max_n);
  body += "\nshards: " + std::to_string(c.shards);
  body += "\nshard: " + std::to_string(c.shard_index);
  body += std::string("\nstatus: ") + (c.complete ? "complete" : "running");
  body += "\ncursor: " + std::to_string(c.cursor);
  body += "\nrecords: " + std::to_string(c.records.size());
  body += "\n";
  for (const ProfileRecord& r : c.records) {
    body += render_record(r);
    body += "\n";
  }
  return body + "checksum: " + hex64(body_checksum(body)) + "\nend\n";
}

bool write_checkpoint(const std::string& path, const ShardCheckpoint& c,
                      std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
  // Unique temp per writer (pid + serial), exactly like the verdict
  // cache: concurrent shards never share a temp, and readers only ever
  // see a complete snapshot.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      *error = "cannot open temp file '" + tmp + "'";
      return false;
    }
    out << serialize_checkpoint(c);
    out.flush();
    if (!out) {
      *error = "short write to '" + tmp + "'";
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    *error = "rename to '" + path + "' failed: " + ec.message();
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

CheckpointLoad read_checkpoint(const std::string& path) {
  CheckpointLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    load.reason = "no checkpoint at '" + path + "'";
    return load;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // The checksum covers everything before its own line, so split there
  // first: a truncated tail (including a missing "end") fails here. The
  // final newline is part of the format — without this check a
  // one-byte-short file would still parse, and "every proper prefix is
  // rejected" is the contract the truncation sweep pins.
  const auto tail = text.rfind("\nchecksum: ");
  if (tail == std::string::npos || text.back() != '\n') {
    load.reason = "truncated checkpoint (no checksum line)";
    return load;
  }
  const std::string body = text.substr(0, tail + 1);
  std::istringstream tail_stream(text.substr(tail + 1));
  std::string checksum_line, end_line, past_end;
  std::getline(tail_stream, checksum_line);
  std::getline(tail_stream, end_line);
  const auto checksum = field(checksum_line, "checksum");
  std::uint64_t stored = 0;
  if (!checksum || !util::parse_hex64_arg(*checksum, &stored) ||
      end_line != "end" || std::getline(tail_stream, past_end)) {
    load.reason = "malformed checkpoint trailer";
    return load;
  }
  if (stored != body_checksum(body)) {
    load.reason = "checksum mismatch (truncated or corrupted)";
    return load;
  }

  std::istringstream lines(body);
  std::string line;
  auto next = [&](const char* what, std::string* out) {
    if (!std::getline(lines, line)) {
      load.reason = std::string("truncated checkpoint (missing ") + what +
                    ")";
      return false;
    }
    *out = line;
    return true;
  };
  std::string magic;
  if (!next("magic", &magic)) return load;
  if (magic != kMagic) {
    load.reason = "bad magic '" + magic + "'";
    return load;
  }
  std::string salt, box_line, max_n_line, shards_line, shard_line,
      status_line, cursor_line, records_line;
  if (!next("salt", &salt) || !next("box", &box_line) ||
      !next("max_n", &max_n_line) || !next("shards", &shards_line) ||
      !next("shard", &shard_line) || !next("status", &status_line) ||
      !next("cursor", &cursor_line) || !next("records", &records_line)) {
    return load;
  }
  const auto salt_value = field(salt, "salt");
  if (!salt_value) {
    load.reason = "malformed salt line";
    return load;
  }
  if (*salt_value != salt_line()) {
    load.reason = "stale salt '" + *salt_value + "' (want '" + salt_line() +
                  "')";
    return load;
  }

  ShardCheckpoint& c = load.checkpoint;
  const auto box_value = field(box_line, "box");
  const auto max_n_value = field(max_n_line, "max_n");
  const auto shards_value = field(shards_line, "shards");
  const auto shard_value = field(shard_line, "shard");
  const auto status_value = field(status_line, "status");
  const auto cursor_value = field(cursor_line, "cursor");
  const auto records_value = field(records_line, "records");
  if (!box_value || !max_n_value || !shards_value || !shard_value ||
      !status_value || !cursor_value || !records_value) {
    load.reason = "malformed header line";
    return load;
  }
  {
    std::istringstream box_stream(*box_value);
    std::string v_tok, o_tok, r_tok, extra;
    if (!(box_stream >> v_tok >> o_tok >> r_tok) ||
        (box_stream >> extra) || v_tok.rfind("values=", 0) != 0 ||
        o_tok.rfind("ops=", 0) != 0 || r_tok.rfind("responses=", 0) != 0 ||
        !util::parse_int_arg(v_tok.substr(7), 1, 64, &c.box.max_values) ||
        !util::parse_int_arg(o_tok.substr(4), 1, 64, &c.box.max_ops) ||
        !util::parse_int_arg(r_tok.substr(10), 1, 64,
                             &c.box.max_responses)) {
      load.reason = "malformed box line";
      return load;
    }
  }
  std::uint64_t cursor = 0;
  if (!util::parse_int_arg(*max_n_value, 1, 1 << 20, &c.max_n) ||
      !util::parse_int_arg(*shards_value, 1, 1 << 20, &c.shards) ||
      !util::parse_int_arg(*shard_value, 0, 1 << 20, &c.shard_index) ||
      !util::parse_uint64_arg(*cursor_value, &cursor)) {
    load.reason = "malformed header value";
    return load;
  }
  c.cursor = cursor;
  if (*status_value == "complete") {
    c.complete = true;
  } else if (*status_value == "running") {
    c.complete = false;
  } else {
    load.reason = "unknown status '" + *status_value + "'";
    return load;
  }

  std::uint64_t record_count = 0;
  if (!util::parse_uint64_arg(*records_value, &record_count) ||
      record_count > (1u << 26)) {
    load.reason = "malformed record count";
    return load;
  }
  c.records.reserve(static_cast<std::size_t>(record_count));
  for (std::uint64_t i = 0; i < record_count; ++i) {
    if (!std::getline(lines, line)) {
      load.reason = "truncated checkpoint (missing record " +
                    std::to_string(i) + ")";
      return load;
    }
    ProfileRecord record;
    if (!parse_record(line, &record)) {
      load.reason = "malformed record " + std::to_string(i);
      return load;
    }
    c.records.push_back(std::move(record));
  }
  if (std::getline(lines, line)) {
    load.reason = "trailing bytes after the records";
    return load;
  }
  load.ok = true;
  return load;
}

CheckpointLoad load_checkpoint(const std::string& path,
                               const ShardCheckpoint& expected) {
  CheckpointLoad load = read_checkpoint(path);
  if (!load.ok) return load;
  const ShardCheckpoint& c = load.checkpoint;

  // Configuration must MATCH, not merely parse: a checkpoint written for
  // a different partitioning or box walks a different cursor space, so
  // trusting its cursor would skip or duplicate candidates.
  if (c.box != expected.box) {
    load.ok = false;
    load.reason = "box mismatch (checkpoint was written for a different "
                  "parameter box)";
    return load;
  }
  if (c.max_n != expected.max_n) {
    load.ok = false;
    load.reason = "max_n mismatch (checkpoint: " + std::to_string(c.max_n) +
                  ", campaign: " + std::to_string(expected.max_n) + ")";
    return load;
  }
  if (c.shards != expected.shards || c.shard_index != expected.shard_index) {
    load.ok = false;
    load.reason = "shard mismatch (checkpoint: shard " +
                  std::to_string(c.shard_index) + " of " +
                  std::to_string(c.shards) + ", campaign: shard " +
                  std::to_string(expected.shard_index) + " of " +
                  std::to_string(expected.shards) + ")";
    return load;
  }
  return load;
}

}  // namespace rcons::campaign
