#include "campaign/merge.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/strings.hpp"

namespace rcons::campaign {
namespace {

std::string level_json(const hierarchy::Level& level) {
  return "{\"value\":" + std::to_string(level.value) +
         ",\"exact\":" + (level.exact ? "true" : "false") + "}";
}

std::string record_json(const ProfileRecord& r) {
  return "{\"genome\":{\"values\":" + std::to_string(r.id.values) +
         ",\"ops\":" + std::to_string(r.id.ops) +
         ",\"responses\":" + std::to_string(r.id.responses) +
         ",\"index\":" + std::to_string(r.id.index) +
         "},\"canonical_key\":\"" + json_escape(r.canonical_key) +
         "\",\"readable\":" + (r.readable ? "true" : "false") +
         ",\"discerning\":" + level_json(r.discerning) +
         ",\"recording\":" + level_json(r.recording) + "}";
}

/// (discerning, recording) pairs keyed for sorted iteration; only exact
/// verdicts are binned — an inexact ">=k" level is a lower bound, not a
/// point in the landscape.
using ProfileKey = std::pair<int, int>;

struct ProfileBin {
  std::size_t count = 0;
  /// The lexicographically-least canonical key in the bin — a stable,
  /// partitioning-invariant exemplar.
  std::string exemplar;
};

std::map<ProfileKey, ProfileBin> bin_profiles(
    const std::vector<ProfileRecord>& records, std::size_t* inexact) {
  std::map<ProfileKey, ProfileBin> bins;
  for (const ProfileRecord& r : records) {
    if (!r.discerning.exact || !r.recording.exact) {
      *inexact += 1;
      continue;
    }
    ProfileBin& bin = bins[{r.discerning.value, r.recording.value}];
    bin.count += 1;
    if (bin.exemplar.empty() || r.canonical_key < bin.exemplar) {
      bin.exemplar = r.canonical_key;
    }
  }
  return bins;
}

/// A profile is on the frontier when no other observed profile dominates
/// it (>= in both coordinates, > in one): these are the extreme
/// (cons, rcons) combinations the box realizes.
std::vector<ProfileKey> frontier_of(const std::map<ProfileKey, ProfileBin>& bins) {
  std::vector<ProfileKey> frontier;
  for (const auto& [key, bin] : bins) {
    bool dominated = false;
    for (const auto& [other, other_bin] : bins) {
      if (other != key && other.first >= key.first &&
          other.second >= key.second) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(key);
  }
  return frontier;
}

}  // namespace

MergeOutcome merge_databases(const std::vector<std::string>& paths) {
  MergeOutcome merged;
  if (paths.empty()) {
    merged.error = "merge wants at least one shard database";
    return merged;
  }
  // canonical key -> (record, provenance of its first appearance).
  std::unordered_map<std::string, std::pair<ProfileRecord, std::string>> table;
  bool first = true;
  for (const std::string& path : paths) {
    const CheckpointLoad load = read_checkpoint(path);
    if (!load.ok) {
      merged.error = "cannot merge '" + path + "': " + load.reason;
      return merged;
    }
    const ShardCheckpoint& shard = load.checkpoint;
    if (first) {
      merged.box = shard.box;
      merged.max_n = shard.max_n;
      merged.all_complete = true;
      first = false;
    } else if (shard.box != merged.box || shard.max_n != merged.max_n) {
      merged.error =
          "campaign mismatch: '" + path + "' was written for box values=" +
          std::to_string(shard.box.max_values) +
          " ops=" + std::to_string(shard.box.max_ops) +
          " responses=" + std::to_string(shard.box.max_responses) +
          " max_n=" + std::to_string(shard.max_n) +
          ", earlier inputs for box values=" +
          std::to_string(merged.box.max_values) +
          " ops=" + std::to_string(merged.box.max_ops) +
          " responses=" + std::to_string(merged.box.max_responses) +
          " max_n=" + std::to_string(merged.max_n);
      return merged;
    }
    merged.inputs += 1;
    merged.input_records += shard.records.size();
    if (!shard.complete) merged.all_complete = false;
    for (const ProfileRecord& record : shard.records) {
      auto [it, inserted] =
          table.try_emplace(record.canonical_key, record, path);
      if (inserted) continue;
      if (it->second.first == record) continue;  // agreeing duplicate
      merged.error = "verdict conflict for canonical form " +
                     record.canonical_key + ":\n  " + it->second.second +
                     ": " + render_record(it->second.first) + "\n  " + path +
                     ": " + render_record(record);
      return merged;
    }
  }
  merged.records.reserve(table.size());
  for (auto& [key, entry] : table) {
    merged.records.push_back(std::move(entry.first));
  }
  std::sort(merged.records.begin(), merged.records.end(),
            [](const ProfileRecord& a, const ProfileRecord& b) {
              return a.canonical_key < b.canonical_key;
            });
  merged.ok = true;
  return merged;
}

std::string serialize_merged(const MergeOutcome& merged) {
  // Reuses the checkpoint record grammar under a merged-table magic; the
  // sorted order makes the bytes partitioning-invariant.
  std::string out = "rcons-hunt-merged v1";
  out += "\nbox: values=" + std::to_string(merged.box.max_values) +
         " ops=" + std::to_string(merged.box.max_ops) +
         " responses=" + std::to_string(merged.box.max_responses);
  out += "\nmax_n: " + std::to_string(merged.max_n);
  out += std::string("\nstatus: ") +
         (merged.all_complete ? "complete" : "partial");
  out += "\nrecords: " + std::to_string(merged.records.size());
  out += "\n";
  for (const ProfileRecord& r : merged.records) {
    out += render_record(r);
    out += "\n";
  }
  out += "end\n";
  return out;
}

std::string render_merged_text(const MergeOutcome& merged) {
  std::ostringstream out;
  out << "merged " << merged.inputs << " shard database"
      << (merged.inputs == 1 ? "" : "s") << " (" << merged.input_records
      << " records, " << merged.records.size() << " distinct forms, "
      << (merged.all_complete ? "complete" : "PARTIAL — some shards "
                                             "unfinished")
      << ")\n";
  out << "box: values<=" << merged.box.max_values
      << " ops<=" << merged.box.max_ops
      << " responses<=" << merged.box.max_responses
      << "  max_n=" << merged.max_n << "\n";

  std::size_t inexact = 0;
  const auto bins = bin_profiles(merged.records, &inexact);
  out << "\n(cons, rcons) landscape:\n";
  for (const auto& [key, bin] : bins) {
    out << "  cons=" << key.first << " rcons=" << key.second << "  x"
        << bin.count;
    if (key.first != key.second) {
      out << "  (gap " << key.first - key.second << ")";
    }
    out << "  e.g. " << bin.exemplar << "\n";
  }
  if (inexact != 0) {
    out << "  (+" << inexact
        << " record(s) with only bounds at this max_n — not binned)\n";
  }

  std::map<int, std::size_t> gaps;
  for (const auto& [key, bin] : bins) {
    gaps[key.first - key.second] += bin.count;
  }
  out << "\ngap census (cons - rcons):\n";
  for (const auto& [gap, count] : gaps) {
    out << "  gap " << gap << ": " << count << " form"
        << (count == 1 ? "" : "s") << "\n";
  }

  out << "\nfrontier (undominated profiles):\n";
  for (const ProfileKey& key : frontier_of(bins)) {
    out << "  cons=" << key.first << " rcons=" << key.second << "\n";
  }
  return out.str();
}

std::string render_merged_json(const MergeOutcome& merged) {
  std::size_t inexact = 0;
  const auto bins = bin_profiles(merged.records, &inexact);
  std::string out = "{\"box\":{\"values\":" +
                    std::to_string(merged.box.max_values) +
                    ",\"ops\":" + std::to_string(merged.box.max_ops) +
                    ",\"responses\":" +
                    std::to_string(merged.box.max_responses) + "}";
  out += ",\"max_n\":" + std::to_string(merged.max_n);
  out += std::string(",\"complete\":") +
         (merged.all_complete ? "true" : "false");
  out += ",\"inputs\":" + std::to_string(merged.inputs);
  out += ",\"input_records\":" + std::to_string(merged.input_records);
  out += ",\"distinct_forms\":" + std::to_string(merged.records.size());
  out += ",\"inexact\":" + std::to_string(inexact);
  out += ",\"landscape\":[";
  bool comma = false;
  for (const auto& [key, bin] : bins) {
    if (comma) out += ",";
    comma = true;
    out += "{\"cons\":" + std::to_string(key.first) +
           ",\"rcons\":" + std::to_string(key.second) +
           ",\"count\":" + std::to_string(bin.count) + ",\"exemplar\":\"" +
           json_escape(bin.exemplar) + "\"}";
  }
  out += "],\"frontier\":[";
  comma = false;
  for (const ProfileKey& key : frontier_of(bins)) {
    if (comma) out += ",";
    comma = true;
    out += "{\"cons\":" + std::to_string(key.first) +
           ",\"rcons\":" + std::to_string(key.second) + "}";
  }
  out += "],\"records\":[";
  comma = false;
  for (const ProfileRecord& r : merged.records) {
    if (comma) out += ",";
    comma = true;
    out += record_json(r);
  }
  out += "]}";
  return out;
}

}  // namespace rcons::campaign
