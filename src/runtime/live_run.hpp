// Threaded execution of abstract protocols over live objects, with
// deterministic crash injection.
//
// Each OS thread plays one process of an exec::Protocol: it holds the
// volatile LocalState, applies the poised operation to the corresponding
// LiveObject (one atomic linearization per step, exactly the model's
// step granularity), and advances. A "crash" resets the LocalState to the
// process's initial state — the shared LiveObjects, being (simulated)
// non-volatile, keep their values — after which the thread simply keeps
// executing, i.e. recovers. Decisions are recorded durably the moment a
// process enters an output state, so an audit sees every value ever
// output, including by processes that crash immediately after deciding.
//
// The audit runs many rounds (fresh objects each round) and verifies
// agreement and validity on every round, which is experiment E7's live
// counterpart of the exhaustive model checking in experiments E4–E6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/protocol.hpp"
#include "util/rng.hpp"

namespace rcons::runtime {

struct LiveRunOptions {
  /// Probability that a process crashes before any given step.
  double crash_prob = 0.0;
  /// Upper bound on crashes per process per round (keeps runs finite even
  /// under high crash rates; the paper's budgets play the same role).
  int max_crashes_per_process = 64;
  std::uint64_t seed = 0x5eed;
  int rounds = 100;
  /// Derive inputs per round: round r gives process i input
  /// bit i of (r * kInputMix) — a cheap deterministic spread across input
  /// vectors; set fixed_inputs to override.
  std::vector<int> fixed_inputs;  // empty = derive per round
};

struct LiveRunResult {
  int rounds = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_decisions = 0;
  std::uint64_t pmem_persists = 0;
  int agreement_violations = 0;
  int validity_violations = 0;
  /// Description of the first violation, if any.
  std::string first_violation;

  bool ok() const {
    return agreement_violations == 0 && validity_violations == 0;
  }
};

/// Runs `protocol` live for options.rounds rounds and audits every round.
LiveRunResult run_live_audit(const exec::Protocol& protocol,
                             const LiveRunOptions& options);

}  // namespace rcons::runtime
