// Threaded execution of abstract protocols over live objects, with
// deterministic crash injection.
//
// Each OS thread plays one process of an exec::Protocol: it holds the
// volatile LocalState, applies the poised operation to the corresponding
// LiveObject (one atomic linearization per step, exactly the model's
// step granularity), and advances. A "crash" resets the LocalState to the
// process's initial state — the shared LiveObjects, being (simulated)
// non-volatile, keep their values — after which the thread simply keeps
// executing, i.e. recovers. Decisions are recorded durably the moment a
// process enters an output state, so an audit sees every value ever
// output, including by processes that crash immediately after deciding.
//
// The audit runs many rounds (fresh objects each round) and verifies
// agreement and validity on every round, which is experiment E7's live
// counterpart of the exhaustive model checking in experiments E4–E6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/protocol.hpp"
#include "runtime/pmem.hpp"
#include "util/rng.hpp"

namespace rcons::runtime {

struct LiveRunOptions {
  /// Probability that a process crashes before any given step.
  double crash_prob = 0.0;
  /// Upper bound on crashes per process per round (keeps runs finite even
  /// under high crash rates; the paper's budgets play the same role).
  int max_crashes_per_process = 64;
  std::uint64_t seed = 0x5eed;
  int rounds = 100;
  /// Derive inputs per round: round r gives process i input
  /// bit i of (r * kInputMix) — a cheap deterministic spread across input
  /// vectors; set fixed_inputs to override.
  std::vector<int> fixed_inputs;  // empty = derive per round
  /// Shadow-persistency mode for the round arenas. In strict mode a
  /// crash additionally drops the crashing process's unpersisted stores
  /// (relaxed exec actions); defaults to the RCONS_PMEM_STRICT
  /// environment switch so the whole suite can be re-run strict.
  bool strict_persistency = PersistentArena::strict_mode_from_env();
};

struct LiveRunResult {
  int rounds = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_decisions = 0;
  std::uint64_t pmem_persists = 0;
  /// Unpersisted stores reverted by strict-mode crash injection.
  std::uint64_t dropped_stores = 0;
  int agreement_violations = 0;
  int validity_violations = 0;
  /// Description of the first violation, if any.
  std::string first_violation;

  bool ok() const {
    return agreement_violations == 0 && validity_violations == 0;
  }
};

/// Runs `protocol` live for options.rounds rounds and audits every round.
LiveRunResult run_live_audit(const exec::Protocol& protocol,
                             const LiveRunOptions& options);

struct BoundaryCrashOptions {
  /// Strict shadow persistency for the run arenas (the audit is about
  /// persist boundaries, so this defaults on regardless of the
  /// environment).
  bool strict_persistency = true;
  /// Steps the other processes take inside a victim's open persist gap
  /// (between a relaxed store and the crash that drops it) — this is how
  /// an unpersisted value gets observed before it disappears.
  int interleave_steps = 2;
  /// Safety valve for protocols that stop terminating after a drop; an
  /// exhausted budget counts as a liveness violation.
  std::uint64_t max_steps_per_run = 100000;
  std::uint64_t seed = 0xb0a4d;
};

struct BoundaryCrashResult {
  int runs = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t dropped_stores = 0;
  int agreement_violations = 0;
  int validity_violations = 0;
  int liveness_violations = 0;  // step budget exhausted after a crash
  std::string first_violation;

  bool ok() const {
    return agreement_violations == 0 && validity_violations == 0 &&
           liveness_violations == 0;
  }
};

/// Deterministic, serialized crash-at-every-persist-boundary audit: for
/// every input pattern, every victim process, and every boundary index b,
/// replays a round-robin execution in which the victim crashes exactly at
/// its b-th persist boundary (immediately after its b-th step; if that
/// step was a relaxed store, the other processes first take
/// `interleave_steps` steps inside the open gap, then the store is
/// dropped). Agreement and validity are audited on every run. Unlike
/// run_live_audit this is single-threaded and schedule-exact, so drops
/// cannot race and every violation replays.
BoundaryCrashResult run_boundary_crash_audit(
    const exec::Protocol& protocol, const BoundaryCrashOptions& options = {});

}  // namespace rcons::runtime
