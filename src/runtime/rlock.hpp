// Recoverable mutual exclusion over the simulated NVM substrate.
//
// The paper's §1 situates recoverable consensus inside a broader line of
// work on recoverable synchronization, citing Golab & Ramaraju's
// recoverable mutual exclusion (PODC'16): locks whose acquire/release
// survive individual crash-recovery because the protocol's progress is
// recorded in non-volatile memory rather than in the (lost) local state.
//
// Two locks are provided:
//
//  * RecoverableTasLock — a test&set-style lock whose owner field carries
//    the holder's id. Recovery is trivial: a restarted process reads the
//    owner cell; if it names the process, the crash happened inside (or on
//    the way out of) the critical section and the process still holds the
//    lock. Unfair, but minimal.
//
//  * RecoverableTicketLock — a FIFO ticket lock with a persistent
//    per-process ticket slot. acquire() doubles as the recovery procedure:
//      - slot empty            -> draw a fresh ticket (persisted first);
//      - slot = t, serving = t -> we hold the lock (crash inside the CS);
//      - slot = t, serving < t -> resume waiting with the old ticket;
//      - slot = t, serving > t -> the pre-crash release had advanced
//                                 serving but not yet cleared the slot:
//                                 finish the release and start over.
//    release() advances serving BEFORE clearing the slot, which is what
//    makes the last case unambiguous.
//
// Both locks are *starvation-prone under crashes of waiters only in the
// sense the model demands*: a process that crashes while waiting resumes
// waiting on recovery, so the queue never stalls on it permanently as
// long as it keeps recovering (the same crash-recovery liveness shape as
// recoverable wait-freedom).
#pragma once

#include <cstdint>

#include "runtime/pmem.hpp"

namespace rcons::runtime {

/// Result of an acquire attempt (both locks are used with spinning
/// wrappers; try-steps keep the harness crash-injectable between steps).
enum class LockStep {
  kAcquired,      // we hold the lock (fresh acquisition or post-crash)
  kWaiting,       // not yet; call again
};

class RecoverableTasLock {
 public:
  RecoverableTasLock(PersistentArena& arena, int max_processes);

  /// One bounded attempt; crash-safe at every point. Doubles as recovery.
  LockStep try_acquire(int pid);

  /// Blocking helper: spins on try_acquire.
  void acquire(int pid);

  /// Releases the lock. RCONS_CHECKs ownership. Idempotent after release
  /// only via holds() (releasing a lock you do not hold is a bug).
  void release(int pid);

  /// Recovery query: does pid currently hold the lock?
  bool holds(int pid) const;

 private:
  static constexpr std::int64_t kFree = -1;
  PVar* owner_;
};

class RecoverableTicketLock {
 public:
  RecoverableTicketLock(PersistentArena& arena, int max_processes);

  LockStep try_acquire(int pid);
  void acquire(int pid);
  void release(int pid);
  bool holds(int pid) const;

 private:
  static constexpr std::int64_t kNoTicket = -1;
  PVar* next_ticket_;
  PVar* now_serving_;
  std::vector<PVar*> my_ticket_;  // per process, persistent
};

}  // namespace rcons::runtime
