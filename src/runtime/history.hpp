// Operation histories and linearizability checking.
//
// The live runtime claims its objects are linearizable; this module makes
// that claim testable. Threads record (invoke-timestamp, op, response,
// return-timestamp) tuples into a HistoryRecorder; is_linearizable then
// decides — exactly, by Wing & Gong's algorithm with memoized pruning —
// whether some total order of the operations (a) respects real time
// (an operation that returned before another was invoked precedes it) and
// (b) replays through the sequential specification with exactly the
// recorded responses.
//
// The check is exponential in the worst case; the tests keep histories to
// a few dozen overlapping operations, where the memoized search is
// instantaneous.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::runtime {

struct OpRecord {
  int thread = 0;
  spec::OpId op = 0;
  spec::ResponseId response = 0;
  std::uint64_t invoke_ts = 0;
  std::uint64_t return_ts = 0;
};

/// Thread-safe append-only history log with a global timestamp source.
class HistoryRecorder {
 public:
  /// Draws a fresh invoke timestamp.
  std::uint64_t begin() { return clock_.fetch_add(1) + 1; }

  /// Records a completed operation (return timestamp drawn internally).
  void finish(int thread, spec::OpId op, spec::ResponseId response,
              std::uint64_t invoke_ts) {
    const std::uint64_t ret = clock_.fetch_add(1) + 1;
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(OpRecord{thread, op, response, invoke_ts, ret});
  }

  std::vector<OpRecord> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(records_);
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::mutex mu_;
  std::vector<OpRecord> records_;
};

/// Exact linearizability check of `history` against the sequential
/// specification of `type` starting from `initial`. History size is
/// limited to 62 operations (bitmask-indexed memoization).
bool is_linearizable(const spec::ObjectType& type, spec::ValueId initial,
                     const std::vector<OpRecord>& history);

}  // namespace rcons::runtime
