#include "runtime/pmem.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

namespace rcons::runtime {

PVar* PersistentArena::allocate(std::int64_t initial) {
  cells_.push_back(std::make_unique<PVar>(initial, &stats_, strict_));
  return cells_.back().get();
}

bool PersistentArena::strict_mode_from_env() {
  const char* raw = std::getenv("RCONS_PMEM_STRICT");
  if (raw == nullptr) return false;
  std::string v(raw);
  for (char& c : v) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return !(v.empty() || v == "0" || v == "off" || v == "false" || v == "no");
}

}  // namespace rcons::runtime
