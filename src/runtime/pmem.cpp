#include "runtime/pmem.hpp"

namespace rcons::runtime {

PVar* PersistentArena::allocate(std::int64_t initial) {
  cells_.push_back(std::make_unique<PVar>(initial, &stats_));
  return cells_.back().get();
}

}  // namespace rcons::runtime
