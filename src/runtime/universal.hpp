// A recoverable wait-free universal construction with detectability.
//
// The paper's introduction leans on universality results for recoverable
// consensus: Berryhill–Golab–Tripunitara (simultaneous crashes) and
// Delporte-Gallet–Fatourou–Fauconnier–Ruppert [4] (individual crashes)
// show that objects with recoverable consensus number >= n plus registers
// implement every object, with DETECTABILITY: a process interrupted by a
// crash can tell on recovery whether its operation linearized and, if so,
// recover its response [Friedman et al., PPoPP'18].
//
// UniversalObject realizes this for any finite deterministic type over
// compare-and-swap cells (recoverable consensus number infinity — E1):
// operations are agreed into a persistent append-only log, one CAS cell
// per slot, each slot holding a packed (op, pid, seq) descriptor. To apply
// an operation a process scans the log: descriptors already present are
// replayed through the sequential specification; the first empty slot is
// claimed by CAS. The response is read off the replayed state at the
// operation's own slot.
//
//   * Linearizable: the log order is the linearization order; a slot is
//     claimed by exactly one descriptor (CAS).
//   * Recoverable wait-free: one pass over a bounded log per attempt.
//   * Detectable: the descriptor carries (pid, seq); a recovering process
//     re-invokes apply with the same seq and, if its pre-crash CAS had
//     succeeded, finds its own descriptor in the log and returns the
//     original response without linearizing a second application.
//
// The log is bounded (capacity fixed at construction), matching the
// bounded experiments here; a production variant would chain log blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/pmem.hpp"
#include "spec/object_type.hpp"

namespace rcons::runtime {

class UniversalObject {
 public:
  UniversalObject(const spec::ObjectType& type, spec::ValueId initial,
                  PersistentArena& arena, int capacity = 1024);

  const spec::ObjectType& type() const { return type_; }

  /// Applies `op` on behalf of operation id (pid, seq). Re-invoking with
  /// the same (pid, seq) — e.g. after a crash — is idempotent: it returns
  /// the original response and does not linearize a second application.
  /// pid in [0, 256), op in [0, 256), seq in [0, 2^47).
  spec::ResponseId apply(spec::OpId op, int pid, std::uint64_t seq);

  /// True iff operation (pid, seq) is already in the log (the detectability
  /// query: "did my interrupted operation linearize?").
  bool is_applied(int pid, std::uint64_t seq) const;

  /// The abstract value after every logged operation (a replay).
  spec::ValueId current_value() const;

  /// Number of operations linearized so far.
  int log_length() const;

  int capacity() const { return static_cast<int>(log_.size()); }

 private:
  static constexpr std::int64_t kEmpty = -1;

  static std::int64_t pack(spec::OpId op, int pid, std::uint64_t seq);
  static spec::OpId unpack_op(std::int64_t desc);
  static int unpack_pid(std::int64_t desc);
  static std::uint64_t unpack_seq(std::int64_t desc);

  const spec::ObjectType& type_;
  spec::ValueId initial_;
  std::vector<PVar*> log_;
};

}  // namespace rcons::runtime
