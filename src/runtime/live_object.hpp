// Linearizable live instances of finite deterministic types.
//
// An object's entire abstract value fits in one persistent cell, so a
// lock-free CAS retry loop gives a linearizable (indeed, wait-free-per-
// retry, lock-free overall) implementation of *any* type in the spec
// catalog: read the packed value, look up the deterministic transition,
// CAS the successor in. The linearization point of an operation is its
// successful CAS (or the load, for value-preserving operations, which skip
// the CAS entirely).
#pragma once

#include "runtime/history.hpp"
#include "runtime/pmem.hpp"
#include "spec/object_type.hpp"

namespace rcons::runtime {

class LiveObject {
 public:
  /// The object stores `initial` and transitions per `type` (which must
  /// outlive the object).
  LiveObject(const spec::ObjectType& type, spec::ValueId initial,
             PersistentArena& arena);

  const spec::ObjectType& type() const { return type_; }

  /// Atomically applies `op`; returns its response. `durable` (the
  /// default) issues the persist barrier that makes a value-changing
  /// application survive strict-mode crashes; `durable = false` leaves
  /// the new value volatile in strict mode (in non-strict mode the CAS
  /// itself persists, so the flag is behavior-neutral there).
  spec::ResponseId apply(spec::OpId op, bool durable = true);

  /// Like apply, but logs (invoke, op, response, return) into `recorder`
  /// for offline linearizability checking.
  spec::ResponseId apply_recorded(spec::OpId op, int thread,
                                  HistoryRecorder& recorder);

  /// Current value (linearizable read of the abstract state; distinct from
  /// any Read *operation* the type may or may not support).
  spec::ValueId raw_value() const;

  /// Crash injection (strict mode): reverts the cell to its persisted
  /// shadow unless a concurrent writer has replaced the volatile value.
  void crash_drop();

  /// The backing cell (for audits and persist-boundary harnesses).
  PVar* cell() { return cell_; }

 private:
  const spec::ObjectType& type_;
  PVar* cell_;
};

}  // namespace rcons::runtime
