#include "runtime/history.hpp"

#include <unordered_set>

#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace rcons::runtime {

namespace {

/// Wing-Gong search state: which operations have been linearized (bitmask)
/// plus the abstract value they produced. A (mask, value) pair that failed
/// once will fail again, so dead states are memoized.
struct Searcher {
  const spec::ObjectType& type;
  const std::vector<OpRecord>& history;
  std::unordered_set<std::uint64_t> dead;

  bool solve(std::uint64_t done_mask, spec::ValueId value) {
    const std::size_t n = history.size();
    if (done_mask == (n == 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << n) - 1)) {
      return true;
    }
    std::uint64_t key = done_mask;
    hash_combine(key, static_cast<std::uint64_t>(value));
    if (dead.contains(key)) return false;

    // The earliest return among not-yet-linearized operations bounds which
    // operations may linearize next: o is eligible iff no pending p
    // returned before o was invoked.
    std::uint64_t min_return = ~std::uint64_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      min_return = std::min(min_return, history[i].return_ts);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (done_mask & (std::uint64_t{1} << i)) continue;
      const OpRecord& rec = history[i];
      if (rec.invoke_ts > min_return) continue;  // some pending op precedes
      const spec::Effect& e = type.apply(value, rec.op);
      if (e.response != rec.response) continue;  // spec mismatch
      if (solve(done_mask | (std::uint64_t{1} << i), e.next_value)) {
        return true;
      }
    }
    dead.insert(key);
    return false;
  }
};

}  // namespace

bool is_linearizable(const spec::ObjectType& type, spec::ValueId initial,
                     const std::vector<OpRecord>& history) {
  RCONS_CHECK_MSG(history.size() <= 62,
                  "history too long for the bitmask search");
  for (const OpRecord& rec : history) {
    RCONS_CHECK(rec.invoke_ts < rec.return_ts);
  }
  Searcher searcher{type, history, {}};
  return searcher.solve(0, initial);
}

}  // namespace rcons::runtime
