// Simulated persistent main memory.
//
// The paper's model assumes shared objects live in non-volatile memory:
// they keep their values across crashes while per-process local state is
// lost. On real PMEM hardware (or PMDK), stores additionally require
// explicit flush/fence sequences to become durable; our simulated arena
// keeps that structure — pvar<T> cells with persist() barriers and
// durability counters — so the protocols are written against a
// PMDK-shaped API, while durability itself is trivially provided by
// process-shared DRAM (a documented substitution: the paper's model has no
// cache layer, so flush ordering cannot change any result here; the
// counters exist so experiments can report "persist operations per
// decision", a cost a real deployment would pay).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace rcons::runtime {

/// Statistics shared by all cells of one arena.
struct PmemStats {
  std::atomic<std::uint64_t> loads{0};
  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> persists{0};
  std::atomic<std::uint64_t> cas_attempts{0};

  void reset() {
    loads.store(0, std::memory_order_relaxed);
    stores.store(0, std::memory_order_relaxed);
    persists.store(0, std::memory_order_relaxed);
    cas_attempts.store(0, std::memory_order_relaxed);
  }
};

/// A persistent 64-bit cell. All accesses are sequentially consistent —
/// the model's steps are atomic operations on shared objects, and SC is
/// the faithful (if conservative) realization.
class PVar {
 public:
  explicit PVar(std::int64_t initial, PmemStats* stats)
      : value_(initial), stats_(stats) {}

  std::int64_t load() const {
    stats_->loads.fetch_add(1, std::memory_order_relaxed);
    return value_.load(std::memory_order_seq_cst);
  }

  void store(std::int64_t v) {
    stats_->stores.fetch_add(1, std::memory_order_relaxed);
    value_.store(v, std::memory_order_seq_cst);
    persist();
  }

  /// CAS with persist-on-success; returns the previous value and whether
  /// the exchange happened.
  std::pair<std::int64_t, bool> compare_exchange(std::int64_t expected,
                                                 std::int64_t desired) {
    stats_->cas_attempts.fetch_add(1, std::memory_order_relaxed);
    std::int64_t e = expected;
    const bool ok =
        value_.compare_exchange_strong(e, desired, std::memory_order_seq_cst);
    if (ok) persist();
    return {e, ok};
  }

  /// Atomic fetch-and-add with persist; returns the previous value.
  std::int64_t fetch_add(std::int64_t delta) {
    stats_->stores.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t old = value_.fetch_add(delta, std::memory_order_seq_cst);
    persist();
    return old;
  }

  /// Durability barrier (flush + fence on real PMEM; counted no-op here).
  void persist() { stats_->persists.fetch_add(1, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::int64_t> value_;
  PmemStats* stats_;
};

/// An arena of persistent cells with stable addresses.
class PersistentArena {
 public:
  PersistentArena() = default;
  PersistentArena(const PersistentArena&) = delete;
  PersistentArena& operator=(const PersistentArena&) = delete;

  /// Allocates a cell; the returned pointer is stable for the arena's life.
  PVar* allocate(std::int64_t initial);

  PmemStats& stats() { return stats_; }
  std::size_t cell_count() const { return cells_.size(); }

 private:
  PmemStats stats_;
  std::vector<std::unique_ptr<PVar>> cells_;
};

}  // namespace rcons::runtime
