// Simulated persistent main memory with a shadow-persistency model.
//
// The paper's model assumes shared objects live in non-volatile memory:
// they keep their values across crashes while per-process local state is
// lost. On real PMEM hardware (or PMDK), stores additionally require
// explicit flush/fence sequences to become durable; our simulated arena
// keeps that structure — PVar cells with persist() barriers and
// durability counters — so the protocols are written against a
// PMDK-shaped API.
//
// Each cell carries *two* values: the volatile front value (what loads and
// CASes observe) and a persisted shadow (what survives a crash). In the
// default, non-strict mode every durable primitive (store, successful
// compare_exchange, fetch_add) flushes the shadow as part of the
// operation, so crashes can never drop anything and the arena behaves
// exactly like the paper's cache-less model — a documented substitution.
// In *strict* mode (RCONS_PMEM_STRICT=1/ON, or an explicit constructor
// flag) only store() and an explicit persist() flush; relaxed stores and
// CAS/fetch_add results stay volatile until a barrier, and crash
// injection may call drop_unpersisted() to revert a cell to its shadow —
// making a missing persist barrier (lint rule RC004) reproducible as a
// real runtime failure.
//
// persist() counts toward PmemStats::persists only when it actually
// flushes a dirty cell; redundant barriers (and the internal flush a CAS
// retry loop performs once per *successful* exchange) are free, so the
// "persist operations per decision" experiments count durability work,
// not call sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace rcons::runtime {

/// Statistics shared by all cells of one arena.
struct PmemStats {
  std::atomic<std::uint64_t> loads{0};
  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> persists{0};
  std::atomic<std::uint64_t> cas_attempts{0};
  /// Unpersisted values reverted by crash injection (strict mode only).
  std::atomic<std::uint64_t> dropped{0};

  void reset() {
    loads.store(0, std::memory_order_relaxed);
    stores.store(0, std::memory_order_relaxed);
    persists.store(0, std::memory_order_relaxed);
    cas_attempts.store(0, std::memory_order_relaxed);
    dropped.store(0, std::memory_order_relaxed);
  }
};

/// A persistent 64-bit cell. All accesses are sequentially consistent —
/// the model's steps are atomic operations on shared objects, and SC is
/// the faithful (if conservative) realization.
class PVar {
 public:
  PVar(std::int64_t initial, PmemStats* stats, bool strict)
      : value_(initial), persisted_(initial), stats_(stats), strict_(strict) {}

  std::int64_t load() const {
    stats_->loads.fetch_add(1, std::memory_order_relaxed);
    return value_.load(std::memory_order_seq_cst);
  }

  /// Durable store: the value is persisted before the call returns (in
  /// both modes — this is the pre-split store() behavior).
  void store(std::int64_t v) {
    store_relaxed(v);
    persist();
  }

  /// Volatile store: updates the front value only. In non-strict mode a
  /// crash can still never drop it (crash injection never calls
  /// drop_unpersisted there), but the shadow stays stale until the next
  /// barrier, so persist-per-decision counts attribute the flush to the
  /// barrier that performs it.
  void store_relaxed(std::int64_t v) {
    stats_->stores.fetch_add(1, std::memory_order_relaxed);
    value_.store(v, std::memory_order_seq_cst);
  }

  /// CAS; returns the previous value and whether the exchange happened.
  /// Non-strict mode persists on success (pre-split behavior); strict
  /// mode leaves the new value volatile until an explicit persist().
  std::pair<std::int64_t, bool> compare_exchange(std::int64_t expected,
                                                 std::int64_t desired) {
    stats_->cas_attempts.fetch_add(1, std::memory_order_relaxed);
    std::int64_t e = expected;
    const bool ok =
        value_.compare_exchange_strong(e, desired, std::memory_order_seq_cst);
    if (ok && !strict_) persist();
    return {e, ok};
  }

  /// Atomic fetch-and-add; returns the previous value. Durable in
  /// non-strict mode, volatile-until-barrier in strict mode.
  std::int64_t fetch_add(std::int64_t delta) {
    stats_->stores.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t old = value_.fetch_add(delta, std::memory_order_seq_cst);
    if (!strict_) persist();
    return old;
  }

  /// Durability barrier (flush + fence on real PMEM): copies the front
  /// value into the shadow. Counted only when the cell was dirty.
  void persist() {
    const std::int64_t v = value_.load(std::memory_order_seq_cst);
    const std::int64_t prev = persisted_.exchange(v, std::memory_order_seq_cst);
    if (prev != v) stats_->persists.fetch_add(1, std::memory_order_relaxed);
  }

  /// Crash injection: reverts the front value to the shadow, but only if
  /// the front still holds `expected_volatile` (so a concurrent writer who
  /// has since replaced the value is never clobbered). Returns true if a
  /// value was dropped.
  bool drop_unpersisted(std::int64_t expected_volatile) {
    std::int64_t shadow = persisted_.load(std::memory_order_seq_cst);
    if (shadow == expected_volatile) return false;
    std::int64_t e = expected_volatile;
    if (!value_.compare_exchange_strong(e, shadow,
                                        std::memory_order_seq_cst)) {
      return false;
    }
    stats_->dropped.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// The value a crash would leave behind (test/audit accessor; not
  /// stats-counted).
  std::int64_t persisted_value() const {
    return persisted_.load(std::memory_order_seq_cst);
  }

  /// The front value without touching load counters (test accessor).
  std::int64_t volatile_value() const {
    return value_.load(std::memory_order_seq_cst);
  }

  bool strict() const { return strict_; }

 private:
  alignas(64) std::atomic<std::int64_t> value_;
  std::atomic<std::int64_t> persisted_;
  PmemStats* stats_;
  bool strict_;
};

/// An arena of persistent cells with stable addresses.
class PersistentArena {
 public:
  /// Default: strict mode from the RCONS_PMEM_STRICT environment variable
  /// (unset/0/off/false = non-strict).
  PersistentArena() : PersistentArena(strict_mode_from_env()) {}
  explicit PersistentArena(bool strict) : strict_(strict) {}
  PersistentArena(const PersistentArena&) = delete;
  PersistentArena& operator=(const PersistentArena&) = delete;

  /// Allocates a cell; the returned pointer is stable for the arena's life.
  PVar* allocate(std::int64_t initial);

  PmemStats& stats() { return stats_; }
  std::size_t cell_count() const { return cells_.size(); }
  bool strict() const { return strict_; }

  /// True iff RCONS_PMEM_STRICT is set to anything but 0/off/false/no.
  static bool strict_mode_from_env();

 private:
  PmemStats stats_;
  std::vector<std::unique_ptr<PVar>> cells_;
  bool strict_ = false;
};

}  // namespace rcons::runtime
