#include "runtime/universal.hpp"

#include "util/assert.hpp"

namespace rcons::runtime {

UniversalObject::UniversalObject(const spec::ObjectType& type,
                                 spec::ValueId initial,
                                 PersistentArena& arena, int capacity)
    : type_(type), initial_(initial) {
  RCONS_CHECK(capacity >= 1);
  RCONS_CHECK(initial >= 0 && initial < type.value_count());
  log_.reserve(static_cast<std::size_t>(capacity));
  for (int i = 0; i < capacity; ++i) {
    log_.push_back(arena.allocate(kEmpty));
  }
}

std::int64_t UniversalObject::pack(spec::OpId op, int pid,
                                   std::uint64_t seq) {
  RCONS_CHECK(op >= 0 && op < 256);
  RCONS_CHECK(pid >= 0 && pid < 256);
  RCONS_CHECK(seq < (std::uint64_t{1} << 47));
  return static_cast<std::int64_t>((seq << 16) |
                                   (static_cast<std::uint64_t>(pid) << 8) |
                                   static_cast<std::uint64_t>(op));
}

spec::OpId UniversalObject::unpack_op(std::int64_t desc) {
  return static_cast<spec::OpId>(desc & 0xff);
}

int UniversalObject::unpack_pid(std::int64_t desc) {
  return static_cast<int>((desc >> 8) & 0xff);
}

std::uint64_t UniversalObject::unpack_seq(std::int64_t desc) {
  return static_cast<std::uint64_t>(desc) >> 16;
}

spec::ResponseId UniversalObject::apply(spec::OpId op, int pid,
                                        std::uint64_t seq) {
  const std::int64_t mine = pack(op, pid, seq);
  spec::ValueId value = initial_;
  for (std::size_t slot = 0; slot < log_.size(); ++slot) {
    std::int64_t desc = log_[slot]->load();
    if (desc == kEmpty) {
      // Claim the first free slot. On failure another descriptor landed
      // here first; fall through and replay it.
      const auto [prev, ok] = log_[slot]->compare_exchange(kEmpty, mine);
      // Flush the slot whether we claimed it or lost the race: a
      // descriptor must be durable before anyone replays past it, or a
      // strict-mode crash could rewrite linearized history. Dirty-gated,
      // so this is free once the slot is persisted.
      log_[slot]->persist();
      desc = ok ? mine : prev;
    }
    if (desc == mine) {
      // Our operation is linearized at this slot (either we just claimed
      // it, or a pre-crash invocation did — detectability). The response
      // is determined by the replayed state.
      return type_.apply(value, op).response;
    }
    value = type_.apply(value, unpack_op(desc)).next_value;
  }
  RCONS_CHECK_MSG(false, "universal log full (capacity ", log_.size(), ")");
  return 0;  // unreachable
}

bool UniversalObject::is_applied(int pid, std::uint64_t seq) const {
  for (const PVar* cell : log_) {
    const std::int64_t desc = cell->load();
    if (desc == kEmpty) return false;  // log is prefix-filled
    if (unpack_pid(desc) == pid && unpack_seq(desc) == seq) return true;
  }
  return false;
}

spec::ValueId UniversalObject::current_value() const {
  spec::ValueId value = initial_;
  for (const PVar* cell : log_) {
    const std::int64_t desc = cell->load();
    if (desc == kEmpty) break;
    value = type_.apply(value, unpack_op(desc)).next_value;
  }
  return value;
}

int UniversalObject::log_length() const {
  int length = 0;
  for (const PVar* cell : log_) {
    if (cell->load() == kEmpty) break;
    ++length;
  }
  return length;
}

}  // namespace rcons::runtime
