#include "runtime/rlock.hpp"

#include <thread>

#include "util/assert.hpp"

namespace rcons::runtime {

RecoverableTasLock::RecoverableTasLock(PersistentArena& arena,
                                       int max_processes)
    : owner_(arena.allocate(kFree)) {
  RCONS_CHECK(max_processes >= 1);
}

LockStep RecoverableTasLock::try_acquire(int pid) {
  const std::int64_t current = owner_->load();
  if (current == pid) {
    // Recovery case: we already held the lock when we crashed.
    return LockStep::kAcquired;
  }
  if (current == kFree) {
    const auto [prev, ok] = owner_->compare_exchange(kFree, pid);
    // Ownership must be durable before the critical section starts, or a
    // strict-mode crash would free a lock its holder still believes it
    // owns (the recovery case above depends on the persisted owner).
    if (ok) owner_->persist();
    if (ok || prev == pid) return LockStep::kAcquired;
  }
  return LockStep::kWaiting;
}

void RecoverableTasLock::acquire(int pid) {
  while (try_acquire(pid) != LockStep::kAcquired) {
    std::this_thread::yield();
  }
}

void RecoverableTasLock::release(int pid) {
  RCONS_CHECK_MSG(owner_->load() == pid, "release by non-owner p", pid);
  owner_->store(kFree);
}

bool RecoverableTasLock::holds(int pid) const {
  return owner_->load() == pid;
}

RecoverableTicketLock::RecoverableTicketLock(PersistentArena& arena,
                                             int max_processes)
    : next_ticket_(arena.allocate(0)), now_serving_(arena.allocate(0)) {
  RCONS_CHECK(max_processes >= 1);
  my_ticket_.reserve(static_cast<std::size_t>(max_processes));
  for (int i = 0; i < max_processes; ++i) {
    my_ticket_.push_back(arena.allocate(kNoTicket));
  }
}

LockStep RecoverableTicketLock::try_acquire(int pid) {
  RCONS_CHECK(pid >= 0 &&
              pid < static_cast<int>(my_ticket_.size()));
  PVar* slot = my_ticket_[static_cast<std::size_t>(pid)];
  std::int64_t ticket = slot->load();
  if (ticket == kNoTicket) {
    // Fresh acquisition: persist the ticket BEFORE it can be served, so a
    // crash right after the draw still finds it in the slot.
    ticket = next_ticket_->fetch_add(1);
    // The draw itself must be durable: a strict-mode crash that dropped
    // the counter bump would hand the same ticket out twice.
    next_ticket_->persist();
    slot->store(ticket);
  }
  const std::int64_t serving = now_serving_->load();
  if (serving == ticket) return LockStep::kAcquired;
  if (serving > ticket) {
    // Our pre-crash release advanced serving but had not yet cleared the
    // slot. Finish the release and report "not acquired" — the caller
    // re-enters with a fresh ticket on the next attempt.
    slot->store(kNoTicket);
    return LockStep::kWaiting;
  }
  return LockStep::kWaiting;
}

void RecoverableTicketLock::acquire(int pid) {
  while (try_acquire(pid) != LockStep::kAcquired) {
    std::this_thread::yield();
  }
}

void RecoverableTicketLock::release(int pid) {
  RCONS_CHECK(pid >= 0 &&
              pid < static_cast<int>(my_ticket_.size()));
  PVar* slot = my_ticket_[static_cast<std::size_t>(pid)];
  const std::int64_t ticket = slot->load();
  RCONS_CHECK_MSG(ticket != kNoTicket && now_serving_->load() == ticket,
                  "release by non-holder p", pid);
  // Order matters for recovery: advance serving FIRST, then clear the
  // slot; a crash in between is detected by serving > ticket.
  now_serving_->store(ticket + 1);
  slot->store(kNoTicket);
}

bool RecoverableTicketLock::holds(int pid) const {
  const std::int64_t ticket =
      my_ticket_[static_cast<std::size_t>(pid)]->load();
  return ticket != kNoTicket && now_serving_->load() == ticket;
}

}  // namespace rcons::runtime
