#include "runtime/live_object.hpp"

#include "util/assert.hpp"

namespace rcons::runtime {

LiveObject::LiveObject(const spec::ObjectType& type, spec::ValueId initial,
                       PersistentArena& arena)
    : type_(type), cell_(arena.allocate(initial)) {
  RCONS_CHECK(initial >= 0 && initial < type.value_count());
}

spec::ResponseId LiveObject::apply(spec::OpId op, bool durable) {
  std::int64_t current = cell_->load();
  while (true) {
    const spec::Effect& e =
        type_.apply(static_cast<spec::ValueId>(current), op);
    if (e.next_value == static_cast<spec::ValueId>(current)) {
      // Value-preserving application: the load is the linearization point.
      return e.response;
    }
    const auto [prev, ok] = cell_->compare_exchange(current, e.next_value);
    if (ok) {
      // The barrier is dirty-gated, so in non-strict mode (where the CAS
      // already persisted) this costs nothing extra.
      if (durable) cell_->persist();
      return e.response;
    }
    current = prev;  // lost a race; retry against the value that beat us
  }
}

spec::ResponseId LiveObject::apply_recorded(spec::OpId op, int thread,
                                            HistoryRecorder& recorder) {
  const std::uint64_t invoke_ts = recorder.begin();
  const spec::ResponseId response = apply(op);
  recorder.finish(thread, op, response, invoke_ts);
  return response;
}

spec::ValueId LiveObject::raw_value() const {
  return static_cast<spec::ValueId>(cell_->load());
}

void LiveObject::crash_drop() {
  cell_->drop_unpersisted(cell_->volatile_value());
}

}  // namespace rcons::runtime
