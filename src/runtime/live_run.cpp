#include "runtime/live_run.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "runtime/live_object.hpp"
#include "runtime/pmem.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace rcons::runtime {

namespace {

struct RoundOutcome {
  std::vector<int> decisions;  // every value output this round (any process)
  std::uint64_t steps = 0;
  std::uint64_t crashes = 0;
};

/// One thread body: play process `pid` until it decides (staying decided
/// is the model's no-op loop, so we stop there) or exhausts its crash
/// allowance and then decides crash-free.
void play_process(const exec::Protocol& protocol, exec::ProcessId pid,
                  int input, std::vector<LiveObject>& objects,
                  const LiveRunOptions& options, std::uint64_t round_seed,
                  RoundOutcome& outcome, std::mutex& outcome_mu,
                  trace::TraceBuffer* trace_buf) {
  // Per-worker buffer (or disabled): live threads never share a sink. The
  // coordinator merges the buffers in pid order after the joins. Live
  // events carry no state hash — the runtime has no instantaneous global
  // snapshot to hash without serializing the very races it exists to run.
  trace::ScopedSink trace_sink(trace_buf);
  Xoshiro256 rng(round_seed ^ (0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(pid + 1)));
  exec::LocalState local = protocol.initial_state(pid, input);
  int crashes = 0;
  std::uint64_t steps = 0;
  // Objects this process wrote without a persist barrier (relaxed exec
  // actions in strict mode). A crash drops them: each cell reverts to its
  // persisted shadow unless someone has since replaced the value. Entries
  // for cells a later durable action flushed are harmless (drop no-ops on
  // a clean cell).
  std::vector<LiveObject*> dirty;
  const auto crash = [&] {
    for (LiveObject* obj : dirty) {
      obj->crash_drop();
      RCONS_TRACE(trace::TraceEvent{
          trace::Kind::kDrop, pid,
          static_cast<std::int32_t>(obj - objects.data()), -1, -1, -1, 0,
          -1});
    }
    dirty.clear();
    local = protocol.initial_state(pid, input);
    ++crashes;
    RCONS_TRACE(
        trace::TraceEvent{trace::Kind::kCrash, pid, -1, -1, -1, -1, 0, -1});
    RCONS_TRACE(
        trace::TraceEvent{trace::Kind::kRecover, pid, -1, -1, -1, -1, 0, -1});
  };

  while (true) {
    const exec::Action action = protocol.poised(pid, local);
    if (action.kind == exec::Action::Kind::kDecided) {
      {
        std::lock_guard<std::mutex> lock(outcome_mu);
        outcome.decisions.push_back(action.decision);
      }
      RCONS_TRACE(trace::TraceEvent{trace::Kind::kDecide, pid, -1, -1, -1,
                                    action.decision, 0, -1});
      // A process can crash right after deciding, before anything durable
      // records its output; on recovery it re-runs the whole algorithm.
      // Correct recoverable algorithms re-decide the same value; broken
      // ones (tas_racing) flip — which is what the audit is for.
      if (crashes < options.max_crashes_per_process &&
          rng.chance(options.crash_prob)) {
        crash();
        continue;
      }
      std::lock_guard<std::mutex> lock(outcome_mu);
      outcome.steps += steps;
      outcome.crashes += static_cast<std::uint64_t>(crashes);
      return;
    }
    if (crashes < options.max_crashes_per_process &&
        rng.chance(options.crash_prob)) {
      // Crash: volatile state lost, shared objects retained (minus any
      // unpersisted stores in strict mode).
      crash();
      continue;
    }
    LiveObject& obj = objects[static_cast<std::size_t>(action.object)];
    const spec::ResponseId response = obj.apply(action.op, action.durable);
    if (!action.durable) dirty.push_back(&obj);
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kStep, pid, action.object,
                                  action.op, response, -1, 0, -1});
    if (action.durable) {
      RCONS_TRACE(trace::TraceEvent{trace::Kind::kPersist, pid, action.object,
                                    -1, -1, -1, 0, -1});
    }
    local = protocol.advance(pid, local, response);
    ++steps;
  }
}

}  // namespace

LiveRunResult run_live_audit(const exec::Protocol& protocol,
                             const LiveRunOptions& options) {
  const int n = protocol.process_count();
  if (!options.fixed_inputs.empty()) {
    RCONS_CHECK(static_cast<int>(options.fixed_inputs.size()) == n);
  }

  LiveRunResult result;
  for (int round = 0; round < options.rounds; ++round) {
    // Fresh persistent heap + objects per round.
    PersistentArena arena(options.strict_persistency);
    std::vector<LiveObject> objects;
    objects.reserve(static_cast<std::size_t>(protocol.object_count()));
    for (exec::ObjectId obj = 0; obj < protocol.object_count(); ++obj) {
      objects.emplace_back(protocol.object_type(obj),
                           protocol.initial_value(obj), arena);
    }

    std::vector<int> inputs(static_cast<std::size_t>(n));
    if (!options.fixed_inputs.empty()) {
      inputs = options.fixed_inputs;
    } else {
      // Spread deterministically over input vectors round by round.
      const unsigned pattern =
          static_cast<unsigned>((round * 2654435761u) >> 16) |
          static_cast<unsigned>(round);
      for (int i = 0; i < n; ++i) {
        inputs[static_cast<std::size_t>(i)] =
            static_cast<int>((pattern >> i) & 1u);
      }
    }

    RoundOutcome outcome;
    std::mutex outcome_mu;
    const std::uint64_t round_seed =
        options.seed + 0x100000001b3ULL * static_cast<std::uint64_t>(round);
    // When the caller installed a trace sink, each worker gets a private
    // buffer; the merge below is in pid order, so the caller's stream is
    // grouped deterministically by process (event order WITHIN a process
    // is its program order; cross-process interleaving is not recorded —
    // it is exactly what the live runtime leaves to the hardware).
    trace::TraceBuffer* parent_sink = trace::thread_sink();
    std::vector<trace::TraceBuffer> worker_traces(
        parent_sink != nullptr ? static_cast<std::size_t>(n) : 0);
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(n));
      for (int pid = 0; pid < n; ++pid) {
        threads.emplace_back(play_process, std::cref(protocol), pid,
                             inputs[static_cast<std::size_t>(pid)],
                             std::ref(objects), std::cref(options), round_seed,
                             std::ref(outcome), std::ref(outcome_mu),
                             parent_sink != nullptr
                                 ? &worker_traces[static_cast<std::size_t>(pid)]
                                 : nullptr);
      }
      for (auto& t : threads) t.join();
    }
    if (parent_sink != nullptr) {
      for (const trace::TraceBuffer& buf : worker_traces) {
        parent_sink->merge_from(buf);
      }
    }

    result.rounds += 1;
    result.total_steps += outcome.steps;
    result.total_crashes += outcome.crashes;
    result.total_decisions += outcome.decisions.size();
    result.pmem_persists +=
        arena.stats().persists.load(std::memory_order_relaxed);
    result.dropped_stores +=
        arena.stats().dropped.load(std::memory_order_relaxed);

    // Audit: all outputs equal; every output is someone's input.
    unsigned input_mask = 0;
    for (int v : inputs) input_mask |= 1u << v;
    unsigned output_mask = 0;
    for (int v : outcome.decisions) output_mask |= 1u << v;
    if (output_mask == 0b11u) {
      result.agreement_violations += 1;
      if (result.first_violation.empty()) {
        std::ostringstream oss;
        oss << "round " << round << ": both 0 and 1 decided (inputs:";
        for (int v : inputs) oss << " " << v;
        oss << ")";
        result.first_violation = oss.str();
      }
    }
    if ((output_mask & ~input_mask) != 0) {
      result.validity_violations += 1;
      if (result.first_violation.empty()) {
        result.first_violation =
            "round " + std::to_string(round) + ": output not an input";
      }
    }
  }
  return result;
}

namespace {

/// One serialized boundary-crash run: round-robin schedule, `victim`
/// crashes exactly at its persist boundary `b` (after completing its
/// (b+1)-th invoke, or at its output state when b equals its invoke
/// count). Returns false if the victim decided and the boundary was never
/// reached (no more boundaries to test for this victim).
bool boundary_run(const exec::Protocol& protocol,
                  const std::vector<int>& inputs, int victim, int b,
                  const BoundaryCrashOptions& options,
                  BoundaryCrashResult& result) {
  const int n = protocol.process_count();
  PersistentArena arena(options.strict_persistency);
  std::vector<LiveObject> objects;
  objects.reserve(static_cast<std::size_t>(protocol.object_count()));
  for (exec::ObjectId obj = 0; obj < protocol.object_count(); ++obj) {
    objects.emplace_back(protocol.object_type(obj),
                         protocol.initial_value(obj), arena);
  }

  std::vector<exec::LocalState> locals;
  for (int pid = 0; pid < n; ++pid) {
    locals.push_back(
        protocol.initial_state(pid, inputs[static_cast<std::size_t>(pid)]));
  }
  std::vector<bool> recorded(static_cast<std::size_t>(n), false);
  std::vector<int> decisions;
  std::vector<LiveObject*> victim_dirty;
  int victim_invokes = 0;
  bool crash_fired = false;
  int gap_countdown = -1;  // >= 0: victim crash pending after N other-steps
  std::uint64_t steps = 0;
  std::uint64_t crashes = 0;

  const auto fire_crash = [&] {
    for (LiveObject* obj : victim_dirty) {
      obj->crash_drop();
      RCONS_TRACE(trace::TraceEvent{
          trace::Kind::kDrop, victim,
          static_cast<std::int32_t>(obj - objects.data()), -1, -1, -1, 0,
          -1});
    }
    victim_dirty.clear();
    locals[static_cast<std::size_t>(victim)] = protocol.initial_state(
        victim, inputs[static_cast<std::size_t>(victim)]);
    recorded[static_cast<std::size_t>(victim)] = false;
    crash_fired = true;
    gap_countdown = -1;
    ++crashes;
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kCrash, victim, -1, -1, -1, -1,
                                  0, -1});
    RCONS_TRACE(trace::TraceEvent{trace::Kind::kRecover, victim, -1, -1, -1,
                                  -1, 0, -1});
  };

  while (true) {
    if (steps > options.max_steps_per_run) {
      result.liveness_violations += 1;
      if (result.first_violation.empty()) {
        result.first_violation = "victim " + std::to_string(victim) +
                                 ", boundary " + std::to_string(b) +
                                 ": step budget exhausted (no termination)";
      }
      break;
    }
    bool all_done = true;
    bool others_active = false;
    for (int pid = 0; pid < n; ++pid) {
      const std::size_t p = static_cast<std::size_t>(pid);
      const exec::Action action = protocol.poised(pid, locals[p]);
      const bool done = action.kind == exec::Action::Kind::kDecided &&
                        recorded[p] &&
                        (pid != victim || crash_fired || gap_countdown < 0);
      if (!done) all_done = false;
      if (pid != victim && action.kind != exec::Action::Kind::kDecided) {
        others_active = true;
      }
    }
    // The boundary can be unreachable (victim decided in fewer steps).
    if (all_done && !crash_fired && gap_countdown < 0 &&
        victim_invokes < b) {
      break;
    }
    if (all_done && gap_countdown < 0) break;

    for (int pid = 0; pid < n; ++pid) {
      const std::size_t p = static_cast<std::size_t>(pid);
      if (pid == victim && gap_countdown >= 0) {
        // Inside the open persist gap: the victim is about to crash; it
        // takes no steps, and the crash fires once the others had their
        // look (or have nothing left to do).
        if (gap_countdown == 0 || !others_active) fire_crash();
        continue;
      }
      const exec::Action action = protocol.poised(pid, locals[p]);
      if (action.kind == exec::Action::Kind::kDecided) {
        if (!recorded[p]) {
          recorded[p] = true;
          decisions.push_back(action.decision);
          RCONS_TRACE(trace::TraceEvent{trace::Kind::kDecide, pid, -1, -1, -1,
                                        action.decision, 0, -1});
        }
        // Crash exactly at the output boundary.
        if (pid == victim && !crash_fired && victim_invokes == b) {
          fire_crash();
        }
        continue;
      }
      LiveObject& obj = objects[static_cast<std::size_t>(action.object)];
      const spec::ResponseId response = obj.apply(action.op, action.durable);
      if (pid == victim && !action.durable) victim_dirty.push_back(&obj);
      RCONS_TRACE(trace::TraceEvent{trace::Kind::kStep, pid, action.object,
                                    action.op, response, -1, 0, -1});
      if (action.durable) {
        RCONS_TRACE(trace::TraceEvent{trace::Kind::kPersist, pid,
                                      action.object, -1, -1, -1, 0, -1});
      }
      locals[p] = protocol.advance(pid, locals[p], response);
      ++steps;
      if (pid != victim && gap_countdown > 0) --gap_countdown;
      if (pid == victim) {
        ++victim_invokes;
        if (!crash_fired && victim_invokes == b + 1) {
          if (action.durable) {
            // Durable steps persist atomically; the boundary crash lands
            // right after the completed step.
            fire_crash();
          } else {
            // Relaxed store: leave the gap open so the other processes
            // can observe the unpersisted value before it is dropped.
            gap_countdown = options.interleave_steps;
          }
        }
      }
    }
  }

  result.runs += 1;
  result.total_steps += steps;
  result.total_crashes += crashes;
  result.dropped_stores +=
      arena.stats().dropped.load(std::memory_order_relaxed);

  unsigned input_mask = 0;
  for (int v : inputs) input_mask |= 1u << v;
  unsigned output_mask = 0;
  for (int v : decisions) output_mask |= 1u << v;
  if (output_mask == 0b11u) {
    result.agreement_violations += 1;
    if (result.first_violation.empty()) {
      std::ostringstream oss;
      oss << "victim " << victim << ", boundary " << b
          << ": both 0 and 1 decided (inputs:";
      for (int v : inputs) oss << " " << v;
      oss << ")";
      result.first_violation = oss.str();
    }
  }
  if ((output_mask & ~input_mask) != 0) {
    result.validity_violations += 1;
    if (result.first_violation.empty()) {
      result.first_violation = "victim " + std::to_string(victim) +
                               ", boundary " + std::to_string(b) +
                               ": output not an input";
    }
  }
  return crash_fired;
}

}  // namespace

BoundaryCrashResult run_boundary_crash_audit(
    const exec::Protocol& protocol, const BoundaryCrashOptions& options) {
  const int n = protocol.process_count();
  BoundaryCrashResult result;

  std::vector<std::vector<int>> patterns;
  if (n <= 4) {
    for (unsigned bits = 0; bits < (1u << n); ++bits) {
      std::vector<int> inputs(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        inputs[static_cast<std::size_t>(i)] =
            static_cast<int>((bits >> i) & 1u);
      }
      patterns.push_back(std::move(inputs));
    }
  } else {
    Xoshiro256 rng(options.seed);
    for (int k = 0; k < 16; ++k) {
      std::vector<int> inputs(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        inputs[static_cast<std::size_t>(i)] =
            static_cast<int>(rng.next() & 1u);
      }
      patterns.push_back(std::move(inputs));
    }
  }

  for (const std::vector<int>& inputs : patterns) {
    for (int victim = 0; victim < n; ++victim) {
      // b walks the victim's persist boundaries until one is unreachable
      // (the victim decided first); the boundary-at-output-state case is
      // b == the victim's invoke count and is covered before the break.
      for (int b = 0;; ++b) {
        const int stalls_before = result.liveness_violations;
        if (!boundary_run(protocol, inputs, victim, b, options, result)) {
          break;
        }
        // A stalled run proves the violation; later boundaries of the
        // same victim would only stall again at full step budget each.
        if (result.liveness_violations > stalls_before) break;
      }
    }
  }
  return result;
}

}  // namespace rcons::runtime
