#include "runtime/live_run.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "runtime/live_object.hpp"
#include "runtime/pmem.hpp"
#include "util/assert.hpp"

namespace rcons::runtime {

namespace {

struct RoundOutcome {
  std::vector<int> decisions;  // every value output this round (any process)
  std::uint64_t steps = 0;
  std::uint64_t crashes = 0;
};

/// One thread body: play process `pid` until it decides (staying decided
/// is the model's no-op loop, so we stop there) or exhausts its crash
/// allowance and then decides crash-free.
void play_process(const exec::Protocol& protocol, exec::ProcessId pid,
                  int input, std::vector<LiveObject>& objects,
                  const LiveRunOptions& options, std::uint64_t round_seed,
                  RoundOutcome& outcome, std::mutex& outcome_mu) {
  Xoshiro256 rng(round_seed ^ (0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(pid + 1)));
  exec::LocalState local = protocol.initial_state(pid, input);
  int crashes = 0;
  std::uint64_t steps = 0;

  while (true) {
    const exec::Action action = protocol.poised(pid, local);
    if (action.kind == exec::Action::Kind::kDecided) {
      {
        std::lock_guard<std::mutex> lock(outcome_mu);
        outcome.decisions.push_back(action.decision);
      }
      // A process can crash right after deciding, before anything durable
      // records its output; on recovery it re-runs the whole algorithm.
      // Correct recoverable algorithms re-decide the same value; broken
      // ones (tas_racing) flip — which is what the audit is for.
      if (crashes < options.max_crashes_per_process &&
          rng.chance(options.crash_prob)) {
        local = protocol.initial_state(pid, input);
        ++crashes;
        continue;
      }
      std::lock_guard<std::mutex> lock(outcome_mu);
      outcome.steps += steps;
      outcome.crashes += static_cast<std::uint64_t>(crashes);
      return;
    }
    if (crashes < options.max_crashes_per_process &&
        rng.chance(options.crash_prob)) {
      // Crash: volatile state lost, shared objects retained.
      local = protocol.initial_state(pid, input);
      ++crashes;
      continue;
    }
    const spec::ResponseId response =
        objects[static_cast<std::size_t>(action.object)].apply(action.op);
    local = protocol.advance(pid, local, response);
    ++steps;
  }
}

}  // namespace

LiveRunResult run_live_audit(const exec::Protocol& protocol,
                             const LiveRunOptions& options) {
  const int n = protocol.process_count();
  if (!options.fixed_inputs.empty()) {
    RCONS_CHECK(static_cast<int>(options.fixed_inputs.size()) == n);
  }

  LiveRunResult result;
  for (int round = 0; round < options.rounds; ++round) {
    // Fresh persistent heap + objects per round.
    PersistentArena arena;
    std::vector<LiveObject> objects;
    objects.reserve(static_cast<std::size_t>(protocol.object_count()));
    for (exec::ObjectId obj = 0; obj < protocol.object_count(); ++obj) {
      objects.emplace_back(protocol.object_type(obj),
                           protocol.initial_value(obj), arena);
    }

    std::vector<int> inputs(static_cast<std::size_t>(n));
    if (!options.fixed_inputs.empty()) {
      inputs = options.fixed_inputs;
    } else {
      // Spread deterministically over input vectors round by round.
      const unsigned pattern =
          static_cast<unsigned>((round * 2654435761u) >> 16) |
          static_cast<unsigned>(round);
      for (int i = 0; i < n; ++i) {
        inputs[static_cast<std::size_t>(i)] =
            static_cast<int>((pattern >> i) & 1u);
      }
    }

    RoundOutcome outcome;
    std::mutex outcome_mu;
    const std::uint64_t round_seed =
        options.seed + 0x100000001b3ULL * static_cast<std::uint64_t>(round);
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(n));
      for (int pid = 0; pid < n; ++pid) {
        threads.emplace_back(play_process, std::cref(protocol), pid,
                             inputs[static_cast<std::size_t>(pid)],
                             std::ref(objects), std::cref(options), round_seed,
                             std::ref(outcome), std::ref(outcome_mu));
      }
      for (auto& t : threads) t.join();
    }

    result.rounds += 1;
    result.total_steps += outcome.steps;
    result.total_crashes += outcome.crashes;
    result.total_decisions += outcome.decisions.size();
    result.pmem_persists +=
        arena.stats().persists.load(std::memory_order_relaxed);

    // Audit: all outputs equal; every output is someone's input.
    unsigned input_mask = 0;
    for (int v : inputs) input_mask |= 1u << v;
    unsigned output_mask = 0;
    for (int v : outcome.decisions) output_mask |= 1u << v;
    if (output_mask == 0b11u) {
      result.agreement_violations += 1;
      if (result.first_violation.empty()) {
        std::ostringstream oss;
        oss << "round " << round << ": both 0 and 1 decided (inputs:";
        for (int v : inputs) oss << " " << v;
        oss << ")";
        result.first_violation = oss.str();
      }
    }
    if ((output_mask & ~input_mask) != 0) {
      result.validity_violations += 1;
      if (result.first_violation.empty()) {
        result.first_violation =
            "round " + std::to_string(round) + ": output not an input";
      }
    }
  }
  return result;
}

}  // namespace rcons::runtime
