#include "serve/wire.hpp"

#include <cctype>
#include <cstdint>

#include "util/strings.hpp"

namespace rcons::serve {
namespace {

/// Recursive-descent scanner for the flat request grammar. Every method
/// leaves `error_` set on failure; the cursor never moves past size().
class RequestParser {
 public:
  explicit RequestParser(const std::string& text) : text_(text) {}

  ParseOutcome parse() {
    ParseOutcome outcome;
    skip_ws();
    if (!consume('{')) {
      return fail(outcome, "request must be one JSON object");
    }
    skip_ws();
    if (!consume('}')) {
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return fail(outcome, "expected field name");
        skip_ws();
        if (!consume(':')) {
          return fail(outcome, "expected ':' after \"" + key + "\"");
        }
        skip_ws();
        if (!assign_field(key, outcome)) return fail(outcome, error_);
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) {
          return fail(outcome, "expected ',' or '}' after \"" + key + "\"");
        }
      }
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return fail(outcome, "trailing bytes after the request object");
    }
    if (outcome.request.command.empty()) {
      return fail(outcome, "request lacks a \"command\" field");
    }
    outcome.ok = true;
    return outcome;
  }

 private:
  ParseOutcome fail(ParseOutcome& outcome, const std::string& why) {
    outcome.ok = false;
    outcome.error = why.empty() ? std::string("malformed request") : why;
    return outcome;
  }

  bool assign_field(const std::string& key, ParseOutcome& outcome) {
    Request& r = outcome.request;
    if (key == "id" || key == "command" || key == "target" ||
        key == "target_b" || key == "spec" || key == "threshold") {
      std::string value;
      if (!parse_string(&value)) {
        error_ = "field \"" + key + "\" wants a string value";
        return false;
      }
      if (key == "id") r.id = value;
      else if (key == "command") r.command = value;
      else if (key == "target") r.target = value;
      else if (key == "target_b") r.target_b = value;
      else if (key == "spec") r.spec = value;
      else r.threshold = value;
      return true;
    }
    if (key == "max_n" || key == "threads" || key == "max_states") {
      std::uint64_t value = 0;
      if (!parse_integer(&value)) {
        error_ = "field \"" + key + "\" wants a non-negative integer";
        return false;
      }
      if (key == "max_states") {
        r.max_states = static_cast<std::size_t>(value);
      } else if (value > 1u << 20) {
        error_ = "field \"" + key + "\" is out of range";
        return false;
      } else if (key == "max_n") {
        r.max_n = static_cast<int>(value);
      } else {
        r.threads = static_cast<int>(value);
      }
      return true;
    }
    error_ = "unknown field \"" + key + "\"";
    return false;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size()) return false;
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // Requests are ASCII-flavoured (paths, catalog names, CLI
            // tokens); non-ASCII escapes decode to '?' rather than
            // growing a UTF-8 encoder nothing needs.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return false;
        }
        continue;
      }
      *out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool parse_integer(std::uint64_t* out) {
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
      value = value * 10 + digit;
      ++pos_;
    }
    *out = value;
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseOutcome parse_request(const std::string& line, std::size_t max_bytes) {
  if (line.size() > max_bytes) {
    ParseOutcome outcome;
    outcome.error = "request exceeds " + std::to_string(max_bytes) +
                    " bytes";
    return outcome;
  }
  return RequestParser(line).parse();
}

const char* status_name(int exit_code) {
  switch (exit_code) {
    case 0: return "ok";
    case 1: return "violation";
    case 3: return "inconclusive";
    default: return "error";
  }
}

std::string render_response(const std::string& id,
                            const std::string& trace_id, const Response& r) {
  std::string out = "{\"id\":\"" + json_escape(id) + "\",\"trace_id\":\"" +
                    json_escape(trace_id) + "\",\"status\":\"" +
                    status_name(r.exit_code) +
                    "\",\"exit_code\":" + std::to_string(r.exit_code);
  if (!r.error.empty()) {
    out += ",\"error\":\"" + json_escape(r.error) + "\"";
  }
  if (!r.body.empty()) {
    // The body is embedded verbatim: it is the CLI's own single-line JSON
    // document, and keeping its bytes untouched is the parity contract.
    out += ",\"result\":" + r.body;
  }
  out += "}\n";
  return out;
}

}  // namespace rcons::serve
