// Command cores shared by rcons_cli and the rcons-serve daemon.
//
// Everything here used to live inside tools/rcons_cli.cpp. The serve
// daemon must answer profile/verify/lint requests with responses that are
// BYTE-IDENTICAL to the CLI's --format=json stdout (the parity contract
// the golden corpus pins), and the only way to keep two front ends
// byte-identical forever is to make them call the same renderer. Each
// run_* function returns both renderings (JSON and text) plus the CLI
// exit code; the CLI prints one of them and spills captured
// counterexamples under --trace-out, the daemon embeds the JSON into a
// wire response and drops the captures.
//
// Progress chatter still goes to stderr from in here (exactly as the CLI
// always did), so stdout purity under --format=json is preserved for
// both front ends; in the daemon, stderr is the service log.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/static_bounds/static_bounds.hpp"
#include "exec/backend.hpp"
#include "exec/protocol.hpp"
#include "hierarchy/consensus_number.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/object_type.hpp"
#include "trace/counterexample.hpp"

namespace rcons::serve {

/// The named-type catalog (`rcons_cli list`).
const std::map<std::string, std::function<spec::ObjectType()>>&
type_catalog();

/// Resolves a catalog name or a .type file path.
bool resolve_type(const std::string& what, spec::ObjectType* out,
                  std::string* error);

/// Builds a protocol from CLI-style tokens ("cas 2", "recording cas3 2
/// relaxed", ...). Null with `*error` set on a usage error.
std::unique_ptr<exec::Protocol> make_protocol(
    const std::vector<std::string>& tokens, std::string* error);

/// Parses "error" | "warning" | "note".
bool parse_severity(const std::string& level, analysis::Severity* out);

/// Engine knobs shared by every command core (the CLI's global flags).
struct EngineOptions {
  int threads = 1;
  bool reduce = true;                              // --reduce=symmetry
  bool bounds = true;                              // --bounds=on
  std::size_t max_states = 0;                      // 0 = engine defaults
  const reduction::VerdictCache* cache = nullptr;  // profile only
  /// --backend=interp|aot: which exec stepper the engines run (DESIGN.md
  /// §14). Verdicts, witnesses, and stats are bit-identical either way.
  exec::Backend backend = exec::Backend::kInterp;
};

/// A counterexample captured during verify / lint-protocol, with the
/// file stem --trace-out would use.
struct CapturedTrace {
  trace::Counterexample trace;
  std::string stem;
};

struct CommandResult {
  int exit_code = 0;
  /// Usage error (exit 2): message for stderr / the wire "error" field;
  /// json and text are empty.
  std::string error;
  /// Exactly the CLI's --format=json stdout, without the trailing '\n'.
  std::string json;
  /// Exactly the CLI's text-mode stdout.
  std::string text;
  /// Graphviz artifact (order catalog mode only): spilled by the CLI
  /// under --dot-out without re-running the analysis; empty otherwise.
  std::string dot;
  std::vector<CapturedTrace> captures;
};

/// profile: levels + optional static-bounds block.
CommandResult run_profile(const spec::ObjectType& type, int max_n,
                          const EngineOptions& options);

/// Renders a computed profile exactly as the CLI does; exposed separately
/// so the serve layer can re-render a single-flighted verdict for each
/// requester's own type name and bounds block.
std::string profile_json(const hierarchy::TypeProfile& p, int max_n,
                         const analysis::BoundsReport* bounds);
std::string profile_text(const hierarchy::TypeProfile& p,
                         const analysis::BoundsReport* bounds);

/// verify: exhaustive safety (three crash modes) + recoverable
/// wait-freedom. `spec` is the CLI protocol spelling, stamped into
/// captured traces so replay can rebuild the protocol.
CommandResult run_verify(exec::Protocol& protocol, const std::string& spec,
                         const EngineOptions& options);

/// lint over type targets (catalog names and .type files), TS + SA rules.
CommandResult run_lint_types(const std::vector<std::string>& targets,
                             analysis::Severity threshold,
                             const EngineOptions& options);

/// lint over one protocol: PL rules + the RC recovery audit.
CommandResult run_lint_protocol(exec::Protocol& protocol,
                                const std::string& spec,
                                analysis::Severity threshold,
                                const EngineOptions& options);

/// explain: the registry block for one TS/PL/RC/SA rule id (text exactly
/// as `rcons_cli explain` always printed it; JSON is the registry entry).
/// Unknown ids are usage errors (exit 2).
CommandResult run_explain(const std::string& rule_id);

/// order <a> <b>: certified simulation analysis of one pair (DESIGN.md
/// §13). Exit 0 whether or not a relation exists — absence of a certified
/// relation is data, not a violation. `name_a` / `name_b` label the two
/// types in the output (the CLI passes its target arguments).
CommandResult run_order(const spec::ObjectType& a, const spec::ObjectType& b,
                        const std::string& name_a, const std::string& name_b);

/// order --all: catalog mode. Builds the implements-lattice over `types`,
/// profiles every node with lattice pruning (and bounds/cache per
/// `options`), feeds each profile back into the lattice, and seeds the
/// verdict cache with the implied brackets. The dominance graph lands in
/// CommandResult::json (plus ::dot for --dot-out).
CommandResult run_order_catalog(const std::vector<spec::ObjectType>& types,
                                const std::vector<std::string>& names,
                                int max_n, const EngineOptions& options);

}  // namespace rcons::serve
