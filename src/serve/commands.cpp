#include "serve/commands.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "algo/cas_consensus.hpp"
#include "analysis/order/lattice.hpp"
#include "analysis/rules.hpp"
#include "algo/naive_register.hpp"
#include "algo/propose_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "analysis/recovery_audit.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"
#include "trace/metrics.hpp"
#include "trace/replay.hpp"
#include "util/strings.hpp"
#include "valency/model_checker.hpp"

namespace rcons::serve {
namespace {

using rcons::spec::ObjectType;

/// printf-appends onto a std::string (the text renderings keep the CLI's
/// printf formats verbatim, so the bytes cannot drift).
void appendf(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string* out, const char* format, ...) {
  va_list args;
  va_start(args, format);
  char stack_buf[512];
  va_list copy;
  va_copy(copy, args);
  const int needed =
      std::vsnprintf(stack_buf, sizeof(stack_buf), format, args);
  va_end(args);
  if (needed < 0) {
    va_end(copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    out->append(stack_buf, static_cast<std::size_t>(needed));
  } else {
    std::vector<char> heap_buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(heap_buf.data(), heap_buf.size(), format, copy);
    out->append(heap_buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(copy);
}

}  // namespace

const std::map<std::string, std::function<ObjectType()>>& type_catalog() {
  static const auto* kCatalog =
      new std::map<std::string, std::function<ObjectType()>>{
          {"register2", [] { return rcons::spec::make_register(2); }},
          {"register3", [] { return rcons::spec::make_register(3); }},
          {"tas", [] { return rcons::spec::make_test_and_set(); }},
          {"swap2", [] { return rcons::spec::make_swap(2); }},
          {"swap3", [] { return rcons::spec::make_swap(3); }},
          {"faa4", [] { return rcons::spec::make_fetch_and_add(4); }},
          {"fai3",
           [] { return rcons::spec::make_fetch_and_increment_saturating(3); }},
          {"cas2", [] { return rcons::spec::make_cas(2); }},
          {"cas3", [] { return rcons::spec::make_cas(3); }},
          {"sticky2", [] { return rcons::spec::make_sticky_bit(); }},
          {"sticky3", [] { return rcons::spec::make_sticky(3); }},
          {"consensus2", [] { return rcons::spec::make_consensus_object(2); }},
          {"consensus3", [] { return rcons::spec::make_consensus_object(3); }},
          {"queue2", [] { return rcons::spec::make_queue(2); }},
          {"readable_queue2",
           [] { return rcons::spec::make_readable_queue(2); }},
          {"stack2", [] { return rcons::spec::make_stack(2); }},
          {"peek_queue2", [] { return rcons::spec::make_peek_queue(2); }},
          {"t31", [] { return rcons::spec::make_tnn(3, 1); }},
          {"t42", [] { return rcons::spec::make_tnn(4, 2); }},
          {"t52", [] { return rcons::spec::make_tnn(5, 2); }},
          {"t64", [] { return rcons::spec::make_tnn(6, 4); }},
          {"x4", [] { return rcons::spec::make_xn(4); }},
          {"x5", [] { return rcons::spec::make_xn(5); }},
      };
  return *kCatalog;
}

bool resolve_type(const std::string& what, ObjectType* out,
                  std::string* error) {
  const auto it = type_catalog().find(what);
  if (it != type_catalog().end()) {
    *out = it->second();
    return true;
  }
  std::ifstream in(what);
  if (!in) {
    *error = "unknown type '" + what + "' (not a catalog name; file not "
             "readable). Try `rcons_cli list`.";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const rcons::spec::ParseResult parsed =
      rcons::spec::parse_type(buffer.str());
  if (!parsed.ok()) {
    *error = what + ":" + std::to_string(parsed.error_line) + ": " +
             parsed.error;
    return false;
  }
  *out = *parsed.type;
  return true;
}

std::unique_ptr<rcons::exec::Protocol> make_protocol(
    const std::vector<std::string>& tokens, std::string* error) {
  if (tokens.empty()) {
    *error = "missing protocol";
    return nullptr;
  }
  const std::string& kind = tokens[0];
  const auto arg = [&](std::size_t i, int fallback) {
    return tokens.size() > i ? std::atoi(tokens[i].c_str()) : fallback;
  };
  if (kind == "cas") {
    return std::make_unique<rcons::algo::CasConsensus>(arg(1, 2));
  }
  if (kind == "tas") {
    return std::make_unique<rcons::algo::TasRacingConsensus>();
  }
  if (kind == "naive") {
    return std::make_unique<rcons::algo::NaiveRegisterConsensus>(arg(1, 2));
  }
  if (kind == "tnn") {
    const int n = arg(1, 4);
    const int np = arg(2, 2);
    return std::make_unique<rcons::algo::TnnRecoverableConsensus>(
        n, np, arg(3, np));
  }
  if (kind == "tnnwf") {
    return std::make_unique<rcons::algo::TnnWaitFreeConsensus>(arg(1, 4),
                                                               arg(2, 2));
  }
  if (kind == "propose") {
    return std::make_unique<rcons::algo::NaiveProposeConsensus>(arg(1, 2),
                                                                arg(2, 2));
  }
  if (kind == "sticky") {
    return std::make_unique<rcons::algo::StickyConsensus>(arg(1, 2));
  }
  if (kind == "recording") {
    ObjectType type;
    std::string type_error;
    if (tokens.size() < 2 || !resolve_type(tokens[1], &type, &type_error)) {
      *error = "recording <type> <n> [relaxed]: " + type_error;
      return nullptr;
    }
    bool relaxed = false;
    if (tokens.size() > 3) {
      if (tokens[3] == "relaxed") {
        relaxed = true;
      } else {
        *error = "recording: unknown modifier '" + tokens[3] +
                 "' (the only modifier is 'relaxed')";
        return nullptr;
      }
    }
    return std::make_unique<rcons::algo::RecordingConsensus>(type, arg(2, 2),
                                                             relaxed);
  }
  *error = "unknown protocol '" + kind + "'";
  return nullptr;
}

bool parse_severity(const std::string& level, analysis::Severity* out) {
  if (level == "error") {
    *out = analysis::Severity::kError;
  } else if (level == "warning") {
    *out = analysis::Severity::kWarning;
  } else if (level == "note") {
    *out = analysis::Severity::kNote;
  } else {
    return false;
  }
  return true;
}

std::string profile_json(const hierarchy::TypeProfile& p, int max_n,
                         const analysis::BoundsReport* bounds) {
  // The "bounds" object comes after "discerning"/"recording" so their
  // first occurrence in the document stays the level verdicts (the
  // golden fixtures are parsed by first occurrence).
  std::string bounds_json;
  if (bounds != nullptr) bounds_json = ",\"bounds\":" + bounds->render_json();
  std::string out;
  appendf(&out,
          "{\"type\":\"%s\",\"readable\":%s,\"max_n\":%d,"
          "\"discerning\":{\"value\":%d,\"exact\":%s},"
          "\"recording\":{\"value\":%d,\"exact\":%s}%s}",
          json_escape(p.type_name).c_str(), p.readable ? "true" : "false",
          max_n, p.discerning.value, p.discerning.exact ? "true" : "false",
          p.recording.value, p.recording.exact ? "true" : "false",
          bounds_json.c_str());
  return out;
}

std::string profile_text(const hierarchy::TypeProfile& p,
                         const analysis::BoundsReport* bounds) {
  std::string out;
  appendf(&out, "type %s (%s)\n", p.type_name.c_str(),
          p.readable ? "readable" : "NOT readable");
  appendf(&out, "  discerning level: %s%s\n",
          p.discerning.to_string().c_str(),
          p.readable ? "   == consensus number (Ruppert)"
                     : "   (upper bound on the consensus number)");
  appendf(&out, "  recording level:  %s%s\n", p.recording.to_string().c_str(),
          p.readable
              ? "   == recoverable consensus number (DFFR + Ovens)"
              : "   (upper bound on the recoverable consensus number)");
  if (bounds != nullptr) out += bounds->describe();
  return out;
}

CommandResult run_profile(const ObjectType& type, int max_n,
                          const EngineOptions& options) {
  hierarchy::ProfileOptions profile_options;
  profile_options.threads = options.threads;
  profile_options.mode = options.reduce
                             ? hierarchy::SymmetryMode::kAutomorphism
                             : hierarchy::SymmetryMode::kCanonical;
  profile_options.cache = options.cache;
  profile_options.backend = options.backend;
  analysis::BoundsReport bounds;
  if (options.bounds) {
    bounds = analysis::analyze_static_bounds(type);
    profile_options.bounds = &bounds;
  }
  const hierarchy::TypeProfile p =
      hierarchy::compute_profile(type, max_n, profile_options);
  CommandResult result;
  result.json = profile_json(p, max_n, options.bounds ? &bounds : nullptr);
  result.text = profile_text(p, options.bounds ? &bounds : nullptr);
  return result;
}

/// verify: exhaustive safety (three crash modes) + recoverable
/// wait-freedom, one line (or one JSON object) per check.
///
/// Exit code: 0 when every scan completed and found nothing, 1 on any
/// violation, 3 when a scan was truncated by max_states without finding
/// one — INCONCLUSIVE is not SAFE and must not share its exit code.
CommandResult run_verify(exec::Protocol& protocol, const std::string& spec,
                         const EngineOptions& options) {
  using rcons::valency::CrashMode;
  using rcons::valency::LivenessVerdict;
  using rcons::valency::SafetyVerdict;
  namespace valency = rcons::valency;
  CommandResult result;
  std::fprintf(stderr, "rcons: verifying protocol %s (%d threads)\n",
               protocol.name().c_str(), options.threads);
  appendf(&result.text, "protocol %s: %d processes, %d objects\n",
          protocol.name().c_str(), protocol.process_count(),
          protocol.object_count());
  bool violation = false;
  bool inconclusive = false;
  std::string json_safety;
  struct ModeRow {
    CrashMode mode;
    const char* label;  // aligned, for the text table
    const char* token;  // filesystem/JSON-safe
  };
  static constexpr ModeRow kModes[] = {
      {CrashMode::kNone, "crash-free ", "crash-free"},
      {CrashMode::kIndividual, "individual ", "individual"},
      {CrashMode::kBoth, "indiv+simul", "indiv-simul"},
  };
  for (const auto& row : kModes) {
    valency::SafetyOptions safety_options;
    safety_options.crash_mode = row.mode;
    safety_options.threads = options.threads;
    safety_options.reduce_symmetry = options.reduce;
    safety_options.backend = options.backend;
    if (options.max_states != 0) safety_options.max_states = options.max_states;
    // Restates check_safety_all_inputs's merge loop (including its orbit
    // reduction of input vectors) so the violating input VECTOR is in hand
    // — counterexample capture needs it, and the merged result does not
    // record it.
    valency::SafetyResult merged;
    merged.explored_fully = true;
    std::vector<int> bad_inputs;
    for (const auto& inputs :
         valency::driver_input_vectors(protocol, options.reduce)) {
      valency::SafetyResult r =
          valency::check_safety(protocol, inputs, safety_options);
      merged.states_visited += r.states_visited;
      merged.configs_visited += r.configs_visited;
      merged.explored_fully = merged.explored_fully && r.explored_fully;
      if (!r.ok()) {
        merged.agreement_ok = r.agreement_ok;
        merged.validity_ok = r.validity_ok;
        merged.counterexample = std::move(r.counterexample);
        merged.violation = std::move(r.violation);
        bad_inputs = inputs;
        break;
      }
    }
    const SafetyVerdict verdict = valency::safety_verdict(merged);
    violation = violation || verdict == SafetyVerdict::kViolation;
    inconclusive = inconclusive || verdict == SafetyVerdict::kInconclusive;
    const std::string verdict_name(valency::safety_verdict_name(merged));
    if (!json_safety.empty()) json_safety += ',';
    json_safety += "{\"mode\":\"" + std::string(row.token) +
                   "\",\"verdict\":\"" + verdict_name +
                   "\",\"states\":" + std::to_string(merged.states_visited);
    if (!merged.ok()) {
      json_safety +=
          ",\"violation\":\"" + json_escape(merged.violation) +
          "\",\"schedule\":\"" +
          json_escape(
              rcons::exec::schedule_to_string(*merged.counterexample)) +
          "\"";
    }
    json_safety += '}';
    // A truncated exploration proves nothing: INCONCLUSIVE, never "SAFE".
    appendf(&result.text, "  safety  [%s]: %s (%zu states)\n", row.label,
            verdict_name.c_str(), merged.states_visited);
    if (!merged.ok()) {
      appendf(&result.text, "    %s\n    schedule: %s\n",
              merged.violation.c_str(),
              rcons::exec::schedule_to_string(*merged.counterexample)
                  .c_str());
      if (auto c = rcons::trace::capture_safety(protocol, bad_inputs,
                                                merged)) {
        c->protocol_spec = spec;
        result.captures.push_back(
            {std::move(*c), std::string("safety-") + row.token});
      }
    }
  }
  bool stuck = false;
  bool live_inconclusive = false;
  std::string json_liveness;
  for (const auto& inputs :
       valency::all_binary_inputs(protocol.process_count())) {
    valency::LivenessOptions liveness_options;
    liveness_options.threads = options.threads;
    liveness_options.reduce_symmetry = options.reduce;
    liveness_options.backend = options.backend;
    if (options.max_states != 0) {
      liveness_options.max_states = options.max_states;
    }
    const auto r = valency::check_recoverable_wait_freedom(
        protocol, inputs, liveness_options);
    std::string bits;
    for (const int b : inputs) bits += static_cast<char>('0' + b);
    switch (valency::liveness_verdict(r)) {
      case LivenessVerdict::kNotWaitFree: {
        stuck = true;
        if (auto c = rcons::trace::capture_liveness(
                protocol, inputs, r, liveness_options.solo_step_bound)) {
          c->protocol_spec = spec;
          result.captures.push_back({std::move(*c), "liveness-i" + bits});
        }
        break;
      }
      case LivenessVerdict::kInconclusive: live_inconclusive = true; break;
      case LivenessVerdict::kWaitFree: break;
    }
    if (!json_liveness.empty()) json_liveness += ',';
    json_liveness +=
        "{\"inputs\":\"" + bits + "\",\"verdict\":\"" +
        std::string(valency::liveness_verdict_name(r)) + "\"}";
  }
  violation = violation || stuck;
  inconclusive = inconclusive || live_inconclusive;
  const char* wait_free =
      stuck ? "NO" : (live_inconclusive ? "INCONCLUSIVE" : "YES");
  const char* overall =
      violation ? "VIOLATION" : (inconclusive ? "INCONCLUSIVE" : "SAFE");
  const int code = violation ? 1 : (inconclusive ? 3 : 0);
  appendf(&result.json,
          "{\"protocol\":\"%s\",\"processes\":%d,\"objects\":%d,"
          "\"safety\":[%s],\"liveness\":[%s],"
          "\"recoverable_wait_freedom\":\"%s\",\"verdict\":\"%s\","
          "\"exit_code\":%d}",
          json_escape(protocol.name()).c_str(), protocol.process_count(),
          protocol.object_count(), json_safety.c_str(),
          json_liveness.c_str(), wait_free, overall, code);
  appendf(&result.text, "  recoverable wait-freedom: %s\n", wait_free);
  appendf(&result.text, "  overall: %s\n", overall);
  result.exit_code = code;
  return result;
}

CommandResult run_lint_types(const std::vector<std::string>& targets,
                             analysis::Severity threshold,
                             const EngineOptions& /*options*/) {
  CommandResult result;
  analysis::Report report;
  for (const std::string& target : targets) {
    // Files get the text front end (sees duplicate rows and `initial`);
    // catalog names lint the built ObjectType directly. Both also run the
    // SA bounds pass: its findings are structural facts about the type and
    // belong in the same report (all kNote, so they never gate a run at
    // the default threshold).
    if (type_catalog().count(target) != 0) {
      const ObjectType type = type_catalog().at(target)();
      report.merge(rcons::analysis::lint_type(
          type, rcons::analysis::TypeLintOptions{}));
      report.merge(rcons::analysis::analyze_static_bounds(type).findings);
      continue;
    }
    std::ifstream in(target);
    if (!in) {
      result.exit_code = 2;
      result.error = "unknown type '" + target + "' (not a catalog name; "
                     "file not readable)";
      return result;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    report.merge(rcons::analysis::lint_type_text(buffer.str(), target));
    const rcons::spec::ParseResult parsed =
        rcons::spec::parse_type(buffer.str());
    if (parsed.ok()) {
      report.merge(
          rcons::analysis::analyze_static_bounds(*parsed.type, target)
              .findings);
    }
  }
  report.canonicalize();
  result.json = report.render_json();
  result.text = report.render_text();
  result.exit_code = report.has_findings_at_least(threshold) ? 1 : 0;
  return result;
}

CommandResult run_lint_protocol(exec::Protocol& protocol,
                                const std::string& spec,
                                analysis::Severity threshold,
                                const EngineOptions& options) {
  CommandResult result;
  std::fprintf(stderr, "rcons: linting protocol %s (PL rules)\n",
               protocol.name().c_str());
  analysis::Report report = rcons::analysis::lint_protocol(protocol);
  std::fprintf(stderr,
               "rcons: auditing protocol %s (RC rules, %d threads)\n",
               protocol.name().c_str(), options.threads);
  rcons::analysis::RecoveryAuditOptions audit_options;
  audit_options.threads = options.threads;
  auto audited =
      rcons::analysis::audit_recovery_traced(protocol, audit_options);
  report.merge(std::move(audited.report));
  int seq = 0;
  for (auto& c : audited.counterexamples) {
    std::string rule = c.rule;
    for (auto& ch : rule) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    c.protocol_spec = spec;
    result.captures.push_back(
        {std::move(c), "rc-" + std::to_string(seq++) + "-" + rule});
  }
  report.canonicalize();
  result.json = report.render_json();
  result.text = report.render_text();
  result.exit_code = report.has_findings_at_least(threshold) ? 1 : 0;
  return result;
}

CommandResult run_explain(const std::string& rule_id) {
  CommandResult result;
  const analysis::RuleInfo* info = analysis::find_rule(rule_id.c_str());
  if (info == nullptr) {
    result.exit_code = 2;
    result.error = "unknown rule id '" + rule_id +
                   "' (see `rcons_cli lint --rules` for the catalog)";
    return result;
  }
  result.json = analysis::render_rule_json(*info);
  result.text = analysis::render_rule_explain(*info);
  return result;
}

CommandResult run_order(const ObjectType& a, const ObjectType& b,
                        const std::string& name_a,
                        const std::string& name_b) {
  namespace order = rcons::analysis::order;
  const order::OrderAnalysis analysis =
      order::analyze_order(a, b, order::OrderSearchOptions{}, name_a, name_b);
  const std::string* names[2] = {&name_a, &name_b};
  CommandResult result;
  std::string relations;
  for (const auto& r : analysis.relations) {
    if (!relations.empty()) relations += ',';
    relations += "{\"high\":\"" + json_escape(*names[r.high]) +
                 "\",\"low\":\"" + json_escape(*names[r.low]) +
                 "\",\"rule\":\"" + r.cert.rule + "\",\"kind\":\"" +
                 order::cert_kind_name(r.cert.kind) + "\",\"certificate\":" +
                 order::certificate_json(r.cert) + "}";
  }
  appendf(&result.json,
          "{\"a\":\"%s\",\"b\":\"%s\",\"relations\":[%s],"
          "\"nodes_explored\":%llu,\"budget_exhausted\":%s}",
          json_escape(name_a).c_str(), json_escape(name_b).c_str(),
          relations.c_str(),
          static_cast<unsigned long long>(analysis.nodes_explored),
          analysis.budget_exhausted ? "true" : "false");
  appendf(&result.text, "order: '%s' vs '%s'\n", name_a.c_str(),
          name_b.c_str());
  if (analysis.relations.empty()) {
    // A completed search proves nothing either way; an exhausted one is
    // merely silent. Say which — and exit 0 in both cases: "no certified
    // relation" is a finding about the pair, not a failure of the run.
    appendf(&result.text,
            "  no certified relation found (%llu nodes explored%s)\n",
            static_cast<unsigned long long>(analysis.nodes_explored),
            analysis.budget_exhausted ? "; search budget exhausted" : "");
  } else {
    for (const auto& r : analysis.relations) {
      appendf(&result.text, "  %s >= %s  [%s %s]\n", names[r.high]->c_str(),
              names[r.low]->c_str(), r.cert.rule.c_str(),
              order::cert_kind_name(r.cert.kind));
    }
    result.text += analysis.findings.render_text();
  }
  return result;
}

CommandResult run_order_catalog(const std::vector<ObjectType>& types,
                                const std::vector<std::string>& names,
                                int max_n, const EngineOptions& options) {
  namespace order = rcons::analysis::order;
  CommandResult result;
  order::OrderLattice lattice;
  for (std::size_t i = 0; i < types.size(); ++i) {
    lattice.add_type(types[i], i < names.size() ? names[i] : std::string());
  }
  std::fprintf(stderr, "rcons: relating %d types pairwise\n",
               lattice.size());
  const int edge_count = lattice.relate_all();
  const auto counter = [](const char* name) {
    return rcons::trace::metrics().counter(name);
  };
  const std::int64_t pruned0 =
      counter("order.pruned_lo") + counter("order.pruned_hi");
  const std::int64_t runs0 = counter("bounds.decider_runs");
  std::string profiles_json;
  std::string profile_lines;
  for (int i = 0; i < lattice.size(); ++i) {
    hierarchy::ProfileOptions profile_options;
    profile_options.threads = options.threads;
    profile_options.mode = options.reduce
                               ? hierarchy::SymmetryMode::kAutomorphism
                               : hierarchy::SymmetryMode::kCanonical;
    profile_options.cache = options.cache;
    analysis::BoundsReport bounds;
    if (options.bounds) {
      bounds = analysis::analyze_static_bounds(lattice.type(i));
      profile_options.bounds = &bounds;
    }
    const analysis::LevelBracket discerning = lattice.implied(i, "discerning");
    const analysis::LevelBracket recording = lattice.implied(i, "recording");
    profile_options.order_discerning = &discerning;
    profile_options.order_recording = &recording;
    std::fprintf(stderr, "rcons: profiling %s (n <= %d)\n",
                 lattice.name(i).c_str(), max_n);
    const hierarchy::TypeProfile p =
        hierarchy::compute_profile(lattice.type(i), max_n, profile_options);
    lattice.note_profile(i, p, max_n);
    if (!profiles_json.empty()) profiles_json += ',';
    appendf(&profiles_json,
            "{\"name\":\"%s\",\"discerning\":{\"value\":%d,\"exact\":%s},"
            "\"recording\":{\"value\":%d,\"exact\":%s}}",
            json_escape(lattice.name(i)).c_str(), p.discerning.value,
            p.discerning.exact ? "true" : "false", p.recording.value,
            p.recording.exact ? "true" : "false");
    appendf(&profile_lines, "  %s: discerning %s, recording %s\n",
            lattice.name(i).c_str(), p.discerning.to_string().c_str(),
            p.recording.to_string().c_str());
  }
  const std::int64_t pruned =
      counter("order.pruned_lo") + counter("order.pruned_hi") - pruned0;
  const std::int64_t runs = counter("bounds.decider_runs") - runs0;
  int seeded = 0;
  if (options.cache != nullptr && options.cache->enabled()) {
    seeded = lattice.propagate(*options.cache, max_n);
  }
  int closure_pairs = 0;
  for (int i = 0; i < lattice.size(); ++i) {
    for (int j = 0; j < lattice.size(); ++j) {
      if (i != j && lattice.dominates(i, j)) ++closure_pairs;
    }
  }
  appendf(&result.json,
          "{\"max_n\":%d,\"graph\":%s,\"profiles\":[%s],"
          "\"order_pruned\":%lld,\"decider_runs\":%lld,\"cache_seeded\":%d,"
          "\"budget_exhausted\":%s}",
          max_n, lattice.dominance_json().c_str(), profiles_json.c_str(),
          static_cast<long long>(pruned), static_cast<long long>(runs),
          seeded, lattice.budget_exhausted() ? "true" : "false");
  appendf(&result.text,
          "order catalog: %d types, %d certified edges, %d dominated "
          "pairs\n",
          lattice.size(), edge_count, closure_pairs);
  for (const auto& e : lattice.edges()) {
    appendf(&result.text, "  %s >= %s  [%s %s]\n",
            lattice.name(e.high).c_str(), lattice.name(e.low).c_str(),
            e.cert.rule.c_str(), order::cert_kind_name(e.cert.kind));
  }
  result.text += profile_lines;
  appendf(&result.text,
          "lattice decided %lld of %lld per-n verdicts; seeded %d cache "
          "entr%s\n",
          static_cast<long long>(pruned),
          static_cast<long long>(pruned + runs), seeded,
          seeded == 1 ? "y" : "ies");
  result.dot = lattice.dominance_dot();
  return result;
}

}  // namespace rcons::serve
