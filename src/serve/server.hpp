// The rcons-serve daemon (DESIGN.md §12): sockets, connection readers,
// and the admission queue in front of a Service.
//
// Thread shape:
//
//   acceptor ──► one reader thread per connection ──► admission queue
//                                                        │
//                                          worker pool ──┘ (N workers)
//
// Readers frame NDJSON lines, parse them, and answer protocol errors and
// the O(1) commands (ping/metrics/spans) inline; compute commands
// (profile/verify/lint) go through the bounded admission queue. A full
// queue answers INCONCLUSIVE immediately (exit-contract status, counted
// as serve.admission.rejected) — the daemon never stalls a client to
// hide overload. Responses to one connection are serialized by a
// per-connection write lock, but responses from concurrent requests may
// come back in any order (clients match on "id").
//
// Connection lifetime is shared_ptr-managed: the fd closes when the last
// holder (reader or an in-queue/in-flight job) drops it, so a worker can
// never write into a recycled fd. stop() shuts sockets down (unblocking
// any blocked read/accept) before joining threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "serve/wire.hpp"

namespace rcons::serve {

struct ServerOptions {
  /// Exactly one transport: a Unix socket path, or a 127.0.0.1 TCP port
  /// (0 = ephemeral; read the chosen one back via Server::port()).
  std::string unix_path;
  int tcp_port = -1;  // -1 = TCP disabled
  int workers = 4;
  std::size_t queue_depth = 64;
  std::size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads. False
  /// with `*error` set on bind failure.
  bool start(std::string* error);

  /// The bound TCP port (after start(); resolves an ephemeral request).
  int port() const { return port_; }

  /// Stops accepting, unblocks every reader, drains nothing: queued jobs
  /// still run to completion, then workers exit. Idempotent.
  void stop();

  /// Blocks until stop() has been called and all threads are joined.
  void wait();

 private:
  /// One client connection. The fd is owned here and closed exactly once,
  /// when the last shared_ptr holder lets go.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    int fd;
    std::mutex write_mutex;  // one response line at a time
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    Request request;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void worker_loop();
  void respond(Conn& conn, const std::string& id, const Response& r);

  Service& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // written by stop() to end the acceptor
  int port_ = 0;
  bool started_ = false;

  std::mutex mutex_;  // guards queue_, conns_, reader_threads_, stopping_
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::weak_ptr<Conn>> conns_;
  std::vector<std::thread> reader_threads_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace rcons::serve
