// rcons-serve wire protocol (DESIGN.md §12).
//
// Newline-delimited JSON over a stream socket. One request per line, one
// response line per request, matched by the client-chosen "id" field (the
// daemon may interleave responses from concurrent requests on the same
// connection, so clients must not assume ordering). Blank lines are
// keep-alives: ignored, never answered.
//
// Request — a FLAT JSON object; values are strings, non-negative
// integers, or booleans. Nested objects/arrays are rejected: the request
// grammar is deliberately small enough that a malformed byte can only
// yield a structured error, never undefined parser behaviour (the
// property tests fuzz exactly this entry point).
//
//   {"id":"r1","command":"profile","target":"data/cas3.type","max_n":6}
//   {"id":"r2","command":"verify","spec":"cas 2","max_states":100000}
//   {"id":"r3","command":"lint","target":"data/cas3.type"}
//   {"id":"r4","command":"lint","spec":"recording cas3 2"}
//   {"id":"r5","command":"order","target":"cas3","target_b":"data/x5.type"}
//   {"id":"r6","command":"explain","target":"SA009"}
//   {"id":"r7","command":"metrics"}   {"command":"spans"}   {"command":"ping"}
//
// Fields: id (echoed back; optional), command (required), target (type:
// catalog name or .type path; for explain: a rule id), target_b (order:
// the second type), spec (protocol spec, space-separated CLI tokens),
// max_n, max_states, threads, threshold (lint: error|warning|note).
//
// Response — one line; "result" is always the LAST field and carries the
// byte-identical document the CLI would print for the same query under
// --format=json (the serve-parity tests pin this):
//
//   {"id":"r1","trace_id":"r-0000002a","status":"ok","exit_code":0,
//    "result":{...}}
//   {"id":"r9","trace_id":"...","status":"error","exit_code":2,
//    "error":"unknown command 'profle'"}
//
// "status" follows the CLI exit-code contract (DESIGN.md §9): ok 0,
// violation 1, error 2 (usage/malformed), inconclusive 3 (truncated by a
// budget, or rejected by the admission queue — never silently stalled).
#pragma once

#include <cstddef>
#include <string>

namespace rcons::serve {

/// One decoded request. String fields default to empty, integers to 0
/// ("unset"; the service applies its configured defaults).
struct Request {
  std::string id;
  std::string command;
  std::string target;
  std::string target_b;
  std::string spec;
  std::string threshold;
  int max_n = 0;
  int threads = 0;
  std::size_t max_states = 0;
};

struct ParseOutcome {
  bool ok = false;
  Request request;
  std::string error;  // set when !ok; always safe to echo into a response
};

/// Parses one request line. Never throws, never reads out of bounds, and
/// rejects lines longer than `max_bytes` — every failure mode is a
/// structured error. A request id is salvaged from the malformed line
/// when the "id" field was parsed before the error, so error responses
/// can still be correlated.
ParseOutcome parse_request(const std::string& line,
                           std::size_t max_bytes = 1 << 20);

/// A response in exit-code-contract form; rendered by render_response.
struct Response {
  int exit_code = 0;
  std::string body;   // the CLI-identical JSON document; empty on errors
  std::string error;  // human-readable reason for error/inconclusive
};

/// "ok", "violation", "error", or "inconclusive".
const char* status_name(int exit_code);

/// Renders one response line (including the trailing '\n').
std::string render_response(const std::string& id,
                            const std::string& trace_id, const Response& r);

}  // namespace rcons::serve
