#include "serve/service.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/static_bounds/static_bounds.hpp"
#include "campaign/enumerate.hpp"
#include "reduction/type_canon.hpp"
#include "trace/metrics.hpp"
#include "util/numeric.hpp"

namespace rcons::serve {
namespace {

std::vector<std::string> spec_tokens(const std::string& spec) {
  std::vector<std::string> tokens;
  std::istringstream stream(spec);
  for (std::string t; stream >> t;) tokens.push_back(std::move(t));
  return tokens;
}

/// Fingerprints any token that names a readable file, so single-flight
/// keys built from user-supplied paths go stale the moment the file's
/// CONTENT changes — coalescing on the path alone would happily share a
/// verdict computed from bytes that are no longer there. Non-files
/// contribute nothing (catalog names are immutable).
std::string file_fingerprints(const std::vector<std::string>& tokens) {
  std::string out;
  for (const std::string& token : tokens) {
    if (type_catalog().count(token) != 0) continue;
    std::ifstream in(token, std::ios::binary);
    if (!in) continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    char fp[32];
    std::snprintf(fp, sizeof(fp), "|fp=%016llx",
                  static_cast<unsigned long long>(
                      std::hash<std::string>{}(buffer.str())));
    out += fp;
  }
  return out;
}

Response usage_error(std::string message) {
  Response r;
  r.exit_code = 2;
  r.error = std::move(message);
  return r;
}

}  // namespace

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  // The disk tier is constructed even when disabled (empty directory):
  // MemoryTierCache wants a backing object, and a disabled VerdictCache
  // is the canonical "no persistence" backing.
  disk_tier_ =
      std::make_unique<reduction::VerdictCache>(options_.cache_dir);
  cache_ = std::make_unique<reduction::MemoryTierCache>(disk_tier_.get());
}

std::string Service::next_trace_id() {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "r-%08llx",
                static_cast<unsigned long long>(
                    trace_serial_.fetch_add(1) + 1));
  return buf;
}

int Service::request_threads(const Request& request) const {
  const int threads =
      request.threads > 0 ? request.threads : options_.default_threads;
  return threads > options_.max_threads_cap ? options_.max_threads_cap
                                            : threads;
}

std::size_t Service::request_budget(const Request& request) const {
  if (options_.max_states_cap == 0) return request.max_states;
  if (request.max_states == 0 ||
      request.max_states > options_.max_states_cap) {
    return options_.max_states_cap;
  }
  return request.max_states;
}

Response Service::handle(const Request& request) {
  auto& m = trace::metrics();
  m.add("serve.requests.total", 1);
  const std::int64_t started_us = m.now_us();
  Response response;
  {
    trace::ScopedSpan span("serve." + request.command);
    if (request.command == "ping") {
      response.body = "{\"pong\":true}";
    } else if (request.command == "metrics") {
      response.body = m.to_json();
    } else if (request.command == "spans") {
      // spans_to_chrome_json is pretty-printed; the wire is one line per
      // response, so the newlines go (JSON semantics are unchanged).
      std::string spans = m.spans_to_chrome_json();
      std::erase(spans, '\n');
      response.body = spans;
    } else if (request.command == "profile") {
      response = do_profile(request);
    } else if (request.command == "hunt") {
      response = do_hunt(request);
    } else if (request.command == "verify") {
      response = do_verify(request);
    } else if (request.command == "lint") {
      response = do_lint(request);
    } else if (request.command == "order") {
      response = do_order(request);
    } else if (request.command == "explain") {
      // Pure registry lookup — no exploration, so no flight to share.
      const CommandResult result = run_explain(request.target);
      response.exit_code = result.exit_code;
      response.body = result.json;
      response.error = result.error;
    } else {
      response = usage_error(
          "unknown command '" + request.command +
          "' (profile|hunt|verify|lint|order|explain|metrics|spans|ping)");
    }
  }
  m.observe("serve.request_us", m.now_us() - started_us);
  m.add(std::string("serve.responses.") + status_name(response.exit_code),
        1);
  return response;
}

Response Service::do_profile(const Request& request) {
  if (request.target.empty()) {
    return usage_error("profile wants a \"target\" (catalog name or .type "
                       "path)");
  }
  spec::ObjectType type;
  std::string error;
  if (!resolve_type(request.target, &type, &error)) {
    return usage_error(error);
  }
  int max_n = request.max_n > 0 ? request.max_n : options_.default_max_n;
  if (max_n > options_.max_n_cap) max_n = options_.max_n_cap;

  // The flight key is the CANONICAL form of the type — relabeling
  // ("isomorphic") variants land on the same key, and the levels the
  // flight memoizes are relabeling-invariant, so sharing is sound.
  const reduction::CanonicalForm canon =
      reduction::canonicalize_type(type);
  const ProfileLevels levels = profile_levels_flight(
      type, canon, max_n, request_threads(request));

  // Re-render for THIS requester: its own type name and its own bounds
  // block (bounds findings quote value/op names, which relabelings
  // change), over the shared levels.
  hierarchy::TypeProfile p;
  p.type_name = type.name();
  p.readable = levels.readable;
  p.discerning = levels.discerning;
  p.recording = levels.recording;
  analysis::BoundsReport bounds;
  if (options_.bounds) bounds = analysis::analyze_static_bounds(type);
  Response r;
  r.body = profile_json(p, max_n, options_.bounds ? &bounds : nullptr);
  return r;
}

Service::ProfileLevels Service::profile_levels_flight(
    const spec::ObjectType& type, const reduction::CanonicalForm& canon,
    int max_n, int threads) {
  const std::string key =
      "profile|maxn=" + std::to_string(max_n) + "|" + canon.key;
  const auto outcome = profile_flights_.run(key, [&] {
    if (options_.hooks.before_profile_compute) {
      options_.hooks.before_profile_compute(key);
    }
    trace::metrics().add("serve.profile.explored", 1);
    hierarchy::ProfileOptions profile_options;
    profile_options.threads = threads;
    profile_options.mode = options_.reduce
                               ? hierarchy::SymmetryMode::kAutomorphism
                               : hierarchy::SymmetryMode::kCanonical;
    profile_options.cache = cache_.get();
    profile_options.backend = options_.backend;
    analysis::BoundsReport bounds;
    if (options_.bounds) {
      bounds = analysis::analyze_static_bounds(type);
      profile_options.bounds = &bounds;
    }
    const hierarchy::TypeProfile p =
        hierarchy::compute_profile(type, max_n, profile_options);
    return ProfileLevels{p.readable, p.discerning, p.recording};
  });
  trace::metrics().add(outcome.leader ? "serve.singleflight.leader"
                                      : "serve.singleflight.joined",
                       1);
  return outcome.value;
}

/// hunt: profile ONE campaign candidate named by its genome coordinates
/// ("values ops responses index" in "spec"), so shards farm exploration
/// to a shared daemon. The flight key is the candidate's canonical form —
/// the same keyspace do_profile uses, so a hunt shard and a profile
/// client asking about isomorphic machines share one exploration.
Response Service::do_hunt(const Request& request) {
  if (request.spec.empty()) {
    return usage_error("hunt wants a \"spec\" of genome coordinates "
                       "\"values ops responses index\"");
  }
  const std::vector<std::string> tokens = spec_tokens(request.spec);
  campaign::GenomeId id;
  if (tokens.size() != 4 ||
      !util::parse_int_arg(tokens[0], 1, 64, &id.values) ||
      !util::parse_int_arg(tokens[1], 1, 64, &id.ops) ||
      !util::parse_int_arg(tokens[2], 1, 64, &id.responses) ||
      !util::parse_uint64_arg(tokens[3], &id.index)) {
    return usage_error("hunt spec wants \"values ops responses index\" "
                       "(values/ops/responses in [1, 64])");
  }
  const std::uint64_t cell =
      campaign::cell_size(id.values, id.ops, id.responses);
  if (cell == 0 || id.index >= cell) {
    return usage_error("hunt genome index " + std::to_string(id.index) +
                       " is outside its cell (" + std::to_string(cell) +
                       " machines)");
  }
  int max_n = request.max_n > 0 ? request.max_n : options_.default_max_n;
  if (max_n > options_.max_n_cap) max_n = options_.max_n_cap;

  const spec::ObjectType type = campaign::instantiate_genome(id);
  const reduction::CanonicalForm canon =
      reduction::canonicalize_type(type);
  const ProfileLevels levels = profile_levels_flight(
      type, canon, max_n, request_threads(request));

  char hash_hex[17];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(canon.hash));
  Response r;
  r.body = "{\"command\":\"hunt\",\"genome\":{\"values\":" +
           std::to_string(id.values) +
           ",\"ops\":" + std::to_string(id.ops) +
           ",\"responses\":" + std::to_string(id.responses) +
           ",\"index\":" + std::to_string(id.index) +
           "},\"canonical_hash\":\"" + hash_hex +
           "\",\"max_n\":" + std::to_string(max_n) +
           ",\"readable\":" + (levels.readable ? "true" : "false") +
           ",\"discerning\":{\"value\":" +
           std::to_string(levels.discerning.value) +
           ",\"exact\":" + (levels.discerning.exact ? "true" : "false") +
           "},\"recording\":{\"value\":" +
           std::to_string(levels.recording.value) +
           ",\"exact\":" + (levels.recording.exact ? "true" : "false") +
           "}}";
  return r;
}

Response Service::do_verify(const Request& request) {
  if (request.spec.empty()) {
    return usage_error("verify wants a \"spec\" (e.g. \"cas 2\")");
  }
  const std::vector<std::string> tokens = spec_tokens(request.spec);
  std::string error;
  auto protocol = make_protocol(tokens, &error);
  if (!protocol) return usage_error(error);

  EngineOptions engine;
  engine.threads = request_threads(request);
  engine.reduce = options_.reduce;
  engine.bounds = options_.bounds;
  engine.backend = options_.backend;
  engine.max_states = request_budget(request);
  // Thread count is absent from the key on purpose: exploration results
  // are bit-identical for every thread count (DESIGN.md §7), so flights
  // differing only in threads may share.
  const std::string key = "verify|" + request.spec +
                          "|states=" + std::to_string(engine.max_states) +
                          file_fingerprints(tokens);
  const auto outcome = run_flights_.run(key, [&] {
    return std::make_shared<const CommandResult>(
        run_verify(*protocol, request.spec, engine));
  });
  trace::metrics().add(outcome.leader ? "serve.singleflight.leader"
                                      : "serve.singleflight.joined",
                       1);
  Response r;
  r.exit_code = outcome.value->exit_code;
  r.body = outcome.value->json;
  r.error = outcome.value->error;
  return r;
}

Response Service::do_lint(const Request& request) {
  analysis::Severity threshold = analysis::Severity::kError;
  if (!request.threshold.empty() &&
      !parse_severity(request.threshold, &threshold)) {
    return usage_error("unknown threshold '" + request.threshold +
                       "' (error|warning|note)");
  }
  const bool protocol_lint = !request.spec.empty();
  if (!protocol_lint && request.target.empty()) {
    return usage_error("lint wants a \"target\" (type) or \"spec\" "
                       "(protocol)");
  }

  EngineOptions engine;
  engine.threads = request_threads(request);
  engine.reduce = options_.reduce;
  engine.backend = options_.backend;
  std::string key;
  std::function<std::shared_ptr<const CommandResult>()> fn;
  if (protocol_lint) {
    const std::vector<std::string> tokens = spec_tokens(request.spec);
    std::string error;
    auto protocol = make_protocol(tokens, &error);
    if (!protocol) return usage_error(error);
    key = "lintp|" + request.spec + "|th=" + request.threshold +
          file_fingerprints(tokens);
    auto shared = std::shared_ptr<exec::Protocol>(std::move(protocol));
    fn = [this, shared, spec = request.spec, threshold, engine] {
      return std::make_shared<const CommandResult>(
          run_lint_protocol(*shared, spec, threshold, engine));
    };
  } else {
    const std::vector<std::string> targets = {request.target};
    key = "lintt|" + request.target + "|th=" + request.threshold +
          file_fingerprints(targets);
    fn = [targets, threshold, engine] {
      return std::make_shared<const CommandResult>(
          run_lint_types(targets, threshold, engine));
    };
  }
  const auto outcome = run_flights_.run(key, fn);
  trace::metrics().add(outcome.leader ? "serve.singleflight.leader"
                                      : "serve.singleflight.joined",
                       1);
  Response r;
  r.exit_code = outcome.value->exit_code;
  r.body = outcome.value->json;
  r.error = outcome.value->error;
  return r;
}

Response Service::do_order(const Request& request) {
  if (request.target.empty() || request.target_b.empty()) {
    return usage_error("order wants \"target\" and \"target_b\" (catalog "
                       "names or .type paths)");
  }
  spec::ObjectType a;
  spec::ObjectType b;
  std::string error;
  if (!resolve_type(request.target, &a, &error)) return usage_error(error);
  if (!resolve_type(request.target_b, &b, &error)) return usage_error(error);
  // The key carries the requester-visible names (they are embedded in the
  // rendered document, so flights may only share between requests naming
  // the SAME targets) plus content fingerprints for file targets.
  const std::vector<std::string> targets = {request.target,
                                            request.target_b};
  const std::string key = "order|" + request.target + "|" +
                          request.target_b + file_fingerprints(targets);
  const auto outcome = run_flights_.run(key, [&] {
    return std::make_shared<const CommandResult>(
        run_order(a, b, request.target, request.target_b));
  });
  trace::metrics().add(outcome.leader ? "serve.singleflight.leader"
                                      : "serve.singleflight.joined",
                       1);
  Response r;
  r.exit_code = outcome.value->exit_code;
  r.body = outcome.value->json;
  r.error = outcome.value->error;
  return r;
}

std::size_t Service::profile_waiters(const std::string& key) const {
  return profile_flights_.waiters(key);
}

}  // namespace rcons::serve
