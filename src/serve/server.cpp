#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "trace/metrics.hpp"
#include "util/socket.hpp"

namespace rcons::serve {

Server::Conn::~Conn() { util::shutdown_and_close(fd); }

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

Server::~Server() {
  stop();
  wait();
}

bool Server::start(std::string* error) {
  const bool want_unix = !options_.unix_path.empty();
  const bool want_tcp = options_.tcp_port >= 0;
  if (want_unix == want_tcp) {
    *error = "serve wants exactly one transport: a unix socket path or a "
             "TCP port";
    return false;
  }
  const util::ListenResult listener =
      want_unix ? util::listen_unix(options_.unix_path)
                : util::listen_tcp(options_.tcp_port);
  if (!listener.ok()) {
    *error = listener.error;
    return false;
  }
  listen_fd_ = listener.fd;
  port_ = listener.port;
  // The acceptor multiplexes the listener against this pipe: stop()
  // writes one byte and the poll loop exits. (shutdown() on a LISTENING
  // unix socket does not portably unblock accept(), and close() would
  // race fd reuse — tests run clients in the same process.)
  if (::pipe(wake_pipe_) != 0) {
    *error = "pipe: cannot create the acceptor wake pipe";
    util::shutdown_and_close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  started_ = true;
  if (options_.workers < 1) options_.workers = 1;
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::accept_loop() {
  while (true) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                            {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() woke us
    if (fds[0].revents == 0) continue;
    const int fd = util::accept_connection(listen_fd_);
    if (fd < 0) {
      // Non-blocking listener: the pending connection can vanish between
      // poll and accept.
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        continue;
      }
      return;
    }
    auto conn = std::make_shared<Conn>(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // conn closes via ~Conn on the way out
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn = std::move(conn)] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  util::LineReader reader(conn->fd, options_.max_line_bytes);
  std::string line;
  while (true) {
    const util::LineReader::Status status = reader.read_line(&line);
    if (status == util::LineReader::Status::kOverflow) {
      // Framing is lost past an overlong line; answer once and hang up.
      trace::metrics().add("serve.requests.malformed", 1);
      Response r;
      r.exit_code = 2;
      r.error = "request line exceeds " +
                std::to_string(options_.max_line_bytes) + " bytes";
      respond(*conn, "", r);
      return;
    }
    if (status != util::LineReader::Status::kLine) return;  // EOF / error
    // Blank lines are ignored rather than answered: they carry no id to
    // correlate a response to, and tolerating them lets shell pipelines
    // with trailing newlines talk to the daemon.
    if (line.empty()) continue;
    ParseOutcome parsed = parse_request(line, options_.max_line_bytes);
    if (!parsed.ok) {
      trace::metrics().add("serve.requests.malformed", 1);
      Response r;
      r.exit_code = 2;
      r.error = parsed.error;
      respond(*conn, parsed.request.id, r);
      continue;
    }
    const Request& request = parsed.request;
    // O(1) commands answer on the reader thread so observability stays
    // available while every worker is busy (or the queue is full).
    if (request.command == "ping" || request.command == "metrics" ||
        request.command == "spans") {
      respond(*conn, request.id, service_.handle(request));
      continue;
    }
    bool shutting = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_ && queue_.size() < options_.queue_depth) {
        queue_.push_back(Job{conn, request});
        queue_cv_.notify_one();
        continue;
      }
      shutting = stopping_;
    }
    trace::metrics().add("serve.admission.rejected", 1);
    Response r;
    r.exit_code = 3;  // INCONCLUSIVE: overload is never silent stalling
    r.error = shutting ? "server is shutting down"
                       : "admission queue full (depth " +
                             std::to_string(options_.queue_depth) + ")";
    respond(*conn, request.id, r);
  }
}

void Server::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    const Response response = service_.handle(job.request);
    respond(*job.conn, job.request.id, response);
  }
}

void Server::respond(Conn& conn, const std::string& id, const Response& r) {
  const std::string line =
      render_response(id, service_.next_trace_id(), r);
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  util::write_all(conn.fd, line);
}

void Server::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Unblock every reader parked in read(); fds stay open (closing here
    // would race the owner) — ~Conn closes them.
    for (const auto& weak : conns_) {
      if (const auto conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  queue_cv_.notify_all();
  const char wake = 'x';
  (void)!::write(wake_pipe_[1], &wake, 1);  // ends the acceptor's poll loop
}

void Server::wait() {
  if (!started_) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    util::shutdown_and_close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  // The acceptor is gone, so reader_threads_ can no longer grow.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    readers.swap(reader_threads_);
  }
  for (std::thread& t : readers) t.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

}  // namespace rcons::serve
