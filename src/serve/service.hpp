// The rcons-serve request service (DESIGN.md §12): dispatches decoded
// wire requests onto the shared command cores, with two layers of
// stampede protection above them:
//
//   * a shared in-memory verdict tier (reduction::MemoryTierCache) over
//     the persistent VerdictCache, so per-n profile verdicts are read
//     from disk at most once per daemon lifetime and isomorphic types
//     share entries, and
//   * single-flight execution: concurrent requests whose answers must
//     coincide (same canonical type form and max_n for profile; same
//     spec, budget, and input-file fingerprints for verify/lint) share
//     ONE exploration — the first caller leads, the rest block and join
//     its result. Profile flights memoize only the relabeling-invariant
//     levels; every requester re-renders with its own type name and
//     bounds block, so responses stay byte-identical to the CLI's.
//
// The service is transport-free (the daemon in server.hpp owns sockets
// and the admission queue) and thread-safe: handle() may be called from
// any number of worker threads concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "hierarchy/consensus_number.hpp"
#include "reduction/memory_tier.hpp"
#include "reduction/type_canon.hpp"
#include "serve/commands.hpp"
#include "serve/wire.hpp"
#include "util/single_flight.hpp"

namespace rcons::serve {

/// Test seams. Production leaves them empty.
struct ServiceHooks {
  /// Called by a profile single-flight LEADER (with the flight key) just
  /// before the exploration runs. The soak test uses this to hold the
  /// leader until a known number of joiners are blocked on the key.
  std::function<void(const std::string& key)> before_profile_compute;
};

struct ServiceOptions {
  /// Engine defaults for requests that leave the knob unset.
  int default_threads = 1;
  int default_max_n = 5;
  /// Hard cap on per-request max_n (profile cost is exponential in n).
  int max_n_cap = 8;
  /// Hard cap on per-request worker threads: the thread count is a
  /// client-supplied integer, and spawning an unbounded number of threads
  /// is a resource-exhaustion hang (the wire fuzz found exactly this).
  int max_threads_cap = 64;
  /// Per-request state budget cap; requests asking for more (or for
  /// nothing) are clamped down to this. 0 = uncapped.
  std::size_t max_states_cap = 0;
  bool reduce = true;
  bool bounds = true;
  /// Daemon-wide exec backend (the CLI's --backend flag). Verdicts are
  /// bit-identical across backends, so single-flight keys ignore it.
  exec::Backend backend = exec::Backend::kInterp;
  /// Persistent verdict tier directory; empty = memory tier only.
  std::string cache_dir;
  ServiceHooks hooks;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Answers one request. Never blocks on anything but its own
  /// computation (admission control is the caller's job), never throws.
  Response handle(const Request& request);

  /// Fresh per-request trace id ("r-<hex>"), echoed in responses and
  /// stamped on the request's metrics span.
  std::string next_trace_id();

  /// Callers currently blocked on the given profile flight key (the key a
  /// ServiceHooks::before_profile_compute leader was handed). Test seam.
  std::size_t profile_waiters(const std::string& key) const;

  const reduction::MemoryTierCache& cache() const { return *cache_; }
  const ServiceOptions& options() const { return options_; }

 private:
  /// What a profile flight memoizes: exactly the relabeling-invariant
  /// part of a TypeProfile (levels + readability), never the name.
  struct ProfileLevels {
    bool readable = false;
    hierarchy::Level discerning;
    hierarchy::Level recording;
  };

  Response do_profile(const Request& request);
  Response do_hunt(const Request& request);
  Response do_verify(const Request& request);

  /// The single-flight profile exploration both do_profile and do_hunt
  /// share: one key per (canonical form, max_n), so a hunt shard asking
  /// about a machine and a client profiling an isomorphic type join the
  /// same exploration.
  ProfileLevels profile_levels_flight(const spec::ObjectType& type,
                                      const reduction::CanonicalForm& canon,
                                      int max_n, int threads);
  Response do_lint(const Request& request);
  Response do_order(const Request& request);

  int request_threads(const Request& request) const;
  std::size_t request_budget(const Request& request) const;

  ServiceOptions options_;
  std::unique_ptr<reduction::VerdictCache> disk_tier_;
  std::unique_ptr<reduction::MemoryTierCache> cache_;
  util::SingleFlight<ProfileLevels> profile_flights_;
  util::SingleFlight<std::shared_ptr<const CommandResult>> run_flights_;
  std::atomic<std::uint64_t> trace_serial_{0};
};

}  // namespace rcons::serve
