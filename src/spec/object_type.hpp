// Sequential specifications of deterministic shared-object types.
//
// The paper's model (Section 2): "Each object has a type, which defines a
// set of values, a set of operations ... and a set of responses. Every type
// has a sequential specification that defines, for each value v and each
// operation op, the response to that operation and a resulting value."
// We restrict attention to *deterministic* types with finitely many values,
// operations, and responses — exactly the setting of the paper's
// characterizations — and represent a type as an explicit Mealy machine.
//
// A type is *readable* if it supports an operation that returns the current
// value and does not change it. Readability is detected structurally: an
// operation r is a Read if (a) it never changes the value and (b) its
// response identifies the value uniquely (the response function is
// injective on values).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rcons::spec {

/// Index of a value of a type (0 .. value_count()-1).
using ValueId = int;
/// Index of an operation of a type (0 .. op_count()-1).
using OpId = int;
/// Index of a response of a type (0 .. response_count()-1).
using ResponseId = int;

/// Result of applying one operation: the response returned to the caller
/// and the resulting value of the object.
struct Effect {
  ResponseId response = 0;
  ValueId next_value = 0;

  friend bool operator==(const Effect&, const Effect&) = default;
};

/// A finite, deterministic object type. Immutable once built (see
/// TypeBuilder). Copyable; copies are cheap enough for the catalog's use.
class ObjectType {
 public:
  ObjectType() = default;

  const std::string& name() const { return name_; }

  int value_count() const { return static_cast<int>(value_names_.size()); }
  int op_count() const { return static_cast<int>(op_names_.size()); }
  int response_count() const {
    return static_cast<int>(response_names_.size());
  }

  const std::string& value_name(ValueId v) const;
  const std::string& op_name(OpId op) const;
  const std::string& response_name(ResponseId r) const;

  /// Looks up a value/op/response by name; nullopt if absent.
  std::optional<ValueId> find_value(std::string_view name) const;
  std::optional<OpId> find_op(std::string_view name) const;
  std::optional<ResponseId> find_response(std::string_view name) const;

  /// The sequential specification: deterministic, total.
  const Effect& apply(ValueId v, OpId op) const;

  /// Applies a sequence of operations starting from `v`; returns the final
  /// value. (Responses discarded; see apply_trace for responses.)
  ValueId apply_all(ValueId v, const std::vector<OpId>& ops) const;

  /// Applies a sequence of operations starting from `v`; returns the final
  /// value and fills `responses` (resized to ops.size()).
  ValueId apply_trace(ValueId v, const std::vector<OpId>& ops,
                      std::vector<ResponseId>& responses) const;

  /// True if `op` never changes the object's value.
  bool op_is_value_preserving(OpId op) const;

  /// True if `op` is a Read: value-preserving and response injective on
  /// values (the response determines the value).
  bool op_is_read(OpId op) const;

  /// The first Read operation, if the type is readable.
  std::optional<OpId> read_op() const;

  /// True if the type supports a Read operation.
  bool is_readable() const { return read_op().has_value(); }

  /// Set of values reachable from `from` by any operation sequence.
  std::vector<ValueId> reachable_values(ValueId from) const;

  /// Human-readable dump of the full sequential specification, one line per
  /// (value, op) pair. Used to reproduce Figure 3.
  std::string describe() const;

  /// Graphviz dot rendering of the state machine (edges labelled
  /// "op / response"). Used to reproduce Figure 3 graphically.
  std::string to_dot() const;

 private:
  friend class TypeBuilder;

  std::string name_;
  std::vector<std::string> value_names_;
  std::vector<std::string> op_names_;
  std::vector<std::string> response_names_;
  // delta_[v * op_count + op]
  std::vector<Effect> delta_;
};

}  // namespace rcons::spec
